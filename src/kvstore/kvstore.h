// Sharded in-memory key-value store.
//
// Stands in for the production "distributed key-value store" that the
// feature-extraction pipeline consults to avoid re-extracting features for
// images it has seen before (Section 2.2, Figure 2). Sharding with striped
// locks keeps the check-before-extract path scalable across indexing
// threads; hit/miss statistics make the Table 1 reuse ratio measurable.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/hash.h"

namespace jdvs {

// Maps a key to its shard; exposed for tests of shard balance.
std::size_t ShardIndexFor(std::string_view key, std::size_t num_shards);

struct KvStoreStats {
  std::uint64_t gets = 0;
  std::uint64_t hits = 0;
  std::uint64_t puts = 0;
  std::uint64_t erases = 0;

  double HitRate() const {
    return gets == 0 ? 0.0 : static_cast<double>(hits) / gets;
  }
};

template <typename V>
class ShardedKvStore {
 public:
  explicit ShardedKvStore(std::size_t num_shards = 64)
      : shards_(num_shards == 0 ? 1 : num_shards) {}

  ShardedKvStore(const ShardedKvStore&) = delete;
  ShardedKvStore& operator=(const ShardedKvStore&) = delete;

  // Inserts or overwrites.
  void Put(std::string_view key, V value) {
    Shard& shard = ShardFor(key);
    {
      std::lock_guard lock(shard.mu);
      shard.map.insert_or_assign(std::string(key), std::move(value));
    }
    puts_.fetch_add(1, std::memory_order_relaxed);
  }

  // Inserts only if absent; returns true if this call inserted.
  bool PutIfAbsent(std::string_view key, V value) {
    Shard& shard = ShardFor(key);
    bool inserted;
    {
      std::lock_guard lock(shard.mu);
      inserted =
          shard.map.try_emplace(std::string(key), std::move(value)).second;
    }
    if (inserted) puts_.fetch_add(1, std::memory_order_relaxed);
    return inserted;
  }

  std::optional<V> Get(std::string_view key) const {
    const Shard& shard = ShardFor(key);
    gets_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard lock(shard.mu);
    const auto it = shard.map.find(std::string(key));
    if (it == shard.map.end()) return std::nullopt;
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }

  bool Contains(std::string_view key) const {
    const Shard& shard = ShardFor(key);
    gets_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard lock(shard.mu);
    const bool found = shard.map.find(std::string(key)) != shard.map.end();
    if (found) hits_.fetch_add(1, std::memory_order_relaxed);
    return found;
  }

  // Returns the cached value, or computes+stores it. `compute` may run more
  // than once under contention; the first stored value wins (values are
  // deterministic functions of the key in all our uses, so either is fine).
  V GetOrCompute(std::string_view key, const std::function<V()>& compute) {
    if (auto cached = Get(key)) return *std::move(cached);
    V value = compute();
    Shard& shard = ShardFor(key);
    std::lock_guard lock(shard.mu);
    auto [it, inserted] = shard.map.try_emplace(std::string(key), value);
    if (inserted) puts_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }

  bool Erase(std::string_view key) {
    Shard& shard = ShardFor(key);
    bool erased;
    {
      std::lock_guard lock(shard.mu);
      erased = shard.map.erase(std::string(key)) > 0;
    }
    if (erased) erases_.fetch_add(1, std::memory_order_relaxed);
    return erased;
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const auto& shard : shards_) {
      std::lock_guard lock(shard.mu);
      total += shard.map.size();
    }
    return total;
  }

  std::size_t num_shards() const { return shards_.size(); }

  KvStoreStats stats() const {
    return KvStoreStats{
        .gets = gets_.load(std::memory_order_relaxed),
        .hits = hits_.load(std::memory_order_relaxed),
        .puts = puts_.load(std::memory_order_relaxed),
        .erases = erases_.load(std::memory_order_relaxed),
    };
  }

  void ResetStats() {
    gets_.store(0, std::memory_order_relaxed);
    hits_.store(0, std::memory_order_relaxed);
    puts_.store(0, std::memory_order_relaxed);
    erases_.store(0, std::memory_order_relaxed);
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, V> map;
  };

  Shard& ShardFor(std::string_view key) {
    return shards_[ShardIndexFor(key, shards_.size())];
  }
  const Shard& ShardFor(std::string_view key) const {
    return shards_[ShardIndexFor(key, shards_.size())];
  }

  std::vector<Shard> shards_;
  mutable std::atomic<std::uint64_t> gets_{0};
  mutable std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> puts_{0};
  std::atomic<std::uint64_t> erases_{0};
};

}  // namespace jdvs

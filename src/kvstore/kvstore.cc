#include "kvstore/kvstore.h"

namespace jdvs {

std::size_t ShardIndexFor(std::string_view key, std::size_t num_shards) {
  return num_shards <= 1
             ? 0
             : static_cast<std::size_t>(Fnv1a64(key) % num_shards);
}

}  // namespace jdvs

#include "lsh/lsh_index.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <mutex>

#include "common/hash.h"
#include "vecmath/distance.h"

namespace jdvs {

LshIndex::LshIndex(std::size_t dim, const LshIndexConfig& config)
    : dim_(dim), config_(config), vectors_(dim) {
  Rng rng(config_.seed);
  tables_.resize(config_.num_tables);
  for (auto& table : tables_) {
    table.projections.resize(config_.hashes_per_table * dim_);
    for (float& x : table.projections) {
      x = static_cast<float>(rng.NextGaussian());
    }
    table.offsets.resize(config_.hashes_per_table);
    for (float& b : table.offsets) {
      b = static_cast<float>(rng.NextDouble()) * config_.bucket_width;
    }
  }
}

std::vector<float> LshIndex::RawHashes(const Table& table,
                                       FeatureView v) const {
  std::vector<float> raw(config_.hashes_per_table);
  for (std::size_t i = 0; i < config_.hashes_per_table; ++i) {
    const FeatureView row(&table.projections[i * dim_], dim_);
    raw[i] = (InnerProduct(row, v) + table.offsets[i]) / config_.bucket_width;
  }
  return raw;
}

std::uint64_t LshIndex::KeyFor(const std::vector<std::int64_t>& values) {
  std::uint64_t key = 0xcbf29ce484222325ULL;
  for (const std::int64_t v : values) {
    key = HashCombine(key, Mix64(static_cast<std::uint64_t>(v)));
  }
  return key;
}

void LshIndex::Add(ImageId id, FeatureView v) {
  assert(v.size() == dim_);
  std::unique_lock lock(mu_);
  const auto slot = static_cast<std::uint32_t>(vectors_.Append(v));
  ids_.push_back(id);
  std::vector<std::int64_t> coords(config_.hashes_per_table);
  for (auto& table : tables_) {
    const std::vector<float> raw = RawHashes(table, v);
    for (std::size_t i = 0; i < raw.size(); ++i) {
      coords[i] = static_cast<std::int64_t>(std::floor(raw[i]));
    }
    table.buckets[KeyFor(coords)].push_back(slot);
  }
}

std::vector<ScoredImage> LshIndex::Search(FeatureView query, std::size_t k,
                                          std::size_t extra_probes) const {
  assert(query.size() == dim_);
  std::shared_lock lock(mu_);
  TopK topk(k);
  std::vector<bool> seen(vectors_.size(), false);
  std::vector<std::int64_t> coords(config_.hashes_per_table);

  const auto scan_bucket = [&](const Table& table, std::uint64_t key) {
    const auto it = table.buckets.find(key);
    if (it == table.buckets.end()) return;
    for (const std::uint32_t slot : it->second) {
      if (seen[slot]) continue;
      seen[slot] = true;
      topk.Offer(ids_[slot], L2SquaredDistance(query, vectors_.At(slot)));
    }
  };

  for (const auto& table : tables_) {
    const std::vector<float> raw = RawHashes(table, query);
    for (std::size_t i = 0; i < raw.size(); ++i) {
      coords[i] = static_cast<std::int64_t>(std::floor(raw[i]));
    }
    scan_bucket(table, KeyFor(coords));

    if (extra_probes == 0) continue;
    // Multi-probe: rank single-coordinate +/-1 perturbations by the query's
    // distance to that hash boundary, probe the closest `extra_probes`.
    struct Perturbation {
      float boundary_distance;
      std::size_t coordinate;
      int direction;
    };
    std::vector<Perturbation> perturbations;
    perturbations.reserve(2 * raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      const float frac = raw[i] - std::floor(raw[i]);
      perturbations.push_back({1.f - frac, i, +1});
      perturbations.push_back({frac, i, -1});
    }
    std::sort(perturbations.begin(), perturbations.end(),
              [](const Perturbation& a, const Perturbation& b) {
                return a.boundary_distance < b.boundary_distance;
              });
    const std::size_t probes = std::min(extra_probes, perturbations.size());
    for (std::size_t p = 0; p < probes; ++p) {
      coords[perturbations[p].coordinate] += perturbations[p].direction;
      scan_bucket(table, KeyFor(coords));
      coords[perturbations[p].coordinate] -= perturbations[p].direction;
    }
  }
  return topk.TakeSorted();
}

std::size_t LshIndex::size() const {
  std::shared_lock lock(mu_);
  return ids_.size();
}

std::size_t LshIndex::BucketCount() const {
  std::shared_lock lock(mu_);
  std::size_t count = 0;
  for (const auto& table : tables_) count += table.buckets.size();
  return count;
}

}  // namespace jdvs

// Multi-probe LSH baseline (Lv et al., the paper's reference [21]).
//
// The paper positions its k-means/IVF indexing against hash-based
// high-dimensional indexing ("Efficient indexing was studied in [21,22], but
// neither addressed the real time issues"). This module implements that
// comparator: p-stable LSH for Euclidean distance with multi-probe querying,
// so the baseline benches can put IVF and LSH on the same recall/latency
// axes.
//
// Hash: h_i(x) = floor((a_i . x + b_i) / w) with a_i ~ N(0, I), b_i ~ U[0,w).
// A table key concatenates k such values. Multi-probe perturbs individual
// hash coordinates by +/-1, ordered by distance-to-boundary, probing the
// buckets most likely to hold near neighbours.
//
// Concurrency: single writer (Add), lock-free-ish readers are NOT a goal
// here — this is the baseline, guarded by a shared_mutex.
#pragma once

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "vecmath/topk.h"
#include "vecmath/vector.h"
#include "vecmath/vector_set.h"

namespace jdvs {

struct LshIndexConfig {
  std::size_t num_tables = 8;        // L
  std::size_t hashes_per_table = 8;  // k
  float bucket_width = 4.0f;         // w
  std::uint64_t seed = 17;
};

class LshIndex {
 public:
  LshIndex(std::size_t dim, const LshIndexConfig& config = {});

  LshIndex(const LshIndex&) = delete;
  LshIndex& operator=(const LshIndex&) = delete;

  // Inserts a vector under `id` (single writer).
  void Add(ImageId id, FeatureView v);

  // Top-k by exact distance over the union of candidates from the home
  // bucket of each table plus `extra_probes` perturbed buckets per table.
  std::vector<ScoredImage> Search(FeatureView query, std::size_t k,
                                  std::size_t extra_probes = 0) const;

  std::size_t size() const;
  std::size_t dim() const noexcept { return dim_; }

  // Total number of non-empty buckets across tables (structure metric).
  std::size_t BucketCount() const;

 private:
  struct Table {
    // Projection matrix (k x dim) and offsets (k).
    std::vector<float> projections;
    std::vector<float> offsets;
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets;
  };

  // Raw (pre-floor) hash coordinates of v in table t.
  std::vector<float> RawHashes(const Table& table, FeatureView v) const;
  static std::uint64_t KeyFor(const std::vector<std::int64_t>& values);

  const std::size_t dim_;
  const LshIndexConfig config_;
  std::vector<Table> tables_;
  VectorSet vectors_;
  std::vector<ImageId> ids_;  // slot -> external id
  mutable std::shared_mutex mu_;
};

}  // namespace jdvs

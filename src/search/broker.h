// Broker: middle tier of Figure 10.
//
// "A broker forwards the query to all the searchers it connects to and
// collects the partial search results from each searcher." Each partition a
// broker owns can have several replica searchers ("Each partition can have
// multiple copies for availability"); the broker queries one replica and
// fails over to the next on error.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "net/node.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "search/searcher.h"
#include "search/types.h"

namespace jdvs {

class Broker {
 public:
  struct Config {
    std::size_t threads = 4;
    LatencyModel latency;
    std::uint64_t seed = 0;
    // Observability (null = process-global defaults).
    obs::Registry* registry = nullptr;
    obs::TraceSink* trace_sink = nullptr;
  };

  Broker(std::string name, const Config& config);

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  // Registers one partition with its replica searchers (preference order).
  void AddPartition(std::vector<Searcher*> replicas);

  // Remote entry point: fan-out/merge runs on the broker's node. A sampled
  // `parent` context yields a "broker.search" span with failover/failure
  // tags, plus one "searcher.scan" child per probed partition.
  std::future<std::vector<SearchHit>> SearchAsync(
      FeatureVector query, std::size_t k, std::size_t nprobe = 0,
      CategoryId category_filter = kNoCategoryFilter,
      obs::TraceContext parent = {});

  // The fan-out/merge itself (also used directly by flat-topology ablation).
  // `span`, when non-null, is the enclosing broker span: failovers and
  // partition failures are tagged on it and searcher calls become its
  // children.
  std::vector<SearchHit> SearchFanOut(
      const FeatureVector& query, std::size_t k, std::size_t nprobe,
      CategoryId category_filter = kNoCategoryFilter,
      obs::Span* span = nullptr);

  Node& node() { return node_; }
  const std::string& name() const { return node_.name(); }
  std::size_t num_partitions() const { return partitions_.size(); }

  // Number of replica failovers performed (availability metric).
  std::uint64_t failovers() const {
    return failovers_.load(std::memory_order_relaxed);
  }
  // Partitions that returned no result at all (all replicas down).
  std::uint64_t partition_failures() const {
    return partition_failures_.load(std::memory_order_relaxed);
  }

 private:
  Node node_;
  std::vector<std::vector<Searcher*>> partitions_;
  obs::TraceSink* trace_sink_;
  Histogram* fanout_stage_;  // jdvs_stage_micros{stage="broker_fanout"}
  // Per-instance atomics back the getters; the registry counters mirror
  // them so one exposition dump reports every broker.
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> partition_failures_{0};
  obs::Counter* failovers_total_;
  obs::Counter* partition_failures_total_;
};

}  // namespace jdvs

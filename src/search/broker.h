// Broker: middle tier of Figure 10.
//
// "A broker forwards the query to all the searchers it connects to and
// collects the partial search results from each searcher." Each partition a
// broker owns can have several replica searchers ("Each partition can have
// multiple copies for availability"); the broker queries one replica and
// fails over to the next on error.
//
// The fan-out is continuation-passing: a broker pool thread only *dispatches*
// the first wave, then frees itself. Each searcher response lands in a
// FanInCollector from the searcher's own pool thread; a failed replica is
// re-dispatched to the next copy from inside that completion callback (so
// failover of one partition never delays collection of the others), and the
// merge runs in the final continuation when the last partition arrives. No
// broker thread ever blocks on an in-flight query, so a 1-thread broker
// sustains arbitrarily many concurrent fan-outs.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "ctrl/replica_state.h"
#include "net/node.h"
#include "net/rpc.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "qos/deadline.h"
#include "search/searcher.h"
#include "search/types.h"

namespace jdvs {

class Broker {
 public:
  struct Config {
    std::size_t threads = 4;
    LatencyModel latency;
    std::uint64_t seed = 0;
    // Observability (null = process-global defaults).
    obs::Registry* registry = nullptr;
    obs::TraceSink* trace_sink = nullptr;
  };

  // One broker's merged answer: the top-k across its partitions plus how
  // many partitions contributed nothing (every replica down) — the partial
  // coverage signal the blender turns into a degraded response.
  struct Reply {
    std::vector<SearchHit> hits;
    std::size_t partitions_failed = 0;
  };
  using SearchResult = AsyncResult<Reply>;
  using SearchCallback = std::function<void(SearchResult)>;

  Broker(std::string name, const Config& config);

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  // Registers one partition with its replica searchers. `state_slots`, when
  // given, maps each replica to its slot in the control plane's replica
  // state table (parallel to `replicas`); with a table wired via
  // SetReplicaStates the broker rotates across *serving* replicas and skips
  // ones the failure detector marked down, instead of discovering outages
  // one timed-out dispatch at a time.
  void AddPartition(std::vector<Searcher*> replicas,
                    std::vector<std::size_t> state_slots = {});

  // Wires the control plane's replica state table (null = query-time
  // failover only, the pre-control-plane behavior).
  void SetReplicaStates(const ctrl::ReplicaStateTable* table) {
    replica_states_ = table;
  }

  // Remote entry point, continuation-passing: a broker pool thread runs the
  // fan-out dispatch (one searcher call per partition), and `on_done`
  // receives the merged top-k once the last partition lands — on whichever
  // searcher pool thread delivered it. A sampled `parent` context yields a
  // "broker.search" span covering dispatch through merge, with
  // failover/failure tags, plus one "searcher.scan" child per partition.
  //
  // The deadline is enforced at the tier boundaries: before the fan-out is
  // dispatched (an already-dead budget never reaches a searcher), inside
  // each searcher (queue time counts), and again before the merge. A
  // replica that failed *because the deadline expired* is never failed over
  // — retrying a timed-out call on a sibling only amplifies the overload.
  void SearchAsync(FeatureVector query, std::size_t k, std::size_t nprobe,
                   CategoryId category_filter, qos::Deadline deadline,
                   obs::TraceContext parent, SearchCallback on_done);

  // Future facade over the continuation path (tests / ablation harnesses).
  std::future<std::vector<SearchHit>> SearchAsync(
      FeatureVector query, std::size_t k, std::size_t nprobe = 0,
      CategoryId category_filter = kNoCategoryFilter,
      qos::Deadline deadline = {}, obs::TraceContext parent = {});

  Node& node() { return node_; }
  const std::string& name() const { return node_.name(); }
  std::size_t num_partitions() const { return partitions_.size(); }

  // Number of replica failovers performed (availability metric).
  std::uint64_t failovers() const {
    return failovers_.load(std::memory_order_relaxed);
  }
  // Partitions that returned no result at all (all replicas down).
  std::uint64_t partition_failures() const {
    return partition_failures_.load(std::memory_order_relaxed);
  }
  // Replicas skipped at dispatch because the state table marked them
  // non-serving (outage avoided without burning a failed call).
  std::uint64_t state_skips() const {
    return state_skips_.load(std::memory_order_relaxed);
  }
  // Fan-outs currently between dispatch and final merge, and the high-water
  // mark — the direct measure of pipeline concurrency the blocking design
  // capped at `threads`.
  std::size_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }
  std::size_t peak_in_flight() const {
    return peak_in_flight_.load(std::memory_order_relaxed);
  }

 private:
  // Per-request fan-out state, heap-owned and shared by the child
  // continuations; the span lives here so the trace covers the whole
  // thread-hopping dispatch -> merge window.
  struct FanOutState;

  void StartFanOut(std::shared_ptr<FanOutState> state);
  void DispatchReplica(std::shared_ptr<FanOutState> state, std::size_t slot,
                       std::size_t attempt);
  void FinishFanOut(std::shared_ptr<FanOutState> state,
                    std::vector<Searcher::SearchResult> slots);

  Node node_;
  std::vector<std::vector<Searcher*>> partitions_;
  std::vector<std::vector<std::size_t>> partition_state_slots_;
  const ctrl::ReplicaStateTable* replica_states_ = nullptr;
  // Per-partition replica rotation cursor (deque: atomics can't move).
  std::deque<std::atomic<std::size_t>> replica_cursors_;
  obs::TraceSink* trace_sink_;
  Histogram* fanout_stage_;  // jdvs_stage_micros{stage="broker_fanout"}
  // Per-instance atomics back the getters; the registry counters mirror
  // them so one exposition dump reports every broker.
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> partition_failures_{0};
  std::atomic<std::uint64_t> state_skips_{0};
  std::atomic<std::size_t> in_flight_{0};
  std::atomic<std::size_t> peak_in_flight_{0};
  obs::Counter* failovers_total_;
  obs::Counter* partition_failures_total_;
  obs::Counter* state_skips_total_;
  obs::Counter* deadline_exceeded_;  // jdvs_qos_deadline_exceeded_total{tier=broker}
};

}  // namespace jdvs

// Broker: middle tier of Figure 10.
//
// "A broker forwards the query to all the searchers it connects to and
// collects the partial search results from each searcher." Each partition a
// broker owns can have several replica searchers ("Each partition can have
// multiple copies for availability"); the broker queries one replica and
// fails over to the next on error.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "net/node.h"
#include "search/searcher.h"
#include "search/types.h"

namespace jdvs {

class Broker {
 public:
  struct Config {
    std::size_t threads = 4;
    LatencyModel latency;
    std::uint64_t seed = 0;
  };

  Broker(std::string name, const Config& config);

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  // Registers one partition with its replica searchers (preference order).
  void AddPartition(std::vector<Searcher*> replicas);

  // Remote entry point: fan-out/merge runs on the broker's node.
  std::future<std::vector<SearchHit>> SearchAsync(
      FeatureVector query, std::size_t k, std::size_t nprobe = 0,
      CategoryId category_filter = kNoCategoryFilter);

  // The fan-out/merge itself (also used directly by flat-topology ablation).
  std::vector<SearchHit> SearchFanOut(
      const FeatureVector& query, std::size_t k, std::size_t nprobe,
      CategoryId category_filter = kNoCategoryFilter);

  Node& node() { return node_; }
  const std::string& name() const { return node_.name(); }
  std::size_t num_partitions() const { return partitions_.size(); }

  // Number of replica failovers performed (availability metric).
  std::uint64_t failovers() const {
    return failovers_.load(std::memory_order_relaxed);
  }
  // Partitions that returned no result at all (all replicas down).
  std::uint64_t partition_failures() const {
    return partition_failures_.load(std::memory_order_relaxed);
  }

 private:
  Node node_;
  std::vector<std::vector<Searcher*>> partitions_;
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> partition_failures_{0};
};

}  // namespace jdvs

// Broker: middle tier of Figure 10.
//
// "A broker forwards the query to all the searchers it connects to and
// collects the partial search results from each searcher." Each partition a
// broker owns can have several replica searchers ("Each partition can have
// multiple copies for availability"); the broker queries one replica and
// fails over to the next on error.
//
// The fan-out is continuation-passing: a broker pool thread only *dispatches*
// the first wave, then frees itself. Each searcher response lands in a
// FanInCollector from the searcher's own pool thread; a failed replica is
// re-dispatched to the next copy from inside that completion callback (so
// failover of one partition never delays collection of the others), and the
// merge runs in the final continuation when the last partition arrives. No
// broker thread ever blocks on an in-flight query, so a 1-thread broker
// sustains arbitrarily many concurrent fan-outs.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "ctrl/replica_state.h"
#include "net/node.h"
#include "net/rpc.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "qos/deadline.h"
#include "search/searcher.h"
#include "search/types.h"

namespace jdvs {

class Broker {
 public:
  struct Config {
    std::size_t threads = 4;
    LatencyModel latency;
    std::uint64_t seed = 0;
    // Observability (null = process-global defaults).
    obs::Registry* registry = nullptr;
    obs::TraceSink* trace_sink = nullptr;

    // ---- Gray-failure defenses (all defaults = pre-fault-layer behavior) --
    // Per-attempt broker->searcher RPC timeout; 0 = none. With a fabric
    // that can drop messages this is what turns a silent hang into a typed
    // RpcTimeoutError the failover path can act on.
    Micros rpc_timeout_micros = 0;
    // Hedged requests: when a slot's primary attempt has not answered after
    // the hedge delay, dispatch the same work to the next serving replica
    // and let the first response win. Never past the query deadline.
    bool enable_hedging = false;
    // Fixed hedge delay; 0 = adaptive, multiplier x the best replica
    // latency EWMA among the slot's candidates ("if the fastest copy would
    // have answered by now, something is wrong"), floored at the min. With
    // no EWMA data yet the adaptive mode does not hedge at all — a cold
    // start must not spend the rate budget on slots that were never slow.
    Micros hedge_delay_micros = 0;
    double hedge_delay_multiplier = 3.0;
    Micros hedge_delay_min_micros = 500;
    // Cap on hedges as a fraction of primary dispatches (<= 0 = uncapped):
    // hedging trades bounded extra load for tail latency, and the cap is
    // the bound.
    double hedge_rate_cap = 0.1;
    // Order each slot's candidates by (state, latency EWMA) instead of pure
    // rotation, so a limping or SUSPECT replica stops being picked first.
    // Every 8th fan-out per partition keeps rotation order as exploration,
    // so a recovered replica's EWMA gets refreshed with primary traffic.
    bool latency_aware_selection = false;
  };

  // One broker's merged answer: the top-k across its partitions plus how
  // many partitions contributed nothing (every replica down) — the partial
  // coverage signal the blender turns into a degraded response.
  struct Reply {
    std::vector<SearchHit> hits;
    std::size_t partitions_failed = 0;
    // Diagnosis breakdown for the blender's flight record: the winning
    // attempt of the slowest-contributing slot (the scan that gated this
    // broker), the worst primary->hedge dispatch gap among hedge wins, and
    // the whole dispatch->merge wall at this broker.
    Micros slowest_attempt_micros = 0;
    Micros hedge_wait_micros = 0;
    Micros fanout_micros = 0;
    // Slowest per-searcher filter-bitmap materialization among this broker's
    // attempts (0 when the query carried no filter) — the blender's
    // "searcher_filter" flight stage.
    Micros filter_micros = 0;
    // Slowest per-searcher cold-list fault time among this broker's attempts
    // (0 on RAM-resident partitions) — the blender's "searcher_io" stage.
    Micros io_micros = 0;
    // Attempts under this broker that skipped quarantined (corrupt) tiered
    // lists: the answer is correct but drawn from fewer lists than asked
    // for, so the blender marks the response degraded.
    std::uint32_t tier_degraded = 0;
  };
  using SearchResult = AsyncResult<Reply>;
  using SearchCallback = std::function<void(SearchResult)>;

  Broker(std::string name, const Config& config);
  // Blocks until every outstanding attempt continuation (stragglers a hedge
  // or timeout already outraced) has landed or been discarded; only then is
  // it safe to free the broker a completed caller might otherwise still be
  // re-entered through.
  ~Broker();

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  // Registers one partition with its replica searchers. `state_slots`, when
  // given, maps each replica to its slot in the control plane's replica
  // state table (parallel to `replicas`); with a table wired via
  // SetReplicaStates the broker rotates across *serving* replicas and skips
  // ones the failure detector marked down, instead of discovering outages
  // one timed-out dispatch at a time.
  void AddPartition(std::vector<Searcher*> replicas,
                    std::vector<std::size_t> state_slots = {});

  // Wires the control plane's replica state table (null = query-time
  // failover only, the pre-control-plane behavior). Non-const: the broker
  // also *feeds* the table, recording every reply's response time into the
  // per-replica latency EWMA the failure detector ejects outliers by.
  void SetReplicaStates(ctrl::ReplicaStateTable* table) {
    replica_states_ = table;
  }

  // Remote entry point, continuation-passing: a broker pool thread runs the
  // fan-out dispatch (one searcher call per partition), and `on_done`
  // receives the merged top-k once the last partition lands — on whichever
  // searcher pool thread delivered it. A sampled `parent` context yields a
  // "broker.search" span covering dispatch through merge, with
  // failover/failure tags, plus one "searcher.scan" child per partition.
  //
  // The deadline is enforced at the tier boundaries: before the fan-out is
  // dispatched (an already-dead budget never reaches a searcher), inside
  // each searcher (queue time counts), and again before the merge. A
  // replica that failed *because the deadline expired* is never failed over
  // — retrying a timed-out call on a sibling only amplifies the overload.
  void SearchAsync(FeatureVector query, std::size_t k, std::size_t nprobe,
                   CategoryId category_filter, FilterExpression filter,
                   qos::Deadline deadline, obs::TraceContext parent,
                   SearchCallback on_done);

  // Future facade over the continuation path (tests / ablation harnesses).
  std::future<std::vector<SearchHit>> SearchAsync(
      FeatureVector query, std::size_t k, std::size_t nprobe = 0,
      CategoryId category_filter = kNoCategoryFilter,
      FilterExpression filter = {}, qos::Deadline deadline = {},
      obs::TraceContext parent = {});

  Node& node() { return node_; }
  const std::string& name() const { return node_.name(); }
  std::size_t num_partitions() const { return partitions_.size(); }

  // Number of replica failovers performed (availability metric).
  std::uint64_t failovers() const {
    return failovers_.load(std::memory_order_relaxed);
  }
  // Partitions that returned no result at all (all replicas down).
  std::uint64_t partition_failures() const {
    return partition_failures_.load(std::memory_order_relaxed);
  }
  // Replicas skipped at dispatch because the state table marked them
  // non-serving (outage avoided without burning a failed call).
  std::uint64_t state_skips() const {
    return state_skips_.load(std::memory_order_relaxed);
  }
  // Hedged dispatches issued / hedges whose reply won the slot / hedges
  // suppressed by the rate cap / per-attempt RPC timeouts observed.
  std::uint64_t hedges() const {
    return hedges_.load(std::memory_order_relaxed);
  }
  std::uint64_t hedge_wins() const {
    return hedge_wins_.load(std::memory_order_relaxed);
  }
  std::uint64_t hedges_capped() const {
    return hedges_capped_.load(std::memory_order_relaxed);
  }
  std::uint64_t rpc_timeouts() const {
    return rpc_timeouts_.load(std::memory_order_relaxed);
  }
  // Latency EWMA the broker holds for one replica (reads the state table
  // when wired, else broker-local), for tests and benches.
  Micros replica_latency_ewma(std::size_t partition,
                              std::size_t replica) const;
  // Fan-outs currently between dispatch and final merge, and the high-water
  // mark — the direct measure of pipeline concurrency the blocking design
  // capped at `threads`.
  std::size_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }
  std::size_t peak_in_flight() const {
    return peak_in_flight_.load(std::memory_order_relaxed);
  }

 private:
  // Per-request fan-out state, heap-owned and shared by the child
  // continuations; the span lives here so the trace covers the whole
  // thread-hopping dispatch -> merge window.
  struct FanOutState;
  struct Slot;

  void StartFanOut(std::shared_ptr<FanOutState> state);
  // Dispatches the slot's next untried candidate (primary, failover or
  // hedge — they all drain the same list). False when none remain.
  bool TryDispatchNext(const std::shared_ptr<FanOutState>& state,
                       std::size_t slot_idx, bool is_hedge);
  void OnAttemptResult(const std::shared_ptr<FanOutState>& state,
                       std::size_t slot_idx, std::size_t replica,
                       bool is_hedge, Micros dispatched_at,
                       Searcher::SearchResult result);
  // Hedge-timer continuation: re-dispatch the slot if it is still unanswered
  // and the deadline + rate cap allow it.
  void MaybeHedge(const std::shared_ptr<FanOutState>& state,
                  std::size_t slot_idx);
  void FinishFanOut(std::shared_ptr<FanOutState> state,
                    std::vector<Searcher::SearchResult> slots);
  Micros ComputeHedgeDelay(const FanOutState& state, std::size_t slot_idx);
  bool HedgeBudgetAllows() const;
  void RecordReplicaLatency(std::size_t partition, std::size_t replica,
                            Micros sample_micros);
  // Counted handle carried by every continuation that re-enters this broker
  // (attempt callbacks, hedge timers); the destructor drains the count.
  std::shared_ptr<void> AcquireCallbackToken();

  Node node_;
  Config config_;
  std::vector<std::vector<Searcher*>> partitions_;
  std::vector<std::vector<std::size_t>> partition_state_slots_;
  ctrl::ReplicaStateTable* replica_states_ = nullptr;
  // Per-partition replica rotation cursor (deque: atomics can't move).
  std::deque<std::atomic<std::size_t>> replica_cursors_;
  // Broker-local latency EWMAs, used when no state table is wired (deque of
  // deques: stable addresses for the atomics). [partition][replica].
  std::deque<std::deque<std::atomic<std::int64_t>>> local_latency_;
  obs::TraceSink* trace_sink_;
  Histogram* fanout_stage_;  // jdvs_stage_micros{stage="broker_fanout"}
  // Per-instance atomics back the getters; the registry counters mirror
  // them so one exposition dump reports every broker.
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> partition_failures_{0};
  std::atomic<std::uint64_t> state_skips_{0};
  std::atomic<std::uint64_t> hedges_{0};
  std::atomic<std::uint64_t> hedge_wins_{0};
  std::atomic<std::uint64_t> hedges_capped_{0};
  std::atomic<std::uint64_t> rpc_timeouts_{0};
  std::atomic<std::uint64_t> primary_dispatches_{0};
  std::atomic<std::size_t> in_flight_{0};
  std::atomic<std::size_t> peak_in_flight_{0};
  std::atomic<std::size_t> pending_callbacks_{0};
  obs::Counter* failovers_total_;
  obs::Counter* partition_failures_total_;
  obs::Counter* state_skips_total_;
  obs::Counter* hedges_total_;       // jdvs_broker_hedges_total
  obs::Counter* hedge_wins_total_;   // jdvs_broker_hedge_wins_total
  obs::Counter* rpc_timeouts_total_; // jdvs_broker_rpc_timeouts_total
  obs::Counter* deadline_exceeded_;  // jdvs_qos_deadline_exceeded_total{tier=broker}
};

}  // namespace jdvs

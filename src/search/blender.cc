#include "search/blender.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "net/timeout.h"

namespace jdvs {

Blender::Blender(std::string name, const Config& config,
                 const SyntheticEmbedder& embedder,
                 const CategoryDetector& detector, std::vector<Broker*> brokers)
    : config_(config),
      node_(std::move(name), config.threads, config.latency, config.seed),
      embedder_(embedder),
      detector_(detector),
      brokers_(std::move(brokers)),
      tracer_(config.tracer != nullptr ? config.tracer
                                       : &obs::Tracer::Default()),
      admission_(
          qos::AdmissionConfig{
              .max_in_flight = config.max_in_flight,
              .max_background_in_flight = config.max_background_in_flight,
              .tokens_per_sec = config.admission_tokens_per_sec,
              .token_burst = config.admission_token_burst,
          },
          MonotonicClock::Instance(), config.registry) {
  obs::Registry& registry =
      config_.registry != nullptr ? *config_.registry : obs::Registry::Default();
  queries_total_ = &registry.GetCounter(
      obs::Labeled("jdvs_blender_queries_total", "blender", node_.name()));
  shed_total_ = &registry.GetCounter(
      obs::Labeled("jdvs_blender_shed_total", "blender", node_.name()));
  degraded_total_ = &registry.GetCounter(
      obs::Labeled("jdvs_blender_degraded_total", "blender", node_.name()));
  deadline_exceeded_ = &registry.GetCounter(
      obs::Labeled("jdvs_qos_deadline_exceeded_total", "tier", "blender"));
  degraded_level_[0] = &registry.GetCounter(
      obs::Labeled("jdvs_qos_degraded_queries_total", "level", "1"));
  degraded_level_[1] = &registry.GetCounter(
      obs::Labeled("jdvs_qos_degraded_queries_total", "level", "2"));
  total_stage_ = &registry.GetHistogram(
      obs::Labeled("jdvs_stage_micros", "stage", "query_total"));
  // End-to-end latency carries exemplars: a p99 bucket links straight to a
  // concrete trace id / flight-record ordinal.
  total_stage_->EnableExemplars();
  extract_stage_ = &registry.GetHistogram(
      obs::Labeled("jdvs_stage_micros", "stage", "extract"));
  rank_stage_ = &registry.GetHistogram(
      obs::Labeled("jdvs_stage_micros", "stage", "rank"));
  if (config_.enable_result_cache) {
    cache_ = std::make_unique<QueryCache>(
        embedder_.dim(), config_.cache, MonotonicClock::Instance(),
        config_.registry, node_.name());
  }
}

Blender::~Blender() {
  // Quiesce the pool before member teardown: members declared after node_
  // (cache_, admission_, ...) are destroyed before node_'s destructor would
  // join the workers, so a straggler continuation still running on the pool
  // must be joined here first. Blenders are torn down before brokers and
  // searchers, so in-flight work can still complete downstream safely.
  node_.pool().Shutdown();
}

struct Blender::RequestState {
  RequestState(Blender* blender, SearchCallback done)
      : blender(blender),
        watch(MonotonicClock::Instance()),
        on_done(std::move(done)) {}

  // Backstop: if the chain is dropped (every continuation released without
  // fulfilling), the callback must still fire and the admission ticket must
  // still be released.
  ~RequestState() {
    Fail(std::make_exception_ptr(
        std::runtime_error("query pipeline dropped before completion")));
  }

  // Exactly one of Fulfill/Fail wins; both release the admission ticket
  // *before* delivering the outcome, so in_flight() reads 0 as soon as the
  // caller observes completion.
  void Fulfill(QueryResponse result) {
    if (fulfilled.exchange(true, std::memory_order_acq_rel)) return;
    ticket.Release();
    on_done(AsyncResult<QueryResponse>::Ok(std::move(result)));
  }
  void Fail(std::exception_ptr error) {
    if (fulfilled.exchange(true, std::memory_order_acq_rel)) return;
    ticket.Release();
    on_done(AsyncResult<QueryResponse>::Fail(std::move(error)));
  }

  Blender* blender;
  qos::AdmissionController::Ticket ticket;
  QueryOptions options;
  qos::Deadline deadline;
  Stopwatch watch;
  // Flight-recorder stage decomposition, filled in as the chain advances.
  // `submitted_micros` is stamped at SearchAsync so the queue-wait stage
  // covers admission + pool queue + hop (watch.Restart() excludes them
  // from the response time on purpose).
  Micros submitted_micros = 0;
  Micros fanout_dispatched_micros = 0;
  obs::FlightRecord flight;
  obs::Span root;  // owned here so the trace spans every thread hop
  QueryResponse response;
  CategoryId category_filter = kNoCategoryFilter;
  std::size_t fetch_k = 0;
  bool skip_rerank = false;  // degradation level >= 2
  std::uint64_t cache_key = 0;
  std::uint64_t version = 0;
  SearchCallback on_done;
  std::atomic<bool> fulfilled{false};
};

QueryResponse Blender::Search(const QueryImage& query,
                              const QueryOptions& options) {
  return SearchAsync(query, options).get();
}

std::future<QueryResponse> Blender::SearchAsync(const QueryImage& query,
                                                const QueryOptions& options) {
  // Future facade over the continuation path; only the blocking Search()
  // facade ever waits on it.
  auto promise = std::make_shared<std::promise<QueryResponse>>();
  std::future<QueryResponse> future = promise->get_future();
  SearchAsync(query, options,
              [promise](AsyncResult<QueryResponse> result) {
                if (result.ok()) {
                  promise->set_value(*std::move(result.value));
                } else {
                  promise->set_exception(result.error);
                }
              });
  return future;
}

qos::Deadline Blender::ResolveDeadline(const QueryOptions& options) const {
  Micros budget = options.budget_micros;
  if (budget == QueryOptions::kNoBudget) {
    if (config_.default_budget_micros <= 0) return qos::Deadline();  // unlimited
    budget = config_.default_budget_micros;
  }
  if (budget < 0) return qos::Deadline();
  return qos::Deadline::FromBudget(MonotonicClock::Instance(), budget);
}

void Blender::SearchAsync(const QueryImage& query, const QueryOptions& options,
                          SearchCallback on_done) {
  // Deadline check before admission: a query with no time left is shed
  // immediately — no pool submission, no admission token burned.
  const qos::Deadline deadline = ResolveDeadline(options);
  if (deadline.Expired(MonotonicClock::Instance())) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    shed_total_->Increment();
    deadline_exceeded_->Increment();
    on_done(AsyncResult<QueryResponse>::Fail(
        std::make_exception_ptr(qos::DeadlineExceededError(node_.name()))));
    return;
  }
  // Admission control: the query counts against the in-flight budget at
  // submission, so queued work counts too; shed when the budget (or the
  // background share, or the token bucket) is exhausted. The front end
  // treats an overloaded blender like a failed one and retries elsewhere.
  std::optional<qos::AdmissionController::Ticket> ticket =
      admission_.TryAdmit(options.priority);
  if (!ticket) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    shed_total_->Increment();
    on_done(AsyncResult<QueryResponse>::Fail(
        std::make_exception_ptr(BlenderOverloadedError(node_.name()))));
    return;
  }
  auto state = std::make_shared<RequestState>(this, std::move(on_done));
  state->ticket = *std::move(ticket);
  state->options = options;
  state->deadline = deadline;
  state->submitted_micros = MonotonicClock::Instance().NowMicros();
  state->flight.start_micros = state->submitted_micros;
  node_.InvokeAsync(
      [this, state, query] { BeginQuery(state, query); },
      [state](AsyncResult<void> begun) {
        // An exception here means the chain never started (NodeFailedError
        // while this blender is down, or a pre-dispatch stage threw after
        // BeginQuery rethrew); the admission ticket is released by Fail.
        if (!begun.ok()) state->Fail(begun.error);
      });
}

// Inline stages on a blender pool thread: trace root, extract, cache
// lookup, then the broker fan-out dispatch. Returns as soon as the last
// broker call is dispatched; everything downstream is continuations.
void Blender::BeginQuery(const std::shared_ptr<RequestState>& state,
                         const QueryImage& query) {
  state->watch.Restart();  // response time excludes queue/hop, as before
  state->flight.set_stage(
      obs::FlightStage::kQueueWait,
      MonotonicClock::Instance().NowMicros() - state->submitted_micros);
  // Sampled 1-in-N by the tracer; an unsampled root makes every child span
  // below (extract, broker fan-out, searcher scans, rank) a no-op.
  state->root = tracer_->StartTrace("query", node_.name());
  obs::Span& root = state->root;
  root.AddTag("k", static_cast<std::uint64_t>(state->options.k));
  if (state->options.nprobe > 0) {
    root.AddTag("nprobe", static_cast<std::uint64_t>(state->options.nprobe));
  }
  if (!state->deadline.unlimited()) {
    root.AddTag("deadline_at",
                static_cast<std::uint64_t>(state->deadline.at_micros()));
  }
  if (state->options.priority == qos::Priority::kBackground) {
    root.AddTag("priority", "background");
  }
  state->response.trace_id = root.context().trace_id;

  // 1. Detect the item and identify its category (Section 2.4).
  // 2. Extract the query photo's high-dimensional features, charging the
  //    simulated CNN cost.
  FeatureVector feature;
  {
    obs::Span extract = root.StartChild("extract", node_.name());
    const Stopwatch extract_watch(MonotonicClock::Instance());
    state->response.detected_category =
        detector_.Detect(query.true_category, query.query_seed);
    if (config_.query_extraction_micros > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(config_.query_extraction_micros));
    }
    feature = embedder_.ExtractQuery(query.subject_product,
                                     query.true_category, query.query_seed);
    const Micros extract_micros = extract_watch.ElapsedMicros();
    extract_stage_->Record(extract_micros);
    state->flight.set_stage(obs::FlightStage::kExtract, extract_micros);
  }

  // Extraction (plus the queue time before it) may have eaten the whole
  // budget: give up before the expensive fan-out.
  if (state->deadline.Expired(MonotonicClock::Instance())) {
    deadline_exceeded_->Increment();
    root.AddTag("deadline_exceeded", std::uint64_t{1});
    root.SetError("deadline exceeded");
    root.Finish();
    RecordFlight(*state, state->watch.ElapsedMicros(), /*error=*/true,
                 /*cache_hit=*/false);
    state->Fail(
        std::make_exception_ptr(qos::DeadlineExceededError(node_.name())));
    return;
  }

  // The category scan filter comes from explicit query options first, then
  // the detector when configured to narrow the search (Section 2.4).
  state->category_filter = state->options.category_filter;
  if (state->category_filter == kNoCategoryFilter &&
      config_.use_category_filter) {
    state->category_filter = state->response.detected_category;
  }
  if (state->category_filter != kNoCategoryFilter) {
    root.AddTag("category",
                static_cast<std::uint64_t>(state->category_filter));
  }

  // 2b. Result cache (when enabled): near-duplicate query photos of a hot
  //     product hit the same locality-sensitive key, skipping the fan-out.
  //     Only full-effort responses are ever inserted, so a hit under
  //     overload returns a full answer for free.
  state->version =
      config_.index_version == nullptr
          ? 0
          : config_.index_version->load(std::memory_order_relaxed);
  if (cache_) {
    state->cache_key = cache_->KeyFor(feature, state->options.k,
                                      state->options.nprobe,
                                      state->category_filter,
                                      state->options.filter);
    if (auto cached = cache_->Lookup(state->cache_key, state->version)) {
      cached->from_cache = true;
      cached->total_micros = state->watch.ElapsedMicros();
      cached->trace_id = state->response.trace_id;
      queries_.fetch_add(1, std::memory_order_relaxed);
      queries_total_->Increment();
      const std::uint64_t flight_ordinal = RecordFlight(
          *state, cached->total_micros, /*error=*/false, /*cache_hit=*/true);
      total_stage_->RecordWithExemplar(cached->total_micros,
                                       cached->trace_id, flight_ordinal);
      root.AddTag("cache", "hit");
      root.Finish();
      if (config_.slow_log != nullptr && cached->trace_id != 0) {
        config_.slow_log->Offer(cached->trace_id, cached->total_micros);
      }
      state->Fulfill(*std::move(cached));
      return;
    }
  }

  // 2c. Adaptive degradation: consult the shared load controller and trade
  //     recall for latency while the cluster is hot. Level 1 shrinks nprobe
  //     (each searcher scans fewer inverted lists); level 2 additionally
  //     skips attribute re-ranking and the over-fetch that feeds it.
  std::size_t effective_nprobe = state->options.nprobe;
  int level = config_.load_controller != nullptr
                  ? config_.load_controller->level()
                  : 0;
  level = std::min(level, 2);
  state->response.degradation_level = level;
  if (level >= 1) {
    effective_nprobe =
        config_.degraded_nprobe > 0 ? config_.degraded_nprobe : 1;
    state->skip_rerank = level >= 2;
    degraded_level_[level - 1]->Increment();
    root.AddTag("degradation_level", static_cast<std::uint64_t>(level));
  }

  // 3. "sends them to all the brokers" — parallel fan-out. Fetch more than k
  //    from below so attribute re-ranking has candidates to work with
  //    (unless re-ranking is degraded away). The last broker completion
  //    re-posts the merge/rank leg to this blender's pool (local
  //    continuation, not a network hop).
  state->fetch_k = state->skip_rerank ? state->options.k : state->options.k * 2;
  state->response.brokers_asked = brokers_.size();
  state->fanout_dispatched_micros = MonotonicClock::Instance().NowMicros();
  auto collector = FanInCollector<Broker::Reply>::Create(
      brokers_.size(),
      [this, state](std::vector<AsyncResult<Broker::Reply>> slots) {
        auto pending =
            std::make_shared<std::vector<AsyncResult<Broker::Reply>>>(
                std::move(slots));
        auto finish = [this, state, pending] {
          FinishQuery(state, std::move(*pending));
        };
        if (!node_.pool().Submit(finish)) finish();
      });
  for (std::size_t b = 0; b < brokers_.size(); ++b) {
    // First-completion-wins guard per broker slot: the real reply and the
    // (optional) RPC timeout race, whichever arrives first feeds the
    // collector and the loser is suppressed — a FanInCollector slot must
    // complete exactly once.
    auto guard = std::make_shared<OnceCallback<Broker::Reply>>(
        [collector, b](Broker::SearchResult result) {
          collector->Complete(b, std::move(result));
        });
    if (config_.broker_rpc_timeout_micros > 0) {
      const TimeoutScheduler::TimerId id = TimeoutScheduler::Default().Schedule(
          config_.broker_rpc_timeout_micros,
          [guard, callee = brokers_[b]->name(),
           timeout = config_.broker_rpc_timeout_micros] {
            guard->Deliver(Broker::SearchResult::Fail(
                std::make_exception_ptr(RpcTimeoutError(callee, timeout))));
          });
      guard->timer_id.store(id, std::memory_order_release);
    }
    brokers_[b]->SearchAsync(
        feature, state->fetch_k, effective_nprobe, state->category_filter,
        state->options.filter, state->deadline, root.context(),
        [guard](Broker::SearchResult result) {
          DeliverAndCancelTimer(*guard, std::move(result));
        });
  }
}

// End of the chain, back on a blender pool thread: global merge, attribute
// ranking, cache fill, span finish, callback delivery.
void Blender::FinishQuery(const std::shared_ptr<RequestState>& state,
                          std::vector<AsyncResult<Broker::Reply>> slots) {
  // The fan-out wall closes here (last broker completion + the re-post to
  // this pool); its scan/hedge/fan-in decomposition comes from the replies.
  const Micros fanout_wall = MonotonicClock::Instance().NowMicros() -
                             state->fanout_dispatched_micros;
  state->flight.set_stage(obs::FlightStage::kFanOut, fanout_wall);
  Micros scan_micros = 0;
  Micros hedge_wait_micros = 0;
  Micros filter_micros = 0;
  Micros io_micros = 0;
  for (const auto& slot : slots) {
    if (!slot.ok()) continue;
    scan_micros = std::max(scan_micros, slot.value->slowest_attempt_micros);
    hedge_wait_micros =
        std::max(hedge_wait_micros, slot.value->hedge_wait_micros);
    filter_micros = std::max(filter_micros, slot.value->filter_micros);
    io_micros = std::max(io_micros, slot.value->io_micros);
  }
  // The filter-bitmap materialization and any tiered cold-list faults both
  // happened *inside* the winning scan attempts; carve them out of kScan so
  // the stages stay disjoint (kFilter + kIo + kScan = slowest attempt) and
  // the critical-path table attributes each overhead to its own row.
  filter_micros = std::min(filter_micros, scan_micros);
  io_micros = std::min(io_micros, scan_micros - filter_micros);
  state->flight.set_stage(obs::FlightStage::kFilter, filter_micros);
  state->flight.set_stage(obs::FlightStage::kIo, io_micros);
  state->flight.set_stage(obs::FlightStage::kScan,
                          scan_micros - filter_micros - io_micros);
  state->flight.set_stage(obs::FlightStage::kHedgeWait, hedge_wait_micros);
  state->flight.set_stage(obs::FlightStage::kFanIn,
                          fanout_wall - scan_micros - hedge_wait_micros);
  // The budget died somewhere below (broker queues, searcher scans, or the
  // hops between): the answer is late by definition, so fail it typed
  // instead of merging partial results nobody will wait for. Completions
  // still feed the load controller — a deadline death is the strongest
  // overload signal there is.
  if (state->deadline.Expired(MonotonicClock::Instance())) {
    const Micros elapsed = state->watch.ElapsedMicros();
    deadline_exceeded_->Increment();
    state->root.AddTag("deadline_exceeded", std::uint64_t{1});
    state->root.SetError("deadline exceeded");
    state->root.Finish();
    RecordFlight(*state, elapsed, /*error=*/true, /*cache_hit=*/false);
    if (config_.load_controller != nullptr) {
      config_.load_controller->Observe(elapsed, admission_.total_in_flight());
    }
    state->Fail(
        std::make_exception_ptr(qos::DeadlineExceededError(node_.name())));
    return;
  }
  std::size_t failures = 0;
  std::size_t partitions_failed = 0;
  std::size_t tier_degraded = 0;
  std::string first_error;
  std::vector<std::vector<SearchHit>> partials;
  partials.reserve(slots.size());
  for (auto& slot : slots) {
    if (slot.ok()) {
      partitions_failed += slot.value->partitions_failed;
      tier_degraded += slot.value->tier_degraded;
      partials.push_back(std::move(slot.value->hits));
    } else {
      ++failures;
      if (first_error.empty()) first_error = DescribeException(slot.error);
    }
  }
  state->response.broker_failures = failures;
  if (tier_degraded > 0) {
    // Integrity degradation: some searcher skipped quarantined (corrupt)
    // tiered lists. Every returned hit is correct — the response is just
    // drawn from fewer lists than requested, so flag it like any other
    // partial-coverage answer.
    state->response.degraded = true;
    degraded_total_->Increment();
    state->root.AddTag("tier_degraded",
                       static_cast<std::uint64_t>(tier_degraded));
  }
  if (failures > 0 || partitions_failed > 0) {
    // Graceful degradation: answer from whatever coverage survived — a dead
    // broker or an unreachable partition behind a live broker — rather than
    // failing the query (availability over completeness).
    if (!state->response.degraded) degraded_total_->Increment();
    state->response.degraded = true;
    if (failures > 0) {
      state->root.AddTag("broker_failures",
                         static_cast<std::uint64_t>(failures));
      state->root.SetError(std::move(first_error));
    }
    if (partitions_failed > 0) {
      state->root.AddTag("partitions_failed",
                         static_cast<std::uint64_t>(partitions_failed));
    }
  }

  // 4. "combines and ranks the results": merge by distance, then rank by
  //    similarity + sales/praise/price attributes — unless ranking was
  //    degraded away (level 2), in which case distance order stands.
  {
    obs::Span rank = state->root.StartChild("rank", node_.name());
    const Stopwatch rank_watch(MonotonicClock::Instance());
    std::vector<SearchHit> merged =
        MergeHits(std::move(partials), state->fetch_k);
    if (state->skip_rerank) {
      rank.AddTag("skipped", std::uint64_t{1});
      state->response.results.reserve(
          std::min(merged.size(), state->options.k));
      for (std::size_t i = 0;
           i < merged.size() && i < state->options.k; ++i) {
        // Score = negated distance so larger-is-better still holds.
        state->response.results.push_back(
            RankedResult{merged[i], -merged[i].distance});
      }
    } else {
      state->response.results =
          RankResults(std::move(merged), state->response.detected_category,
                      config_.ranking, state->options.k);
    }
    const Micros rank_micros = rank_watch.ElapsedMicros();
    rank_stage_->Record(rank_micros);
    state->flight.set_stage(obs::FlightStage::kRank, rank_micros);
  }
  state->response.total_micros = state->watch.ElapsedMicros();
  if (cache_) {
    // Insert() itself refuses degraded/partial responses, so an overloaded
    // window can never poison the cache with low-effort answers.
    cache_->Insert(state->cache_key, state->version, state->response);
  }
  queries_.fetch_add(1, std::memory_order_relaxed);
  queries_total_->Increment();
  const std::uint64_t flight_ordinal =
      RecordFlight(*state, state->response.total_micros, /*error=*/false,
                   /*cache_hit=*/false);
  total_stage_->RecordWithExemplar(state->response.total_micros,
                                   state->response.trace_id, flight_ordinal);
  if (config_.load_controller != nullptr) {
    config_.load_controller->Observe(state->response.total_micros,
                                     admission_.total_in_flight());
  }
  // Finish before offering: the slow log renders the complete span tree.
  state->root.Finish();
  if (config_.slow_log != nullptr && state->response.trace_id != 0) {
    config_.slow_log->Offer(state->response.trace_id,
                            state->response.total_micros);
  }
  if (config_.critical_paths != nullptr && state->response.trace_id != 0) {
    // Sampled query: fold its critical path into the per-stage histograms
    // (the spans are complete now that the root finished).
    config_.critical_paths->Observe(state->response.trace_id);
  }
  state->Fulfill(std::move(state->response));
}

std::uint64_t Blender::RecordFlight(RequestState& state, Micros total_micros,
                                    bool error, bool cache_hit) {
  if (config_.flight_recorder == nullptr) return 0;
  state.flight.trace_id = state.response.trace_id;
  state.flight.total_micros = total_micros;
  state.flight.degradation_level =
      static_cast<std::int8_t>(state.response.degradation_level);
  state.flight.degraded = state.response.degraded;
  state.flight.cache_hit = cache_hit;
  state.flight.error = error;
  return config_.flight_recorder->Record(state.flight);
}

}  // namespace jdvs

#include "search/blender.h"

#include <chrono>
#include <thread>

#include "net/rpc.h"

namespace jdvs {

Blender::Blender(std::string name, const Config& config,
                 const SyntheticEmbedder& embedder,
                 const CategoryDetector& detector, std::vector<Broker*> brokers)
    : config_(config),
      node_(std::move(name), config.threads, config.latency, config.seed),
      embedder_(embedder),
      detector_(detector),
      brokers_(std::move(brokers)),
      tracer_(config.tracer != nullptr ? config.tracer
                                       : &obs::Tracer::Default()) {
  obs::Registry& registry =
      config_.registry != nullptr ? *config_.registry : obs::Registry::Default();
  queries_total_ = &registry.GetCounter(
      obs::Labeled("jdvs_blender_queries_total", "blender", node_.name()));
  shed_total_ = &registry.GetCounter(
      obs::Labeled("jdvs_blender_shed_total", "blender", node_.name()));
  total_stage_ = &registry.GetHistogram(
      obs::Labeled("jdvs_stage_micros", "stage", "query_total"));
  extract_stage_ = &registry.GetHistogram(
      obs::Labeled("jdvs_stage_micros", "stage", "extract"));
  rank_stage_ = &registry.GetHistogram(
      obs::Labeled("jdvs_stage_micros", "stage", "rank"));
  if (config_.enable_result_cache) {
    cache_ = std::make_unique<QueryCache>(
        embedder_.dim(), config_.cache, MonotonicClock::Instance(),
        config_.registry, node_.name());
  }
}

QueryResponse Blender::Search(const QueryImage& query,
                              const QueryOptions& options) {
  return SearchAsync(query, options).get();
}

std::future<QueryResponse> Blender::SearchAsync(const QueryImage& query,
                                                const QueryOptions& options) {
  // Admission control: count the query against the in-flight budget at
  // submission so queued work counts too; shed if the budget is exhausted.
  if (config_.max_in_flight > 0) {
    const std::size_t current =
        in_flight_.fetch_add(1, std::memory_order_acq_rel);
    if (current >= config_.max_in_flight) {
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      shed_.fetch_add(1, std::memory_order_relaxed);
      shed_total_->Increment();
      std::promise<QueryResponse> rejected;
      rejected.set_exception(std::make_exception_ptr(
          BlenderOverloadedError(node_.name())));
      return rejected.get_future();
    }
  } else {
    in_flight_.fetch_add(1, std::memory_order_acq_rel);
  }
  return node_.Invoke([this, query, options] {
    struct InFlightGuard {
      std::atomic<std::size_t>* gauge;
      ~InFlightGuard() { gauge->fetch_sub(1, std::memory_order_acq_rel); }
    } guard{&in_flight_};
    return Execute(query, options);
  });
}

QueryResponse Blender::Execute(const QueryImage& query,
                               const QueryOptions& options) {
  const Stopwatch watch(MonotonicClock::Instance());
  // Sampled 1-in-N by the tracer; an unsampled root makes every child span
  // below (extract, broker fan-out, searcher scans, rank) a no-op.
  obs::Span root = tracer_->StartTrace("query", node_.name());
  root.AddTag("k", static_cast<std::uint64_t>(options.k));
  if (options.nprobe > 0) {
    root.AddTag("nprobe", static_cast<std::uint64_t>(options.nprobe));
  }
  QueryResponse response;
  response.trace_id = root.context().trace_id;

  // 1. Detect the item and identify its category (Section 2.4).
  // 2. Extract the query photo's high-dimensional features, charging the
  //    simulated CNN cost.
  FeatureVector feature;
  {
    obs::Span extract = root.StartChild("extract", node_.name());
    const Stopwatch extract_watch(MonotonicClock::Instance());
    response.detected_category =
        detector_.Detect(query.true_category, query.query_seed);
    if (config_.query_extraction_micros > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(config_.query_extraction_micros));
    }
    feature = embedder_.ExtractQuery(query.subject_product,
                                     query.true_category, query.query_seed);
    extract_stage_->Record(extract_watch.ElapsedMicros());
  }

  // The category scan filter comes from explicit query options first, then
  // the detector when configured to narrow the search (Section 2.4).
  CategoryId category_filter = options.category_filter;
  if (category_filter == kNoCategoryFilter && config_.use_category_filter) {
    category_filter = response.detected_category;
  }
  if (category_filter != kNoCategoryFilter) {
    root.AddTag("category", static_cast<std::uint64_t>(category_filter));
  }

  // 2b. Result cache (when enabled): near-duplicate query photos of a hot
  //     product hit the same locality-sensitive key, skipping the fan-out.
  const std::uint64_t version =
      config_.index_version == nullptr
          ? 0
          : config_.index_version->load(std::memory_order_relaxed);
  std::uint64_t cache_key = 0;
  if (cache_) {
    cache_key =
        cache_->KeyFor(feature, options.k, options.nprobe, category_filter);
    if (auto cached = cache_->Lookup(cache_key, version)) {
      cached->from_cache = true;
      cached->total_micros = watch.ElapsedMicros();
      cached->trace_id = response.trace_id;
      queries_.fetch_add(1, std::memory_order_relaxed);
      queries_total_->Increment();
      total_stage_->Record(cached->total_micros);
      root.AddTag("cache", "hit");
      root.Finish();
      if (config_.slow_log != nullptr && response.trace_id != 0) {
        config_.slow_log->Offer(response.trace_id, cached->total_micros);
      }
      return *std::move(cached);
    }
  }

  // 3. "sends them to all the brokers" — parallel fan-out. Fetch more than k
  //    from below so attribute re-ranking has candidates to work with.
  const std::size_t fetch_k = options.k * 2;
  std::vector<std::future<std::vector<SearchHit>>> futures;
  futures.reserve(brokers_.size());
  for (Broker* broker : brokers_) {
    futures.push_back(broker->SearchAsync(feature, fetch_k, options.nprobe,
                                          category_filter, root.context()));
  }
  response.brokers_asked = futures.size();
  std::size_t failures = 0;
  std::string first_error;
  std::vector<std::vector<SearchHit>> partials =
      CollectPartial(futures, &failures, &first_error);
  response.broker_failures = failures;
  if (failures > 0) {
    root.AddTag("broker_failures", static_cast<std::uint64_t>(failures));
    root.SetError(std::move(first_error));
  }

  // 4. "combines and ranks the results": merge by distance, then rank by
  //    similarity + sales/praise/price attributes.
  {
    obs::Span rank = root.StartChild("rank", node_.name());
    const Stopwatch rank_watch(MonotonicClock::Instance());
    std::vector<SearchHit> merged = MergeHits(std::move(partials), fetch_k);
    response.results = RankResults(std::move(merged),
                                   response.detected_category, config_.ranking,
                                   options.k);
    rank_stage_->Record(rank_watch.ElapsedMicros());
  }
  response.total_micros = watch.ElapsedMicros();
  if (cache_) cache_->Insert(cache_key, version, response);
  queries_.fetch_add(1, std::memory_order_relaxed);
  queries_total_->Increment();
  total_stage_->Record(response.total_micros);
  // Finish before offering: the slow log renders the complete span tree.
  root.Finish();
  if (config_.slow_log != nullptr && response.trace_id != 0) {
    config_.slow_log->Offer(response.trace_id, response.total_micros);
  }
  return response;
}

}  // namespace jdvs

// Searcher: one node of the bottom tier of Figure 10.
//
// "There is a searcher for each index data partition. A searcher is
// responsible for searching and updating the corresponding index partition"
// and "is also responsible for processing messages from the message queue
// and performs real time indexing" (Section 2.4).
//
// Threading: searches execute on the searcher's node pool (many readers);
// all index mutations — the message-queue consumer loop, directly injected
// updates, and full-index installs — serialize on an internal writer mutex,
// preserving the single-writer contract of IvfIndex. Searches never take
// that mutex: they grab the current index through an atomic shared_ptr, so
// a full-index install swaps the whole partition under live traffic.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "index/ivf_index.h"
#include "index/realtime_indexer.h"
#include "mq/message_log.h"
#include "mq/topic_queue.h"
#include "net/node.h"
#include "net/rpc.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "qos/deadline.h"
#include "store/feature_db.h"
#include "tier/scrubber.h"

namespace jdvs {

class FaultInjector;

class Searcher {
 public:
  struct Config {
    std::size_t threads = 2;
    LatencyModel latency;
    std::uint64_t seed = 0;
    // In-searcher micro-batching: queries admitted while another scan is in
    // flight are grouped (up to `max_batch_queries`, waiting at most
    // `batch_window_micros`) and answered through IvfIndex::SearchBatch, so
    // coarse probing is one centroid sweep and shared lists are scanned
    // back-to-back. A query arriving on an idle searcher never waits, and a
    // query whose deadline budget is tighter than twice the window runs solo
    // — batching never spends latency a deadline cannot afford. Set
    // `max_batch_queries` < 2 to disable.
    std::size_t max_batch_queries = 4;
    Micros batch_window_micros = 200;
    // Observability (null = process-global defaults). The registry receives
    // the per-searcher scan histogram, message counter and real-time update
    // counter; the sink receives "searcher.scan" / "rt.apply" spans of
    // sampled traces.
    obs::Registry* registry = nullptr;
    obs::TraceSink* trace_sink = nullptr;
    // Deterministic storage-fault injection handed through to any tiered
    // store this searcher installs (chaos bench / disk-fault tests).
    FaultInjector* fault_injector = nullptr;
  };

  Searcher(std::string name, const Config& config, FeatureDb& features,
           PartitionFilter filter);
  ~Searcher();

  Searcher(const Searcher&) = delete;
  Searcher& operator=(const Searcher&) = delete;

  // Installs a (typically freshly full-built) index, atomically replacing
  // the current one under live searches. Retired real-time stats are folded
  // into the searcher totals. The two-argument form also resets the update
  // high-water mark to `update_hwm` (the last update sequence folded into
  // the new index); the one-argument form preserves the current mark.
  void InstallIndex(std::unique_ptr<IvfIndex> index);
  void InstallIndex(std::unique_ptr<IvfIndex> index, std::uint64_t update_hwm);

  bool HasIndex() const { return index_.load(std::memory_order_acquire) != nullptr; }

  // Persists the current index to a snapshot file (the weekly full-index
  // distribution artifact), stamping this searcher's update high-water mark
  // into the header. Serializes against writers so the snapshot plus mark
  // are a consistent point-in-time image.
  void SaveIndexSnapshot(const std::string& path) const;

  // Loads a snapshot and installs it as the current index (how a searcher
  // receives a freshly distributed full index without rebuilding locally).
  // Adopts the snapshot's high-water mark, so a subsequent CatchUpFromLog
  // replays exactly the missing suffix.
  void InstallFromSnapshot(const std::string& path);

  // Tiered twins of the save/install pair. SaveTieredSnapshot writes the
  // current index in the v4/v5 mmap layout (checksummed directory);
  // InstallFromTieredSnapshot maps `path` and serves the partition through a
  // TieredListStore sized to `resident_budget_bytes`, wiring in this
  // searcher's registry and (when configured) fault injector. The mapping
  // holds a shared flock on `path` for the index's lifetime, so the file
  // must stay put until the next install swaps it out.
  void SaveTieredSnapshot(const std::string& path) const;
  void InstallFromTieredSnapshot(const std::string& path,
                                 std::size_t resident_budget_bytes);

  // Currently quarantined payload lists of the installed tiered index
  // (0 when heap-resident / no index): the control plane's disk-health
  // signal — past a threshold the controller re-installs this replica's
  // snapshot from a healthy peer.
  std::uint64_t tier_quarantined_lists() const;

  // Background integrity scrub over the installed tiered store (no-op
  // slices while the index is heap-resident). The provider re-resolves the
  // store every slice, so controller repairs that swap the index are safe.
  void StartTierScrub(const TierScrubConfig& config);
  void StopTierScrub();
  const TierScrubber* tier_scrubber() const { return scrubber_.get(); }

  // Bench/chaos hook: drop the tiered store's residency + verification
  // state, as if the page cache went cold — corruption written to the file
  // at rest is only observable through a re-fault.
  void DropTierResidency();

  // Simulated hard failure: flips the node's fail switch, stops the
  // consumer and discards the in-memory index and high-water mark — the
  // state a freshly restarted process would be in. Recovery is
  // InstallFromSnapshot + CatchUpFromLog + StartConsuming, driven by the
  // control plane.
  void Crash();

  // Replays the day log's suffix past the current high-water mark (already
  // applied messages are skipped by sequence). Returns the number of
  // messages replayed. The recovery catch-up step: bring a snapshot-restored
  // index up to date with everything published while the replica was down.
  // When `pacer` is set it is invoked every few dozen messages so the caller
  // can yield to foreground traffic (QoS: recovery is background work).
  using CatchUpPacer = std::function<void()>;
  std::size_t CatchUpFromLog(const MessageLog& log,
                             const CatchUpPacer& pacer = {});

  // Remote search: runs on this searcher's node. Returns "the top k most
  // similar images" of this partition, optionally scoped to one category
  // and/or a structured attribute filter (hybrid search: the filter is
  // pushed down into the index scan). When `parent` is a sampled trace
  // context, the scan records a "searcher.scan" child span.
  std::future<std::vector<SearchHit>> SearchAsync(
      FeatureVector query, std::size_t k, std::size_t nprobe = 0,
      CategoryId category_filter = kNoCategoryFilter,
      FilterExpression filter = {}, qos::Deadline deadline = {},
      obs::TraceContext parent = {});

  // Continuation-passing variant the broker drives: the partial result (or
  // the failure, e.g. NodeFailedError while this node is down) is delivered
  // to `on_done` on this searcher's pool thread. The caller's thread only
  // dispatches — it never blocks on the scan. The deadline is re-checked on
  // this searcher's pool thread before the scan runs: work still queued when
  // the budget dies fails fast with DeadlineExceededError instead of
  // scanning for a caller that already gave up.
  //
  // `rpc_timeout_micros` (> 0) bounds this one call at the RPC layer: if no
  // reply lands in time — the fabric dropped a message, or the scan is stuck
  // behind a backlog — `on_done` fires with RpcTimeoutError instead of
  // never. A late real reply is then suppressed, not double-delivered.
  // `filter_micros_out`, when non-null, receives (via atomic max, so
  // concurrent hedged attempts fold) the cost of materializing the filter
  // bitmap — the broker forwards it so the blender can attribute a
  // "searcher_filter" stage in the flight record. The pointee must outlive
  // the callback (the broker owns it in its per-request fan-out state).
  // `io_micros_out` is the tiered-serving twin: the cold-list fault time of
  // this scan (0 when the partition is RAM-resident), max-folded the same
  // way into the blender's "searcher_io" stage. `tier_degraded_out`, when
  // non-null, is incremented iff this scan skipped quarantined lists — the
  // integrity rung of the degradation ladder; the broker folds it into the
  // reply so the blender marks the response degraded (results are correct
  // but drawn from fewer lists than requested).
  using SearchResult = AsyncResult<std::vector<SearchHit>>;
  using SearchCallback = std::function<void(SearchResult)>;
  void SearchAsync(FeatureVector query, std::size_t k, std::size_t nprobe,
                   CategoryId category_filter, FilterExpression filter,
                   qos::Deadline deadline, obs::TraceContext parent,
                   SearchCallback on_done, Micros rpc_timeout_micros = 0,
                   std::atomic<Micros>* filter_micros_out = nullptr,
                   std::atomic<Micros>* io_micros_out = nullptr,
                   std::atomic<std::uint32_t>* tier_degraded_out = nullptr);

  // In-process search (tests / exhaustive ground truth), bypassing the node.
  std::vector<SearchHit> SearchLocal(
      FeatureView query, std::size_t k, std::size_t nprobe = 0,
      CategoryId category_filter = kNoCategoryFilter,
      const FilterExpression& filter = {},
      FilterScanStats* stats = nullptr) const;
  std::vector<SearchHit> SearchExhaustiveLocal(FeatureView query,
                                               std::size_t k) const;
  // Brute-force filtered ground truth over this partition.
  std::vector<SearchHit> SearchExhaustiveLocal(
      FeatureView query, std::size_t k, const FilterExpression& filter) const;

  // Starts the message-queue consumer loop on a dedicated thread.
  void StartConsuming(std::shared_ptr<Subscription> subscription);
  // Stops the consumer (closes the subscription and joins the thread).
  void StopConsuming();

  // Applies one update synchronously (benches drive the update path without
  // a queue). Thread-safe against other writers. Returns false when the
  // message was skipped — either no index is installed yet, or its sequence
  // is at or below the high-water mark (a duplicate of an already-applied
  // update, e.g. buffered by a fresh subscription during catch-up replay).
  bool ApplyUpdate(const ProductUpdateMessage& message);

  // Writer housekeeping: finish any pending inverted-list expansions.
  void FinishPendingExpansions();

  // Notification hook fired (outside all locks) after every consumed
  // message, from both the consumer loop and catch-up replay — so a drain
  // waiter can park on a condition variable instead of sleep-polling
  // messages_consumed(). Set once during cluster wiring, before the first
  // StartConsuming; may be empty.
  using ProgressListener = std::function<void()>;
  void SetProgressListener(ProgressListener listener) {
    progress_listener_ = std::move(listener);
  }

  Node& node() { return node_; }
  const std::string& name() const { return node_.name(); }
  const PartitionFilter& partition_filter() const { return filter_; }

  // Cumulative real-time indexing stats (including retired indexes).
  RealTimeIndexerCounters update_counters() const;
  // Snapshot of cumulative update latency.
  void MergeUpdateLatencyInto(Histogram& out) const;
  IvfIndexStats index_stats() const;
  // statusz "tier" section body for this partition: residency-cache state of
  // the installed index's TieredListStore; writes nothing when the index is
  // RAM-resident (or not installed).
  void RenderTierStatus(std::ostream& os) const;
  std::uint64_t messages_consumed() const {
    return messages_consumed_.load(std::memory_order_relaxed);
  }
  // Highest applied update sequence (the recovery high-water mark); 0 means
  // no sequenced update has been applied since the last install/crash.
  std::uint64_t applied_sequence() const {
    return applied_sequence_.load(std::memory_order_relaxed);
  }

 private:
  void ConsumeLoop(std::shared_ptr<Subscription> subscription);
  // Teardown body shared by StopConsuming/StartConsuming; caller must hold
  // consumer_mu_.
  void StopConsumingLocked();

  // One waiter of a forming micro-batch. The pointed-to storage lives on the
  // waiting pool thread's stack; the leader fills it before setting `done`.
  struct PendingScan {
    IvfBatchQuery query;
    std::vector<SearchHit> hits;
    std::exception_ptr error;
    bool done = false;
  };
  struct FormingBatch {
    std::vector<PendingScan*> waiters;
    bool open = true;  // accepting joiners
  };

  // Scan body of SearchAsync: joins or leads a micro-batch when other scans
  // are in flight, otherwise degenerates to a plain index Search. `filter`
  // must outlive the call (it rides the batch as a pointer); `stats`
  // (caller-owned, may be null) receives this query's filter diagnostics.
  // `tier_stats` (caller-owned, may be null) receives the tiered-serving
  // accounting (faults, drops, io time); the io budget handed to the index
  // is carved from the deadline's remaining budget.
  std::vector<SearchHit> SearchBatched(FeatureView query, std::size_t k,
                                       std::size_t nprobe,
                                       CategoryId category_filter,
                                       const FilterExpression& filter,
                                       FilterScanStats* stats,
                                       qos::Deadline deadline,
                                       TierScanStats* tier_stats) const;

  Node node_;
  FeatureDb& features_;
  PartitionFilter filter_;
  std::uint64_t seed_;
  const std::size_t max_batch_queries_;
  const Micros batch_window_micros_;
  obs::Registry* registry_;
  obs::TraceSink* trace_sink_;
  FaultInjector* fault_injector_;
  Histogram* scan_micros_;        // per-searcher scan latency
  Histogram* scan_stage_;         // shared jdvs_stage_micros{stage="searcher_scan"}
  Histogram* filter_stage_;       // shared jdvs_stage_micros{stage="searcher_filter"}
  Histogram* io_stage_;           // shared jdvs_stage_micros{stage="searcher_io"}
  Histogram* batch_size_;         // jdvs_searcher_batch_size{searcher=...}
  // Hybrid-filter observability (filtered queries only).
  Histogram* filter_selectivity_bp_;     // jdvs_filter_selectivity_bp
  obs::Counter* filter_pre_total_;       // jdvs_filter_strategy_total{strategy=pre}
  obs::Counter* filter_post_total_;      // jdvs_filter_strategy_total{strategy=post}
  obs::Counter* filter_blocks_skipped_;  // jdvs_filter_blocks_skipped_total
  obs::Counter* filter_widened_;         // jdvs_filter_widened_nprobe_total
  obs::Counter* consumed_total_;  // mirrors messages_consumed_
  obs::Counter* deduped_total_;   // duplicate updates skipped by sequence
  obs::Counter* deadline_exceeded_;  // jdvs_qos_deadline_exceeded_total{tier=searcher}

  std::atomic<std::shared_ptr<IvfIndex>> index_{nullptr};
  // Micro-batching state. scans_in_flight_ counts dispatched-but-uncompleted
  // SearchAsync scans; batching only engages when it exceeds 1, so a lone
  // query pays zero extra latency (not even the mutex).
  mutable std::atomic<int> scans_in_flight_{0};
  mutable std::mutex batch_mu_;
  mutable std::condition_variable batch_cv_;
  mutable std::shared_ptr<FormingBatch> forming_;  // guarded by batch_mu_
  mutable std::mutex writer_mu_;              // serializes all mutations
  std::unique_ptr<RealTimeIndexer> indexer_;  // guarded by writer_mu_
  RealTimeIndexerCounters retired_counters_;  // guarded by writer_mu_
  Histogram retired_latency_;                 // guarded by writer_mu_

  // Consumer lifecycle is multi-caller since the control plane: an external
  // Crash() can race the controller's recovery thread, so start/stop
  // serialize here. ConsumeLoop itself never takes this mutex (it only uses
  // writer_mu_ via ApplyUpdate), so joining the thread under it is safe.
  // Scrubber lifecycle parallels the consumer's: start/stop may race the
  // control plane, so they serialize on their own mutex. The scrubber holds
  // only a provider closure over `this`, never a raw store pointer.
  std::mutex scrub_mu_;
  std::unique_ptr<TierScrubber> scrubber_;  // guarded by scrub_mu_

  std::mutex consumer_mu_;
  std::shared_ptr<Subscription> subscription_;  // guarded by consumer_mu_
  std::thread consumer_;                        // guarded by consumer_mu_
  std::atomic<std::uint64_t> messages_consumed_{0};
  // Advanced under writer_mu_; read lock-free by the control plane.
  std::atomic<std::uint64_t> applied_sequence_{0};
  // Set before the first StartConsuming, then only read (no lock).
  ProgressListener progress_listener_;
};

}  // namespace jdvs

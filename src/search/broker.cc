#include "search/broker.h"

#include <utility>

#include "common/logging.h"
#include "net/load_balancer.h"

namespace jdvs {

Broker::Broker(std::string name, const Config& config)
    : node_(std::move(name), config.threads, config.latency, config.seed),
      trace_sink_(config.trace_sink != nullptr ? config.trace_sink
                                               : &obs::TraceSink::Default()) {
  obs::Registry& registry =
      config.registry != nullptr ? *config.registry : obs::Registry::Default();
  fanout_stage_ = &registry.GetHistogram(
      obs::Labeled("jdvs_stage_micros", "stage", "broker_fanout"));
  failovers_total_ = &registry.GetCounter(
      obs::Labeled("jdvs_broker_failovers_total", "broker", node_.name()));
  partition_failures_total_ = &registry.GetCounter(obs::Labeled(
      "jdvs_broker_partition_failures_total", "broker", node_.name()));
  state_skips_total_ = &registry.GetCounter(
      obs::Labeled("jdvs_broker_state_skips_total", "broker", node_.name()));
  deadline_exceeded_ = &registry.GetCounter(
      obs::Labeled("jdvs_qos_deadline_exceeded_total", "tier", "broker"));
}

void Broker::AddPartition(std::vector<Searcher*> replicas,
                          std::vector<std::size_t> state_slots) {
  partitions_.push_back(std::move(replicas));
  partition_state_slots_.push_back(std::move(state_slots));
  replica_cursors_.emplace_back(0);
}

struct Broker::FanOutState {
  FanOutState(FeatureVector q, std::size_t k, std::size_t nprobe,
              CategoryId filter, qos::Deadline deadline, SearchCallback done)
      : query(std::move(q)),
        k(k),
        nprobe(nprobe),
        filter(filter),
        deadline(deadline),
        watch(MonotonicClock::Instance()),
        on_done(std::move(done)) {}

  FeatureVector query;
  std::size_t k;
  std::size_t nprobe;
  CategoryId filter;
  qos::Deadline deadline;
  Stopwatch watch;
  SearchCallback on_done;
  obs::Span span;             // "broker.search": dispatch through merge
  obs::TraceContext context;  // span.context(), passed to searcher calls
  // slot i of the collector is partition slot_partition[i]; on failure the
  // slot carries the last replica's error.
  std::vector<std::size_t> slot_partition;
  // Per slot: replica indices to try, in rotation order with non-serving
  // replicas already filtered out. Attempt n dispatches slot_candidates[n].
  std::vector<std::vector<std::size_t>> slot_candidates;
  std::shared_ptr<FanInCollector<std::vector<SearchHit>>> collector;
  std::atomic<std::uint64_t> failovers{0};
};

void Broker::SearchAsync(FeatureVector query, std::size_t k,
                         std::size_t nprobe, CategoryId category_filter,
                         qos::Deadline deadline, obs::TraceContext parent,
                         SearchCallback on_done) {
  auto state = std::make_shared<FanOutState>(std::move(query), k, nprobe,
                                             category_filter, deadline,
                                             std::move(on_done));
  node_.InvokeAsync(
      [this, state, parent] {
        state->span = obs::Span(trace_sink_, MonotonicClock::Instance(),
                                parent, "broker.search", node_.name());
        state->context = state->span.context();
        StartFanOut(state);
      },
      [state](AsyncResult<void> dispatched) {
        // Fires after the dispatch returns. Success means the fan-out owns
        // the request now; failure (the broker node itself is down) is the
        // caller's to fail over.
        if (!dispatched.ok()) {
          state->on_done(SearchResult::Fail(dispatched.error));
        }
      });
}

std::future<std::vector<SearchHit>> Broker::SearchAsync(
    FeatureVector query, std::size_t k, std::size_t nprobe,
    CategoryId category_filter, qos::Deadline deadline,
    obs::TraceContext parent) {
  auto promise = std::make_shared<std::promise<std::vector<SearchHit>>>();
  std::future<std::vector<SearchHit>> future = promise->get_future();
  SearchAsync(std::move(query), k, nprobe, category_filter, deadline, parent,
              [promise](SearchResult result) {
                if (result.ok()) {
                  promise->set_value(std::move(result.value->hits));
                } else {
                  promise->set_exception(result.error);
                }
              });
  return future;
}

// Runs on a broker pool thread; returns as soon as the first wave is
// dispatched.
void Broker::StartFanOut(std::shared_ptr<FanOutState> state) {
  // Budget already dead (spent in the blender->broker hop or this broker's
  // queue): fail before dispatching a single searcher call. The fan-out is
  // the expensive part — shedding here is the whole point of propagating
  // the deadline down the tiers.
  if (state->deadline.Expired(MonotonicClock::Instance())) {
    deadline_exceeded_->Increment();
    state->span.AddTag("deadline_exceeded", std::uint64_t{1});
    state->span.SetError("deadline exceeded");
    state->span.Finish();
    state->on_done(SearchResult::Fail(
        std::make_exception_ptr(qos::DeadlineExceededError(node_.name()))));
    return;
  }
  state->span.AddTag("partitions",
                     static_cast<std::uint64_t>(partitions_.size()));
  state->slot_partition.reserve(partitions_.size());
  for (std::size_t p = 0; p < partitions_.size(); ++p) {
    if (!partitions_[p].empty()) state->slot_partition.push_back(p);
  }
  const std::size_t current =
      in_flight_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::size_t peak = peak_in_flight_.load(std::memory_order_relaxed);
  while (peak < current &&
         !peak_in_flight_.compare_exchange_weak(peak, current,
                                                std::memory_order_relaxed)) {
  }
  state->collector = FanInCollector<std::vector<SearchHit>>::Create(
      state->slot_partition.size(),
      [this, state](std::vector<Searcher::SearchResult> slots) {
        FinishFanOut(state, std::move(slots));
      });
  // Build each slot's candidate list: rotate the starting replica for load
  // spread, and — when the control plane's state table is wired — drop
  // replicas the failure detector marked non-serving, so a known-down node
  // costs nothing at query time.
  state->slot_candidates.resize(state->slot_partition.size());
  for (std::size_t slot = 0; slot < state->slot_partition.size(); ++slot) {
    const std::size_t partition = state->slot_partition[slot];
    const std::vector<Searcher*>& replicas = partitions_[partition];
    const std::vector<std::size_t>& slots = partition_state_slots_[partition];
    const bool consult_state =
        replica_states_ != nullptr && slots.size() == replicas.size();
    const std::size_t start =
        replica_cursors_[partition].fetch_add(1, std::memory_order_relaxed);
    std::vector<std::size_t>& candidates = state->slot_candidates[slot];
    candidates.reserve(replicas.size());
    for (std::size_t i = 0; i < replicas.size(); ++i) {
      const std::size_t replica = (start + i) % replicas.size();
      if (consult_state && !replica_states_->Serving(slots[replica])) {
        state_skips_.fetch_add(1, std::memory_order_relaxed);
        state_skips_total_->Increment();
        continue;
      }
      candidates.push_back(replica);
    }
  }
  for (std::size_t slot = 0; slot < state->slot_partition.size(); ++slot) {
    if (state->slot_candidates[slot].empty()) {
      // Every replica is marked down: fail the slot immediately instead of
      // burning a doomed call — the blender degrades to a partial answer.
      partition_failures_.fetch_add(1, std::memory_order_relaxed);
      partition_failures_total_->Increment();
      JDVS_LOG(kWarning) << node_.name() << ": partition "
                         << state->slot_partition[slot]
                         << " has no serving replica";
      state->collector->Complete(
          slot, Searcher::SearchResult::Fail(
                    std::make_exception_ptr(NoHealthyBackendError())));
      continue;
    }
    DispatchReplica(state, slot, 0);
  }
}

void Broker::DispatchReplica(std::shared_ptr<FanOutState> state,
                             std::size_t slot, std::size_t attempt) {
  const std::size_t partition = state->slot_partition[slot];
  const std::size_t replica = state->slot_candidates[slot][attempt];
  partitions_[partition][replica]->SearchAsync(
      state->query, state->k, state->nprobe, state->filter, state->deadline,
      state->context,
      [this, state, slot, attempt](Searcher::SearchResult result) {
        if (result.ok()) {
          state->collector->Complete(slot, std::move(result));
          return;
        }
        // Deadline death is not a replica fault: the budget is just as dead
        // on the sibling, and retrying timed-out work under overload only
        // amplifies it. Complete the slot with the error (no failover, no
        // partition_failures — the partition is healthy, the query is late).
        if (qos::IsDeadlineExceeded(result.error)) {
          state->collector->Complete(slot, std::move(result));
          return;
        }
        // Replica failed: walk the candidate list ("multiple copies for
        // availability") by re-dispatching from this completion callback —
        // no thread waits, and the other partitions keep collecting.
        const std::size_t partition = state->slot_partition[slot];
        const std::size_t next = attempt + 1;
        if (next < state->slot_candidates[slot].size()) {
          state->failovers.fetch_add(1, std::memory_order_relaxed);
          failovers_.fetch_add(1, std::memory_order_relaxed);
          failovers_total_->Increment();
          DispatchReplica(std::move(state), slot, next);
          return;
        }
        partition_failures_.fetch_add(1, std::memory_order_relaxed);
        partition_failures_total_->Increment();
        JDVS_LOG(kWarning) << node_.name() << ": partition " << partition
                           << " unavailable ("
                           << DescribeException(result.error) << ")";
        state->collector->Complete(slot, std::move(result));
      });
}

// Final continuation: runs on the pool thread of whichever searcher
// delivered the last partition.
void Broker::FinishFanOut(std::shared_ptr<FanOutState> state,
                          std::vector<Searcher::SearchResult> slots) {
  // Too late to be useful: the blender would discard the answer anyway, so
  // skip the merge and report the deadline death from this tier.
  if (state->deadline.Expired(MonotonicClock::Instance())) {
    deadline_exceeded_->Increment();
    state->span.AddTag("deadline_exceeded", std::uint64_t{1});
    state->span.SetError("deadline exceeded");
    fanout_stage_->Record(state->watch.ElapsedMicros());
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    state->span.Finish();
    state->on_done(SearchResult::Fail(
        std::make_exception_ptr(qos::DeadlineExceededError(node_.name()))));
    return;
  }
  Reply reply;
  std::vector<std::vector<SearchHit>> partials;
  partials.reserve(slots.size());
  for (std::size_t slot = 0; slot < slots.size(); ++slot) {
    if (slots[slot].ok()) {
      partials.push_back(*std::move(slots[slot].value));
    } else {
      ++reply.partitions_failed;
      state->span.SetError(
          std::string("partition ") +
          std::to_string(state->slot_partition[slot]) +
          " unavailable: " + DescribeException(slots[slot].error));
    }
  }
  const std::uint64_t failovers =
      state->failovers.load(std::memory_order_relaxed);
  if (failovers > 0) state->span.AddTag("failovers", failovers);
  // "The broker then combines the results from its subset of searchers."
  reply.hits = MergeHits(std::move(partials), state->k);
  fanout_stage_->Record(state->watch.ElapsedMicros());
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
  state->span.Finish();
  state->on_done(SearchResult::Ok(std::move(reply)));
}

}  // namespace jdvs

#include "search/broker.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "net/load_balancer.h"
#include "net/timeout.h"

namespace jdvs {
namespace {

// Lock-free EWMA fold, alpha = 1/8 (same shape as
// ctrl::ReplicaStateTable::RecordLatency, for the table-less fallback).
void UpdateEwma(std::atomic<std::int64_t>& ewma, std::int64_t sample) {
  if (sample < 0) sample = 0;
  std::int64_t current = ewma.load(std::memory_order_relaxed);
  std::int64_t next = 0;
  do {
    next = current == 0 ? sample : current + (sample - current) / 8;
    if (next == current) return;
  } while (!ewma.compare_exchange_weak(current, next,
                                       std::memory_order_relaxed));
}

}  // namespace

Broker::Broker(std::string name, const Config& config)
    : node_(std::move(name), config.threads, config.latency, config.seed),
      config_(config),
      trace_sink_(config.trace_sink != nullptr ? config.trace_sink
                                               : &obs::TraceSink::Default()) {
  obs::Registry& registry =
      config.registry != nullptr ? *config.registry : obs::Registry::Default();
  fanout_stage_ = &registry.GetHistogram(
      obs::Labeled("jdvs_stage_micros", "stage", "broker_fanout"));
  failovers_total_ = &registry.GetCounter(
      obs::Labeled("jdvs_broker_failovers_total", "broker", node_.name()));
  partition_failures_total_ = &registry.GetCounter(obs::Labeled(
      "jdvs_broker_partition_failures_total", "broker", node_.name()));
  state_skips_total_ = &registry.GetCounter(
      obs::Labeled("jdvs_broker_state_skips_total", "broker", node_.name()));
  hedges_total_ = &registry.GetCounter(
      obs::Labeled("jdvs_broker_hedges_total", "broker", node_.name()));
  hedge_wins_total_ = &registry.GetCounter(
      obs::Labeled("jdvs_broker_hedge_wins_total", "broker", node_.name()));
  rpc_timeouts_total_ = &registry.GetCounter(
      obs::Labeled("jdvs_broker_rpc_timeouts_total", "broker", node_.name()));
  deadline_exceeded_ = &registry.GetCounter(
      obs::Labeled("jdvs_qos_deadline_exceeded_total", "tier", "broker"));
}

Broker::~Broker() {
  // A hedge win or per-attempt timeout completes the caller while the
  // straggler attempt is still in flight on a searcher pool (or armed on
  // the timer wheel); its continuation re-enters this broker when it lands.
  // Every such continuation holds a token, so waiting for the count to
  // drain makes "caller done" safe to follow immediately with teardown.
  // Tokens are released even when a callback is dropped undelivered (the
  // token rides the callback's captures), so this terminates whenever every
  // dispatched attempt resolves or is discarded.
  while (pending_callbacks_.load(std::memory_order_acquire) != 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  // Then join the pool itself while every member the remaining (non-broker-
  // touching) tasks could reach is still alive — members declared after
  // node_ are destroyed before node_'s own destructor would join.
  node_.pool().Shutdown();
}

std::shared_ptr<void> Broker::AcquireCallbackToken() {
  pending_callbacks_.fetch_add(1, std::memory_order_acq_rel);
  return std::shared_ptr<void>(nullptr, [this](void*) {
    pending_callbacks_.fetch_sub(1, std::memory_order_acq_rel);
  });
}

void Broker::AddPartition(std::vector<Searcher*> replicas,
                          std::vector<std::size_t> state_slots) {
  auto& ewmas = local_latency_.emplace_back();
  for (std::size_t i = 0; i < replicas.size(); ++i) ewmas.emplace_back(0);
  partitions_.push_back(std::move(replicas));
  partition_state_slots_.push_back(std::move(state_slots));
  replica_cursors_.emplace_back(0);
}

void Broker::RecordReplicaLatency(std::size_t partition, std::size_t replica,
                                  Micros sample_micros) {
  const std::vector<std::size_t>& slots = partition_state_slots_[partition];
  if (replica_states_ != nullptr &&
      slots.size() == partitions_[partition].size()) {
    replica_states_->RecordLatency(slots[replica], sample_micros);
  } else {
    UpdateEwma(local_latency_[partition][replica], sample_micros);
  }
}

Micros Broker::replica_latency_ewma(std::size_t partition,
                                    std::size_t replica) const {
  const std::vector<std::size_t>& slots = partition_state_slots_[partition];
  if (replica_states_ != nullptr &&
      slots.size() == partitions_[partition].size()) {
    return replica_states_->latency_ewma_micros(slots[replica]);
  }
  return local_latency_[partition][replica].load(std::memory_order_relaxed);
}

namespace {

void FoldMax(std::atomic<Micros>& target, Micros value) {
  Micros current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

// One collector slot's dispatch state: the candidate list plus the
// arbitration between its racing attempts (primary, failovers, a hedge).
// `completed` is the slot-level first-completion-wins flag — the node-level
// OnceCallback already guarantees each *attempt* reports once, this one
// guarantees the *slot* completes the collector once.
struct Broker::Slot {
  std::vector<std::size_t> candidates;
  std::atomic<bool> completed{false};
  // Next candidates[] index to try; fetch_add hands each attempt a distinct
  // replica even when a failover and the hedge timer race.
  std::atomic<std::size_t> next_candidate{0};
  // Attempts dispatched and not yet reported. The attempt that drops it to
  // zero with the candidate list exhausted fails the slot.
  std::atomic<std::size_t> outstanding{0};
  std::atomic<std::uint64_t> hedge_timer{0};  // pending TimerId (0 = none)
  // First (primary) dispatch time; a hedge win's wait is measured from it.
  std::atomic<Micros> first_dispatched_at{0};
  std::mutex error_mu;
  std::exception_ptr last_error;  // guarded by error_mu

  void CancelHedgeTimer() {
    const std::uint64_t id = hedge_timer.exchange(0, std::memory_order_acq_rel);
    if (id != 0) TimeoutScheduler::Default().Cancel(id);
  }
};

struct Broker::FanOutState {
  FanOutState(FeatureVector q, std::size_t k, std::size_t nprobe,
              CategoryId filter, FilterExpression attr_filter,
              qos::Deadline deadline, SearchCallback done)
      : query(std::move(q)),
        k(k),
        nprobe(nprobe),
        filter(filter),
        attr_filter(std::move(attr_filter)),
        deadline(deadline),
        watch(MonotonicClock::Instance()),
        on_done(std::move(done)) {}

  FeatureVector query;
  std::size_t k;
  std::size_t nprobe;
  CategoryId filter;
  FilterExpression attr_filter;  // hybrid predicates, fanned to every attempt
  qos::Deadline deadline;
  Stopwatch watch;
  SearchCallback on_done;
  obs::Span span;             // "broker.search": dispatch through merge
  obs::TraceContext context;  // span.context(), passed to searcher calls
  // slot i of the collector is partition slot_partition[i]; on failure the
  // slot carries the last replica's error.
  std::vector<std::size_t> slot_partition;
  std::deque<Slot> slots;  // deque: Slot holds atomics + a mutex
  std::shared_ptr<FanInCollector<std::vector<SearchHit>>> collector;
  std::atomic<std::uint64_t> failovers{0};
  std::atomic<std::uint64_t> hedge_wins{0};
  // Diagnosis fold for Reply: the winning attempt of the slowest slot (the
  // scan that gated this broker) and the worst hedge-win dispatch gap.
  std::atomic<Micros> slowest_attempt{0};
  std::atomic<Micros> max_hedge_wait{0};
  // Max-folded by every attempt's searcher (hedges and failovers included):
  // the worst filter-bitmap materialization cost contributing to this
  // fan-out, surfaced in Reply::filter_micros, and the worst tiered
  // cold-list fault time, surfaced in Reply::io_micros.
  std::atomic<Micros> filter_micros{0};
  std::atomic<Micros> io_micros{0};
  // Attempts that skipped quarantined tiered lists (integrity degradation).
  std::atomic<std::uint32_t> tier_degraded{0};
};

void Broker::SearchAsync(FeatureVector query, std::size_t k,
                         std::size_t nprobe, CategoryId category_filter,
                         FilterExpression filter, qos::Deadline deadline,
                         obs::TraceContext parent, SearchCallback on_done) {
  auto state = std::make_shared<FanOutState>(std::move(query), k, nprobe,
                                             category_filter, std::move(filter),
                                             deadline, std::move(on_done));
  node_.InvokeAsync(
      // The token covers the tail of the entry task: an attempt can answer
      // the caller while this task is still sweeping hedge timers, and the
      // destructor must not tear the broker down under it.
      [this, state, parent, token = AcquireCallbackToken()] {
        state->span = obs::Span(trace_sink_, MonotonicClock::Instance(),
                                parent, "broker.search", node_.name());
        state->context = state->span.context();
        StartFanOut(state);
      },
      [state](AsyncResult<void> dispatched) {
        // Fires after the dispatch returns. Success means the fan-out owns
        // the request now; failure (the broker node itself is down) is the
        // caller's to fail over.
        if (!dispatched.ok()) {
          state->on_done(SearchResult::Fail(dispatched.error));
        }
      });
}

std::future<std::vector<SearchHit>> Broker::SearchAsync(
    FeatureVector query, std::size_t k, std::size_t nprobe,
    CategoryId category_filter, FilterExpression filter,
    qos::Deadline deadline, obs::TraceContext parent) {
  auto promise = std::make_shared<std::promise<std::vector<SearchHit>>>();
  std::future<std::vector<SearchHit>> future = promise->get_future();
  SearchAsync(std::move(query), k, nprobe, category_filter, std::move(filter),
              deadline, parent, [promise](SearchResult result) {
                if (result.ok()) {
                  promise->set_value(std::move(result.value->hits));
                } else {
                  promise->set_exception(result.error);
                }
              });
  return future;
}

// Runs on a broker pool thread; returns as soon as the first wave is
// dispatched.
void Broker::StartFanOut(std::shared_ptr<FanOutState> state) {
  // Budget already dead (spent in the blender->broker hop or this broker's
  // queue): fail before dispatching a single searcher call. The fan-out is
  // the expensive part — shedding here is the whole point of propagating
  // the deadline down the tiers.
  if (state->deadline.Expired(MonotonicClock::Instance())) {
    deadline_exceeded_->Increment();
    state->span.AddTag("deadline_exceeded", std::uint64_t{1});
    state->span.SetError("deadline exceeded");
    state->span.Finish();
    state->on_done(SearchResult::Fail(
        std::make_exception_ptr(qos::DeadlineExceededError(node_.name()))));
    return;
  }
  state->span.AddTag("partitions",
                     static_cast<std::uint64_t>(partitions_.size()));
  state->slot_partition.reserve(partitions_.size());
  for (std::size_t p = 0; p < partitions_.size(); ++p) {
    if (!partitions_[p].empty()) state->slot_partition.push_back(p);
  }
  const std::size_t current =
      in_flight_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::size_t peak = peak_in_flight_.load(std::memory_order_relaxed);
  while (peak < current &&
         !peak_in_flight_.compare_exchange_weak(peak, current,
                                                std::memory_order_relaxed)) {
  }
  state->collector = FanInCollector<std::vector<SearchHit>>::Create(
      state->slot_partition.size(),
      [this, state](std::vector<Searcher::SearchResult> slots) {
        FinishFanOut(state, std::move(slots));
      });
  // Build each slot's candidate list: rotate the starting replica for load
  // spread, and — when the control plane's state table is wired — drop
  // replicas the failure detector marked non-serving, so a known-down node
  // costs nothing at query time.
  for (std::size_t slot_idx = 0; slot_idx < state->slot_partition.size();
       ++slot_idx) {
    const std::size_t partition = state->slot_partition[slot_idx];
    const std::vector<Searcher*>& replicas = partitions_[partition];
    const std::vector<std::size_t>& slots = partition_state_slots_[partition];
    const bool consult_state =
        replica_states_ != nullptr && slots.size() == replicas.size();
    const std::size_t start =
        replica_cursors_[partition].fetch_add(1, std::memory_order_relaxed);
    Slot& slot = state->slots.emplace_back();
    std::vector<std::size_t>& candidates = slot.candidates;
    candidates.reserve(replicas.size());
    for (std::size_t i = 0; i < replicas.size(); ++i) {
      const std::size_t replica = (start + i) % replicas.size();
      if (consult_state && !replica_states_->Serving(slots[replica])) {
        state_skips_.fetch_add(1, std::memory_order_relaxed);
        state_skips_total_->Increment();
        continue;
      }
      candidates.push_back(replica);
    }
    // Latency-aware ordering: UP before SUSPECT (a latency-ejected replica
    // is SUSPECT), then by response-time EWMA ascending — unmeasured
    // replicas (EWMA 0) sort first so they get measured. Every 8th fan-out
    // per partition keeps the plain rotation: without that exploration a
    // recovered replica's stale EWMA would pin it last forever. The
    // partition index is mixed in so the cursors — which advance in
    // lockstep when every query fans out to every partition — don't make
    // one query in 8 explore (and eat the slow primary) on *all* its
    // partitions at once.
    if (config_.latency_aware_selection && candidates.size() > 1 &&
        (start + partition) % 8 != 7) {
      std::stable_sort(
          candidates.begin(), candidates.end(),
          [&](std::size_t a, std::size_t b) {
            const int suspect_a =
                consult_state &&
                replica_states_->Get(slots[a]) == ctrl::ReplicaState::kSuspect;
            const int suspect_b =
                consult_state &&
                replica_states_->Get(slots[b]) == ctrl::ReplicaState::kSuspect;
            if (suspect_a != suspect_b) return suspect_a < suspect_b;
            return replica_latency_ewma(partition, a) <
                   replica_latency_ewma(partition, b);
          });
    }
  }
  for (std::size_t slot_idx = 0; slot_idx < state->slot_partition.size();
       ++slot_idx) {
    Slot& slot = state->slots[slot_idx];
    if (slot.candidates.empty()) {
      // Every replica is marked down: fail the slot immediately instead of
      // burning a doomed call — the blender degrades to a partial answer.
      partition_failures_.fetch_add(1, std::memory_order_relaxed);
      partition_failures_total_->Increment();
      JDVS_LOG(kWarning) << node_.name() << ": partition "
                         << state->slot_partition[slot_idx]
                         << " has no serving replica";
      state->collector->Complete(
          slot_idx, Searcher::SearchResult::Fail(
                        std::make_exception_ptr(NoHealthyBackendError())));
      continue;
    }
    TryDispatchNext(state, slot_idx, /*is_hedge=*/false);
    // Arm the hedge alongside the primary. The timer checks the deadline
    // and the rate cap when it fires; a slot that completes first cancels
    // it. No point hedging a single-replica slot — there is no sibling.
    const Micros delay = config_.enable_hedging && slot.candidates.size() > 1
                             ? ComputeHedgeDelay(*state, slot_idx)
                             : 0;
    if (delay > 0) {
      const TimeoutScheduler::TimerId id = TimeoutScheduler::Default().Schedule(
          delay, [this, state, slot_idx, token = AcquireCallbackToken()] {
            MaybeHedge(state, slot_idx);
          });
      slot.hedge_timer.store(id, std::memory_order_release);
      // The slot may have completed while we armed the timer; sweep so the
      // timer cannot outlive the request silently.
      if (slot.completed.load(std::memory_order_acquire)) {
        slot.CancelHedgeTimer();
      }
    }
  }
}

Micros Broker::ComputeHedgeDelay(const FanOutState& state,
                                 std::size_t slot_idx) {
  if (config_.hedge_delay_micros > 0) return config_.hedge_delay_micros;
  // Adaptive: keyed to the *fastest* candidate's EWMA, not the primary's —
  // when the primary is the limping replica, "3x the limp" would fire long
  // after the query died; "3x what a healthy copy takes" is the moment the
  // sibling becomes the better bet.
  const std::size_t partition = state.slot_partition[slot_idx];
  Micros best = 0;
  for (const std::size_t replica : state.slots[slot_idx].candidates) {
    const Micros ewma = replica_latency_ewma(partition, replica);
    if (ewma > 0 && (best == 0 || ewma < best)) best = ewma;
  }
  // No latency data yet: don't hedge (return 0 = don't arm). Arming at the
  // floor while every EWMA is cold fires a hedge on virtually every slot of
  // the first wave, burning the whole rate budget on requests that were
  // never slow — and the budget is then gone when a real limper shows up.
  if (best == 0) return 0;
  const auto adaptive = static_cast<Micros>(
      config_.hedge_delay_multiplier * static_cast<double>(best));
  return std::max(config_.hedge_delay_min_micros, adaptive);
}

bool Broker::HedgeBudgetAllows() const {
  if (config_.hedge_rate_cap <= 0.0) return true;
  const auto hedged = static_cast<double>(hedges_.load(std::memory_order_relaxed));
  const auto primaries =
      static_cast<double>(primary_dispatches_.load(std::memory_order_relaxed));
  return hedged < config_.hedge_rate_cap * primaries;
}

bool Broker::TryDispatchNext(const std::shared_ptr<FanOutState>& state,
                             std::size_t slot_idx, bool is_hedge) {
  Slot& slot = state->slots[slot_idx];
  const std::size_t idx =
      slot.next_candidate.fetch_add(1, std::memory_order_acq_rel);
  if (idx >= slot.candidates.size()) return false;
  const std::size_t partition = state->slot_partition[slot_idx];
  const std::size_t replica = slot.candidates[idx];
  slot.outstanding.fetch_add(1, std::memory_order_acq_rel);
  if (!is_hedge) {
    primary_dispatches_.fetch_add(1, std::memory_order_relaxed);
  }
  const Micros dispatched_at = MonotonicClock::Instance().NowMicros();
  Micros expected_first = 0;
  slot.first_dispatched_at.compare_exchange_strong(expected_first,
                                                   dispatched_at,
                                                   std::memory_order_relaxed);
  // Hedge/failover dispatches can come from a timer or a searcher thread;
  // scope the RPC source so fault-injection links stay (broker -> searcher).
  RpcSourceScope rpc_source(node_.name());
  partitions_[partition][replica]->SearchAsync(
      state->query, state->k, state->nprobe, state->filter,
      state->attr_filter, state->deadline, state->context,
      [this, state, slot_idx, replica, is_hedge, dispatched_at,
       token = AcquireCallbackToken()](Searcher::SearchResult result) {
        OnAttemptResult(state, slot_idx, replica, is_hedge, dispatched_at,
                        std::move(result));
      },
      config_.rpc_timeout_micros, &state->filter_micros, &state->io_micros,
      &state->tier_degraded);
  return true;
}

void Broker::MaybeHedge(const std::shared_ptr<FanOutState>& state,
                        std::size_t slot_idx) {
  Slot& slot = state->slots[slot_idx];
  slot.hedge_timer.store(0, std::memory_order_release);  // timer consumed
  if (slot.completed.load(std::memory_order_acquire)) return;
  // Composes with the QoS layer: a hedge is new work charged to the same
  // budget, and an expired budget is just as dead on the sibling.
  if (state->deadline.Expired(MonotonicClock::Instance())) return;
  if (!HedgeBudgetAllows()) {
    hedges_capped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (TryDispatchNext(state, slot_idx, /*is_hedge=*/true)) {
    hedges_.fetch_add(1, std::memory_order_relaxed);
    hedges_total_->Increment();
  }
}

void Broker::OnAttemptResult(const std::shared_ptr<FanOutState>& state,
                             std::size_t slot_idx, std::size_t replica,
                             bool is_hedge, Micros dispatched_at,
                             Searcher::SearchResult result) {
  Slot& slot = state->slots[slot_idx];
  const std::size_t partition = state->slot_partition[slot_idx];
  const bool is_timeout = !result.ok() && IsRpcTimeout(result.error);
  // Every answered attempt feeds the EWMA; a timeout feeds it too, at the
  // full timeout value — that *is* the observed cost of asking, and it is
  // what pushes a silently-dropping replica's EWMA up where the outlier
  // ejection can see it.
  if (result.ok() || is_timeout) {
    RecordReplicaLatency(
        partition, replica,
        MonotonicClock::Instance().NowMicros() - dispatched_at);
  }
  if (result.ok()) {
    if (!slot.completed.exchange(true, std::memory_order_acq_rel)) {
      slot.CancelHedgeTimer();
      // The winning attempt's wall time is this slot's contribution to the
      // fan-out's scan stage; the slowest such slot gated the merge.
      FoldMax(state->slowest_attempt,
              MonotonicClock::Instance().NowMicros() - dispatched_at);
      if (is_hedge) {
        hedge_wins_.fetch_add(1, std::memory_order_relaxed);
        hedge_wins_total_->Increment();
        state->hedge_wins.fetch_add(1, std::memory_order_relaxed);
        FoldMax(state->max_hedge_wait,
                dispatched_at -
                    slot.first_dispatched_at.load(std::memory_order_relaxed));
      }
      state->collector->Complete(slot_idx, std::move(result));
    }
    // A losing reply (slot already answered by the hedge or a racing
    // sibling) is dropped here; its latency sample was still recorded.
    slot.outstanding.fetch_sub(1, std::memory_order_acq_rel);
    return;
  }
  if (qos::IsDeadlineExceeded(result.error)) {
    // Deadline death is not a replica fault: the budget is just as dead on
    // the sibling, and retrying timed-out work under overload only
    // amplifies it. Complete the slot with the error (no failover, no
    // partition_failures — the partition is healthy, the query is late).
    if (!slot.completed.exchange(true, std::memory_order_acq_rel)) {
      slot.CancelHedgeTimer();
      state->collector->Complete(slot_idx, std::move(result));
    }
    slot.outstanding.fetch_sub(1, std::memory_order_acq_rel);
    return;
  }
  // Replica fault (NodeFailedError, RpcTimeoutError, scan failure): walk
  // the candidate list ("multiple copies for availability") by
  // re-dispatching from this completion callback — no thread waits, and the
  // other partitions keep collecting.
  if (is_timeout) {
    rpc_timeouts_.fetch_add(1, std::memory_order_relaxed);
    rpc_timeouts_total_->Increment();
  }
  {
    std::lock_guard lock(slot.error_mu);
    slot.last_error = result.error;
  }
  if (!slot.completed.load(std::memory_order_acquire) &&
      TryDispatchNext(state, slot_idx, /*is_hedge=*/false)) {
    state->failovers.fetch_add(1, std::memory_order_relaxed);
    failovers_.fetch_add(1, std::memory_order_relaxed);
    failovers_total_->Increment();
  }
  // Ordering matters: the failover dispatch (if any) bumped `outstanding`
  // before this decrement, so dropping to zero really means no attempt is
  // in flight and none can start — the candidate list is exhausted.
  if (slot.outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
      slot.next_candidate.load(std::memory_order_acquire) >=
          slot.candidates.size() &&
      !slot.completed.exchange(true, std::memory_order_acq_rel)) {
    slot.CancelHedgeTimer();
    partition_failures_.fetch_add(1, std::memory_order_relaxed);
    partition_failures_total_->Increment();
    std::exception_ptr error;
    {
      std::lock_guard lock(slot.error_mu);
      error = slot.last_error;
    }
    JDVS_LOG(kWarning) << node_.name() << ": partition " << partition
                       << " unavailable (" << DescribeException(error) << ")";
    state->collector->Complete(slot_idx,
                               Searcher::SearchResult::Fail(std::move(error)));
  }
}

// Final continuation: runs on the pool thread of whichever searcher
// delivered the last partition.
void Broker::FinishFanOut(std::shared_ptr<FanOutState> state,
                          std::vector<Searcher::SearchResult> slots) {
  // Too late to be useful: the blender would discard the answer anyway, so
  // skip the merge and report the deadline death from this tier.
  if (state->deadline.Expired(MonotonicClock::Instance())) {
    deadline_exceeded_->Increment();
    state->span.AddTag("deadline_exceeded", std::uint64_t{1});
    state->span.SetError("deadline exceeded");
    fanout_stage_->Record(state->watch.ElapsedMicros());
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    state->span.Finish();
    state->on_done(SearchResult::Fail(
        std::make_exception_ptr(qos::DeadlineExceededError(node_.name()))));
    return;
  }
  Reply reply;
  std::vector<std::vector<SearchHit>> partials;
  partials.reserve(slots.size());
  for (std::size_t slot = 0; slot < slots.size(); ++slot) {
    if (slots[slot].ok()) {
      partials.push_back(*std::move(slots[slot].value));
    } else {
      ++reply.partitions_failed;
      state->span.SetError(
          std::string("partition ") +
          std::to_string(state->slot_partition[slot]) +
          " unavailable: " + DescribeException(slots[slot].error));
    }
  }
  const std::uint64_t failovers =
      state->failovers.load(std::memory_order_relaxed);
  if (failovers > 0) state->span.AddTag("failovers", failovers);
  const std::uint64_t hedge_wins =
      state->hedge_wins.load(std::memory_order_relaxed);
  if (hedge_wins > 0) state->span.AddTag("hedge_wins", hedge_wins);
  // "The broker then combines the results from its subset of searchers."
  reply.hits = MergeHits(std::move(partials), state->k);
  reply.slowest_attempt_micros =
      state->slowest_attempt.load(std::memory_order_relaxed);
  reply.hedge_wait_micros =
      state->max_hedge_wait.load(std::memory_order_relaxed);
  reply.filter_micros = state->filter_micros.load(std::memory_order_relaxed);
  reply.io_micros = state->io_micros.load(std::memory_order_relaxed);
  reply.tier_degraded = state->tier_degraded.load(std::memory_order_relaxed);
  reply.fanout_micros = state->watch.ElapsedMicros();
  fanout_stage_->Record(reply.fanout_micros);
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
  state->span.Finish();
  state->on_done(SearchResult::Ok(std::move(reply)));
}

}  // namespace jdvs

#include "search/broker.h"

#include <utility>

#include "common/logging.h"

namespace jdvs {

Broker::Broker(std::string name, const Config& config)
    : node_(std::move(name), config.threads, config.latency, config.seed) {}

void Broker::AddPartition(std::vector<Searcher*> replicas) {
  partitions_.push_back(std::move(replicas));
}

std::future<std::vector<SearchHit>> Broker::SearchAsync(
    FeatureVector query, std::size_t k, std::size_t nprobe,
    CategoryId category_filter) {
  return node_.Invoke(
      [this, query = std::move(query), k, nprobe, category_filter] {
        return SearchFanOut(query, k, nprobe, category_filter);
      });
}

std::vector<SearchHit> Broker::SearchFanOut(const FeatureVector& query,
                                            std::size_t k, std::size_t nprobe,
                                            CategoryId category_filter) {
  // First wave: ask the preferred (first healthy) replica of every partition
  // in parallel.
  struct Pending {
    std::size_t partition;
    std::size_t replica;
    std::future<std::vector<SearchHit>> future;
  };
  std::vector<Pending> pending;
  pending.reserve(partitions_.size());
  for (std::size_t p = 0; p < partitions_.size(); ++p) {
    if (partitions_[p].empty()) continue;
    pending.push_back(Pending{
        p, 0, partitions_[p][0]->SearchAsync(query, k, nprobe,
                                             category_filter)});
  }

  std::vector<std::vector<SearchHit>> partials;
  partials.reserve(pending.size());
  // Collect; on failure walk the replica list ("multiple copies for
  // availability"). Retries are sequential per failed partition — failure is
  // the rare path.
  for (auto& p : pending) {
    for (;;) {
      try {
        partials.push_back(p.future.get());
        break;
      } catch (const std::exception& e) {
        ++p.replica;
        if (p.replica >= partitions_[p.partition].size()) {
          partition_failures_.fetch_add(1, std::memory_order_relaxed);
          JDVS_LOG(kWarning) << node_.name() << ": partition " << p.partition
                             << " unavailable (" << e.what() << ")";
          break;
        }
        failovers_.fetch_add(1, std::memory_order_relaxed);
        p.future = partitions_[p.partition][p.replica]->SearchAsync(
            query, k, nprobe, category_filter);
      }
    }
  }
  // "The broker then combines the results from its subset of searchers."
  return MergeHits(std::move(partials), k);
}

}  // namespace jdvs

#include "search/broker.h"

#include <utility>

#include "common/logging.h"

namespace jdvs {

Broker::Broker(std::string name, const Config& config)
    : node_(std::move(name), config.threads, config.latency, config.seed),
      trace_sink_(config.trace_sink != nullptr ? config.trace_sink
                                               : &obs::TraceSink::Default()) {
  obs::Registry& registry =
      config.registry != nullptr ? *config.registry : obs::Registry::Default();
  fanout_stage_ = &registry.GetHistogram(
      obs::Labeled("jdvs_stage_micros", "stage", "broker_fanout"));
  failovers_total_ = &registry.GetCounter(
      obs::Labeled("jdvs_broker_failovers_total", "broker", node_.name()));
  partition_failures_total_ = &registry.GetCounter(obs::Labeled(
      "jdvs_broker_partition_failures_total", "broker", node_.name()));
}

void Broker::AddPartition(std::vector<Searcher*> replicas) {
  partitions_.push_back(std::move(replicas));
}

std::future<std::vector<SearchHit>> Broker::SearchAsync(
    FeatureVector query, std::size_t k, std::size_t nprobe,
    CategoryId category_filter, obs::TraceContext parent) {
  return node_.InvokeSpanned(
      trace_sink_, parent, "broker.search",
      [this, query = std::move(query), k, nprobe,
       category_filter](obs::Span& span) {
        return SearchFanOut(query, k, nprobe, category_filter, &span);
      });
}

std::vector<SearchHit> Broker::SearchFanOut(const FeatureVector& query,
                                            std::size_t k, std::size_t nprobe,
                                            CategoryId category_filter,
                                            obs::Span* span) {
  const Stopwatch watch(MonotonicClock::Instance());
  const obs::TraceContext context =
      span != nullptr ? span->context() : obs::TraceContext{};
  if (span != nullptr) {
    span->AddTag("partitions",
                 static_cast<std::uint64_t>(partitions_.size()));
  }
  // First wave: ask the preferred (first healthy) replica of every partition
  // in parallel.
  struct Pending {
    std::size_t partition;
    std::size_t replica;
    std::future<std::vector<SearchHit>> future;
  };
  std::vector<Pending> pending;
  pending.reserve(partitions_.size());
  for (std::size_t p = 0; p < partitions_.size(); ++p) {
    if (partitions_[p].empty()) continue;
    pending.push_back(Pending{
        p, 0, partitions_[p][0]->SearchAsync(query, k, nprobe,
                                             category_filter, context)});
  }

  std::uint64_t failovers = 0;
  std::vector<std::vector<SearchHit>> partials;
  partials.reserve(pending.size());
  // Collect; on failure walk the replica list ("multiple copies for
  // availability"). Retries are sequential per failed partition — failure is
  // the rare path.
  for (auto& p : pending) {
    for (;;) {
      try {
        partials.push_back(p.future.get());
        break;
      } catch (const std::exception& e) {
        ++p.replica;
        if (p.replica >= partitions_[p.partition].size()) {
          partition_failures_.fetch_add(1, std::memory_order_relaxed);
          partition_failures_total_->Increment();
          if (span != nullptr) {
            span->SetError(std::string("partition ") +
                           std::to_string(p.partition) + " unavailable: " +
                           e.what());
          }
          JDVS_LOG(kWarning) << node_.name() << ": partition " << p.partition
                             << " unavailable (" << e.what() << ")";
          break;
        }
        ++failovers;
        failovers_.fetch_add(1, std::memory_order_relaxed);
        failovers_total_->Increment();
        p.future = partitions_[p.partition][p.replica]->SearchAsync(
            query, k, nprobe, category_filter, context);
      }
    }
  }
  if (span != nullptr && failovers > 0) {
    span->AddTag("failovers", failovers);
  }
  // "The broker then combines the results from its subset of searchers."
  auto merged = MergeHits(std::move(partials), k);
  fanout_stage_->Record(watch.ElapsedMicros());
  return merged;
}

}  // namespace jdvs

#include "search/searcher.h"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "common/logging.h"
#include "index/snapshot.h"
#include "tier/tiered_snapshot.h"
#include "vecmath/kernels.h"

namespace jdvs {

Searcher::Searcher(std::string name, const Config& config, FeatureDb& features,
                   PartitionFilter filter)
    : node_(std::move(name), config.threads, config.latency, config.seed),
      features_(features),
      filter_(std::move(filter)),
      seed_(config.seed),
      max_batch_queries_(config.max_batch_queries),
      batch_window_micros_(config.batch_window_micros),
      registry_(config.registry != nullptr ? config.registry
                                           : &obs::Registry::Default()),
      trace_sink_(config.trace_sink != nullptr ? config.trace_sink
                                               : &obs::TraceSink::Default()),
      fault_injector_(config.fault_injector),
      scan_micros_(&registry_->GetHistogram(obs::Labeled(
          "jdvs_searcher_scan_micros", "searcher", node_.name()))),
      scan_stage_(&registry_->GetHistogram(
          obs::Labeled("jdvs_stage_micros", "stage", "searcher_scan"))),
      filter_stage_(&registry_->GetHistogram(
          obs::Labeled("jdvs_stage_micros", "stage", "searcher_filter"))),
      io_stage_(&registry_->GetHistogram(
          obs::Labeled("jdvs_stage_micros", "stage", "searcher_io"))),
      batch_size_(&registry_->GetHistogram(obs::Labeled(
          "jdvs_searcher_batch_size", "searcher", node_.name()))),
      filter_selectivity_bp_(
          &registry_->GetHistogram("jdvs_filter_selectivity_bp")),
      filter_pre_total_(&registry_->GetCounter(
          obs::Labeled("jdvs_filter_strategy_total", "strategy", "pre"))),
      filter_post_total_(&registry_->GetCounter(
          obs::Labeled("jdvs_filter_strategy_total", "strategy", "post"))),
      filter_blocks_skipped_(
          &registry_->GetCounter("jdvs_filter_blocks_skipped_total")),
      filter_widened_(
          &registry_->GetCounter("jdvs_filter_widened_nprobe_total")),
      consumed_total_(&registry_->GetCounter(obs::Labeled(
          "jdvs_searcher_messages_consumed_total", "searcher",
          node_.name()))),
      deduped_total_(&registry_->GetCounter(obs::Labeled(
          "jdvs_searcher_updates_deduped_total", "searcher",
          node_.name()))),
      deadline_exceeded_(&registry_->GetCounter(obs::Labeled(
          "jdvs_qos_deadline_exceeded_total", "tier", "searcher"))) {
  // Scan latency carries exemplars: a slow bucket links to the trace that
  // produced it (sampled queries only -- unsampled scans have no trace id).
  scan_stage_->EnableExemplars();
  // Which SIMD tier the distance kernels resolved to (process-wide; exported
  // here so every cluster's registry — and the statusz page — shows it).
  registry_->GetGauge("jdvs_kernel_dispatch_tier")
      .Set(static_cast<std::int64_t>(ActiveKernelTier()));
}

Searcher::~Searcher() {
  // The scrubber reads the index through a provider closure over `this`, so
  // it must be parked before anything else dies.
  StopTierScrub();
  // Quiesce the scan pool before any member teardown. With per-RPC timeouts
  // and hedging a caller can be answered — and cluster teardown reached —
  // while a slow scan is still running on this node's pool (its delivery
  // already consumed by the timeout's once-only guard). Members are
  // destroyed in reverse declaration order, so index_ would die before
  // node_'s destructor joins the workers; join them here instead, while the
  // index the scan reads is still alive. The straggler's late delivery is
  // suppressed by its guard, so no completed caller is touched.
  node_.pool().Shutdown();
  StopConsuming();
}

void Searcher::InstallIndex(std::unique_ptr<IvfIndex> index) {
  InstallIndex(std::move(index),
               applied_sequence_.load(std::memory_order_relaxed));
}

void Searcher::InstallIndex(std::unique_ptr<IvfIndex> index,
                            std::uint64_t update_hwm) {
  std::lock_guard lock(writer_mu_);
  if (indexer_) {
    retired_counters_.Add(indexer_->counters());
    retired_latency_.Merge(indexer_->latency_micros());
  }
  std::shared_ptr<IvfIndex> shared = std::move(index);
  indexer_ = std::make_unique<RealTimeIndexer>(
      *shared, features_, filter_, seed_ ^ 0xAB5EULL,
      MonotonicClock::Instance(), registry_, node_.name());
  applied_sequence_.store(update_hwm, std::memory_order_relaxed);
  // Swap is the last step: searches switch to the new index only once its
  // writer is ready.
  index_.store(std::move(shared), std::memory_order_release);
}

void Searcher::SaveIndexSnapshot(const std::string& path) const {
  std::lock_guard lock(writer_mu_);  // consistent point-in-time image
  const std::shared_ptr<IvfIndex> index =
      index_.load(std::memory_order_acquire);
  if (!index) throw std::runtime_error(node_.name() + ": no index to save");
  jdvs::SaveIndexSnapshot(*index, path,
                          applied_sequence_.load(std::memory_order_relaxed));
}

void Searcher::InstallFromSnapshot(const std::string& path) {
  std::uint64_t hwm = 0;
  auto index = LoadIndexSnapshot(path, PoolCopyExecutor(node_.pool()), &hwm);
  InstallIndex(std::move(index), hwm);
}

void Searcher::SaveTieredSnapshot(const std::string& path) const {
  std::lock_guard lock(writer_mu_);  // consistent point-in-time image
  const std::shared_ptr<IvfIndex> index =
      index_.load(std::memory_order_acquire);
  if (!index) throw std::runtime_error(node_.name() + ": no index to save");
  jdvs::SaveTieredSnapshot(*index, path,
                           applied_sequence_.load(std::memory_order_relaxed));
}

void Searcher::InstallFromTieredSnapshot(const std::string& path,
                                         std::size_t resident_budget_bytes) {
  TieredStoreConfig tier;
  tier.resident_bytes_budget = resident_budget_bytes;
  tier.registry = registry_;
  tier.fault_injector = fault_injector_;
  tier.node_name = node_.name();
  std::uint64_t hwm = 0;
  auto index =
      LoadTieredSnapshot(path, tier, PoolCopyExecutor(node_.pool()), &hwm);
  InstallIndex(std::move(index), hwm);
}

std::uint64_t Searcher::tier_quarantined_lists() const {
  const std::shared_ptr<IvfIndex> index =
      index_.load(std::memory_order_acquire);
  if (!index) return 0;
  const std::shared_ptr<TieredListStore> store = index->tiered_store_shared();
  return store != nullptr ? store->quarantined_lists() : 0;
}

void Searcher::StartTierScrub(const TierScrubConfig& config) {
  std::lock_guard lock(scrub_mu_);
  if (scrubber_) scrubber_->Stop();
  TierScrubConfig cfg = config;
  if (cfg.registry == nullptr) cfg.registry = registry_;
  scrubber_ = std::make_unique<TierScrubber>(
      [this]() -> std::shared_ptr<TieredListStore> {
        const std::shared_ptr<IvfIndex> index =
            index_.load(std::memory_order_acquire);
        return index != nullptr ? index->tiered_store_shared() : nullptr;
      },
      cfg);
  scrubber_->Start();
}

void Searcher::StopTierScrub() {
  std::lock_guard lock(scrub_mu_);
  if (scrubber_) scrubber_->Stop();
}

void Searcher::DropTierResidency() {
  const std::shared_ptr<IvfIndex> index =
      index_.load(std::memory_order_acquire);
  if (!index) return;
  if (const std::shared_ptr<TieredListStore> store =
          index->tiered_store_shared()) {
    store->DropResidency();
  }
}

void Searcher::Crash() {
  // Fail the node first so in-flight and new searches observe the outage,
  // then tear down mutable state as a process restart would.
  node_.set_failed(true);
  StopConsuming();
  std::lock_guard lock(writer_mu_);
  if (indexer_) {
    retired_counters_.Add(indexer_->counters());
    retired_latency_.Merge(indexer_->latency_micros());
    indexer_.reset();
  }
  applied_sequence_.store(0, std::memory_order_relaxed);
  index_.store(nullptr, std::memory_order_release);
}

std::size_t Searcher::CatchUpFromLog(const MessageLog& log,
                                     const CatchUpPacer& pacer) {
  // Snapshot outside the writer mutex; ApplyUpdate takes it per message and
  // skips anything at or below the high-water mark.
  std::size_t replayed = 0;
  std::size_t visited = 0;
  for (const ProductUpdateMessage& message : log.Snapshot()) {
    // Every visited message counts as consumed (same as ConsumeLoop: dedup
    // is an apply decision, not a consumption one), so drain accounting
    // stays monotone across a recovery.
    const bool applied = ApplyUpdate(message);
    messages_consumed_.fetch_add(1, std::memory_order_relaxed);
    consumed_total_->Increment();
    if (progress_listener_) progress_listener_();
    if (applied) ++replayed;
    // Yield to the pacer between batches, not per message: catch-up should
    // stay fast when the cluster is healthy and only throttle under load.
    if (pacer && (++visited % 64) == 0) pacer();
  }
  return replayed;
}

std::future<std::vector<SearchHit>> Searcher::SearchAsync(
    FeatureVector query, std::size_t k, std::size_t nprobe,
    CategoryId category_filter, FilterExpression filter,
    qos::Deadline deadline, obs::TraceContext parent) {
  // Future facade over the continuation path, for tests and tools that want
  // a blocking join; the broker drives the callback overload directly.
  auto promise = std::make_shared<std::promise<std::vector<SearchHit>>>();
  std::future<std::vector<SearchHit>> future = promise->get_future();
  SearchAsync(std::move(query), k, nprobe, category_filter, std::move(filter),
              deadline, parent, [promise](SearchResult result) {
                if (result.ok()) {
                  promise->set_value(*std::move(result.value));
                } else {
                  promise->set_exception(result.error);
                }
              });
  return future;
}

void Searcher::SearchAsync(FeatureVector query, std::size_t k,
                           std::size_t nprobe, CategoryId category_filter,
                           FilterExpression filter, qos::Deadline deadline,
                           obs::TraceContext parent, SearchCallback on_done,
                           Micros rpc_timeout_micros,
                           std::atomic<Micros>* filter_micros_out,
                           std::atomic<Micros>* io_micros_out,
                           std::atomic<std::uint32_t>* tier_degraded_out) {
  // Counted from dispatch (not scan start) so a query queued behind a
  // running scan already reads as concurrent and opts into batching.
  scans_in_flight_.fetch_add(1, std::memory_order_relaxed);
  node_.InvokeSpannedAsyncWithDeadline(
      trace_sink_, parent, "searcher.scan", deadline, rpc_timeout_micros,
      [this, query = std::move(query), k, nprobe, category_filter,
       filter = std::move(filter), filter_micros_out, io_micros_out,
       tier_degraded_out, deadline](obs::Span& span) {
        span.AddTag("k", static_cast<std::uint64_t>(k));
        if (nprobe > 0) {
          span.AddTag("nprobe", static_cast<std::uint64_t>(nprobe));
        }
        if (category_filter != kNoCategoryFilter) {
          span.AddTag("category",
                      static_cast<std::uint64_t>(category_filter));
        }
        const bool filtered = !filter.empty();
        FilterScanStats fstats;
        TierScanStats tstats;
        const Stopwatch watch(MonotonicClock::Instance());
        auto hits = SearchBatched(query, k, nprobe, category_filter, filter,
                                  filtered ? &fstats : nullptr, deadline,
                                  &tstats);
        const Micros elapsed = watch.ElapsedMicros();
        scan_micros_->Record(elapsed);
        scan_stage_->RecordWithExemplar(elapsed, span.context().trace_id);
        span.AddTag("hits", static_cast<std::uint64_t>(hits.size()));
        if (tstats.lists_hit + tstats.lists_faulted > 0) {
          // Tiered partition: attribute the cold-read cost to its own stage
          // and surface per-scan tier behaviour on the span.
          io_stage_->RecordWithExemplar(tstats.fault_micros,
                                        span.context().trace_id);
          if (tstats.lists_faulted > 0) {
            span.AddTag("tier_faults",
                        static_cast<std::uint64_t>(tstats.lists_faulted));
          }
          if (tstats.probes_dropped > 0) {
            span.AddTag("tier_probes_dropped",
                        static_cast<std::uint64_t>(tstats.probes_dropped));
          }
          if (io_micros_out != nullptr) {
            Micros current = io_micros_out->load(std::memory_order_relaxed);
            while (tstats.fault_micros > current &&
                   !io_micros_out->compare_exchange_weak(
                       current, tstats.fault_micros,
                       std::memory_order_relaxed)) {
            }
          }
        }
        if (tstats.lists_quarantined > 0) {
          // This scan skipped quarantined (corrupt/faulting) lists: the
          // answer is correct but incomplete — the integrity rung of the
          // degradation ladder. Outside the lists_hit+faulted block above
          // because a scan whose every probe is poisoned hits neither.
          span.AddTag("tier_quarantine_skips",
                      static_cast<std::uint64_t>(tstats.lists_quarantined));
          if (tier_degraded_out != nullptr) {
            tier_degraded_out->fetch_add(1, std::memory_order_relaxed);
          }
        }
        if (filtered) {
          filter_stage_->RecordWithExemplar(fstats.materialize_micros,
                                            span.context().trace_id);
          filter_selectivity_bp_->Record(fstats.selectivity_bp);
          (fstats.strategy == FilterScanStats::Strategy::kPost
               ? filter_post_total_
               : filter_pre_total_)
              ->Increment();
          filter_blocks_skipped_->Increment(fstats.blocks_skipped);
          if (fstats.widened_nprobe) filter_widened_->Increment();
          span.AddTag("filter", filter.ToString());
          span.AddTag("filter_selectivity_bp",
                      static_cast<std::uint64_t>(fstats.selectivity_bp));
          span.AddTag("filter_strategy", FilterStrategyName(fstats.strategy));
          if (filter_micros_out != nullptr) {
            // Atomic max: hedged attempts against replicas share the sink
            // and the slowest materialization should win the attribution.
            Micros current =
                filter_micros_out->load(std::memory_order_relaxed);
            while (fstats.materialize_micros > current &&
                   !filter_micros_out->compare_exchange_weak(
                       current, fstats.materialize_micros,
                       std::memory_order_relaxed)) {
            }
          }
        }
        return hits;
      },
      [this, done = std::move(on_done)](SearchResult result) {
        scans_in_flight_.fetch_sub(1, std::memory_order_relaxed);
        // This is the bottom tier, so a DeadlineExceededError here was
        // raised here: the budget died in this searcher's queue.
        if (!result.ok() && qos::IsDeadlineExceeded(result.error)) {
          deadline_exceeded_->Increment();
        }
        done(std::move(result));
      });
}

std::vector<SearchHit> Searcher::SearchBatched(
    FeatureView query, std::size_t k, std::size_t nprobe,
    CategoryId category_filter, const FilterExpression& filter,
    FilterScanStats* stats, qos::Deadline deadline,
    TierScanStats* tier_stats) const {
  const std::shared_ptr<IvfIndex> index =
      index_.load(std::memory_order_acquire);
  if (!index) throw std::runtime_error(node_.name() + ": no index installed");
  // Tiered partition under a deadline: give cold-list faults half the
  // remaining budget, so a string of disk reads degrades the query to a
  // reduced nprobe instead of blowing through the whole budget (the
  // cheapest rung of the degradation ladder, applied at the io layer).
  Micros io_budget = 0;
  if (index->tiered_store() != nullptr && !deadline.unlimited()) {
    io_budget = std::max<Micros>(
        1, deadline.RemainingMicros(MonotonicClock::Instance()) / 2);
  }
  // Solo fast path: batching disabled, nobody else in flight, or a budget
  // too tight to spend any of it waiting (the window plus the batch's own
  // scan must both fit).
  Micros window = batch_window_micros_;
  if (!deadline.unlimited()) {
    const Micros remaining =
        deadline.RemainingMicros(MonotonicClock::Instance());
    if (remaining < 2 * batch_window_micros_) {
      window = 0;
    } else {
      window = std::min<Micros>(window, remaining / 2);
    }
  }
  if (max_batch_queries_ < 2 || window == 0 ||
      scans_in_flight_.load(std::memory_order_relaxed) <= 1) {
    batch_size_->Record(1);
    return index->Search(query, k, nprobe, category_filter,
                         filter.empty() ? nullptr : &filter, stats, io_budget,
                         tier_stats);
  }

  PendingScan me;
  me.query = IvfBatchQuery{query, k, nprobe, category_filter};
  me.query.io_budget_micros = io_budget;
  me.query.tier_stats = tier_stats;
  if (!filter.empty()) {
    // `filter` outlives the batch: the leader's SearchBatch call completes
    // before any waiter (this frame included) unparks.
    me.query.filter = &filter;
    me.query.filter_stats = stats;
  }

  std::unique_lock lock(batch_mu_);
  if (forming_ && forming_->open &&
      forming_->waiters.size() < max_batch_queries_) {
    // Follower: join the forming batch and park until the leader delivers.
    // The wait is bounded — the leader's window is capped and the batch scan
    // itself is admitted work either way.
    const std::shared_ptr<FormingBatch> batch = forming_;
    batch->waiters.push_back(&me);
    if (batch->waiters.size() >= max_batch_queries_) {
      batch->open = false;  // full: wake the leader early
      batch_cv_.notify_all();
    }
    batch_cv_.wait(lock, [&] { return me.done; });
    if (me.error) std::rethrow_exception(me.error);
    return std::move(me.hits);
  }

  // Leader: open a batch, wait out the window (followers may close it early
  // by filling the batch), then run the whole group through SearchBatch.
  const auto batch = std::make_shared<FormingBatch>();
  batch->waiters.push_back(&me);
  forming_ = batch;
  const auto wait_until = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(window);
  while (batch->open &&
         batch_cv_.wait_until(lock, wait_until) != std::cv_status::timeout) {
  }
  batch->open = false;
  if (forming_ == batch) forming_.reset();
  const std::vector<PendingScan*> group = batch->waiters;
  lock.unlock();

  batch_size_->Record(static_cast<std::int64_t>(group.size()));
  try {
    std::vector<IvfBatchQuery> queries;
    queries.reserve(group.size());
    for (const PendingScan* waiter : group) queries.push_back(waiter->query);
    std::vector<std::vector<SearchHit>> results = index->SearchBatch(queries);
    for (std::size_t i = 0; i < group.size(); ++i) {
      group[i]->hits = std::move(results[i]);
    }
  } catch (...) {
    // Every waiter sees the failure; none can be left parked.
    const std::exception_ptr error = std::current_exception();
    for (PendingScan* waiter : group) waiter->error = error;
  }

  lock.lock();
  for (PendingScan* waiter : group) waiter->done = true;
  batch_cv_.notify_all();
  lock.unlock();
  if (me.error) std::rethrow_exception(me.error);
  return std::move(me.hits);
}

std::vector<SearchHit> Searcher::SearchLocal(FeatureView query, std::size_t k,
                                             std::size_t nprobe,
                                             CategoryId category_filter,
                                             const FilterExpression& filter,
                                             FilterScanStats* stats) const {
  const std::shared_ptr<IvfIndex> index =
      index_.load(std::memory_order_acquire);
  if (!index) throw std::runtime_error(node_.name() + ": no index installed");
  if (filter.empty() && stats == nullptr) {
    return index->Search(query, k, nprobe, category_filter);
  }
  return index->Search(query, k, nprobe, category_filter, filter, stats);
}

void Searcher::RenderTierStatus(std::ostream& os) const {
  const std::shared_ptr<IvfIndex> index =
      index_.load(std::memory_order_acquire);
  if (!index) return;
  const TieredListStore* store = index->tiered_store();
  if (store == nullptr) return;
  os << node_.name() << ":\n";
  store->RenderStatus(os);
}

std::vector<SearchHit> Searcher::SearchExhaustiveLocal(FeatureView query,
                                                       std::size_t k) const {
  const std::shared_ptr<IvfIndex> index =
      index_.load(std::memory_order_acquire);
  if (!index) throw std::runtime_error(node_.name() + ": no index installed");
  return index->SearchExhaustive(query, k);
}

std::vector<SearchHit> Searcher::SearchExhaustiveLocal(
    FeatureView query, std::size_t k, const FilterExpression& filter) const {
  const std::shared_ptr<IvfIndex> index =
      index_.load(std::memory_order_acquire);
  if (!index) throw std::runtime_error(node_.name() + ": no index installed");
  return index->SearchExhaustive(query, k, filter);
}

void Searcher::StartConsuming(std::shared_ptr<Subscription> subscription) {
  std::lock_guard lock(consumer_mu_);
  StopConsumingLocked();
  subscription_ = std::move(subscription);
  consumer_ = std::thread([this, sub = subscription_] { ConsumeLoop(sub); });
}

void Searcher::StopConsuming() {
  std::lock_guard lock(consumer_mu_);
  StopConsumingLocked();
}

void Searcher::StopConsumingLocked() {
  if (subscription_) subscription_->Close();
  if (consumer_.joinable()) consumer_.join();
  subscription_.reset();
}

void Searcher::ConsumeLoop(std::shared_ptr<Subscription> subscription) {
  while (auto message = subscription->Receive()) {
    ApplyUpdate(*message);
    messages_consumed_.fetch_add(1, std::memory_order_relaxed);
    consumed_total_->Increment();
    if (progress_listener_) progress_listener_();
  }
}

bool Searcher::ApplyUpdate(const ProductUpdateMessage& message) {
  std::lock_guard lock(writer_mu_);
  if (!indexer_) {
    JDVS_LOG(kWarning) << node_.name() << ": dropping update before index install";
    return false;
  }
  if (message.sequence != 0 &&
      message.sequence <= applied_sequence_.load(std::memory_order_relaxed)) {
    // Duplicate of an already-applied update (catch-up replay overlaps the
    // fresh subscription's buffered backlog); applying twice would be wrong
    // for attribute deltas, so skip by sequence.
    deduped_total_->Increment();
    return false;
  }
  // Real-time leg of a sampled trace: publish → queue → this partition's
  // apply, stitched together by the context carried in the message.
  obs::Span span(trace_sink_, MonotonicClock::Instance(),
                 obs::TraceContext{message.trace_id, message.parent_span_id},
                 "rt.apply", node_.name());
  span.AddTag("type", UpdateTypeName(message.type));
  span.AddTag("product", static_cast<std::uint64_t>(message.product_id));
  indexer_->Apply(message);
  if (message.sequence != 0) {
    applied_sequence_.store(message.sequence, std::memory_order_relaxed);
  }
  return true;
}

void Searcher::FinishPendingExpansions() {
  std::lock_guard lock(writer_mu_);
  const std::shared_ptr<IvfIndex> index =
      index_.load(std::memory_order_acquire);
  if (index) index->FinishPendingExpansions();
}

RealTimeIndexerCounters Searcher::update_counters() const {
  std::lock_guard lock(writer_mu_);
  RealTimeIndexerCounters total = retired_counters_;
  if (indexer_) total.Add(indexer_->counters());
  return total;
}

void Searcher::MergeUpdateLatencyInto(Histogram& out) const {
  std::lock_guard lock(writer_mu_);
  out.Merge(retired_latency_);
  if (indexer_) out.Merge(indexer_->latency_micros());
}

IvfIndexStats Searcher::index_stats() const {
  const std::shared_ptr<IvfIndex> index =
      index_.load(std::memory_order_acquire);
  if (!index) return IvfIndexStats{};
  return index->Stats();
}

}  // namespace jdvs

#include "search/reranker.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.h"

namespace jdvs {
namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

RerankFeatures ExtractRerankFeatures(const SearchHit& hit,
                                     CategoryId detected_category) {
  RerankFeatures features;
  features.similarity = 1.0 / (1.0 + static_cast<double>(hit.distance));
  features.log_sales = std::log1p(static_cast<double>(hit.attributes.sales));
  features.log_praise = std::log1p(static_cast<double>(hit.attributes.praise));
  features.log_price =
      std::log1p(static_cast<double>(hit.attributes.price_cents) / 100.0);
  features.category_match = hit.category == detected_category ? 1.0 : 0.0;
  return features;
}

LearnedReranker LearnedReranker::Train(const std::vector<Example>& dataset,
                                       const TrainOptions& options) {
  assert(!dataset.empty());
  std::array<double, RerankFeatures::kCount> weights{};
  double bias = 0.0;

  // Shuffled index order per epoch, deterministic in the seed.
  std::vector<std::size_t> order(dataset.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  Rng rng(options.seed);

  for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng);
    // 1/sqrt decay keeps early epochs fast and late epochs stable.
    const double lr = options.learning_rate /
                      std::sqrt(1.0 + static_cast<double>(epoch));
    for (const std::size_t i : order) {
      const Example& example = dataset[i];
      const auto x = example.features.AsArray();
      double z = bias;
      for (std::size_t j = 0; j < x.size(); ++j) z += weights[j] * x[j];
      const double gradient =
          Sigmoid(z) - (example.clicked ? 1.0 : 0.0);
      for (std::size_t j = 0; j < x.size(); ++j) {
        weights[j] -= lr * (gradient * x[j] + options.l2 * weights[j]);
      }
      bias -= lr * gradient;
    }
  }
  return LearnedReranker(weights, bias);
}

double LearnedReranker::Score(const RerankFeatures& features) const {
  const auto x = features.AsArray();
  double z = bias_;
  for (std::size_t j = 0; j < x.size(); ++j) z += weights_[j] * x[j];
  return z;
}

double LearnedReranker::PredictClick(const RerankFeatures& features) const {
  return Sigmoid(Score(features));
}

std::vector<RankedResult> LearnedReranker::Rerank(std::vector<SearchHit> hits,
                                                  CategoryId detected_category,
                                                  std::size_t k) const {
  std::vector<RankedResult> ranked;
  ranked.reserve(hits.size());
  for (auto& hit : hits) {
    const double score = Score(ExtractRerankFeatures(hit, detected_category));
    ranked.push_back(RankedResult{std::move(hit), score});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedResult& a, const RankedResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.hit.image_id < b.hit.image_id;
            });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

}  // namespace jdvs

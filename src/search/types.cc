#include "search/types.h"

#include <algorithm>

namespace jdvs {

std::vector<SearchHit> MergeHits(std::vector<std::vector<SearchHit>> partials,
                                 std::size_t k) {
  std::vector<SearchHit> merged;
  std::size_t total = 0;
  for (const auto& p : partials) total += p.size();
  merged.reserve(total);
  for (auto& p : partials) {
    std::move(p.begin(), p.end(), std::back_inserter(merged));
  }
  const auto by_distance = [](const SearchHit& a, const SearchHit& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.image_id < b.image_id;  // deterministic tie-break
  };
  if (merged.size() > k) {
    std::partial_sort(merged.begin(), merged.begin() + k, merged.end(),
                      by_distance);
    merged.resize(k);
  } else {
    std::sort(merged.begin(), merged.end(), by_distance);
  }
  // The same image can surface from multiple replicas on failover retries;
  // keep the first (closest) occurrence.
  std::vector<SearchHit> deduped;
  deduped.reserve(merged.size());
  for (auto& hit : merged) {
    const bool seen =
        std::any_of(deduped.begin(), deduped.end(), [&](const SearchHit& h) {
          return h.image_id == hit.image_id;
        });
    if (!seen) deduped.push_back(std::move(hit));
  }
  return deduped;
}

}  // namespace jdvs

// Learned re-ranking.
//
// The paper's conclusion: "We plan on integrating advanced search and
// ranking algorithms into our visual search system in the future work." This
// module implements that extension: a logistic-regression re-ranker trained
// on (result features, click) examples, scoring the same attribute signals
// the static ranker uses (similarity, sales, praise, price, detected-
// category match) with learned weights instead of hand-tuned ones.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "index/ivf_index.h"
#include "search/types.h"

namespace jdvs {

// Feature vector of one (query, result) pair.
struct RerankFeatures {
  static constexpr std::size_t kCount = 5;

  double similarity = 0.0;      // 1 / (1 + L2^2)
  double log_sales = 0.0;       // log1p(sales)
  double log_praise = 0.0;      // log1p(praise)
  double log_price = 0.0;       // log1p(price_yuan)
  double category_match = 0.0;  // 1 if hit category == detected category

  std::array<double, kCount> AsArray() const {
    return {similarity, log_sales, log_praise, log_price, category_match};
  }
};

RerankFeatures ExtractRerankFeatures(const SearchHit& hit,
                                     CategoryId detected_category);

class LearnedReranker {
 public:
  struct Example {
    RerankFeatures features;
    bool clicked = false;
  };

  struct TrainOptions {
    std::size_t epochs = 50;
    double learning_rate = 0.1;
    double l2 = 1e-4;
    std::uint64_t seed = 1;
  };

  LearnedReranker() = default;
  LearnedReranker(const std::array<double, RerankFeatures::kCount>& weights,
                  double bias)
      : weights_(weights), bias_(bias) {}

  // Trains by SGD on the logistic loss. Requires a non-empty dataset.
  static LearnedReranker Train(const std::vector<Example>& dataset,
                               const TrainOptions& options);
  static LearnedReranker Train(const std::vector<Example>& dataset) {
    return Train(dataset, TrainOptions{});
  }

  // Linear score (monotone in the click probability); larger is better.
  double Score(const RerankFeatures& features) const;

  // Predicted click probability.
  double PredictClick(const RerankFeatures& features) const;

  // Re-ranks hits by learned score, truncating to k.
  std::vector<RankedResult> Rerank(std::vector<SearchHit> hits,
                                   CategoryId detected_category,
                                   std::size_t k) const;

  const std::array<double, RerankFeatures::kCount>& weights() const {
    return weights_;
  }
  double bias() const { return bias_; }

 private:
  std::array<double, RerankFeatures::kCount> weights_{};
  double bias_ = 0.0;
};

}  // namespace jdvs

// Blender: top tier of Figure 10.
//
// "When a blender receives an image query request, it extracts the features
// and sends them to all the brokers. The blender also combines and ranks the
// results and returns to the user." Query-side feature extraction (detect
// the item, identify its category, run the CNN) happens here, charged via a
// configurable extraction cost.
//
// Execution model: extract + cache lookup run inline on a blender pool
// thread, then the broker fan-out, global merge, attribute ranking, cache
// fill and span finish are continuations — the blender thread frees itself
// after dispatching, broker results count down a FanInCollector, and the
// merge/rank leg is re-posted to the blender pool by the last broker
// completion. The public SearchAsync future is fulfilled by a promise at
// the end of the chain; only the blocking Search() facade ever waits.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "embedding/category_detector.h"
#include "embedding/extractor.h"
#include "net/node.h"
#include "net/rpc.h"
#include "obs/critical_path.h"
#include "obs/flight_recorder.h"
#include "obs/registry.h"
#include "obs/slow_log.h"
#include "obs/trace.h"
#include "qos/admission.h"
#include "qos/deadline.h"
#include "qos/load_controller.h"
#include "search/broker.h"
#include "search/query_cache.h"
#include "search/ranking.h"
#include "search/types.h"

namespace jdvs {

// Thrown (through the returned future) when a blender sheds load because
// its in-flight query count exceeded the configured admission limit. The
// front end treats an overloaded blender like a failed one and retries on
// another instance.
class BlenderOverloadedError : public std::runtime_error {
 public:
  explicit BlenderOverloadedError(const std::string& blender)
      : std::runtime_error("blender overloaded: " + blender) {}
};

class Blender {
 public:
  struct Config {
    std::size_t threads = 4;
    LatencyModel latency;
    std::uint64_t seed = 0;
    // Simulated query-side CNN cost (item detection + feature extraction).
    std::int64_t query_extraction_micros = 0;
    RankingConfig ranking;
    std::size_t default_k = 10;
    std::size_t nprobe = 0;  // 0 = searcher index default
    // When true, the detector's category is pushed down to searchers as a
    // scan filter (Section 2.4's category identification narrowing the
    // search) instead of only boosting the ranking. A misdetection then
    // excludes the true product from retrieval entirely.
    bool use_category_filter = false;
    // Admission control: maximum queries in flight (queued + executing) on
    // this blender before new ones are shed; 0 disables the limit.
    std::size_t max_in_flight = 0;
    // QoS knobs (all default to the pre-QoS behavior):
    // Extra cap on background-class queries (recovery catch-up, probes) so
    // they can never occupy more than this share of slots; 0 = no extra cap.
    std::size_t max_background_in_flight = 0;
    // Token bucket on admissions per second across both classes; 0 = off.
    double admission_tokens_per_sec = 0.0;
    double admission_token_burst = 0.0;  // 0 = one second of tokens
    // Latency budget stamped on queries that don't carry one
    // (QueryOptions::kNoBudget); 0 = unlimited.
    Micros default_budget_micros = 0;
    // Shared degradation controller (typically owned by the cluster, fed by
    // every blender); null = never degrade.
    qos::LoadController* load_controller = nullptr;
    // nprobe used while degraded (level >= 1); 0 falls back to 1, the most
    // aggressive shrink — the cluster builder normally sets this to a
    // fraction of the index's configured nprobe.
    std::size_t degraded_nprobe = 0;
    // Per-call blender->broker RPC timeout; 0 = none. A broker whose reply
    // the fabric swallowed then costs one timeout instead of hanging the
    // whole fan-in: the slot fails typed (RpcTimeoutError), the blender
    // degrades to the surviving brokers' coverage, and the query completes.
    Micros broker_rpc_timeout_micros = 0;
    // Result cache (off by default: the paper's freshness requirement).
    bool enable_result_cache = false;
    QueryCacheConfig cache;
    // Source of the index-version counter for strict cache invalidation;
    // null falls back to TTL-only staleness bounding.
    const std::atomic<std::uint64_t>* index_version = nullptr;
    // Observability (null = process-global defaults). The tracer decides
    // which queries get a root span (its sample_every knob); the registry
    // receives per-blender counters and the per-stage latency histograms;
    // the slow log retains span trees of queries over its threshold.
    obs::Registry* registry = nullptr;
    obs::Tracer* tracer = nullptr;
    obs::SlowQueryLog* slow_log = nullptr;
    // Performance diagnosis (null = off). The flight recorder receives a
    // stage-timing record for *every* completed query (sampled or not); the
    // aggregator folds each sampled query's critical path into registry
    // histograms after the root span finishes.
    obs::FlightRecorder* flight_recorder = nullptr;
    obs::CriticalPathAggregator* critical_paths = nullptr;
  };

  Blender(std::string name, const Config& config,
          const SyntheticEmbedder& embedder, const CategoryDetector& detector,
          std::vector<Broker*> brokers);
  // Joins in-flight pool tasks before member teardown (see definition).
  ~Blender();

  Blender(const Blender&) = delete;
  Blender& operator=(const Blender&) = delete;

  // Full query path on this blender's node; blocks until the response is
  // ready (the front end's synchronous HTTP round trip). This facade is the
  // only place the query path waits on a future.
  QueryResponse Search(const QueryImage& query, const QueryOptions& options);
  QueryResponse Search(const QueryImage& query) {
    return Search(query, QueryOptions{.k = config_.default_k,
                                      .nprobe = config_.nprobe});
  }

  std::future<QueryResponse> SearchAsync(const QueryImage& query,
                                         const QueryOptions& options);

  // Continuation-passing entry point: the outcome (response, or the typed
  // admission/deadline error) is delivered to `on_done` on whichever pool
  // thread finishes the chain — or inline, synchronously, when the query is
  // shed at admission (overload or a zero budget) without touching the
  // pool. Open-loop load generators drive this overload: dispatch never
  // blocks on completion, so offered load is independent of service rate.
  using SearchCallback = std::function<void(AsyncResult<QueryResponse>)>;
  void SearchAsync(const QueryImage& query, const QueryOptions& options,
                   SearchCallback on_done);

  bool healthy() const { return !node_.failed(); }
  Node& node() { return node_; }
  const std::string& name() const { return node_.name(); }
  std::uint64_t queries_served() const {
    return queries_.load(std::memory_order_relaxed);
  }
  std::uint64_t queries_shed() const {
    return shed_.load(std::memory_order_relaxed);
  }
  // Null when the result cache is disabled.
  const QueryCache* result_cache() const { return cache_.get(); }
  std::size_t in_flight() const { return admission_.total_in_flight(); }
  // The priority-aware admission controller gating this blender (per-class
  // admitted/shed counts for harnesses and tests).
  const qos::AdmissionController& admission() const { return admission_; }

 private:
  // Heap-owned per-request state shared by the continuation chain. Owns the
  // root span (so the trace stitches across thread hops), the response
  // under construction, and the promise fulfilled at the end of the chain.
  // Fulfillment releases the in-flight admission slot on *every* path —
  // success, broker failure, NodeFailedError before the chain starts — and
  // the destructor backstops a dropped chain so the future never dangles.
  struct RequestState;

  void BeginQuery(const std::shared_ptr<RequestState>& state,
                  const QueryImage& query);
  void FinishQuery(const std::shared_ptr<RequestState>& state,
                   std::vector<AsyncResult<Broker::Reply>> slots);

  // Files the request's stage timings with the flight recorder (every
  // completion path: success, cache hit, deadline death). Returns the
  // record's ordinal (0 when no recorder is wired), used as the exemplar
  // ref on the query_total histogram so even unsampled queries stay
  // findable from a latency bucket.
  std::uint64_t RecordFlight(RequestState& state, Micros total_micros,
                             bool error, bool cache_hit);

  // Resolves the query's latency budget (explicit, configured default, or
  // unlimited) into an absolute deadline.
  qos::Deadline ResolveDeadline(const QueryOptions& options) const;

  Config config_;
  Node node_;
  const SyntheticEmbedder& embedder_;
  const CategoryDetector& detector_;
  std::vector<Broker*> brokers_;
  std::unique_ptr<QueryCache> cache_;
  obs::Tracer* tracer_;
  qos::AdmissionController admission_;
  obs::Counter* queries_total_;   // registry mirror of queries_
  obs::Counter* shed_total_;      // registry mirror of shed_
  obs::Counter* degraded_total_;  // queries answered with partial coverage
  obs::Counter* deadline_exceeded_;   // jdvs_qos_deadline_exceeded_total{tier=blender}
  obs::Counter* degraded_level_[2];   // jdvs_qos_degraded_queries_total{level=1|2}
  Histogram* total_stage_;        // jdvs_stage_micros{stage="query_total"}
  Histogram* extract_stage_;      // jdvs_stage_micros{stage="extract"}
  Histogram* rank_stage_;         // jdvs_stage_micros{stage="rank"}
  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> shed_{0};
};

}  // namespace jdvs

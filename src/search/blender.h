// Blender: top tier of Figure 10.
//
// "When a blender receives an image query request, it extracts the features
// and sends them to all the brokers. The blender also combines and ranks the
// results and returns to the user." Query-side feature extraction (detect
// the item, identify its category, run the CNN) happens here, charged via a
// configurable extraction cost.
//
// Execution model: extract + cache lookup run inline on a blender pool
// thread, then the broker fan-out, global merge, attribute ranking, cache
// fill and span finish are continuations — the blender thread frees itself
// after dispatching, broker results count down a FanInCollector, and the
// merge/rank leg is re-posted to the blender pool by the last broker
// completion. The public SearchAsync future is fulfilled by a promise at
// the end of the chain; only the blocking Search() facade ever waits.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "embedding/category_detector.h"
#include "embedding/extractor.h"
#include "net/node.h"
#include "net/rpc.h"
#include "obs/registry.h"
#include "obs/slow_log.h"
#include "obs/trace.h"
#include "search/broker.h"
#include "search/query_cache.h"
#include "search/ranking.h"
#include "search/types.h"

namespace jdvs {

// Thrown (through the returned future) when a blender sheds load because
// its in-flight query count exceeded the configured admission limit. The
// front end treats an overloaded blender like a failed one and retries on
// another instance.
class BlenderOverloadedError : public std::runtime_error {
 public:
  explicit BlenderOverloadedError(const std::string& blender)
      : std::runtime_error("blender overloaded: " + blender) {}
};

class Blender {
 public:
  struct Config {
    std::size_t threads = 4;
    LatencyModel latency;
    std::uint64_t seed = 0;
    // Simulated query-side CNN cost (item detection + feature extraction).
    std::int64_t query_extraction_micros = 0;
    RankingConfig ranking;
    std::size_t default_k = 10;
    std::size_t nprobe = 0;  // 0 = searcher index default
    // When true, the detector's category is pushed down to searchers as a
    // scan filter (Section 2.4's category identification narrowing the
    // search) instead of only boosting the ranking. A misdetection then
    // excludes the true product from retrieval entirely.
    bool use_category_filter = false;
    // Admission control: maximum queries in flight (queued + executing) on
    // this blender before new ones are shed; 0 disables the limit.
    std::size_t max_in_flight = 0;
    // Result cache (off by default: the paper's freshness requirement).
    bool enable_result_cache = false;
    QueryCacheConfig cache;
    // Source of the index-version counter for strict cache invalidation;
    // null falls back to TTL-only staleness bounding.
    const std::atomic<std::uint64_t>* index_version = nullptr;
    // Observability (null = process-global defaults). The tracer decides
    // which queries get a root span (its sample_every knob); the registry
    // receives per-blender counters and the per-stage latency histograms;
    // the slow log retains span trees of queries over its threshold.
    obs::Registry* registry = nullptr;
    obs::Tracer* tracer = nullptr;
    obs::SlowQueryLog* slow_log = nullptr;
  };

  Blender(std::string name, const Config& config,
          const SyntheticEmbedder& embedder, const CategoryDetector& detector,
          std::vector<Broker*> brokers);

  Blender(const Blender&) = delete;
  Blender& operator=(const Blender&) = delete;

  // Full query path on this blender's node; blocks until the response is
  // ready (the front end's synchronous HTTP round trip). This facade is the
  // only place the query path waits on a future.
  QueryResponse Search(const QueryImage& query, const QueryOptions& options);
  QueryResponse Search(const QueryImage& query) {
    return Search(query, QueryOptions{.k = config_.default_k,
                                      .nprobe = config_.nprobe});
  }

  std::future<QueryResponse> SearchAsync(const QueryImage& query,
                                         const QueryOptions& options);

  bool healthy() const { return !node_.failed(); }
  Node& node() { return node_; }
  const std::string& name() const { return node_.name(); }
  std::uint64_t queries_served() const {
    return queries_.load(std::memory_order_relaxed);
  }
  std::uint64_t queries_shed() const {
    return shed_.load(std::memory_order_relaxed);
  }
  // Null when the result cache is disabled.
  const QueryCache* result_cache() const { return cache_.get(); }
  std::size_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }

 private:
  // Heap-owned per-request state shared by the continuation chain. Owns the
  // root span (so the trace stitches across thread hops), the response
  // under construction, and the promise fulfilled at the end of the chain.
  // Fulfillment releases the in-flight admission slot on *every* path —
  // success, broker failure, NodeFailedError before the chain starts — and
  // the destructor backstops a dropped chain so the future never dangles.
  struct RequestState;

  void BeginQuery(const std::shared_ptr<RequestState>& state,
                  const QueryImage& query);
  void FinishQuery(const std::shared_ptr<RequestState>& state,
                   std::vector<AsyncResult<Broker::Reply>> slots);

  Config config_;
  Node node_;
  const SyntheticEmbedder& embedder_;
  const CategoryDetector& detector_;
  std::vector<Broker*> brokers_;
  std::unique_ptr<QueryCache> cache_;
  obs::Tracer* tracer_;
  obs::Counter* queries_total_;   // registry mirror of queries_
  obs::Counter* shed_total_;      // registry mirror of shed_
  obs::Counter* degraded_total_;  // queries answered with partial coverage
  Histogram* total_stage_;        // jdvs_stage_micros{stage="query_total"}
  Histogram* extract_stage_;      // jdvs_stage_micros{stage="extract"}
  Histogram* rank_stage_;         // jdvs_stage_micros{stage="rank"}
  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::size_t> in_flight_{0};
};

}  // namespace jdvs

// Result ranking.
//
// Section 2.4: "Finally, the similar products are ranked according to their
// sales, praise, price and other attributes." The blender applies this
// scoring over the merged top-k: visual similarity dominates, business
// attributes (log-scaled so whales don't drown similarity) tip the balance
// between visually comparable items, and a detected-category match gives a
// small boost.
#pragma once

#include <cstddef>
#include <vector>

#include "index/ivf_index.h"
#include "search/types.h"

namespace jdvs {

struct RankingConfig {
  double w_similarity = 1.0;
  double w_sales = 0.02;
  double w_praise = 0.01;
  double w_price = 0.01;           // penalty weight on log price
  double w_category_match = 0.05;  // boost when category == detected
};

// Score for one hit; larger is better.
double RankScore(const SearchHit& hit, CategoryId detected_category,
                 const RankingConfig& config);

// Ranks hits by score (descending) and truncates to k.
std::vector<RankedResult> RankResults(std::vector<SearchHit> hits,
                                      CategoryId detected_category,
                                      const RankingConfig& config,
                                      std::size_t k);

}  // namespace jdvs

// Query/response types flowing through the 3-level search architecture.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "index/ivf_index.h"
#include "qos/deadline.h"
#include "vecmath/vector.h"

namespace jdvs {

// A user's query photo. Synthetic stand-in for uploaded pixels: the photo
// depicts `subject_product` (ground truth for recall measurements) of
// `true_category`; `query_seed` drives the photo-specific noise.
struct QueryImage {
  ProductId subject_product = 0;
  CategoryId true_category = 0;
  std::uint64_t query_seed = 0;
};

struct QueryOptions {
  std::size_t k = 10;       // results returned to the user
  std::size_t nprobe = 0;   // 0 = index default
  // When set (!= kNoCategoryFilter), searchers only consider images of this
  // category — the production use of the detector's output ("the product
  // category of the item is identified", Section 2.4). A misdetection then
  // excludes the true product, which is the accuracy/latency trade the
  // category-filter ablation measures.
  CategoryId category_filter = kNoCategoryFilter;

  // Structured attribute predicates (hybrid filtered search): every result
  // must satisfy this conjunction of category-tag and numeric-range
  // predicates, enforced by bitmap pushdown inside the searcher scan. Empty
  // = unfiltered. Conjoined with category_filter when both are set.
  FilterExpression filter;

  // Latency budget (QoS): the blender stamps budget -> absolute deadline at
  // admission and every tier below fails fast once it expires. kNoBudget
  // (the default) falls back to the blender's configured default budget, or
  // unlimited when none is configured. 0 means "no time left": the query is
  // shed at admission without touching the pool.
  static constexpr Micros kNoBudget = -1;
  Micros budget_micros = kNoBudget;
  // Admission class: background work (recovery catch-up, probes, analytics
  // replays) is capped separately so it cannot starve interactive users.
  qos::Priority priority = qos::Priority::kInteractive;
};

// One final ranked result ("the similar products are ranked according to
// their sales, praise, price and other attributes", Section 2.4).
struct RankedResult {
  SearchHit hit;
  double score = 0.0;  // larger is better
};

struct QueryResponse {
  std::vector<RankedResult> results;
  Micros total_micros = 0;     // end-to-end at the blender
  std::size_t brokers_asked = 0;
  std::size_t broker_failures = 0;
  CategoryId detected_category = 0;
  // True when at least one broker slot failed (e.g. NoHealthyBackendError
  // for a fully-down partition): the results cover only the reachable part
  // of the corpus — graceful degradation, not a query error.
  bool degraded = false;
  // Adaptive-degradation effort level this query was answered at: 0 = full
  // effort, 1 = shrunk nprobe, 2 = additionally skipped attribute
  // re-ranking. Nonzero responses are never cached.
  int degradation_level = 0;
  // True when served from the blender's result cache (staleness bounded by
  // the cache TTL) instead of a live fan-out.
  bool from_cache = false;
  // Trace id of this query when it was sampled by the blender's tracer
  // (0 = untraced). Feed it to obs::TraceSink::Render for the span tree.
  std::uint64_t trace_id = 0;
};

// Merges per-searcher / per-broker partial hit lists into a global top-k by
// distance (each input list is already sorted ascending).
std::vector<SearchHit> MergeHits(std::vector<std::vector<SearchHit>> partials,
                                 std::size_t k);

}  // namespace jdvs

// VisualSearchCluster: the whole Figure 1 system wired together.
//
// Owns the data substrates (catalog, image store, feature DB, embedder), the
// indexing pipelines (daily message log + real-time topic queue + weekly
// full indexing), and the 3-level search topology (load balancer -> blenders
// -> brokers -> searchers with replicated partitions). The paper's testbed —
// 1 Nginx front end, 6 blender/broker servers, 20 searchers — is the default
// topology.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cluster/quantizer.h"
#include "ctrl/replica_state.h"
#include "embedding/category_detector.h"
#include "embedding/extractor.h"
#include "index/full_index_builder.h"
#include "mq/message_log.h"
#include "mq/topic_queue.h"
#include "net/fault_injector.h"
#include "net/load_balancer.h"
#include "net/partitioner.h"
#include "obs/critical_path.h"
#include "obs/flight_recorder.h"
#include "obs/introspection.h"
#include "obs/registry.h"
#include "obs/slow_log.h"
#include "obs/trace.h"
#include "qos/load_controller.h"
#include "search/blender.h"
#include "search/broker.h"
#include "search/searcher.h"
#include "store/catalog.h"
#include "store/feature_db.h"
#include "store/image_store.h"

namespace jdvs {

struct ClusterConfig {
  // Topology (defaults mirror the paper's evaluation testbed).
  std::size_t num_partitions = 20;
  std::size_t replicas_per_partition = 1;
  std::size_t num_brokers = 3;
  std::size_t num_blenders = 3;
  std::size_t searcher_threads = 2;
  std::size_t broker_threads = 4;
  std::size_t blender_threads = 4;
  LatencyModel hop_latency;
  // Overrides hop_latency for searcher nodes only (e.g. slow bottom tier
  // under a thin broker tier, the shape the async pipeline must absorb).
  std::optional<LatencyModel> searcher_latency;

  // Data / model substrates.
  EmbedderConfig embedder;
  CategoryDetectorConfig detector;
  ExtractionCostModel extraction;             // indexing-side CNN cost
  std::int64_t query_extraction_micros = 0;   // query-side CNN cost
  std::int64_t kv_lookup_micros = 0;          // feature-DB round trip
  ImageStoreConfig image_store;

  // Index.
  IvfIndexConfig ivf;
  KMeansConfig kmeans;
  std::size_t training_sample = 2048;

  // Ranking / query defaults.
  RankingConfig ranking;
  std::size_t default_k = 10;
  // Per-blender admission limit (0 = unlimited).
  std::size_t blender_max_in_flight = 0;
  // QoS / overload control (src/qos; all defaults = pre-QoS behavior).
  // Extra per-blender cap on background-class queries (recovery catch-up,
  // probes); 0 = no extra cap.
  std::size_t blender_max_background_in_flight = 0;
  // Per-blender token bucket on admissions per second; 0 = off.
  double blender_admission_tokens_per_sec = 0.0;
  // Latency budget stamped on queries that don't carry their own
  // (QueryOptions::kNoBudget); 0 = unlimited.
  Micros default_query_budget_micros = 0;
  // Adaptive degradation thresholds; both triggers 0 = degradation off (no
  // controller is created). The controller is shared by every blender.
  qos::LoadControlConfig load_control;
  // nprobe served while degraded; 0 = max(1, ivf.nprobe / 4).
  std::size_t degraded_nprobe = 0;
  // Per-blender result cache (off by default: freshness first). The cache's
  // strict version check is wired to the cluster's update counter.
  bool blender_result_cache = false;
  QueryCacheConfig blender_cache;

  // ---- Gray-failure tolerance (src/net fault layer; defaults = off) ----
  // Fault injector attached to every tier's node (null = clean fabric).
  // Chaos harnesses own the injector and flip link faults at runtime.
  FaultInjector* fault_injector = nullptr;
  // Per-attempt broker->searcher RPC timeout; 0 = none. Required for
  // bounded-time queries on a lossy fabric: a dropped message becomes a
  // typed RpcTimeoutError the broker fails over on.
  Micros searcher_rpc_timeout_micros = 0;
  // Per-call blender->broker RPC timeout; 0 = none.
  Micros broker_rpc_timeout_micros = 0;
  // Hedged broker->searcher requests (tail-latency defense); knobs mirror
  // Broker::Config.
  bool enable_hedging = false;
  Micros hedge_delay_micros = 0;  // 0 = adaptive from replica EWMAs
  double hedge_delay_multiplier = 3.0;
  Micros hedge_delay_min_micros = 500;
  double hedge_rate_cap = 0.1;
  // Order replica candidates by (state, latency EWMA) instead of rotation.
  bool latency_aware_selection = false;

  // Real-time indexing on (the paper's system) or off (the Figure 12
  // baseline, where updates wait for the next full indexing cycle).
  bool realtime_enabled = true;

  // Parallelism of full index builds.
  std::size_t build_threads = 8;

  // Observability. Null registry/sink = cluster-private instances, so two
  // clusters in one process (e.g. the Figure 12 W/ vs W/O testbeds) don't
  // mix their metrics; pass explicit pointers to share or to use the
  // process-global obs::Registry::Default()/obs::TraceSink::Default().
  obs::Registry* registry = nullptr;
  obs::TraceSink* trace_sink = nullptr;
  // Trace 1-in-N queries and updates end to end; 0 = tracing off (default),
  // 1 = every query. Sampling is counter-based, hence deterministic.
  std::uint64_t trace_sample_every = 0;
  // Traced queries slower than this keep their full span tree in the slow
  // log (worst `slow_log_capacity` retained).
  Micros slow_query_threshold_micros = 500'000;
  std::size_t slow_log_capacity = 8;
  // Performance diagnosis: the always-on flight recorder files a stage
  // record for every query (sampled or not). Disable only to measure its
  // own overhead; the fault-free cost is one striped spinlock per query.
  bool enable_flight_recorder = true;
  std::size_t flight_recorder_stripes = 8;
  std::size_t flight_recorder_capacity = 4096;  // total ring, across stripes
  // SLO breach threshold for DumpOnAnomaly; 0 = use
  // slow_query_threshold_micros (the same "this query was too slow" line).
  Micros flight_slo_micros = 0;

  std::uint64_t seed = 2018;
};

class VisualSearchCluster {
 public:
  explicit VisualSearchCluster(const ClusterConfig& config);
  ~VisualSearchCluster();

  VisualSearchCluster(const VisualSearchCluster&) = delete;
  VisualSearchCluster& operator=(const VisualSearchCluster&) = delete;

  // ---- Substrate access (populate the catalog before building indexes) ----
  ProductCatalog& catalog() { return catalog_; }
  ImageStore& image_store() { return image_store_; }
  FeatureDb& features() { return features_; }
  const SyntheticEmbedder& embedder() const { return embedder_; }
  const UrlPartitioner& partitioner() const { return partitioner_; }
  const ClusterConfig& config() const { return config_; }
  MessageLog& day_log() { return day_log_; }

  // ---- Lifecycle ----

  // Trains the coarse quantizer and builds+installs one full index per
  // searcher (parallel across searchers).
  void BuildAndInstallFullIndexes();

  // Subscribes every searcher to the update topic and starts their consumer
  // loops (no-op when realtime is disabled).
  void Start();

  // Stops consumers. Idempotent; also run by the destructor.
  void Stop();

  // ---- Runtime operations ----

  // User query through the front-end load balancer.
  QueryResponse Query(const QueryImage& query);
  QueryResponse Query(const QueryImage& query, const QueryOptions& options);

  // Product update: applied to the product catalog and image store, buffered
  // in the day log (Figure 2), and — when real-time indexing is enabled —
  // published to the searcher update topic (Figure 4).
  void PublishUpdate(ProductUpdateMessage message);

  // End-of-day / periodic full indexing (Figure 2-3): replays the day log,
  // retrains the quantizer, rebuilds every partition and hot-swaps the
  // indexes under live traffic. This is also how the W/O-real-time baseline
  // ever learns about updates.
  void RunFullIndexingCycle();

  // Blocks until every searcher has drained its update subscription (or the
  // timeout elapses); returns true when drained.
  bool WaitForUpdatesDrained(Micros timeout_micros = 30'000'000);

  // ---- Control-plane hooks (used by ctrl::ClusterController) ----

  // Fresh subscription to the update topic (what a recovering searcher's
  // consumer loop reads). Pre-closed when the topic was already shut down.
  std::shared_ptr<Subscription> SubscribeUpdates();
  // True while the update topic is live (realtime on and Start() ran).
  bool realtime_running() const {
    return started_ && config_.realtime_enabled;
  }
  // (Re)trains the coarse quantizer from the current catalog and retains it
  // as the cluster quantizer.
  std::shared_ptr<const CoarseQuantizer> TrainQuantizer();
  // Builds one partition's full index against the retained quantizer (train
  // first). The caller owns distribution: snapshot it, install it, etc.
  std::unique_ptr<IvfIndex> BuildPartitionIndex(std::size_t partition,
                                                FullIndexReport* report =
                                                    nullptr);
  // Highest update sequence the day log has assigned (0 = none yet).
  std::uint64_t last_update_sequence() const {
    return day_log_.last_sequence();
  }
  // Replica health table: brokers read it on dispatch, the control plane
  // writes it.
  ctrl::ReplicaStateTable& replica_states() { return *replica_states_; }
  const ctrl::ReplicaStateTable& replica_states() const {
    return *replica_states_;
  }
  // State-table slot of (partition, replica) — searchers register in flat
  // construction order, so the slot is the flat searcher index.
  std::size_t replica_slot(std::size_t partition, std::size_t replica) const {
    return partition * config_.replicas_per_partition + replica;
  }

  // ---- Introspection ----
  std::size_t num_searchers() const { return searchers_.size(); }
  Searcher& searcher(std::size_t partition, std::size_t replica = 0) {
    return *searchers_[partition * config_.replicas_per_partition + replica];
  }
  Searcher& searcher_flat(std::size_t i) { return *searchers_[i]; }
  Broker& broker(std::size_t i) { return *brokers_[i]; }
  Blender& blender(std::size_t i) { return *blenders_[i]; }
  std::size_t num_brokers() const { return brokers_.size(); }
  std::size_t num_blenders() const { return blenders_.size(); }
  // The front-end balancer itself, for callers that retry on a different
  // blender (workload::QueryClient's overload retry).
  RoundRobinBalancer<Blender>& front_end() { return *front_end_; }
  // Shared degradation controller; null when degradation is off (no
  // load_control trigger configured).
  qos::LoadController* load_controller() { return load_controller_.get(); }

  std::uint64_t updates_published() const { return updates_published_; }

  // Aggregates across all searchers.
  RealTimeIndexerCounters TotalUpdateCounters() const;
  void MergeUpdateLatencyInto(Histogram& out) const;
  IvfIndexStats AggregateIndexStats() const;

  // ---- Observability ----
  // The cluster's metrics registry (every tier's instruments in one dump).
  obs::Registry& registry() { return *registry_; }
  const obs::Registry& registry() const { return *registry_; }
  // Finished spans of sampled traces; Render(trace_id) prints one query's
  // blender → broker → searcher tree.
  obs::TraceSink& trace_sink() { return *trace_sink_; }
  obs::Tracer& tracer() { return *tracer_; }
  obs::SlowQueryLog& slow_log() { return *slow_log_; }
  // Null when enable_flight_recorder is false.
  obs::FlightRecorder* flight_recorder() { return flight_recorder_.get(); }
  // Per-stage critical-path aggregator (null when tracing is off — with no
  // sampled span trees there is nothing to attribute).
  obs::CriticalPathAggregator* critical_paths() {
    return critical_paths_.get();
  }
  // statusz / tracez / metricz pages over this cluster's live state.
  obs::Introspection& introspection() { return *introspection_; }

  // Snapshots every node pool's saturation stats into the registry as
  // jdvs_pool_busy_threads{node=...} / jdvs_pool_queue_depth{node=...}
  // gauges (plus _peak variants). Call before dumping the registry.
  void SamplePoolGauges();

  // Human-readable operational summary of every tier (the ops dashboard in
  // text form): topology, per-tier health, index sizes, update counters.
  std::string StatusReport() const;

 private:
  void ApplyToCatalog(const ProductUpdateMessage& message);
  void BuildAndInstall(std::shared_ptr<const CoarseQuantizer> quantizer);

  ClusterConfig config_;
  // Observability substrate first: the topic queue and every tier below
  // register instruments against it.
  std::unique_ptr<obs::Registry> owned_registry_;
  std::unique_ptr<obs::TraceSink> owned_trace_sink_;
  obs::Registry* registry_;
  obs::TraceSink* trace_sink_;
  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<obs::SlowQueryLog> slow_log_;
  SyntheticEmbedder embedder_;
  CategoryDetector detector_;
  ProductCatalog catalog_;
  ImageStore image_store_;
  FeatureDb features_;
  UrlPartitioner partitioner_;
  MessageLog day_log_;
  TopicQueue topic_;

  std::shared_ptr<const CoarseQuantizer> quantizer_;

  // Destruction order matters: blenders call brokers call searchers, and
  // brokers read the replica state table, so searchers_ / the table are
  // declared first (destroyed last). The drain cv and load controller are
  // referenced from searcher/blender callbacks, so they outlive both tiers.
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  // Diagnosis layer precedes the tiers for the same reason as the load
  // controller: blender completion callbacks write flight records and fold
  // critical paths during teardown, so the recorder/aggregator must outlive
  // the blenders (declared earlier = destroyed later).
  std::unique_ptr<obs::FlightRecorder> flight_recorder_;
  std::unique_ptr<obs::CriticalPathAggregator> critical_paths_;
  std::unique_ptr<obs::Introspection> introspection_;
  std::unique_ptr<qos::LoadController> load_controller_;
  std::unique_ptr<ctrl::ReplicaStateTable> replica_states_;
  std::vector<std::unique_ptr<Searcher>> searchers_;
  std::vector<std::unique_ptr<Broker>> brokers_;
  std::vector<std::unique_ptr<Blender>> blenders_;
  std::unique_ptr<RoundRobinBalancer<Blender>> front_end_;

  std::atomic<std::uint64_t> updates_published_{0};
  bool started_ = false;
};

}  // namespace jdvs

#include "search/query_cache.h"

#include <cassert>

#include "common/hash.h"
#include "common/rng.h"
#include "vecmath/distance.h"

namespace jdvs {

QueryCache::QueryCache(std::size_t dim, const QueryCacheConfig& config,
                       const Clock& clock, obs::Registry* registry,
                       std::string_view owner)
    : dim_(dim), config_(config), clock_(&clock) {
  config_.signature_bits = (std::max<std::size_t>(config_.signature_bits, 1) +
                            63) / 64 * 64;
  config_.capacity = std::max<std::size_t>(config_.capacity, 1);
  Rng rng(config_.seed);
  hyperplanes_.resize(config_.signature_bits * dim_);
  for (float& x : hyperplanes_) x = static_cast<float>(rng.NextGaussian());

  obs::Registry& reg =
      registry != nullptr ? *registry : obs::Registry::Default();
  lookups_total_ = &reg.GetCounter(
      obs::Labeled("jdvs_cache_lookups_total", "owner", owner));
  hits_total_ =
      &reg.GetCounter(obs::Labeled("jdvs_cache_hits_total", "owner", owner));
  misses_total_ =
      &reg.GetCounter(obs::Labeled("jdvs_cache_misses_total", "owner", owner));
  rejected_degraded_total_ = &reg.GetCounter(
      obs::Labeled("jdvs_cache_rejected_degraded_total", "owner", owner));
}

std::uint64_t QueryCache::KeyFor(FeatureView feature, std::size_t k,
                                 std::size_t nprobe,
                                 CategoryId category_filter,
                                 const FilterExpression& filter) const {
  assert(feature.size() == dim_);
  std::uint64_t key = Mix64(config_.seed);
  std::uint64_t word = 0;
  for (std::size_t b = 0; b < config_.signature_bits; ++b) {
    const FeatureView plane(&hyperplanes_[b * dim_], dim_);
    word = (word << 1) | (InnerProduct(plane, feature) >= 0.f ? 1u : 0u);
    if ((b + 1) % 64 == 0) {
      key = HashCombine(key, Mix64(word));
      word = 0;
    }
  }
  key = HashCombine(key, Mix64(k));
  key = HashCombine(key, Mix64(nprobe + 0x9e37ULL));
  key = HashCombine(key, Mix64(category_filter));
  // Full filter expression: the empty expression hashes to a fixed seed, so
  // legacy (unfiltered) keys stay stable across this addition of the input.
  key = HashCombine(key, filter.Hash());
  return key;
}

std::optional<QueryResponse> QueryCache::Lookup(std::uint64_t key,
                                                std::uint64_t version) {
  std::lock_guard lock(mu_);
  ++stats_.lookups;
  lookups_total_->Increment();
  const auto it = map_.find(key);
  if (it == map_.end()) {
    misses_total_->Increment();
    return std::nullopt;
  }
  Entry& entry = *it->second;
  if (clock_->NowMicros() - entry.inserted_at > config_.ttl_micros) {
    ++stats_.expired;
    misses_total_->Increment();
    lru_.erase(it->second);
    map_.erase(it);
    return std::nullopt;
  }
  if (config_.strict_version_check && entry.version != version) {
    ++stats_.stale;
    misses_total_->Increment();
    lru_.erase(it->second);
    map_.erase(it);
    return std::nullopt;
  }
  // Touch: move to the front of the LRU list.
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  hits_total_->Increment();
  return entry.response;
}

void QueryCache::Insert(std::uint64_t key, std::uint64_t version,
                        const QueryResponse& response) {
  if (response.degraded || response.degradation_level > 0) {
    std::lock_guard lock(mu_);
    ++stats_.rejected_degraded;
    rejected_degraded_total_->Increment();
    return;
  }
  std::lock_guard lock(mu_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    lru_.erase(it->second);
    map_.erase(it);
  }
  lru_.push_front(Entry{key, version, clock_->NowMicros(), response});
  map_[key] = lru_.begin();
  ++stats_.insertions;
  while (lru_.size() > config_.capacity) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void QueryCache::Clear() {
  std::lock_guard lock(mu_);
  lru_.clear();
  map_.clear();
}

std::size_t QueryCache::size() const {
  std::lock_guard lock(mu_);
  return lru_.size();
}

QueryCacheStats QueryCache::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace jdvs

#include "search/ranking.h"

#include <algorithm>
#include <cmath>

namespace jdvs {

double RankScore(const SearchHit& hit, CategoryId detected_category,
                 const RankingConfig& config) {
  // Distance -> similarity in (0, 1]; L2^2 of 0 maps to 1.
  const double similarity = 1.0 / (1.0 + static_cast<double>(hit.distance));
  double score = config.w_similarity * similarity;
  score += config.w_sales * std::log1p(static_cast<double>(hit.attributes.sales));
  score +=
      config.w_praise * std::log1p(static_cast<double>(hit.attributes.praise));
  score -= config.w_price *
           std::log1p(static_cast<double>(hit.attributes.price_cents) / 100.0);
  if (hit.category == detected_category) score += config.w_category_match;
  return score;
}

std::vector<RankedResult> RankResults(std::vector<SearchHit> hits,
                                      CategoryId detected_category,
                                      const RankingConfig& config,
                                      std::size_t k) {
  std::vector<RankedResult> ranked;
  ranked.reserve(hits.size());
  for (auto& hit : hits) {
    const double score = RankScore(hit, detected_category, config);
    ranked.push_back(RankedResult{std::move(hit), score});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedResult& a, const RankedResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.hit.image_id < b.hit.image_id;
            });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

}  // namespace jdvs

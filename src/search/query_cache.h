// Query-result cache for the blender tier.
//
// Production visual-search traffic is heavily skewed toward trending
// products, so front ends cache hot results. The paper's defining
// requirement, however, is data freshness — "the search results should
// reflect the most recent updates" — so this cache is deliberately
// conservative: entries expire after a short TTL (bounding staleness to a
// known window) and can additionally be pinned to an index-version counter
// for strict invalidation. Disabled by default; the ablation bench
// quantifies the hit-rate-vs-staleness trade.
//
// Keys are locality-sensitive signatures of the query feature (random
// hyperplane bits), so near-duplicate query photos of the same product can
// share an entry; the full key mixes in k and nprobe.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "obs/registry.h"
#include "search/types.h"
#include "vecmath/vector.h"

namespace jdvs {

struct QueryCacheConfig {
  std::size_t capacity = 4096;  // entries; LRU eviction beyond this
  // Staleness bound: entries older than this are treated as misses.
  Micros ttl_micros = 2'000'000;
  // Signature resolution: more bits = fewer near-duplicate collisions but
  // also fewer near-duplicate hits. Rounded up to a multiple of 64.
  std::size_t signature_bits = 64;
  std::uint64_t seed = 97;
  // When true, a cached entry also requires the index-version counter to be
  // unchanged since insertion (strict freshness; near-zero hit rate under a
  // production update stream — the trade the paper's freshness goal forces).
  bool strict_version_check = false;
};

struct QueryCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t expired = 0;   // TTL misses
  std::uint64_t stale = 0;     // version-check misses
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  // Inserts refused because the response was degraded (partial coverage or
  // a nonzero QoS degradation level) — low-effort answers must not outlive
  // the overload that produced them.
  std::uint64_t rejected_degraded = 0;

  double HitRate() const {
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  }
};

class QueryCache {
 public:
  // `registry` (null = process-global default) receives mirror counters of
  // the stats below, labeled with `owner` (the owning blender's name), so a
  // single exposition dump reports every cache.
  QueryCache(std::size_t dim, const QueryCacheConfig& config = {},
             const Clock& clock = MonotonicClock::Instance(),
             obs::Registry* registry = nullptr,
             std::string_view owner = "default");

  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  // Cache key for a query feature + options. Deterministic; thread-safe.
  // The full FilterExpression participates in the key: two queries that
  // differ only in a predicate (category tag or numeric range) must never
  // share an entry — a cached hit list for "price <= 5000" is wrong for
  // "price <= 4999".
  std::uint64_t KeyFor(FeatureView feature, std::size_t k, std::size_t nprobe,
                       CategoryId category_filter = kNoCategoryFilter,
                       const FilterExpression& filter = {}) const;

  // Returns the cached response if present, fresh (TTL) and — under strict
  // checking — inserted at the same `version`.
  std::optional<QueryResponse> Lookup(std::uint64_t key,
                                      std::uint64_t version);

  // Inserts a response. Degraded responses — partial coverage (`degraded`)
  // or answered at a nonzero degradation level — are refused: serving them
  // from cache would extend a transient overload's quality loss past the
  // overload itself (and past the failed partition's recovery).
  void Insert(std::uint64_t key, std::uint64_t version,
              const QueryResponse& response);

  void Clear();
  std::size_t size() const;
  QueryCacheStats stats() const;

 private:
  struct Entry {
    std::uint64_t key;
    std::uint64_t version;
    Micros inserted_at;
    QueryResponse response;
  };

  const std::size_t dim_;
  QueryCacheConfig config_;
  const Clock* clock_;
  std::vector<float> hyperplanes_;  // signature_bits x dim

  // Registry mirrors of stats_ (hit/miss attribution in one dump).
  obs::Counter* lookups_total_;
  obs::Counter* hits_total_;
  obs::Counter* misses_total_;
  obs::Counter* rejected_degraded_total_;

  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> map_;
  QueryCacheStats stats_;
};

}  // namespace jdvs

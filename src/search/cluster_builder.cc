#include "search/cluster_builder.h"

#include <algorithm>
#include <sstream>
#include <chrono>
#include <thread>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace jdvs {
namespace {

constexpr const char* kUpdateTopic = "product-updates";

}  // namespace

VisualSearchCluster::VisualSearchCluster(const ClusterConfig& config)
    : config_(config),
      owned_registry_(config.registry == nullptr
                          ? std::make_unique<obs::Registry>()
                          : nullptr),
      owned_trace_sink_(config.trace_sink == nullptr
                            ? std::make_unique<obs::TraceSink>()
                            : nullptr),
      registry_(config.registry != nullptr ? config.registry
                                           : owned_registry_.get()),
      trace_sink_(config.trace_sink != nullptr ? config.trace_sink
                                               : owned_trace_sink_.get()),
      tracer_(std::make_unique<obs::Tracer>(
          trace_sink_,
          obs::TracerConfig{.sample_every = config.trace_sample_every,
                            .seed = config.seed})),
      slow_log_(std::make_unique<obs::SlowQueryLog>(
          obs::SlowLogConfig{
              .threshold_micros = config.slow_query_threshold_micros,
              .capacity = config.slow_log_capacity},
          trace_sink_)),
      embedder_(config.embedder),
      detector_(config.detector),
      image_store_(config.image_store),
      features_(embedder_, config.extraction, /*num_shards=*/64,
                config.kv_lookup_micros),
      partitioner_(config.num_partitions),
      topic_(/*per_subscription_capacity=*/65536, registry_) {
  // Searchers: one per (partition, replica). Each registers in the replica
  // state table in flat construction order, so slot == flat index.
  replica_states_ = std::make_unique<ctrl::ReplicaStateTable>(registry_);
  const std::size_t replicas = std::max<std::size_t>(
      config_.replicas_per_partition, 1);
  config_.replicas_per_partition = replicas;
  for (std::size_t p = 0; p < config_.num_partitions; ++p) {
    for (std::size_t r = 0; r < replicas; ++r) {
      Searcher::Config sc;
      sc.threads = config_.searcher_threads;
      sc.latency = config_.searcher_latency.value_or(config_.hop_latency);
      sc.seed = config_.seed + p * 131 + r;
      sc.registry = registry_;
      sc.trace_sink = trace_sink_;
      sc.fault_injector = config_.fault_injector;
      searchers_.push_back(std::make_unique<Searcher>(
          "searcher-p" + std::to_string(p) + "-r" + std::to_string(r), sc,
          features_, partitioner_.FilterFor(p)));
      replica_states_->Register(searchers_.back()->name());
    }
  }
  // Drain waiters park on drain_cv_ and consumers notify per message; the
  // empty lock_guard orders the notify after a waiter's predicate check, so
  // no wakeup is ever missed (messages_consumed_ is bumped before this
  // listener runs).
  for (const auto& searcher : searchers_) {
    searcher->SetProgressListener([this] {
      { std::lock_guard lock(drain_mu_); }
      drain_cv_.notify_all();
    });
  }

  // Performance-diagnosis layer: always-on flight recorder (every query,
  // sampled or not) + critical-path aggregator over sampled span trees.
  if (config_.enable_flight_recorder) {
    obs::FlightRecorder::Config frc;
    frc.stripes = std::max<std::size_t>(config_.flight_recorder_stripes, 1);
    frc.capacity_per_stripe = std::max<std::size_t>(
        config_.flight_recorder_capacity / frc.stripes, 1);
    frc.slo_micros = config_.flight_slo_micros > 0
                         ? config_.flight_slo_micros
                         : config_.slow_query_threshold_micros;
    flight_recorder_ = std::make_unique<obs::FlightRecorder>(
        frc, MonotonicClock::Instance(), registry_);
  }
  if (config_.trace_sample_every > 0) {
    critical_paths_ =
        std::make_unique<obs::CriticalPathAggregator>(trace_sink_, registry_);
  }

  // Shared degradation controller (only when a trigger is configured, so
  // pre-QoS clusters pay nothing on the query path).
  if (config_.load_control.p99_degrade_micros > 0 ||
      config_.load_control.queue_degrade_depth > 0) {
    load_controller_ = std::make_unique<qos::LoadController>(
        config_.load_control, MonotonicClock::Instance(), registry_);
    if (flight_recorder_ != nullptr) {
      // A degradation step-up is an anomaly worth the queries around it:
      // freeze the ring so the overload's onset is inspectable after the
      // fact. The recorder only takes its own locks, so calling it from
      // under the controller's rotation mutex is safe.
      obs::FlightRecorder* recorder = flight_recorder_.get();
      load_controller_->SetStepUpListener([recorder](int level) {
        recorder->DumpOnAnomaly("qos degradation stepped up to level " +
                                std::to_string(level));
      });
    }
  }

  // Brokers: contiguous partition ranges ("each broker asks a subset of
  // searchers").
  const std::size_t num_brokers =
      std::max<std::size_t>(std::min(config_.num_brokers,
                                     config_.num_partitions), 1);
  config_.num_brokers = num_brokers;
  for (std::size_t b = 0; b < num_brokers; ++b) {
    Broker::Config bc;
    bc.threads = config_.broker_threads;
    bc.latency = config_.hop_latency;
    bc.seed = config_.seed ^ (0xB0B0ULL + b);
    bc.registry = registry_;
    bc.trace_sink = trace_sink_;
    bc.rpc_timeout_micros = config_.searcher_rpc_timeout_micros;
    bc.enable_hedging = config_.enable_hedging;
    bc.hedge_delay_micros = config_.hedge_delay_micros;
    bc.hedge_delay_multiplier = config_.hedge_delay_multiplier;
    bc.hedge_delay_min_micros = config_.hedge_delay_min_micros;
    bc.hedge_rate_cap = config_.hedge_rate_cap;
    bc.latency_aware_selection = config_.latency_aware_selection;
    brokers_.push_back(
        std::make_unique<Broker>("broker-" + std::to_string(b), bc));
  }
  for (const auto& b : brokers_) b->SetReplicaStates(replica_states_.get());
  for (std::size_t p = 0; p < config_.num_partitions; ++p) {
    std::vector<Searcher*> partition_replicas;
    std::vector<std::size_t> state_slots;
    for (std::size_t r = 0; r < replicas; ++r) {
      partition_replicas.push_back(
          searchers_[p * replicas + r].get());
      state_slots.push_back(replica_slot(p, r));
    }
    brokers_[p % num_brokers]->AddPartition(std::move(partition_replicas),
                                            std::move(state_slots));
  }

  // Blenders: each connected to every broker.
  std::vector<Broker*> all_brokers;
  for (const auto& b : brokers_) all_brokers.push_back(b.get());
  for (std::size_t i = 0; i < std::max<std::size_t>(config_.num_blenders, 1);
       ++i) {
    Blender::Config lc;
    lc.threads = config_.blender_threads;
    lc.latency = config_.hop_latency;
    lc.seed = config_.seed ^ (0x1E4D ^ i);
    lc.query_extraction_micros = config_.query_extraction_micros;
    lc.ranking = config_.ranking;
    lc.default_k = config_.default_k;
    lc.nprobe = 0;
    lc.max_in_flight = config_.blender_max_in_flight;
    lc.max_background_in_flight = config_.blender_max_background_in_flight;
    lc.admission_tokens_per_sec = config_.blender_admission_tokens_per_sec;
    lc.default_budget_micros = config_.default_query_budget_micros;
    lc.load_controller = load_controller_.get();
    lc.degraded_nprobe =
        config_.degraded_nprobe > 0
            ? config_.degraded_nprobe
            : std::max<std::size_t>(config_.ivf.nprobe / 4, 1);
    lc.broker_rpc_timeout_micros = config_.broker_rpc_timeout_micros;
    lc.enable_result_cache = config_.blender_result_cache;
    lc.cache = config_.blender_cache;
    lc.index_version = &updates_published_;
    lc.registry = registry_;
    lc.tracer = tracer_.get();
    lc.slow_log = slow_log_.get();
    lc.flight_recorder = flight_recorder_.get();
    lc.critical_paths = critical_paths_.get();
    blenders_.push_back(std::make_unique<Blender>(
        "blender-" + std::to_string(i), lc, embedder_, detector_,
        all_brokers));
  }

  std::vector<Blender*> blender_ptrs;
  for (const auto& b : blenders_) blender_ptrs.push_back(b.get());
  front_end_ = std::make_unique<RoundRobinBalancer<Blender>>(
      std::move(blender_ptrs),
      [](const Blender& b) { return b.healthy(); });

  // Chaos fabric: one injector governs every tier's links, so a harness can
  // fault blender->broker, broker->searcher and ctrl->searcher edges
  // independently (decisions are keyed on (source, destination) names).
  if (config_.fault_injector != nullptr) {
    for (const auto& s : searchers_) {
      s->node().set_fault_injector(config_.fault_injector);
    }
    for (const auto& b : brokers_) {
      b->node().set_fault_injector(config_.fault_injector);
    }
    for (const auto& b : blenders_) {
      b->node().set_fault_injector(config_.fault_injector);
    }
  }

  // Per-tier pool queue-wait histograms: how long submitted work sat in a
  // node pool's queue before a worker picked it up — the saturation signal
  // the depth gauges only show as a point sample.
  auto attach_queue_wait = [this](Node& node, const char* tier) {
    node.pool().set_queue_wait_histogram(&registry_->GetHistogram(
        obs::Labeled("jdvs_pool_queue_wait_micros", "tier", tier)));
  };
  for (const auto& b : blenders_) attach_queue_wait(b->node(), "blender");
  for (const auto& b : brokers_) attach_queue_wait(b->node(), "broker");
  for (const auto& s : searchers_) attach_queue_wait(s->node(), "searcher");

  // Introspection pages. Cluster state reaches statusz through sections, so
  // obs keeps no dependency on search/ctrl/qos.
  introspection_ = std::make_unique<obs::Introspection>();
  introspection_->SetRegistry(registry_);
  introspection_->SetTraceSink(trace_sink_);
  introspection_->SetSlowLog(slow_log_.get());
  introspection_->SetFlightRecorder(flight_recorder_.get());
  introspection_->AddStatusSection(
      "cluster", [this](std::ostream& os) { os << StatusReport(); });
  introspection_->AddStatusSection("admission", [this](std::ostream& os) {
    for (const auto& b : blenders_) {
      const qos::AdmissionController& a = b->admission();
      os << b->name() << ": in_flight=" << a.total_in_flight()
         << " admitted=" << a.admitted(qos::Priority::kInteractive) << "/"
         << a.admitted(qos::Priority::kBackground)
         << " shed=" << a.shed(qos::Priority::kInteractive) << "/"
         << a.shed(qos::Priority::kBackground)
         << " (interactive/background)\n";
    }
  });
  introspection_->AddStatusSection("tier", [this](std::ostream& os) {
    // Tiered (mmap-served) partitions only; RAM-resident searchers render
    // nothing, so the section stays empty on a fully resident cluster.
    for (const auto& s : searchers_) s->RenderTierStatus(os);
  });
  introspection_->AddStatusSection("pools", [this](std::ostream& os) {
    auto row = [&os](Node& node) {
      const ThreadPool& pool = node.pool();
      os << node.name() << ": busy=" << pool.busy_threads() << "/"
         << pool.num_threads() << " (peak " << pool.peak_busy_threads()
         << ") queue=" << pool.queue_depth() << " (peak "
         << pool.peak_queue_depth() << ")\n";
    };
    for (const auto& b : blenders_) row(b->node());
    for (const auto& b : brokers_) row(b->node());
  });
}

VisualSearchCluster::~VisualSearchCluster() { Stop(); }

void VisualSearchCluster::BuildAndInstall(
    std::shared_ptr<const CoarseQuantizer> quantizer) {
  // Builds run in parallel across searchers; every substrate they touch
  // (catalog, image store, feature DB) is thread-safe, and each build only
  // writes its own fresh IvfIndex.
  //
  // The install resets each searcher's high-water mark to the day log's
  // last sequence at build start: the catalog already holds everything
  // published up to that point, so the built index covers it. Updates
  // racing the build get re-applied on top — applies are idempotent
  // (absolute attribute values, add = revalidate).
  const std::uint64_t hwm = day_log_.last_sequence();
  ThreadPool builders(std::max<std::size_t>(config_.build_threads, 1),
                      "index-build");
  std::vector<std::future<void>> done;
  done.reserve(searchers_.size());
  for (const auto& searcher_ptr : searchers_) {
    Searcher* searcher = searcher_ptr.get();
    done.push_back(builders.SubmitWithResult([this, searcher, quantizer,
                                              hwm] {
      FullIndexBuilderConfig fc;
      fc.index_config = config_.ivf;
      fc.training_sample = config_.training_sample;
      fc.kmeans = config_.kmeans;
      fc.seed = config_.seed;
      FullIndexBuilder builder(catalog_, image_store_, features_, fc);
      FullIndexReport report;
      auto index =
          builder.Build(quantizer, searcher->partition_filter(), &report,
                        PoolCopyExecutor(searcher->node().pool()));
      searcher->InstallIndex(std::move(index), hwm);
      JDVS_LOG(kInfo) << searcher->name() << ": installed full index with "
                      << report.images_indexed << " images ("
                      << report.features_reused << " reused, "
                      << report.features_extracted << " extracted)";
    }));
  }
  for (auto& f : done) f.get();
}

void VisualSearchCluster::BuildAndInstallFullIndexes() {
  FullIndexBuilderConfig fc;
  fc.index_config = config_.ivf;
  fc.training_sample = config_.training_sample;
  fc.kmeans = config_.kmeans;
  fc.seed = config_.seed;
  FullIndexBuilder builder(catalog_, image_store_, features_, fc);
  quantizer_ = builder.TrainQuantizer();
  BuildAndInstall(quantizer_);
}

void VisualSearchCluster::Start() {
  if (started_) return;
  started_ = true;
  if (!config_.realtime_enabled) return;
  for (const auto& searcher : searchers_) {
    searcher->StartConsuming(topic_.Subscribe(kUpdateTopic));
  }
}

void VisualSearchCluster::Stop() {
  if (!started_) return;
  topic_.CloseTopic(kUpdateTopic);
  for (const auto& searcher : searchers_) searcher->StopConsuming();
  started_ = false;
}

QueryResponse VisualSearchCluster::Query(const QueryImage& query) {
  return Query(query, QueryOptions{.k = config_.default_k, .nprobe = 0});
}

QueryResponse VisualSearchCluster::Query(const QueryImage& query,
                                         const QueryOptions& options) {
  return front_end_->Next().Search(query, options);
}

void VisualSearchCluster::ApplyToCatalog(const ProductUpdateMessage& message) {
  switch (message.type) {
    case UpdateType::kAttributeUpdate:
      catalog_.UpdateAttributes(message.product_id, message.attributes,
                                message.detail_url);
      break;
    case UpdateType::kAddProduct: {
      if (catalog_.Contains(message.product_id)) {
        catalog_.SetOnMarket(message.product_id, true);
        catalog_.UpdateAttributes(message.product_id, message.attributes,
                                  message.detail_url);
      } else {
        ProductRecord record;
        record.id = message.product_id;
        record.category = message.category_id;
        record.attributes = message.attributes;
        record.detail_url = message.detail_url;
        record.image_urls = message.image_urls;
        record.on_market = true;
        catalog_.Upsert(std::move(record));
      }
      for (const std::string& url : message.image_urls) {
        image_store_.Put(url, message.product_id, message.category_id);
      }
      break;
    }
    case UpdateType::kRemoveProduct:
      catalog_.SetOnMarket(message.product_id, false);
      break;
  }
}

void VisualSearchCluster::PublishUpdate(ProductUpdateMessage message) {
  // Real-time traces: the publish is the root span; each searcher's apply
  // becomes an "rt.apply" child via the context carried in the message.
  obs::Span span = tracer_->StartTrace("update");
  if (span.sampled()) {
    span.AddTag("type", UpdateTypeName(message.type));
    span.AddTag("product", static_cast<std::uint64_t>(message.product_id));
    message.trace_id = span.context().trace_id;
    message.parent_span_id = span.context().span_id;
  }
  ApplyToCatalog(message);
  // The day log assigns the sequence; stamp it onto the published copy so
  // searchers track their high-water mark against the log.
  message.sequence = day_log_.Append(message);
  updates_published_.fetch_add(1, std::memory_order_relaxed);
  if (config_.realtime_enabled && started_) {
    topic_.Publish(kUpdateTopic, std::move(message));
  }
}

std::shared_ptr<Subscription> VisualSearchCluster::SubscribeUpdates() {
  return topic_.Subscribe(kUpdateTopic);
}

std::shared_ptr<const CoarseQuantizer> VisualSearchCluster::TrainQuantizer() {
  FullIndexBuilderConfig fc;
  fc.index_config = config_.ivf;
  fc.training_sample = config_.training_sample;
  fc.kmeans = config_.kmeans;
  fc.seed = config_.seed;
  FullIndexBuilder builder(catalog_, image_store_, features_, fc);
  quantizer_ = builder.TrainQuantizer();
  return quantizer_;
}

std::unique_ptr<IvfIndex> VisualSearchCluster::BuildPartitionIndex(
    std::size_t partition, FullIndexReport* report) {
  if (!quantizer_) TrainQuantizer();
  FullIndexBuilderConfig fc;
  fc.index_config = config_.ivf;
  fc.training_sample = config_.training_sample;
  fc.kmeans = config_.kmeans;
  fc.seed = config_.seed;
  FullIndexBuilder builder(catalog_, image_store_, features_, fc);
  return builder.Build(quantizer_, partitioner_.FilterFor(partition), report);
}

void VisualSearchCluster::RunFullIndexingCycle() {
  FullIndexBuilderConfig fc;
  fc.index_config = config_.ivf;
  fc.training_sample = config_.training_sample;
  fc.kmeans = config_.kmeans;
  fc.seed = config_.seed;
  FullIndexBuilder builder(catalog_, image_store_, features_, fc);
  // The day log was already applied to the catalog on publish; replaying it
  // is idempotent and mirrors the paper's pipeline, after which the log is
  // truncated for the next day.
  builder.ApplyMessageLog(day_log_);
  quantizer_ = builder.TrainQuantizer();
  BuildAndInstall(quantizer_);
}

bool VisualSearchCluster::WaitForUpdatesDrained(Micros timeout_micros) {
  if (!config_.realtime_enabled || !started_) return true;
  const std::uint64_t published =
      updates_published_.load(std::memory_order_relaxed);
  // Event-driven: consumers notify drain_cv_ per message (see the progress
  // listeners wired in the constructor), so the waiter parks instead of
  // burning a 1ms poll loop — and wakes the moment the last message lands.
  std::unique_lock lock(drain_mu_);
  return drain_cv_.wait_for(
      lock, std::chrono::microseconds(timeout_micros), [&] {
        for (const auto& searcher : searchers_) {
          if (searcher->messages_consumed() < published) return false;
        }
        return true;
      });
}

RealTimeIndexerCounters VisualSearchCluster::TotalUpdateCounters() const {
  RealTimeIndexerCounters total;
  for (const auto& searcher : searchers_) {
    total.Add(searcher->update_counters());
  }
  return total;
}

void VisualSearchCluster::MergeUpdateLatencyInto(Histogram& out) const {
  for (const auto& searcher : searchers_) {
    searcher->MergeUpdateLatencyInto(out);
  }
}

std::string VisualSearchCluster::StatusReport() const {
  std::ostringstream os;
  os << "VisualSearchCluster: " << config_.num_partitions << " partitions x "
     << config_.replicas_per_partition << " replicas, "
     << brokers_.size() << " brokers, " << blenders_.size() << " blenders, "
     << "realtime=" << (config_.realtime_enabled ? "on" : "off") << "\n";

  const IvfIndexStats index = AggregateIndexStats();
  os << "index: " << index.total_images << " images (" << index.valid_images
     << " valid), " << index.num_lists << " inverted lists, "
     << index.list_expansions << " expansions, largest list "
     << index.largest_list << "\n";

  const RealTimeIndexerCounters updates = TotalUpdateCounters();
  os << "updates: " << updates.TotalMessages() << " messages ("
     << updates.attribute_updates << " update / " << updates.additions
     << " add / " << updates.deletions << " delete), " << updates.images_added
     << " images added, " << updates.images_revalidated << " revalidated, "
     << updates.features_extracted << " extracted\n";

  os << "day log: " << day_log_.size() << " buffered messages; feature DB: "
     << features_.size() << " features\n";

  for (std::size_t b = 0; b < brokers_.size(); ++b) {
    os << "  " << brokers_[b]->name() << ": "
       << brokers_[b]->num_partitions() << " partitions, "
       << brokers_[b]->failovers() << " failovers, "
       << brokers_[b]->partition_failures() << " partition failures\n";
  }
  for (std::size_t i = 0; i < blenders_.size(); ++i) {
    os << "  " << blenders_[i]->name() << ": "
       << blenders_[i]->queries_served() << " queries, "
       << blenders_[i]->queries_shed() << " shed, "
       << (blenders_[i]->healthy() ? "healthy" : "FAILED") << "\n";
  }
  std::size_t down = 0;
  for (const auto& searcher : searchers_) {
    if (searcher->node().failed()) ++down;
  }
  os << "  searchers: " << searchers_.size() - down << "/"
     << searchers_.size() << " healthy\n";
  const ctrl::ReplicaStateCounts states = replica_states_->Counts();
  os << "  replica states: " << states.up << " up / " << states.suspect
     << " suspect / " << states.down << " down / " << states.recovering
     << " recovering\n";
  if (load_controller_) {
    os << "  qos: degradation level " << load_controller_->level() << " ("
       << load_controller_->steps_up() << " steps up, "
       << load_controller_->steps_down() << " down)\n";
  }
  return os.str();
}

void VisualSearchCluster::SamplePoolGauges() {
  auto sample = [this](Node& node) {
    const ThreadPool& pool = node.pool();
    registry_
        ->GetGauge(obs::Labeled("jdvs_pool_busy_threads", "node", node.name()))
        .Set(static_cast<std::int64_t>(pool.busy_threads()));
    registry_
        ->GetGauge(
            obs::Labeled("jdvs_pool_busy_threads_peak", "node", node.name()))
        .Set(static_cast<std::int64_t>(pool.peak_busy_threads()));
    registry_
        ->GetGauge(obs::Labeled("jdvs_pool_queue_depth", "node", node.name()))
        .Set(static_cast<std::int64_t>(pool.queue_depth()));
    registry_
        ->GetGauge(
            obs::Labeled("jdvs_pool_queue_depth_peak", "node", node.name()))
        .Set(static_cast<std::int64_t>(pool.peak_queue_depth()));
  };
  for (const auto& blender : blenders_) sample(blender->node());
  for (const auto& broker : brokers_) sample(broker->node());
  for (const auto& searcher : searchers_) sample(searcher->node());
}

IvfIndexStats VisualSearchCluster::AggregateIndexStats() const {
  IvfIndexStats total;
  for (const auto& searcher : searchers_) {
    const IvfIndexStats s = searcher->index_stats();
    total.total_images += s.total_images;
    total.valid_images += s.valid_images;
    total.num_lists += s.num_lists;
    total.largest_list = std::max(total.largest_list, s.largest_list);
    total.list_expansions += s.list_expansions;
    total.buffer_bytes += s.buffer_bytes;
  }
  return total;
}

}  // namespace jdvs

// Umbrella public header for the jdvs library.
//
// jdvs reproduces "The Design and Implementation of a Real Time Visual
// Search System on JD E-commerce Platform" (MIDDLEWARE 2018): a real-time
// image-retrieval system with a forward index + IVF inverted index core,
// lock-free real-time updates, periodic full indexing, and a 3-level
// distributed search architecture (blender / broker / searcher).
//
// Quick start:
//
//   jdvs::ClusterConfig config;                  // paper-testbed topology
//   jdvs::VisualSearchCluster cluster(config);
//   jdvs::GenerateCatalog({}, cluster.catalog(), cluster.image_store(),
//                         &cluster.features());
//   cluster.BuildAndInstallFullIndexes();
//   cluster.Start();
//   auto response = cluster.Query({product_id, category, /*seed=*/1});
//
#pragma once

#include "cluster/kmeans.h"
#include "cluster/quantizer.h"
#include "common/clock.h"
#include "common/flags.h"
#include "common/histogram.h"
#include "common/logging.h"
#include "common/rng.h"
#include "ctrl/controller.h"
#include "ctrl/failure_detector.h"
#include "ctrl/replica_state.h"
#include "embedding/category_detector.h"
#include "embedding/extractor.h"
#include "index/bitmap.h"
#include "index/digest.h"
#include "index/forward_index.h"
#include "index/full_index_builder.h"
#include "index/inverted_index.h"
#include "index/ivf_index.h"
#include "index/realtime_indexer.h"
#include "index/snapshot.h"
#include "kvstore/kvstore.h"
#include "hashing/binary_hash.h"
#include "imi/multi_index.h"
#include "lsh/lsh_index.h"
#include "metrics/cdf.h"
#include "metrics/latency_recorder.h"
#include "metrics/qps_counter.h"
#include "metrics/time_series.h"
#include "mq/message.h"
#include "mq/message_log.h"
#include "mq/topic_queue.h"
#include "net/latency_model.h"
#include "net/load_balancer.h"
#include "net/node.h"
#include "net/partitioner.h"
#include "obs/counter.h"
#include "obs/critical_path.h"
#include "obs/flight_recorder.h"
#include "obs/gauge.h"
#include "obs/introspection.h"
#include "obs/registry.h"
#include "obs/slow_log.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "pq/codebook.h"
#include "pq/ivfpq_index.h"
#include "pq/pq_snapshot.h"
#include "qos/admission.h"
#include "qos/deadline.h"
#include "qos/load_controller.h"
#include "search/blender.h"
#include "search/broker.h"
#include "search/cluster_builder.h"
#include "search/query_cache.h"
#include "search/ranking.h"
#include "search/reranker.h"
#include "search/searcher.h"
#include "search/types.h"
#include "store/catalog.h"
#include "store/feature_db.h"
#include "store/image_store.h"
#include "tier/mmap_file.h"
#include "tier/tiered_snapshot.h"
#include "tier/tiered_store.h"
#include "vecmath/distance.h"
#include "vecmath/topk.h"
#include "vecmath/vector.h"
#include "vecmath/vector_set.h"
#include "workload/catalog_gen.h"
#include "workload/day_trace.h"
#include "workload/trace_io.h"
#include "workload/query_client.h"

#include "obs/introspection.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "obs/critical_path.h"
#include "obs/flight_recorder.h"
#include "obs/registry.h"
#include "obs/slow_log.h"
#include "obs/trace.h"

namespace jdvs::obs {
namespace {

void SectionHeader(std::ostream& os, const std::string& title) {
  os << "---- " << title << " ----\n";
}

void RenderFlightRecord(std::ostream& os, const FlightRecord& record) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(record.trace_id));
  os << "  #" << record.ordinal << " trace=" << buf
     << " total=" << record.total_micros << "us";
  if (record.cache_hit) os << " [cache]";
  if (record.error) os << " [error]";
  if (record.degraded) {
    os << " [degraded L" << static_cast<int>(record.degradation_level) << ']';
  }
  const std::string summary = CriticalPathFromFlightRecord(record).Summary();
  if (!summary.empty()) os << " | " << summary;
  os << '\n';
}

}  // namespace

void Introspection::AddStatusSection(std::string title,
                                     SectionRenderer renderer) {
  std::lock_guard lock(sections_mu_);
  sections_.emplace_back(std::move(title), std::move(renderer));
}

std::string Introspection::StatusZ() const {
  std::ostringstream os;
  os << "==== statusz ====\n";
  std::vector<std::pair<std::string, SectionRenderer>> sections;
  {
    std::lock_guard lock(sections_mu_);
    sections = sections_;
  }
  for (const auto& [title, renderer] : sections) {
    SectionHeader(os, title);
    renderer(os);
  }
  if (flight_recorder_ != nullptr) {
    SectionHeader(os, "flight recorder");
    os << "  enabled=" << (flight_recorder_->enabled() ? "yes" : "no")
       << " armed=" << (flight_recorder_->armed() ? "yes" : "no")
       << " recorded=" << flight_recorder_->recorded()
       << " anomalies=" << flight_recorder_->anomalies()
       << " dumps=" << flight_recorder_->dumps_taken()
       << " slo=" << flight_recorder_->config().slo_micros << "us\n";
  }
  return os.str();
}

std::string Introspection::TraceZ(std::size_t max_traces,
                                  std::size_t max_records) const {
  std::ostringstream os;
  os << "==== tracez ====\n";
  if (trace_sink_ != nullptr) {
    SectionHeader(os, "recent sampled traces");
    // Latest root spans (finish-time descending), rendered as full trees
    // with their critical path.
    std::vector<SpanRecord> roots;
    for (SpanRecord& span : trace_sink_->Collect()) {
      if (span.parent_span_id == 0) roots.push_back(std::move(span));
    }
    std::sort(roots.begin(), roots.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                return a.end_micros > b.end_micros;
              });
    if (roots.empty()) os << "  (none)\n";
    for (std::size_t i = 0; i < roots.size() && i < max_traces; ++i) {
      os << trace_sink_->Render(roots[i].trace_id);
      const std::string summary =
          ComputeCriticalPath(trace_sink_->SpansFor(roots[i].trace_id))
              .Summary();
      if (!summary.empty()) os << "   critical path: " << summary << '\n';
    }
  }
  if (slow_log_ != nullptr) {
    SectionHeader(os, "slow queries");
    os << slow_log_->Render();
  }
  if (flight_recorder_ != nullptr) {
    SectionHeader(os, "flight recorder (latest records)");
    std::vector<FlightRecord> records = flight_recorder_->Snapshot();
    const std::size_t begin =
        records.size() > max_records ? records.size() - max_records : 0;
    if (records.empty()) os << "  (none)\n";
    for (std::size_t i = begin; i < records.size(); ++i) {
      RenderFlightRecord(os, records[i]);
    }
    SectionHeader(os, "anomaly dumps");
    const auto dumps = flight_recorder_->dumps();
    if (dumps.empty()) os << "  (none)\n";
    for (const FlightRecorder::Dump& dump : dumps) {
      os << "  dump @" << dump.at_micros << "us: " << dump.reason << " ("
         << dump.records.size() << " records)\n";
      // The worst record in the dump is almost always the page's culprit.
      const auto worst = std::max_element(
          dump.records.begin(), dump.records.end(),
          [](const FlightRecord& a, const FlightRecord& b) {
            return a.total_micros < b.total_micros;
          });
      if (worst != dump.records.end()) {
        os << "  worst:\n";
        RenderFlightRecord(os, *worst);
      }
    }
  }
  return os.str();
}

std::string Introspection::MetricZ() const {
  std::ostringstream os;
  os << "==== metricz ====\n";
  if (registry_ != nullptr) registry_->ExpositionText(os);
  return os.str();
}

}  // namespace jdvs::obs

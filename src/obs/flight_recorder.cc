#include "obs/flight_recorder.h"

#include <algorithm>

#include "obs/registry.h"

namespace jdvs::obs {

const char* FlightStageName(FlightStage stage) {
  switch (stage) {
    case FlightStage::kQueueWait:
      return "queue_wait";
    case FlightStage::kExtract:
      return "extract";
    case FlightStage::kFanOut:
      return "broker_fanout";
    case FlightStage::kScan:
      return "searcher_scan";
    case FlightStage::kHedgeWait:
      return "hedge_wait";
    case FlightStage::kFanIn:
      return "fan_in";
    case FlightStage::kRank:
      return "rank";
    case FlightStage::kFilter:
      return "searcher_filter";
    case FlightStage::kIo:
      return "searcher_io";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(Config config, const Clock& clock,
                               Registry* registry)
    : config_(config), clock_(clock) {
  config_.stripes = std::max<std::size_t>(1, config_.stripes);
  config_.capacity_per_stripe =
      std::max<std::size_t>(1, config_.capacity_per_stripe);
  config_.max_dumps = std::max<std::size_t>(1, config_.max_dumps);
  stripes_ = std::vector<Stripe>(config_.stripes);
  for (Stripe& stripe : stripes_) {
    stripe.ring.resize(config_.capacity_per_stripe);
  }
  if (registry != nullptr) {
    records_total_ = &registry->GetCounter("jdvs_flight_records_total");
    anomalies_total_ = &registry->GetCounter("jdvs_flight_anomalies_total");
    dumps_total_ = &registry->GetCounter("jdvs_flight_dumps_total");
  }
}

std::uint64_t FlightRecorder::Record(FlightRecord record) {
  if (!enabled()) return 0;
  record.ordinal = next_ordinal_.fetch_add(1, std::memory_order_relaxed);
  Stripe& stripe = stripes_[record.ordinal % stripes_.size()];
  {
    std::lock_guard lock(stripe.lock);
    stripe.ring[stripe.next] = record;
    stripe.next = (stripe.next + 1) % stripe.ring.size();
    stripe.filled = std::min(stripe.filled + 1, stripe.ring.size());
  }
  recorded_.fetch_add(1, std::memory_order_relaxed);
  if (records_total_ != nullptr) records_total_->Increment();
  if (config_.slo_micros > 0 && record.total_micros > config_.slo_micros) {
    DumpOnAnomaly("slo breach: query " + std::to_string(record.ordinal) +
                  " took " + std::to_string(record.total_micros) + "us (slo " +
                  std::to_string(config_.slo_micros) + "us)");
  }
  return record.ordinal;
}

void FlightRecorder::DumpOnAnomaly(const std::string& reason) {
  anomalies_.fetch_add(1, std::memory_order_relaxed);
  if (anomalies_total_ != nullptr) anomalies_total_->Increment();
  // Once-only: the first anomaly after (re)arming wins; the rest only count.
  if (!armed_.exchange(false, std::memory_order_acq_rel)) return;
  Dump dump;
  dump.reason = reason;
  dump.at_micros = clock_.NowMicros();
  dump.records = Snapshot();
  dumps_taken_.fetch_add(1, std::memory_order_relaxed);
  if (dumps_total_ != nullptr) dumps_total_->Increment();
  std::lock_guard lock(dumps_mu_);
  if (dumps_.size() >= config_.max_dumps) {
    dumps_.erase(dumps_.begin());
  }
  dumps_.push_back(std::move(dump));
}

void FlightRecorder::Rearm() {
  armed_.store(true, std::memory_order_release);
}

std::vector<FlightRecord> FlightRecorder::Snapshot() const {
  std::vector<FlightRecord> out;
  out.reserve(stripes_.size() * config_.capacity_per_stripe);
  for (const Stripe& stripe : stripes_) {
    std::lock_guard lock(stripe.lock);
    for (std::size_t i = 0; i < stripe.filled; ++i) {
      out.push_back(stripe.ring[i]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              return a.ordinal < b.ordinal;
            });
  return out;
}

std::vector<FlightRecorder::Dump> FlightRecorder::dumps() const {
  std::lock_guard lock(dumps_mu_);
  return dumps_;
}

}  // namespace jdvs::obs

#include "obs/span.h"

#include <atomic>

#include "obs/trace.h"

namespace jdvs::obs {

std::uint64_t NextSpanId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

Span::Span(TraceSink* sink, const Clock& clock, const TraceContext& parent,
           std::string name, std::string node)
    : sink_(parent.sampled() ? sink : nullptr), clock_(&clock) {
  if (!sink_) return;
  record_.trace_id = parent.trace_id;
  record_.span_id = NextSpanId();
  record_.parent_span_id = parent.span_id;
  record_.name = std::move(name);
  record_.node = std::move(node);
  record_.start_micros = clock.NowMicros();
}

Span::Span(Span&& other) noexcept
    : sink_(other.sink_), clock_(other.clock_),
      record_(std::move(other.record_)) {
  other.sink_ = nullptr;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    Finish();
    sink_ = other.sink_;
    clock_ = other.clock_;
    record_ = std::move(other.record_);
    other.sink_ = nullptr;
  }
  return *this;
}

Span::~Span() { Finish(); }

Span Span::StartChild(std::string name, std::string node) {
  if (!sampled()) return Span();
  return Span(sink_, *clock_, context(), std::move(name), std::move(node));
}

void Span::AddTag(std::string key, std::string value) {
  if (!sampled()) return;
  record_.tags.emplace_back(std::move(key), std::move(value));
}

void Span::AddTag(std::string key, std::uint64_t value) {
  AddTag(std::move(key), std::to_string(value));
}

void Span::SetError(std::string message) {
  if (!sampled()) return;
  record_.ok = false;
  record_.status = std::move(message);
}

void Span::Finish() {
  if (!sampled()) return;
  record_.end_micros = clock_->NowMicros();
  sink_->Record(std::move(record_));
  sink_ = nullptr;
}

}  // namespace jdvs::obs

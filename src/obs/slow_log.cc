#include "obs/slow_log.h"

#include <algorithm>
#include <sstream>

#include "obs/critical_path.h"

namespace jdvs::obs {

void SlowQueryLog::Offer(std::uint64_t trace_id, Micros duration_micros) {
  if (duration_micros < config_.threshold_micros || config_.capacity == 0) {
    return;
  }
  // Render + critical path outside the lock: Offer is rare (slow queries
  // only) but both walk the sink's stripes.
  Entry entry{trace_id, duration_micros,
              sink_ != nullptr ? sink_->Render(trace_id) : std::string(),
              sink_ != nullptr
                  ? ComputeCriticalPath(sink_->SpansFor(trace_id)).Summary()
                  : std::string()};
  std::lock_guard lock(mu_);
  ++offered_;
  if (entries_.size() >= config_.capacity &&
      duration_micros <= entries_.back().duration_micros) {
    return;  // faster than everything retained
  }
  const auto pos = std::upper_bound(
      entries_.begin(), entries_.end(), duration_micros,
      [](Micros d, const Entry& e) { return d > e.duration_micros; });
  entries_.insert(pos, std::move(entry));
  if (entries_.size() > config_.capacity) entries_.pop_back();
}

std::vector<SlowQueryLog::Entry> SlowQueryLog::Worst() const {
  std::lock_guard lock(mu_);
  return entries_;
}

std::string SlowQueryLog::Render() const {
  const std::vector<Entry> entries = Worst();
  std::ostringstream os;
  os << "slow query log (threshold " << config_.threshold_micros << " us, "
     << entries.size() << " retained):\n";
  for (const Entry& entry : entries) {
    os << "-- " << entry.duration_micros << " us --\n" << entry.rendered;
    if (!entry.critical_path.empty()) {
      os << "   critical path: " << entry.critical_path << '\n';
    }
  }
  return os.str();
}

}  // namespace jdvs::obs

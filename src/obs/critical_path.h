// Critical-path attribution over async span trees and flight records.
//
// A query's wall time is not the sum of its stage times: the broker fans
// out to many searchers concurrently, hedges add racing attempts, and only
// the slowest contributing branch gates completion. ComputeCriticalPath
// walks a span tree backwards from the root's finish time and, at each
// level, descends into the child whose finish gated the parent -- skipping
// concurrent siblings that were hidden behind it -- yielding the chain of
// (stage, duration) segments that actually determined end-to-end latency.
// The aggregator folds per-stage time-on-critical-path into registry
// histograms (`jdvs_critical_path_micros{stage=...}`) so benches and
// statusz can answer "where does p99 go" over a whole run.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/spinlock.h"
#include "obs/flight_recorder.h"
#include "obs/span.h"

namespace jdvs {
class Histogram;
}

namespace jdvs::obs {

class Registry;
class TraceSink;

struct CriticalPathSegment {
  std::string stage;  // span name ("searcher.scan") or flight-stage name
  std::string node;   // empty for flight-record segments
  Micros start_micros = 0;
  Micros micros = 0;
};

struct CriticalPathReport {
  Micros total_micros = 0;
  std::vector<CriticalPathSegment> segments;  // chronological

  bool empty() const { return segments.empty(); }
  // Per-stage sums over the segments, sorted by time descending.
  std::vector<std::pair<std::string, Micros>> ByStage() const;
  // "searcher.scan 41203us (87%), extract 3110us (6%)" -- the top_n worst
  // stages; the one-line answer for slow-query log entries.
  std::string Summary(std::size_t top_n = 2) const;
};

// Tolerates malformed input (orphan spans, duplicate span ids, cycles,
// out-of-order finish times): degrades to a clamped best-effort path, never
// crashes or loops. Returns an empty report for an empty span set.
CriticalPathReport ComputeCriticalPath(std::vector<SpanRecord> spans);

// Blender-level decomposition of an (unsampled) flight-recorder entry:
// queue wait -> extract -> scan -> hedge wait -> fan-in -> rank. Zero
// stages are omitted; kFanOut is skipped since its decomposition is used.
CriticalPathReport CriticalPathFromFlightRecord(const FlightRecord& record);

// Folds per-stage critical-path time into `jdvs_critical_path_micros`
// histograms. Thread-safe; the blender calls Observe after finishing each
// sampled query's root span.
class CriticalPathAggregator {
 public:
  CriticalPathAggregator(const TraceSink* sink, Registry* registry);

  // Computes + folds the critical path of one sampled trace.
  CriticalPathReport Observe(std::uint64_t trace_id);
  // Folds an already-computed report (e.g. from a flight record).
  void Fold(const CriticalPathReport& report);

  std::uint64_t observed() const {
    return observed_.load(std::memory_order_relaxed);
  }

 private:
  Histogram& StageHistogram(const std::string& stage);

  const TraceSink* sink_;
  Registry* registry_;
  std::atomic<std::uint64_t> observed_{0};
  SpinLock cache_mu_;
  std::unordered_map<std::string, Histogram*> cache_;
};

// Fixed-layout text table over the aggregator's histograms: count, mean,
// p99 and share of total critical-path time per stage. Shared by
// bench_fig13b, jdvs_trace_stats --critical-path and statusz.
std::string RenderCriticalPathTable(const Registry& registry);

}  // namespace jdvs::obs

#include "obs/trace.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "common/hash.h"

namespace jdvs::obs {

TraceSink::TraceSink(std::size_t stripes, std::size_t max_spans)
    : num_stripes_(std::max<std::size_t>(stripes, 1)),
      max_spans_(std::max<std::size_t>(max_spans, 1)),
      stripes_(new Stripe[num_stripes_]) {}

void TraceSink::Record(SpanRecord span) {
  if (size_.load(std::memory_order_relaxed) >= max_spans_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::size_t stripe =
      next_stripe_.fetch_add(1, std::memory_order_relaxed) % num_stripes_;
  {
    std::lock_guard lock(stripes_[stripe].lock);
    stripes_[stripe].spans.push_back(std::move(span));
  }
  size_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<SpanRecord> TraceSink::Collect() const {
  std::vector<SpanRecord> out;
  out.reserve(size_.load(std::memory_order_relaxed));
  for (std::size_t i = 0; i < num_stripes_; ++i) {
    std::lock_guard lock(stripes_[i].lock);
    out.insert(out.end(), stripes_[i].spans.begin(), stripes_[i].spans.end());
  }
  return out;
}

std::vector<SpanRecord> TraceSink::SpansFor(std::uint64_t trace_id) const {
  std::vector<SpanRecord> out;
  for (std::size_t i = 0; i < num_stripes_; ++i) {
    std::lock_guard lock(stripes_[i].lock);
    for (const SpanRecord& span : stripes_[i].spans) {
      if (span.trace_id == trace_id) out.push_back(span);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_micros != b.start_micros
                         ? a.start_micros < b.start_micros
                         : a.span_id < b.span_id;
            });
  return out;
}

namespace {

void RenderSpanLine(std::ostream& os, const SpanRecord& span,
                    const std::string& prefix, bool last) {
  os << prefix << (last ? "`- " : "|- ") << span.name;
  if (!span.node.empty()) os << " @" << span.node;
  os << ' ' << span.DurationMicros() << "us";
  for (const auto& [key, value] : span.tags) {
    os << ' ' << key << '=' << value;
  }
  if (!span.ok) os << " [ERROR: " << span.status << ']';
  os << '\n';
}

// Depth cap: malformed data (duplicate span ids acting as their own
// ancestors, parent cycles) must render truncated, not recurse forever.
constexpr int kMaxRenderDepth = 64;

void RenderSubtree(
    std::ostream& os, const SpanRecord& span,
    const std::unordered_map<std::uint64_t, std::vector<const SpanRecord*>>&
        children,
    const std::string& prefix, bool last, int depth) {
  RenderSpanLine(os, span, prefix, last);
  const auto it = children.find(span.span_id);
  if (it == children.end()) return;
  const std::string child_prefix = prefix + (last ? "   " : "|  ");
  if (depth >= kMaxRenderDepth) {
    os << child_prefix << "`- ... (depth cap)\n";
    return;
  }
  for (std::size_t i = 0; i < it->second.size(); ++i) {
    RenderSubtree(os, *it->second[i], children, child_prefix,
                  i + 1 == it->second.size(), depth + 1);
  }
}

}  // namespace

std::string TraceSink::Render(std::uint64_t trace_id) const {
  const std::vector<SpanRecord> spans = SpansFor(trace_id);
  std::ostringstream os;
  os << "trace " << std::hex << trace_id << std::dec;
  if (spans.empty()) {
    os << ": no spans\n";
    return os.str();
  }
  Micros lo = spans.front().start_micros;
  Micros hi = spans.front().end_micros;
  std::unordered_map<std::uint64_t, const SpanRecord*> by_id;
  for (const SpanRecord& span : spans) {
    lo = std::min(lo, span.start_micros);
    hi = std::max(hi, span.end_micros);
    by_id.emplace(span.span_id, &span);
  }
  os << " (" << (hi - lo) << " us, " << spans.size() << " spans)\n";

  // An orphan (parent dropped by the sink cap or still unfinished) renders
  // as a root rather than disappearing; a self-parent span counts as an
  // orphan too so it cannot become its own subtree.
  std::unordered_map<std::uint64_t, std::vector<const SpanRecord*>> children;
  std::vector<const SpanRecord*> roots;
  for (const SpanRecord& span : spans) {
    if (span.parent_span_id != 0 && span.parent_span_id != span.span_id &&
        by_id.count(span.parent_span_id)) {
      children[span.parent_span_id].push_back(&span);
    } else {
      roots.push_back(&span);
    }
  }
  if (roots.empty()) {
    // Parent cycle (every parent id resolves): render the earliest span as
    // root so the trace still shows up; the depth cap stops the loop.
    roots.push_back(&spans.front());
  }
  for (std::size_t i = 0; i < roots.size(); ++i) {
    RenderSubtree(os, *roots[i], children, "", i + 1 == roots.size(), 0);
  }
  return os.str();
}

void TraceSink::Clear() {
  for (std::size_t i = 0; i < num_stripes_; ++i) {
    std::lock_guard lock(stripes_[i].lock);
    stripes_[i].spans.clear();
  }
  size_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

TraceSink& TraceSink::Default() {
  static TraceSink* instance = new TraceSink();  // leaked: process lifetime
  return *instance;
}

Tracer::Tracer(TraceSink* sink, const TracerConfig& config, const Clock& clock)
    : sink_(sink), config_(config), clock_(&clock) {}

Span Tracer::StartTrace(std::string name, std::string node) {
  if (config_.sample_every == 0 || sink_ == nullptr) return Span();
  const std::uint64_t call = calls_.fetch_add(1, std::memory_order_relaxed);
  if (call % config_.sample_every != 0) return Span();
  const std::uint64_t seq = started_.fetch_add(1, std::memory_order_relaxed);
  // Diffuse the seed before combining: raw `seed ^ seq` collides across
  // tracers whose seeds differ only in low bits.
  std::uint64_t trace_id =
      Mix64(Mix64(config_.seed) ^ (seq + 0x9E3779B97F4A7C15ULL));
  if (trace_id == 0) trace_id = 1;

  Span span;
  span.sink_ = sink_;
  span.clock_ = clock_;
  span.record_.trace_id = trace_id;
  span.record_.span_id = NextSpanId();
  span.record_.parent_span_id = 0;
  span.record_.name = std::move(name);
  span.record_.node = std::move(node);
  span.record_.start_micros = clock_->NowMicros();
  return span;
}

Tracer& Tracer::Default() {
  // Sampling off: zero overhead for components built without a tracer.
  static Tracer* instance =
      new Tracer(&TraceSink::Default(), TracerConfig{.sample_every = 0});
  return *instance;
}

}  // namespace jdvs::obs

// Trace collection: the sink finished spans land in, and the tracer that
// decides which queries get a trace at all.
//
// TraceSink is striped: finishing threads scatter across shards, each a
// spinlocked vector, so dozens of searcher threads finishing scan spans
// concurrently do not serialize on one lock. A soft capacity bounds memory
// when tracing is left on for a whole bench run (excess spans are dropped
// and counted).
//
// Tracer implements the sampling knob: StartTrace() returns a real root
// span for 1-in-N calls (counter-based, hence deterministic for a fixed
// call sequence) and a no-op span otherwise. sample_every == 0 disables
// tracing entirely; 1 traces every query.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/spinlock.h"
#include "obs/span.h"

namespace jdvs::obs {

class TraceSink {
 public:
  explicit TraceSink(std::size_t stripes = 16,
                     std::size_t max_spans = 1 << 20);
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  // Thread-safe; called by Span::Finish.
  void Record(SpanRecord span);

  // Snapshot of every retained span (unordered across stripes).
  std::vector<SpanRecord> Collect() const;
  // All spans of one trace, sorted by (start, span id).
  std::vector<SpanRecord> SpansFor(std::uint64_t trace_id) const;

  // Tree view of one query/update:
  //   trace 000000000000002a (5123 us)
  //   `- query @blender-0 5123us k=10 nprobe=8
  //      |- extract @blender-0 1012us
  //      `- broker.search @broker-0 3801us
  //         `- searcher.scan @searcher-p0-r0 2200us hits=10
  // Spans whose parent was dropped or never finished render at the root.
  std::string Render(std::uint64_t trace_id) const;

  std::size_t size() const { return size_.load(std::memory_order_relaxed); }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  void Clear();

  // Process-global instance (default for components built without one).
  static TraceSink& Default();

 private:
  struct Stripe {
    mutable SpinLock lock;
    std::vector<SpanRecord> spans;
  };

  const std::size_t num_stripes_;
  const std::size_t max_spans_;
  std::unique_ptr<Stripe[]> stripes_;
  std::atomic<std::size_t> next_stripe_{0};
  std::atomic<std::size_t> size_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

struct TracerConfig {
  // Sample 1 trace per `sample_every` StartTrace calls; 0 = tracing off.
  std::uint64_t sample_every = 1;
  // Mixed into trace ids so concurrent clusters produce distinct traces.
  std::uint64_t seed = 0;
};

class Tracer {
 public:
  explicit Tracer(TraceSink* sink, const TracerConfig& config = {},
                  const Clock& clock = MonotonicClock::Instance());
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Root span for a new trace, or a no-op span for unsampled calls.
  Span StartTrace(std::string name, std::string node = {});

  bool enabled() const { return config_.sample_every != 0; }
  TraceSink* sink() const { return sink_; }
  const Clock& clock() const { return *clock_; }
  std::uint64_t traces_started() const {
    return started_.load(std::memory_order_relaxed);
  }

  // Process-global instance with sampling off: components constructed
  // without a tracer stay zero-overhead.
  static Tracer& Default();

 private:
  TraceSink* sink_;
  TracerConfig config_;
  const Clock* clock_;
  std::atomic<std::uint64_t> calls_{0};
  std::atomic<std::uint64_t> started_{0};
};

}  // namespace jdvs::obs

// Slow-query log.
//
// Every traced query whose end-to-end duration exceeds a threshold gets its
// full span tree rendered and retained in a bounded buffer of the worst N —
// the first artifact an on-call engineer pulls when the p99 moves. Offer()
// is called by the blender after the root span finishes, so the render sees
// the complete tree.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "obs/trace.h"

namespace jdvs::obs {

struct SlowLogConfig {
  Micros threshold_micros = 500'000;  // queries slower than this are logged
  std::size_t capacity = 8;           // worst N retained
};

class SlowQueryLog {
 public:
  SlowQueryLog(const SlowLogConfig& config, const TraceSink* sink)
      : config_(config), sink_(sink) {}
  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  struct Entry {
    std::uint64_t trace_id = 0;
    Micros duration_micros = 0;
    std::string rendered;       // span tree captured at Offer() time
    std::string critical_path;  // top-2 critical-path stages, one line
  };

  // Considers one finished query; retains it when it is slower than the
  // threshold and among the worst `capacity` seen so far. Thread-safe.
  void Offer(std::uint64_t trace_id, Micros duration_micros);

  // Entries sorted slowest-first.
  std::vector<Entry> Worst() const;
  std::string Render() const;

  // Queries seen over the threshold (retained or not) — the slow-query
  // count an ops dashboard would alert on.
  std::uint64_t offered() const {
    std::lock_guard lock(mu_);
    return offered_;
  }
  std::size_t size() const {
    std::lock_guard lock(mu_);
    return entries_.size();
  }
  Micros threshold_micros() const { return config_.threshold_micros; }

 private:
  SlowLogConfig config_;
  const TraceSink* sink_;
  mutable std::mutex mu_;
  std::vector<Entry> entries_;  // sorted by duration descending
  std::uint64_t offered_ = 0;
};

}  // namespace jdvs::obs

// Monotonic counter instrument.
//
// The smallest unit of the metrics registry: a named, process-lifetime,
// atomically incremented 64-bit count (queries served, failovers, cache
// hits). Wait-free on the hot path; readers use relaxed loads, which is
// linearizable enough for exposition dumps.
#pragma once

#include <atomic>
#include <cstdint>

namespace jdvs::obs {

class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t Value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

}  // namespace jdvs::obs

#include "obs/critical_path.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <mutex>
#include <unordered_set>

#include "common/histogram.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace jdvs::obs {

std::vector<std::pair<std::string, Micros>> CriticalPathReport::ByStage()
    const {
  std::unordered_map<std::string, Micros> sums;
  for (const CriticalPathSegment& segment : segments) {
    sums[segment.stage] += segment.micros;
  }
  std::vector<std::pair<std::string, Micros>> out(sums.begin(), sums.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

std::string CriticalPathReport::Summary(std::size_t top_n) const {
  const auto stages = ByStage();
  if (stages.empty() || total_micros <= 0) return {};
  std::string out;
  char buf[160];
  for (std::size_t i = 0; i < stages.size() && i < top_n; ++i) {
    const double share =
        100.0 * static_cast<double>(stages[i].second) /
        static_cast<double>(total_micros);
    std::snprintf(buf, sizeof(buf), "%s%s %lldus (%.0f%%)",
                  i == 0 ? "" : ", ", stages[i].first.c_str(),
                  static_cast<long long>(stages[i].second), share);
    out += buf;
  }
  return out;
}

CriticalPathReport ComputeCriticalPath(std::vector<SpanRecord> spans) {
  CriticalPathReport report;
  if (spans.empty()) return report;

  // First occurrence wins for duplicate span ids; later copies fall out of
  // the tree instead of corrupting it.
  std::unordered_map<std::uint64_t, const SpanRecord*> by_id;
  by_id.reserve(spans.size());
  for (const SpanRecord& span : spans) by_id.emplace(span.span_id, &span);

  std::unordered_map<std::uint64_t, std::vector<const SpanRecord*>> children;
  const SpanRecord* root = nullptr;
  for (const SpanRecord& span : spans) {
    if (by_id.at(span.span_id) != &span) continue;
    const bool linked = span.parent_span_id != 0 &&
                        span.parent_span_id != span.span_id &&
                        by_id.count(span.parent_span_id) != 0;
    if (linked) {
      children[span.parent_span_id].push_back(&span);
    } else if (root == nullptr || span.start_micros < root->start_micros) {
      // True roots, orphans (parent dropped) and self-parent spans all
      // compete as roots: the earliest wins.
      root = &span;
    }
  }
  if (root == nullptr) {
    // Pure cycle (every parent id resolves): fall back to the earliest span;
    // the visited set below breaks the loop.
    for (const SpanRecord& span : spans) {
      if (by_id.at(span.span_id) != &span) continue;
      if (root == nullptr || span.start_micros < root->start_micros) {
        root = &span;
      }
    }
  }

  std::unordered_set<std::uint64_t> visited;
  const auto add_segment = [&report](const SpanRecord& span, Micros start,
                                     Micros micros) {
    if (micros <= 0) return;
    report.segments.push_back(
        CriticalPathSegment{span.name, span.node, start, micros});
  };
  // Attributes the window [lo, hi] (the part of `span` on the critical
  // path) to the span and its gating children. Walking backwards from hi,
  // the child that finished last gated the parent; siblings whose window
  // was swallowed by an already-attributed later child ran concurrently
  // behind it and get no time. Clamping keeps out-of-order timestamps from
  // producing negative segments; the visited set breaks cycles.
  std::function<void(const SpanRecord&, Micros, Micros)> walk =
      [&](const SpanRecord& span, Micros lo, Micros hi) {
        if (hi <= lo) return;
        if (!visited.insert(span.span_id).second) {
          add_segment(span, lo, hi - lo);
          return;
        }
        Micros cursor = hi;
        const auto it = children.find(span.span_id);
        if (it != children.end()) {
          std::vector<const SpanRecord*> kids = it->second;
          std::sort(kids.begin(), kids.end(),
                    [](const SpanRecord* a, const SpanRecord* b) {
                      if (a->end_micros != b->end_micros) {
                        return a->end_micros > b->end_micros;
                      }
                      return a->start_micros > b->start_micros;
                    });
          for (const SpanRecord* kid : kids) {
            const Micros kid_end = std::min(kid->end_micros, cursor);
            const Micros kid_start = std::max(kid->start_micros, lo);
            if (kid_start >= kid_end) continue;  // hidden behind a sibling
            add_segment(span, kid_end, cursor - kid_end);
            walk(*kid, kid_start, kid_end);
            cursor = kid_start;
            if (cursor <= lo) break;
          }
        }
        add_segment(span, lo, cursor - lo);
      };
  walk(*root, root->start_micros,
       std::max(root->end_micros, root->start_micros));

  std::sort(report.segments.begin(), report.segments.end(),
            [](const CriticalPathSegment& a, const CriticalPathSegment& b) {
              return a.start_micros < b.start_micros;
            });
  for (const CriticalPathSegment& segment : report.segments) {
    report.total_micros += segment.micros;
  }
  return report;
}

CriticalPathReport CriticalPathFromFlightRecord(const FlightRecord& record) {
  CriticalPathReport report;
  static constexpr FlightStage kChronological[] = {
      FlightStage::kQueueWait, FlightStage::kExtract, FlightStage::kFilter,
      FlightStage::kIo,        FlightStage::kScan,    FlightStage::kHedgeWait,
      FlightStage::kFanIn,     FlightStage::kRank,
  };
  Micros at = record.start_micros;
  for (const FlightStage stage : kChronological) {
    const Micros micros = record.stage(stage);
    if (micros <= 0) continue;
    report.segments.push_back(
        CriticalPathSegment{FlightStageName(stage), {}, at, micros});
    at += micros;
    report.total_micros += micros;
  }
  return report;
}

CriticalPathAggregator::CriticalPathAggregator(const TraceSink* sink,
                                               Registry* registry)
    : sink_(sink), registry_(registry) {}

CriticalPathReport CriticalPathAggregator::Observe(std::uint64_t trace_id) {
  if (sink_ == nullptr || trace_id == 0) return {};
  CriticalPathReport report = ComputeCriticalPath(sink_->SpansFor(trace_id));
  Fold(report);
  return report;
}

void CriticalPathAggregator::Fold(const CriticalPathReport& report) {
  if (registry_ == nullptr || report.empty()) return;
  for (const auto& [stage, micros] : report.ByStage()) {
    StageHistogram(stage).Record(micros);
  }
  observed_.fetch_add(1, std::memory_order_relaxed);
}

Histogram& CriticalPathAggregator::StageHistogram(const std::string& stage) {
  {
    std::lock_guard lock(cache_mu_);
    const auto it = cache_.find(stage);
    if (it != cache_.end()) return *it->second;
  }
  // Registry::GetHistogram takes its own mutex; keep the cache lock dropped
  // around it, then race-tolerantly publish (same name -> same instrument).
  Histogram& histogram = registry_->GetHistogram(
      Labeled("jdvs_critical_path_micros", "stage", stage));
  std::lock_guard lock(cache_mu_);
  cache_.emplace(stage, &histogram);
  return histogram;
}

std::string RenderCriticalPathTable(const Registry& registry) {
  // The aggregator folds both span names (sampled traces) and flight-stage
  // names (flight records); probe the union of known stages.
  static constexpr const char* kStages[] = {
      "query",      "extract",       "broker.search", "searcher.scan",
      "rank",       "rt.apply",      "queue_wait",    "broker_fanout",
      "searcher_filter", "searcher_io", "searcher_scan", "hedge_wait",
      "fan_in",
  };
  struct Row {
    const char* stage;
    const Histogram* histogram;
  };
  std::vector<Row> rows;
  double total_sum = 0;
  for (const char* stage : kStages) {
    const Histogram* histogram = registry.FindHistogram(
        Labeled("jdvs_critical_path_micros", "stage", stage));
    if (histogram == nullptr || histogram->Count() == 0) continue;
    rows.push_back(Row{stage, histogram});
    total_sum += static_cast<double>(histogram->Sum());
  }
  std::string out =
      "critical-path attribution (time on critical path per stage):\n";
  if (rows.empty()) {
    out += "  (no data)\n";
    return out;
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.histogram->Sum() > b.histogram->Sum();
  });
  char buf[160];
  std::snprintf(buf, sizeof(buf), "  %-16s %8s %10s %10s %8s\n", "stage",
                "count", "mean", "p99", "share");
  out += buf;
  for (const Row& row : rows) {
    const double share =
        total_sum <= 0
            ? 0.0
            : 100.0 * static_cast<double>(row.histogram->Sum()) / total_sum;
    std::snprintf(buf, sizeof(buf), "  %-16s %8llu %8.0fus %8lldus %7.1f%%\n",
                  row.stage,
                  static_cast<unsigned long long>(row.histogram->Count()),
                  row.histogram->Mean(),
                  static_cast<long long>(row.histogram->P99()), share);
    out += buf;
  }
  return out;
}

}  // namespace jdvs::obs

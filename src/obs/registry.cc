#include "obs/registry.h"

#include <cstdio>
#include <sstream>

namespace jdvs::obs {
namespace {

// Splits "fam{labels}" into ("fam", "labels"); labels is empty without '{'.
std::pair<std::string_view, std::string_view> SplitName(
    std::string_view name) {
  const std::size_t brace = name.find('{');
  if (brace == std::string_view::npos) return {name, {}};
  std::string_view labels = name.substr(brace + 1);
  if (!labels.empty() && labels.back() == '}') labels.remove_suffix(1);
  return {name.substr(0, brace), labels};
}

// "fam" + suffix + "{labels}" (labels optional, extra label appendable).
std::string SeriesName(std::string_view family, std::string_view suffix,
                       std::string_view labels,
                       std::string_view extra_label = {}) {
  std::string out;
  out.reserve(family.size() + suffix.size() + labels.size() +
              extra_label.size() + 4);
  out.append(family).append(suffix);
  if (!labels.empty() || !extra_label.empty()) {
    out.push_back('{');
    out.append(labels);
    if (!labels.empty() && !extra_label.empty()) out.push_back(',');
    out.append(extra_label);
    out.push_back('}');
  }
  return out;
}

// `trace_id="<16 hex digits>"` -- matches the tree renderer's trace ids.
std::string TraceIdLabel(std::uint64_t trace_id) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "trace_id=\"%016llx\"",
                static_cast<unsigned long long>(trace_id));
  return buf;
}

template <typename Map, typename Emit>
void EmitFamilies(const Map& map, std::ostream& os, const char* type,
                  Emit&& emit) {
  std::string_view last_family;
  for (const auto& [name, instrument] : map) {
    const auto [family, labels] = SplitName(name);
    if (family != last_family) {
      os << "# TYPE " << family << ' ' << type << '\n';
      last_family = family;
    }
    emit(family, labels, *instrument);
  }
}

}  // namespace

std::string Labeled(std::string_view family, std::string_view key,
                    std::string_view value) {
  std::string out;
  out.reserve(family.size() + key.size() + value.size() + 5);
  out.append(family).push_back('{');
  out.append(key).append("=\"").append(value).append("\"}");
  return out;
}

Counter& Registry::GetCounter(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::GetGauge(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::GetHistogram(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

bool Registry::Has(const std::string& name) const {
  std::lock_guard lock(mu_);
  return counters_.count(name) > 0 || gauges_.count(name) > 0 ||
         histograms_.count(name) > 0;
}

const Counter* Registry::FindCounter(const std::string& name) const {
  std::lock_guard lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* Registry::FindGauge(const std::string& name) const {
  std::lock_guard lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* Registry::FindHistogram(const std::string& name) const {
  std::lock_guard lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void Registry::ExpositionText(std::ostream& os) const {
  std::lock_guard lock(mu_);
  EmitFamilies(counters_, os, "counter",
               [&os](std::string_view family, std::string_view labels,
                     const Counter& counter) {
                 os << SeriesName(family, {}, labels) << ' ' << counter.Value()
                    << '\n';
               });
  EmitFamilies(gauges_, os, "gauge",
               [&os](std::string_view family, std::string_view labels,
                     const Gauge& gauge) {
                 os << SeriesName(family, {}, labels) << ' ' << gauge.Value()
                    << '\n';
               });
  EmitFamilies(
      histograms_, os, "histogram",
      [&os](std::string_view family, std::string_view labels,
            const Histogram& histogram) {
        // Cumulative `_bucket{le="..."}` series over non-empty buckets plus
        // the mandatory +Inf bucket, so scrapers can compute any quantile.
        // When an exemplar falls inside a bucket's range it is appended as
        // an OpenMetrics-style annotation: `... # {trace_id="...",
        // flight="N"} value`.
        const auto buckets = histogram.CumulativeBuckets();
        const auto exemplars = histogram.Exemplars();  // sorted by value
        std::size_t next_exemplar = 0;
        std::int64_t prev_upper = -1;
        const auto emit_bucket = [&](std::string_view le_label,
                                     std::int64_t upper, std::uint64_t cum) {
          os << SeriesName(family, "_bucket", labels, le_label) << ' ' << cum;
          while (next_exemplar < exemplars.size() &&
                 exemplars[next_exemplar].value <= prev_upper) {
            ++next_exemplar;
          }
          if (next_exemplar < exemplars.size() &&
              exemplars[next_exemplar].value <= upper) {
            const HistogramExemplar& exemplar = exemplars[next_exemplar];
            os << " # {" << TraceIdLabel(exemplar.trace_id);
            if (exemplar.ref != 0) {
              os << ",flight=\"" << exemplar.ref << '"';
            }
            os << "} " << exemplar.value;
            ++next_exemplar;
          }
          os << '\n';
          prev_upper = upper;
        };
        std::string le_label;
        for (const auto& [upper, cum] : buckets) {
          le_label.assign("le=\"");
          le_label.append(std::to_string(upper)).push_back('"');
          emit_bucket(le_label, upper, cum);
        }
        emit_bucket("le=\"+Inf\"", Histogram::kMaxValue, histogram.Count());
        os << SeriesName(family, "_sum", labels) << ' ' << histogram.Sum()
           << '\n';
        os << SeriesName(family, "_count", labels) << ' ' << histogram.Count()
           << '\n';
      });
}

std::string Registry::ExpositionText() const {
  std::ostringstream os;
  ExpositionText(os);
  return os.str();
}

Registry& Registry::Default() {
  static Registry* instance = new Registry();  // leaked: process lifetime
  return *instance;
}

}  // namespace jdvs::obs

// In-process introspection pages: statusz / tracez / metricz.
//
// The text-page triad every production service grows: `statusz` (what is
// this process, what state is it in), `tracez` (recent traces, slow
// queries, the flight recorder's ring and anomaly dumps), `metricz` (the
// Prometheus exposition). Rendering pulls live state at call time; nothing
// is precomputed.
//
// Dependency direction: obs stays at the bottom of the stack, so cluster
// state (replica tables, admission controllers, pools) is contributed as
// named *sections* -- closures registered by the owner via
// AddStatusSection -- rather than by obs depending on ctrl/ or qos/.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace jdvs::obs {

class Registry;
class TraceSink;
class SlowQueryLog;
class FlightRecorder;

class Introspection {
 public:
  using SectionRenderer = std::function<void(std::ostream&)>;

  Introspection() = default;
  Introspection(const Introspection&) = delete;
  Introspection& operator=(const Introspection&) = delete;

  // All sources are optional; unset ones are skipped in the pages.
  void SetRegistry(const Registry* registry) { registry_ = registry; }
  void SetTraceSink(const TraceSink* sink) { trace_sink_ = sink; }
  void SetSlowLog(const SlowQueryLog* slow_log) { slow_log_ = slow_log; }
  void SetFlightRecorder(const FlightRecorder* recorder) {
    flight_recorder_ = recorder;
  }

  // Registers a statusz section, rendered in registration order. The
  // renderer is invoked on every StatusZ() call and must be thread-safe.
  void AddStatusSection(std::string title, SectionRenderer renderer);

  // Service state: registered sections + flight-recorder health.
  std::string StatusZ() const;
  // Recent sampled traces, the slow-query log (with critical-path lines),
  // the flight recorder's latest records and retained anomaly dumps --
  // each record annotated with its computed critical-path summary.
  std::string TraceZ(std::size_t max_traces = 5,
                     std::size_t max_records = 10) const;
  // Prometheus exposition (incl. exemplar annotations).
  std::string MetricZ() const;

 private:
  const Registry* registry_ = nullptr;
  const TraceSink* trace_sink_ = nullptr;
  const SlowQueryLog* slow_log_ = nullptr;
  const FlightRecorder* flight_recorder_ = nullptr;

  mutable std::mutex sections_mu_;
  std::vector<std::pair<std::string, SectionRenderer>> sections_;
};

}  // namespace jdvs::obs

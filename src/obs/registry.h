// Unified metrics registry.
//
// A process-global (or per-cluster) named registry of counters, gauges and
// histograms. Components obtain instruments once at construction and hit
// only an atomic on the hot path; a single ExpositionText() call dumps the
// whole system in Prometheus text format, which is what the benches print
// for per-stage latency attribution and what an ops scrape would read.
//
// Instrument names follow Prometheus conventions and may carry a label set
// inline: `jdvs_broker_failovers_total{broker="broker-0"}`. Series of one
// family (the part before '{') are grouped under a single `# TYPE` line.
// Instruments are never destroyed before the registry: references returned
// by Get* stay valid for the registry's lifetime.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

#include "common/histogram.h"
#include "obs/counter.h"
#include "obs/gauge.h"

namespace jdvs::obs {

// "family{key=\"value\"}" — the one-label common case.
std::string Labeled(std::string_view family, std::string_view key,
                    std::string_view value);

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Find-or-create by full series name (family + optional labels). The same
  // name always returns the same instrument; names must not be reused
  // across instrument kinds.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  // True when a series of that name already exists (any kind).
  bool Has(const std::string& name) const;

  // Read-only lookups that never create: nullptr when absent.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  // Prometheus text exposition: counters, then gauges, then histograms
  // (rendered as real histograms: cumulative `_bucket{le="..."}` series
  // incl. +Inf, then _sum and _count, with exemplar annotations on buckets
  // that have one), each sorted by name with one `# TYPE` line per family.
  void ExpositionText(std::ostream& os) const;
  std::string ExpositionText() const;

  // Process-global instance: the default for components constructed without
  // an explicit registry, so existing call sites keep working.
  static Registry& Default();

 private:
  mutable std::mutex mu_;
  // std::map for sorted exposition; unique_ptr for reference stability.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace jdvs::obs

// Always-on flight recorder for per-query stage timings.
//
// The sampled tracer (obs/trace.h) captures 1-in-N queries, which by
// construction misses the exact slow query behind a page. The flight
// recorder closes that gap: the blender records a fixed-size FlightRecord
// for *every* query (a handful of stage durations, no strings, no
// allocation on the hot path) into a lock-striped ring. When a query
// breaches the SLO threshold -- or the QoS degradation ladder steps up --
// DumpOnAnomaly() freezes a snapshot of the ring once, so the queries
// surrounding the anomaly are always available retroactively. The dump is
// once-only until Rearm() to keep the first (most interesting) snapshot
// from being overwritten by the follow-on storm.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/spinlock.h"

namespace jdvs::obs {

class Registry;
class Counter;

// Blender-level stage decomposition of one query. kFanOut is the whole
// dispatch->fan-in wall; kScan / kHedgeWait / kFanIn decompose it (scan is
// the slowest winning searcher attempt, hedge wait the primary->hedge
// dispatch gap on hedge wins, fan-in the remainder: dispatch, merge and
// queue time inside the fan-out).
enum class FlightStage : std::uint8_t {
  kQueueWait = 0,  // admission + blender pool queue + front-end hop
  kExtract,
  kFanOut,
  kScan,
  kHedgeWait,
  kFanIn,
  kRank,
  // Filter-bitmap materialization inside the winning searcher attempts of a
  // hybrid (attribute-filtered) query; carved out of kScan by the blender so
  // kFilter + kScan still equals the slowest winning attempt. Appended at
  // the end so existing persisted stage arrays keep their indices.
  kFilter,
  // Cold-list fault time inside the winning searcher attempts of a tiered
  // (mmap-served) partition; carved out of kScan like kFilter, so
  // kFilter + kIo + kScan still equals the slowest winning attempt. Also
  // appended at the end for persisted-array compatibility.
  kIo,
};
inline constexpr std::size_t kNumFlightStages = 9;
const char* FlightStageName(FlightStage stage);

struct FlightRecord {
  std::uint64_t ordinal = 0;   // assigned by FlightRecorder::Record
  std::uint64_t trace_id = 0;  // 0 when the query was not trace-sampled
  Micros start_micros = 0;     // submit time (monotonic clock)
  Micros total_micros = 0;
  Micros stage_micros[kNumFlightStages] = {};
  std::int8_t degradation_level = 0;
  bool degraded = false;
  bool cache_hit = false;
  bool error = false;

  Micros stage(FlightStage s) const {
    return stage_micros[static_cast<std::size_t>(s)];
  }
  void set_stage(FlightStage s, Micros value) {
    stage_micros[static_cast<std::size_t>(s)] = value < 0 ? 0 : value;
  }
};

class FlightRecorder {
 public:
  struct Config {
    std::size_t stripes = 8;
    std::size_t capacity_per_stripe = 512;
    // A record with total_micros > slo_micros triggers DumpOnAnomaly.
    // 0 disables the SLO trigger (external triggers still work).
    Micros slo_micros = 0;
    std::size_t max_dumps = 4;  // retained dump snapshots (oldest evicted)
  };

  struct Dump {
    std::string reason;
    Micros at_micros = 0;
    std::vector<FlightRecord> records;  // ring snapshot, ordinal-ascending
  };

  // `registry` is optional; when set, jdvs_flight_* counters mirror the
  // recorder's own counters so scrapes see recorder health.
  explicit FlightRecorder(Config config,
                          const Clock& clock = MonotonicClock::Instance(),
                          Registry* registry = nullptr);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Appends one record (assigning its ordinal) and fires the SLO trigger if
  // breached. Wait-free except for one striped spinlock. Returns the
  // assigned ordinal (0-based), or 0 with no effect when disabled.
  std::uint64_t Record(FlightRecord record);

  // Anomaly hook: snapshots the ring into a retained Dump. Once-only --
  // after the first dump the recorder is disarmed and further anomalies
  // only count as suppressed until Rearm(). Safe to call from QoS
  // callbacks; takes only the recorder's own locks.
  void DumpOnAnomaly(const std::string& reason);
  void Rearm();
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  // Kill switch for overhead measurement (bench_fig13a) and emergencies.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_release);
  }
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  // Current ring contents, ordinal-ascending (oldest surviving first).
  std::vector<FlightRecord> Snapshot() const;
  std::vector<Dump> dumps() const;

  std::uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  // All anomaly triggers, including suppressed ones.
  std::uint64_t anomalies() const {
    return anomalies_.load(std::memory_order_relaxed);
  }
  std::uint64_t dumps_taken() const {
    return dumps_taken_.load(std::memory_order_relaxed);
  }

  const Config& config() const { return config_; }

 private:
  struct Stripe {
    mutable SpinLock lock;
    std::vector<FlightRecord> ring;  // capacity_per_stripe entries
    std::size_t next = 0;
    std::size_t filled = 0;
  };

  Config config_;
  const Clock& clock_;
  std::vector<Stripe> stripes_;
  std::atomic<std::uint64_t> next_ordinal_{1};  // 0 = "not recorded"
  std::atomic<bool> enabled_{true};
  std::atomic<bool> armed_{true};
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> anomalies_{0};
  std::atomic<std::uint64_t> dumps_taken_{0};

  mutable std::mutex dumps_mu_;
  std::vector<Dump> dumps_;

  // Optional registry mirrors (nullptr without a registry).
  Counter* records_total_ = nullptr;
  Counter* anomalies_total_ = nullptr;
  Counter* dumps_total_ = nullptr;
};

}  // namespace jdvs::obs

// Gauge instrument: a value that can go up and down (queue depth, in-flight
// queries, index size). Same wait-free discipline as Counter.
#pragma once

#include <atomic>
#include <cstdint>

namespace jdvs::obs {

class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(std::int64_t value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() noexcept { Add(1); }
  void Decrement() noexcept { Add(-1); }

  std::int64_t Value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

}  // namespace jdvs::obs

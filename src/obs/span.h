// Trace spans.
//
// One Span covers one timed unit of work inside a query or update: the
// blender's end-to-end handling, a broker fan-out, a single searcher
// partition scan, a real-time index apply. Spans form a tree via
// (trace_id, span_id, parent_span_id); the TraceContext triple is what
// crosses component boundaries — passed explicitly through SearchAsync
// calls and carried inside ProductUpdateMessages on the real-time path.
//
// Spans are RAII: started at construction, finished (recorded into the
// TraceSink) at destruction or an explicit Finish(). An unsampled span
// (null sink or zero trace id) is a no-op whose construction costs two
// pointer stores, so tracing can stay compiled-in everywhere and be paid
// only 1-in-N queries.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"

namespace jdvs::obs {

class TraceSink;

// What crosses the wire between tiers. trace_id == 0 means "not sampled":
// children of an unsampled context are no-ops.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;  // the parent span for children created from it

  bool sampled() const { return trace_id != 0; }
};

// A finished span as stored in the sink.
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;  // 0 = root
  std::string name;
  std::string node;  // simulated node the work ran on (may be empty)
  Micros start_micros = 0;
  Micros end_micros = 0;
  bool ok = true;
  std::string status;  // error message when !ok
  std::vector<std::pair<std::string, std::string>> tags;

  Micros DurationMicros() const { return end_micros - start_micros; }
};

// Process-wide unique span id (never 0).
std::uint64_t NextSpanId();

class Span {
 public:
  // No-op span.
  Span() = default;

  // Starts a child of `parent` (no-op when parent is unsampled or sink is
  // null). Timestamps come from `clock` — the simulated clock in benches.
  Span(TraceSink* sink, const Clock& clock, const TraceContext& parent,
       std::string name, std::string node = {});

  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  bool sampled() const { return sink_ != nullptr; }

  // Context for propagating to children. Zero when unsampled.
  TraceContext context() const {
    return sampled() ? TraceContext{record_.trace_id, record_.span_id}
                     : TraceContext{};
  }

  // Starts a child span of this one (same sink and clock).
  Span StartChild(std::string name, std::string node = {});

  void AddTag(std::string key, std::string value);
  void AddTag(std::string key, std::uint64_t value);
  void SetError(std::string message);

  // Records the span into the sink; idempotent (the destructor calls it).
  void Finish();

 private:
  friend class Tracer;

  TraceSink* sink_ = nullptr;  // null = unsampled no-op
  const Clock* clock_ = nullptr;
  SpanRecord record_;
};

}  // namespace jdvs::obs

// Hot-list residency cache over an mmap'd v4 snapshot.
//
// The tiered index keeps the "head" in RAM — coarse quantizer, per-list
// directory, LocalId/norm arrays, PQ codebooks, attribute filter index —
// while the big per-list payload segments (feature rows / packed PQ codes)
// stay in the snapshot file and are demand-paged through one read-only
// mapping (SPANN/DiskANN-style head-in-RAM, postings-on-disk). The
// TieredListStore is the residency policy on top of that mapping: an
// explicit clock (second-chance) cache over whole posting lists, sized by
// `resident_bytes_budget`, with madvise hints on admit/evict and a pin
// contract for scans.
//
// Pin contract: a scan calls Pin() with its probe set before touching any
// row; cold lists are faulted in (madvise(WILLNEED) + page touch, timed into
// the fault histogram) and every pinned list is exempt from eviction until
// the returned guard dies. Eviction is *advisory page release* — the data is
// a read-only file mapping, so a dropped page refaults from the file with
// identical bytes; eviction can therefore never corrupt a scan, only slow
// one down, and the pin exists to keep the hot path off that slow refault.
//
// Deadline interaction: Pin() charges accumulated fault time against the
// caller's io budget (micros). Once the budget is exhausted the remaining
// probes are dropped — the query degrades to a reduced effective nprobe
// (the PR 4 degradation ladder's cheapest rung) instead of blowing p99 on a
// string of cold reads. At least one list is always served so a fully cold
// query still returns results.
//
// Integrity: storage is treated as an adversary. When the snapshot carries
// per-list CRC32C checksums (v5 directory), a list is verified on its first
// fault-in after load or after re-residency — the page touch that faults the
// data in doubles as the checksum walk, so a warmed hot path pays nothing.
// The touch+verify runs under a scoped SIGBUS guard: an I/O error or a file
// truncated behind the mapping surfaces as a typed TieredIoError for that
// probe instead of process death. A list that fails its checksum or faults
// is *quarantined* (atomic per-list poisoned flag): scans skip it and count
// the skip so the response can be marked degraded, and the control plane
// repairs the replica from a healthy peer when quarantine crosses its
// threshold. ScrubList() verifies a segment through the syscall path
// (pread), so a background scrubber can walk the file without perturbing
// residency and without SIGBUS exposure.
//
// Concurrency: any number of threads may Pin/unpin concurrently (scans are
// lock-free readers of the index itself; the store takes a short mutex per
// list transition). The page-touch walk happens outside the lock; a list
// mid-fault is in a `faulting` state and concurrent pinners wait on it, so
// no scan ever reads a checksummed segment before verification finishes.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/clock.h"
#include "obs/registry.h"
#include "tier/mmap_file.h"

namespace jdvs {

class FaultInjector;

// Typed failure for payload I/O: SIGBUS under the mapping (page loss,
// truncation behind the mapping) or a pread error during scrub. The store
// converts these into quarantine + skip on the query path; the type carries
// the diagnosis into logs and tools.
struct TieredIoError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct TieredStoreConfig {
  // Target resident payload bytes; 0 = unlimited (first touch faults a list
  // in and nothing is ever evicted). The budget is advisory: when every
  // resident list is pinned, admission overshoots rather than failing.
  std::size_t resident_bytes_budget = 0;
  // Drop all payload pages at construction so serving starts genuinely cold
  // (the file was usually just written and is warm in the page cache).
  bool drop_pages_on_load = true;
  obs::Registry* registry = nullptr;  // nullptr = obs::Registry::Default()
  const Clock* clock = nullptr;       // nullptr = MonotonicClock::Instance()
  // Optional deterministic storage-fault injection (tests, chaos bench):
  // fault-ins consult injector->DecideStorage(node_name).
  FaultInjector* fault_injector = nullptr;
  std::string node_name;
};

// Per-query tier accounting, folded into the searcher_io flight stage.
struct TierScanStats {
  std::uint32_t lists_hit = 0;      // probed lists already resident
  std::uint32_t lists_faulted = 0;  // probed lists faulted in
  std::uint32_t probes_dropped = 0; // probes dropped for io budget
  std::uint32_t lists_quarantined = 0;  // probes skipped or newly poisoned
  Micros fault_micros = 0;          // wall time spent faulting
};

// Cumulative store state (statusz section, bench JSON).
struct TieredStoreStats {
  std::size_t num_lists = 0;
  std::size_t resident_lists = 0;
  std::size_t resident_bytes = 0;
  std::size_t budget_bytes = 0;
  std::size_t payload_bytes = 0;  // total on-disk payload across lists
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t probes_dropped = 0;
  bool has_checksums = false;
  std::uint64_t quarantined_lists = 0;  // currently poisoned
  std::uint64_t quarantine_events = 0;  // lists ever poisoned
  std::uint64_t quarantine_skips = 0;   // probes skipped on poisoned lists
  std::uint64_t io_errors = 0;          // SIGBUS/pread failures survived
};

class TieredListStore {
 public:
  // One list's payload segment inside the file.
  struct ListExtent {
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
  };

  // Outcome of a scrub pass over one list.
  enum class ScrubStatus {
    kOk,                  // checksum verified
    kEmpty,               // empty segment, nothing to verify
    kNoChecksum,          // snapshot has no checksums (v4)
    kAlreadyQuarantined,  // previously poisoned, left alone
    kIoError,             // read failed → quarantined
    kCorrupt,             // checksum mismatch → quarantined
  };

  // Takes ownership of the mapping. `extents[i]` is list i's payload
  // segment; empty lists use bytes == 0. `checksums` (may be empty = no
  // integrity data, v4 snapshots) is the per-list CRC32C over the exact
  // payload bytes of each segment.
  TieredListStore(MmapFile file, std::vector<ListExtent> extents,
                  std::vector<std::uint32_t> checksums,
                  const TieredStoreConfig& config);
  TieredListStore(MmapFile file, std::vector<ListExtent> extents,
                  const TieredStoreConfig& config)
      : TieredListStore(std::move(file), std::move(extents), {}, config) {}

  TieredListStore(const TieredListStore&) = delete;
  TieredListStore& operator=(const TieredListStore&) = delete;

  // RAII pin over the subset of the Pin() probe set that was actually
  // admitted (quarantined lists are skipped, over-budget tails dropped).
  // While alive, none of the pinned lists can be evicted.
  class PinGuard {
   public:
    PinGuard() = default;
    PinGuard(PinGuard&& other) noexcept { *this = std::move(other); }
    PinGuard& operator=(PinGuard&& other) noexcept;
    PinGuard(const PinGuard&) = delete;
    PinGuard& operator=(const PinGuard&) = delete;
    ~PinGuard();

    // The pinned, scannable lists, in probe order. Not necessarily a prefix
    // of the Pin() argument: a quarantined list mid-set is skipped.
    const std::vector<std::uint32_t>& pinned() const noexcept {
      return pinned_;
    }
    std::size_t num_pinned() const noexcept { return pinned_.size(); }

   private:
    friend class TieredListStore;
    TieredListStore* store_ = nullptr;
    std::vector<std::uint32_t> pinned_;
  };

  // Pins `lists` in order, faulting cold ones. `io_budget_micros` bounds the
  // accumulated fault time: when exceeded, the remaining (coldest-ranked
  // last) probes are dropped and counted, but the first list is always
  // served. 0 = unlimited. Quarantined lists are skipped (never scanned,
  // never fatal). `stats` (optional) receives per-call accounting.
  PinGuard Pin(std::span<const std::uint32_t> lists, Micros io_budget_micros,
               TierScanStats* stats);

  // Verifies one list's payload against its checksum through the syscall
  // path (pread) — no SIGBUS exposure, no residency perturbation. Poisons
  // the list on mismatch or read failure. `elapsed_micros` (optional)
  // receives the wall time so a scrubber can charge an io budget.
  ScrubStatus ScrubList(std::uint32_t list, Micros* elapsed_micros = nullptr);

  // Drops every unpinned resident list and clears verification state, as if
  // the page cache went cold (bench/chaos hook: corruption written to the
  // file at rest is only observable through a re-fault, and re-residency
  // must re-verify).
  void DropResidency();

  TieredStoreStats Stats() const;
  // statusz section body.
  void RenderStatus(std::ostream& os) const;

  const MmapFile& file() const noexcept { return file_; }
  std::size_t num_lists() const noexcept { return states_.size(); }
  bool has_checksums() const noexcept { return !checksums_.empty(); }
  // List i's payload extent; immutable after construction (inspection).
  ListExtent extent(std::size_t list) const { return states_[list].extent; }
  bool poisoned(std::size_t list) const {
    return poisoned_[list].load(std::memory_order_acquire) != 0;
  }
  // Currently quarantined list count (control-plane health signal).
  std::uint64_t quarantined_lists() const {
    return quarantined_now_.load(std::memory_order_relaxed);
  }

 private:
  struct ListState {
    ListExtent extent;
    std::uint32_t pin_count = 0;
    bool resident = false;
    bool ref = false;       // clock second-chance bit
    bool verified = false;  // checksum verified for the current residency
    bool faulting = false;  // fault-in + verification in flight
  };

  // Evicts unpinned resident lists until `need` more bytes fit under the
  // budget (or nothing evictable remains). Appends dropped extents to
  // `dropped` for the caller to madvise outside the lock. Lock held.
  void EvictForLocked(std::size_t need, std::vector<ListExtent>& dropped);
  void Unpin(std::span<const std::uint32_t> lists);
  // Poisons `list` and rolls back its in-flight admission (lock taken
  // inside). `io_error` selects the error counter. Returns the extent so
  // the caller can drop its pages outside the lock.
  void QuarantineFromFault(std::uint32_t list, bool io_error,
                           const char* reason);
  // Poisons `list` from the scrub path; un-residents it when unpinned.
  void QuarantineFromScrub(std::uint32_t list, bool io_error,
                           const char* reason);
  void NotePoisonedLocked(std::uint32_t list, bool io_error,
                          const char* reason);
  // Walks the extent's pages (and computes the CRC when `crc_out` is
  // non-null) under a scoped SIGBUS guard. Returns false when the access
  // faulted — truncated file, lost page, I/O error.
  bool TouchExtentGuarded(const ListExtent& extent,
                          std::uint32_t* crc_out) const;

  MmapFile file_;
  const TieredStoreConfig config_;
  const Clock* clock_;
  std::size_t payload_bytes_ = 0;
  std::vector<std::uint32_t> checksums_;  // empty = no integrity data (v4)

  mutable std::mutex mu_;
  std::condition_variable fault_cv_;
  std::vector<ListState> states_;
  std::unique_ptr<std::atomic<std::uint8_t>[]> poisoned_;
  std::size_t resident_bytes_ = 0;
  std::size_t resident_lists_ = 0;
  std::size_t clock_hand_ = 0;

  // Store-local cumulative counters (mirrored into the registry instruments,
  // which may be shared across partitions).
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> probes_dropped_{0};
  std::atomic<std::uint64_t> quarantined_now_{0};
  std::atomic<std::uint64_t> quarantine_events_{0};
  std::atomic<std::uint64_t> quarantine_skips_{0};
  std::atomic<std::uint64_t> io_errors_{0};

  obs::Counter* hits_metric_;
  obs::Counter* misses_metric_;
  obs::Counter* evictions_metric_;
  obs::Counter* probes_dropped_metric_;
  obs::Counter* quarantine_metric_;
  obs::Counter* quarantine_skips_metric_;
  obs::Counter* io_errors_metric_;
  obs::Gauge* resident_bytes_metric_;
  obs::Gauge* budget_bytes_metric_;
  obs::Gauge* quarantine_lists_metric_;
  Histogram* fault_micros_metric_;
};

}  // namespace jdvs

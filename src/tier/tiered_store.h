// Hot-list residency cache over an mmap'd v4 snapshot.
//
// The tiered index keeps the "head" in RAM — coarse quantizer, per-list
// directory, LocalId/norm arrays, PQ codebooks, attribute filter index —
// while the big per-list payload segments (feature rows / packed PQ codes)
// stay in the snapshot file and are demand-paged through one read-only
// mapping (SPANN/DiskANN-style head-in-RAM, postings-on-disk). The
// TieredListStore is the residency policy on top of that mapping: an
// explicit clock (second-chance) cache over whole posting lists, sized by
// `resident_bytes_budget`, with madvise hints on admit/evict and a pin
// contract for scans.
//
// Pin contract: a scan calls Pin() with its probe set before touching any
// row; cold lists are faulted in (madvise(WILLNEED) + page touch, timed into
// the fault histogram) and every pinned list is exempt from eviction until
// the returned guard dies. Eviction is *advisory page release* — the data is
// a read-only file mapping, so a dropped page refaults from the file with
// identical bytes; eviction can therefore never corrupt a scan, only slow
// one down, and the pin exists to keep the hot path off that slow refault.
//
// Deadline interaction: Pin() charges accumulated fault time against the
// caller's io budget (micros). Once the budget is exhausted the remaining
// probes are dropped — the query degrades to a reduced effective nprobe
// (the PR 4 degradation ladder's cheapest rung) instead of blowing p99 on a
// string of cold reads. At least one list is always served so a fully cold
// query still returns results.
//
// Concurrency: any number of threads may Pin/unpin concurrently (scans are
// lock-free readers of the index itself; the store takes a short mutex per
// list transition). The page-touch walk happens outside the lock.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <span>
#include <vector>

#include "common/clock.h"
#include "obs/registry.h"
#include "tier/mmap_file.h"

namespace jdvs {

struct TieredStoreConfig {
  // Target resident payload bytes; 0 = unlimited (first touch faults a list
  // in and nothing is ever evicted). The budget is advisory: when every
  // resident list is pinned, admission overshoots rather than failing.
  std::size_t resident_bytes_budget = 0;
  // Drop all payload pages at construction so serving starts genuinely cold
  // (the file was usually just written and is warm in the page cache).
  bool drop_pages_on_load = true;
  obs::Registry* registry = nullptr;  // nullptr = obs::Registry::Default()
  const Clock* clock = nullptr;       // nullptr = MonotonicClock::Instance()
};

// Per-query tier accounting, folded into the searcher_io flight stage.
struct TierScanStats {
  std::uint32_t lists_hit = 0;      // probed lists already resident
  std::uint32_t lists_faulted = 0;  // probed lists faulted in
  std::uint32_t probes_dropped = 0; // probes dropped for io budget
  Micros fault_micros = 0;          // wall time spent faulting
};

// Cumulative store state (statusz section, bench JSON).
struct TieredStoreStats {
  std::size_t num_lists = 0;
  std::size_t resident_lists = 0;
  std::size_t resident_bytes = 0;
  std::size_t budget_bytes = 0;
  std::size_t payload_bytes = 0;  // total on-disk payload across lists
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t probes_dropped = 0;
};

class TieredListStore {
 public:
  // One list's payload segment inside the file.
  struct ListExtent {
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
  };

  // Takes ownership of the mapping. `extents[i]` is list i's payload
  // segment; empty lists use bytes == 0.
  TieredListStore(MmapFile file, std::vector<ListExtent> extents,
                  const TieredStoreConfig& config);

  TieredListStore(const TieredListStore&) = delete;
  TieredListStore& operator=(const TieredListStore&) = delete;

  // RAII pin over a prefix of the probe set passed to Pin(). While alive,
  // none of the pinned lists can be evicted.
  class PinGuard {
   public:
    PinGuard() = default;
    PinGuard(PinGuard&& other) noexcept { *this = std::move(other); }
    PinGuard& operator=(PinGuard&& other) noexcept;
    PinGuard(const PinGuard&) = delete;
    PinGuard& operator=(const PinGuard&) = delete;
    ~PinGuard();

    // Number of leading entries of the Pin() probe set that are pinned and
    // scannable; the caller truncates its probe loop to this.
    std::size_t num_pinned() const noexcept { return pinned_.size(); }

   private:
    friend class TieredListStore;
    TieredListStore* store_ = nullptr;
    std::vector<std::uint32_t> pinned_;
  };

  // Pins `lists` in order, faulting cold ones. `io_budget_micros` bounds the
  // accumulated fault time: when exceeded, the remaining (coldest-ranked
  // last) probes are dropped and counted, but the first list is always
  // served. 0 = unlimited. `stats` (optional) receives per-call accounting.
  PinGuard Pin(std::span<const std::uint32_t> lists, Micros io_budget_micros,
               TierScanStats* stats);

  TieredStoreStats Stats() const;
  // statusz section body.
  void RenderStatus(std::ostream& os) const;

  const MmapFile& file() const noexcept { return file_; }
  std::size_t num_lists() const noexcept { return states_.size(); }
  // List i's payload extent; immutable after construction (inspection).
  ListExtent extent(std::size_t list) const { return states_[list].extent; }

 private:
  struct ListState {
    ListExtent extent;
    std::uint32_t pin_count = 0;
    bool resident = false;
    bool ref = false;  // clock second-chance bit
  };

  // Evicts unpinned resident lists until `need` more bytes fit under the
  // budget (or nothing evictable remains). Appends dropped extents to
  // `dropped` for the caller to madvise outside the lock. Lock held.
  void EvictForLocked(std::size_t need, std::vector<ListExtent>& dropped);
  void Unpin(std::span<const std::uint32_t> lists);
  // Walks the extent's pages so the file data is actually faulted in.
  void TouchExtent(const ListExtent& extent) const;

  MmapFile file_;
  const TieredStoreConfig config_;
  const Clock* clock_;
  std::size_t payload_bytes_ = 0;

  mutable std::mutex mu_;
  std::vector<ListState> states_;
  std::size_t resident_bytes_ = 0;
  std::size_t resident_lists_ = 0;
  std::size_t clock_hand_ = 0;

  // Store-local cumulative counters (mirrored into the registry instruments,
  // which may be shared across partitions).
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> probes_dropped_{0};

  obs::Counter* hits_metric_;
  obs::Counter* misses_metric_;
  obs::Counter* evictions_metric_;
  obs::Counter* probes_dropped_metric_;
  obs::Gauge* resident_bytes_metric_;
  obs::Gauge* budget_bytes_metric_;
  Histogram* fault_micros_metric_;
};

}  // namespace jdvs

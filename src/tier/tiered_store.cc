#include "tier/tiered_store.h"

#include <algorithm>
#include <chrono>
#include <csetjmp>
#include <csignal>
#include <cstring>
#include <thread>
#include <utility>

#include "common/crc32c.h"
#include "common/logging.h"
#include "net/fault_injector.h"

namespace jdvs {
namespace {

constexpr std::size_t kTouchStride = 4096;   // conservative page size
constexpr std::size_t kScrubChunk = 1 << 18; // pread buffer for scrub walks

#if defined(__linux__) || defined(__APPLE__)
#define JDVS_HAVE_SIGBUS_GUARD 1
// Scoped SIGBUS recovery for mapped-payload access. The handler is installed
// process-wide exactly once; it only acts when the faulting thread has an
// active guard (thread_local jump buffer), otherwise it restores the default
// disposition and re-raises so an unrelated SIGBUS still dies loudly with
// the right signal. sigsetjmp(.., 1) saves the signal mask so the longjmp
// out of the handler leaves the thread able to take the next SIGBUS.
thread_local sigjmp_buf* tl_sigbus_jmp = nullptr;

void SigbusHandler(int sig) {
  if (tl_sigbus_jmp != nullptr) siglongjmp(*tl_sigbus_jmp, 1);
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

void InstallSigbusHandler() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction sa {};
    sa.sa_handler = SigbusHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    ::sigaction(SIGBUS, &sa, nullptr);
  });
}
#else
#define JDVS_HAVE_SIGBUS_GUARD 0
#endif

}  // namespace

TieredListStore::TieredListStore(MmapFile file,
                                 std::vector<ListExtent> extents,
                                 std::vector<std::uint32_t> checksums,
                                 const TieredStoreConfig& config)
    : file_(std::move(file)),
      config_(config),
      clock_(config.clock != nullptr ? config.clock
                                     : &MonotonicClock::Instance()),
      checksums_(std::move(checksums)) {
  obs::Registry& registry =
      config.registry != nullptr ? *config.registry : obs::Registry::Default();
  hits_metric_ = &registry.GetCounter("jdvs_tier_hits_total");
  misses_metric_ = &registry.GetCounter("jdvs_tier_misses_total");
  evictions_metric_ = &registry.GetCounter("jdvs_tier_evictions_total");
  probes_dropped_metric_ =
      &registry.GetCounter("jdvs_tier_probes_dropped_total");
  quarantine_metric_ = &registry.GetCounter("jdvs_tier_quarantine_total");
  quarantine_skips_metric_ =
      &registry.GetCounter("jdvs_tier_quarantine_skips_total");
  io_errors_metric_ = &registry.GetCounter("jdvs_tier_io_errors_total");
  resident_bytes_metric_ = &registry.GetGauge("jdvs_tier_resident_bytes");
  budget_bytes_metric_ = &registry.GetGauge("jdvs_tier_budget_bytes");
  quarantine_lists_metric_ =
      &registry.GetGauge("jdvs_tier_quarantine_lists");
  fault_micros_metric_ = &registry.GetHistogram("jdvs_tier_fault_micros");
  fault_micros_metric_->EnableExemplars();
  budget_bytes_metric_->Add(
      static_cast<std::int64_t>(config_.resident_bytes_budget));

  states_.reserve(extents.size());
  for (const ListExtent& extent : extents) {
    ListState state;
    state.extent = extent;
    states_.push_back(state);
    payload_bytes_ += extent.bytes;
  }
  if (!checksums_.empty() && checksums_.size() != states_.size()) {
    throw TieredIoError("checksum directory size mismatch: " +
                        std::to_string(checksums_.size()) + " checksums for " +
                        std::to_string(states_.size()) + " lists");
  }
  poisoned_ = std::make_unique<std::atomic<std::uint8_t>[]>(
      states_.empty() ? 1 : states_.size());
  if (config_.drop_pages_on_load) {
    for (const ListState& state : states_) {
      if (state.extent.bytes > 0) {
        file_.Advise(state.extent.offset, state.extent.bytes,
                     MmapFile::Advice::kDontNeed);
      }
    }
  }
}

bool TieredListStore::TouchExtentGuarded(const ListExtent& extent,
                                         std::uint32_t* crc_out) const {
#if JDVS_HAVE_SIGBUS_GUARD
  InstallSigbusHandler();
  sigjmp_buf jmp;
  sigjmp_buf* const prev = tl_sigbus_jmp;
  if (sigsetjmp(jmp, 1) != 0) {
    tl_sigbus_jmp = prev;
    return false;
  }
  tl_sigbus_jmp = &jmp;
#endif
  if (crc_out != nullptr) {
    // The checksum walk reads every byte, which faults the pages in as a
    // side effect — no separate touch pass needed.
    *crc_out = Crc32c(file_.data() + extent.offset,
                      static_cast<std::size_t>(extent.bytes));
  } else {
    const volatile std::uint8_t* base = file_.data() + extent.offset;
    std::uint8_t sink = 0;
    for (std::uint64_t off = 0; off < extent.bytes; off += kTouchStride) {
      sink ^= base[off];
    }
    if (extent.bytes > 0) sink ^= base[extent.bytes - 1];
    (void)sink;
  }
#if JDVS_HAVE_SIGBUS_GUARD
  tl_sigbus_jmp = prev;
#endif
  return true;
}

void TieredListStore::EvictForLocked(std::size_t need,
                                     std::vector<ListExtent>& dropped) {
  if (config_.resident_bytes_budget == 0 || states_.empty()) return;
  const std::size_t budget = config_.resident_bytes_budget;
  // Clock sweep, at most two full revolutions (first clears ref bits, the
  // second evicts). Pinned lists are skipped unconditionally: pin wins.
  std::size_t steps = 2 * states_.size();
  while (steps-- > 0 && resident_bytes_ + need > budget) {
    ListState& s = states_[clock_hand_];
    clock_hand_ = (clock_hand_ + 1) % states_.size();
    if (!s.resident || s.pin_count > 0 || s.faulting) continue;
    if (s.ref) {
      s.ref = false;  // second chance
      continue;
    }
    s.resident = false;
    s.verified = false;  // re-residency must re-verify
    resident_bytes_ -= s.extent.bytes;
    --resident_lists_;
    dropped.push_back(s.extent);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    evictions_metric_->Increment();
    resident_bytes_metric_->Add(-static_cast<std::int64_t>(s.extent.bytes));
  }
}

void TieredListStore::NotePoisonedLocked(std::uint32_t list, bool io_error,
                                         const char* reason) {
  poisoned_[list].store(1, std::memory_order_release);
  quarantined_now_.fetch_add(1, std::memory_order_relaxed);
  quarantine_events_.fetch_add(1, std::memory_order_relaxed);
  quarantine_metric_->Increment();
  quarantine_lists_metric_->Add(1);
  if (io_error) {
    io_errors_.fetch_add(1, std::memory_order_relaxed);
    io_errors_metric_->Increment();
  }
  const TieredIoError err(std::string(reason) + " on list " +
                          std::to_string(list) + " — quarantined");
  JDVS_LOG(kWarning) << "tier: " << err.what();
}

void TieredListStore::QuarantineFromFault(std::uint32_t list, bool io_error,
                                          const char* reason) {
  ListExtent extent;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ListState& s = states_[list];
    extent = s.extent;
    // Roll back the admission made before the fault walk.
    s.faulting = false;
    s.resident = false;
    s.verified = false;
    resident_bytes_ -= s.extent.bytes;
    --resident_lists_;
    resident_bytes_metric_->Add(-static_cast<std::int64_t>(s.extent.bytes));
    if (poisoned_[list].load(std::memory_order_relaxed) == 0) {
      NotePoisonedLocked(list, io_error, reason);
    }
  }
  fault_cv_.notify_all();
  file_.Advise(extent.offset, extent.bytes, MmapFile::Advice::kDontNeed);
}

void TieredListStore::QuarantineFromScrub(std::uint32_t list, bool io_error,
                                          const char* reason) {
  ListExtent dropped{0, 0};
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (poisoned_[list].load(std::memory_order_relaxed) != 0) return;
    ListState& s = states_[list];
    if (s.resident && s.pin_count == 0 && !s.faulting) {
      s.resident = false;
      s.verified = false;
      resident_bytes_ -= s.extent.bytes;
      --resident_lists_;
      resident_bytes_metric_->Add(-static_cast<std::int64_t>(s.extent.bytes));
      dropped = s.extent;
    }
    NotePoisonedLocked(list, io_error, reason);
  }
  if (dropped.bytes > 0) {
    file_.Advise(dropped.offset, dropped.bytes, MmapFile::Advice::kDontNeed);
  }
}

TieredListStore::PinGuard TieredListStore::Pin(
    std::span<const std::uint32_t> lists, Micros io_budget_micros,
    TierScanStats* stats) {
  PinGuard guard;
  guard.store_ = this;
  guard.pinned_.reserve(lists.size());
  Micros fault_total = 0;
  std::vector<ListExtent> dropped;
  for (std::size_t i = 0; i < lists.size(); ++i) {
    const std::uint32_t list = lists[i];
    if (list >= states_.size()) break;  // malformed probe: stop cleanly
    bool fault = false;
    bool verify = false;
    ListExtent extent;
    bool budget_exhausted = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      ListState& s = states_[list];
      // Another thread is mid-fault on this list: wait for its verification
      // to settle rather than scanning unverified bytes or double-faulting.
      while (s.faulting) fault_cv_.wait(lock);
      if (poisoned_[list].load(std::memory_order_relaxed) != 0) {
        quarantine_skips_.fetch_add(1, std::memory_order_relaxed);
        quarantine_skips_metric_->Increment();
        if (stats != nullptr) ++stats->lists_quarantined;
        continue;
      }
      if (s.resident || s.extent.bytes == 0) {
        ++s.pin_count;
        s.ref = true;
        hits_.fetch_add(1, std::memory_order_relaxed);
        hits_metric_->Increment();
        if (stats != nullptr) ++stats->lists_hit;
      } else {
        // Cold list: charge it to the io budget before committing. The
        // first list is always served, however cold — a degraded answer
        // still needs at least one probe.
        if (io_budget_micros > 0 && fault_total >= io_budget_micros &&
            !guard.pinned_.empty()) {
          const auto remaining =
              static_cast<std::uint32_t>(lists.size() - i);
          probes_dropped_.fetch_add(remaining, std::memory_order_relaxed);
          probes_dropped_metric_->Increment(remaining);
          if (stats != nullptr) stats->probes_dropped += remaining;
          budget_exhausted = true;
        } else {
          EvictForLocked(s.extent.bytes, dropped);
          // Admission is committed now (bytes reserved against the budget)
          // but the list stays non-resident and `faulting` until the touch
          // + checksum walk outside the lock succeeds — a concurrent pinner
          // must never treat an unverified list as a warm hit.
          s.faulting = true;
          resident_bytes_ += s.extent.bytes;
          ++resident_lists_;
          misses_.fetch_add(1, std::memory_order_relaxed);
          misses_metric_->Increment();
          resident_bytes_metric_->Add(
              static_cast<std::int64_t>(s.extent.bytes));
          fault = true;
          verify = !checksums_.empty() && !s.verified;
          extent = s.extent;
          if (stats != nullptr) ++stats->lists_faulted;
        }
      }
    }
    if (budget_exhausted) break;
    // Page release for evicted lists and the fault walk for this one happen
    // outside the lock. A concurrent re-pin racing the DONTNEED merely
    // refaults the same file bytes — a latency hazard the pin prevents on
    // lists that matter, never a correctness one.
    for (const ListExtent& d : dropped) {
      file_.Advise(d.offset, d.bytes, MmapFile::Advice::kDontNeed);
    }
    dropped.clear();
    if (fault) {
      FaultInjector::StorageDecision injected;
      if (config_.fault_injector != nullptr) {
        injected = config_.fault_injector->DecideStorage(config_.node_name);
        if (injected.delay_micros > 0) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(injected.delay_micros));
        }
      }
      const Stopwatch watch(*clock_);
      file_.Advise(extent.offset, extent.bytes, MmapFile::Advice::kWillNeed);
      std::uint32_t crc = 0;
      const bool touched =
          !injected.fail &&
          TouchExtentGuarded(extent, verify ? &crc : nullptr);
      const Micros micros = watch.ElapsedMicros();
      fault_total += micros;
      fault_micros_metric_->RecordWithExemplar(micros, /*trace_id=*/0,
                                               /*ref=*/list);
      if (!touched) {
        QuarantineFromFault(list, /*io_error=*/true,
                            injected.fail ? "injected fault-in failure"
                                          : "I/O error during fault-in");
        if (stats != nullptr) ++stats->lists_quarantined;
        continue;
      }
      if (verify && crc != checksums_[list]) {
        QuarantineFromFault(list, /*io_error=*/false,
                            "payload checksum mismatch");
        if (stats != nullptr) ++stats->lists_quarantined;
        continue;
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        ListState& s = states_[list];
        s.faulting = false;
        s.resident = true;
        s.ref = true;
        if (verify || checksums_.empty()) s.verified = true;
        ++s.pin_count;
      }
      fault_cv_.notify_all();
    }
    guard.pinned_.push_back(list);
  }
  if (stats != nullptr) stats->fault_micros += fault_total;
  return guard;
}

TieredListStore::ScrubStatus TieredListStore::ScrubList(
    std::uint32_t list, Micros* elapsed_micros) {
  if (list >= states_.size()) return ScrubStatus::kEmpty;
  const ListExtent extent = states_[list].extent;  // immutable
  if (poisoned_[list].load(std::memory_order_acquire) != 0) {
    return ScrubStatus::kAlreadyQuarantined;
  }
  if (extent.bytes == 0) return ScrubStatus::kEmpty;
  if (checksums_.empty()) return ScrubStatus::kNoChecksum;

  const Stopwatch watch(*clock_);
  std::uint32_t crc = 0;
  bool io_ok = true;
  std::vector<std::uint8_t> buf(
      static_cast<std::size_t>(std::min<std::uint64_t>(extent.bytes,
                                                       kScrubChunk)));
  for (std::uint64_t off = 0; off < extent.bytes && io_ok;) {
    const auto n = static_cast<std::size_t>(
        std::min<std::uint64_t>(extent.bytes - off, buf.size()));
    io_ok = file_.Pread(static_cast<std::size_t>(extent.offset + off),
                        buf.data(), n);
    if (io_ok) crc = Crc32c(buf.data(), n, crc);
    off += n;
  }
  if (elapsed_micros != nullptr) *elapsed_micros += watch.ElapsedMicros();
  if (!io_ok) {
    QuarantineFromScrub(list, /*io_error=*/true, "scrub read failure");
    return ScrubStatus::kIoError;
  }
  if (crc != checksums_[list]) {
    QuarantineFromScrub(list, /*io_error=*/false, "scrub checksum mismatch");
    return ScrubStatus::kCorrupt;
  }
  // Verification through the syscall path is only durable for the current
  // residency: a resident list's pages are the same page-cache bytes pread
  // just hashed, so mark it verified; a cold list re-verifies at fault-in.
  {
    std::lock_guard<std::mutex> lock(mu_);
    ListState& s = states_[list];
    if (s.resident && !s.faulting) s.verified = true;
  }
  return ScrubStatus::kOk;
}

void TieredListStore::DropResidency() {
  std::vector<ListExtent> dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (ListState& s : states_) {
      if (s.resident && s.pin_count == 0 && !s.faulting) {
        s.resident = false;
        s.verified = false;
        resident_bytes_ -= s.extent.bytes;
        --resident_lists_;
        resident_bytes_metric_->Add(
            -static_cast<std::int64_t>(s.extent.bytes));
        dropped.push_back(s.extent);
      }
    }
  }
  for (const ListExtent& d : dropped) {
    file_.Advise(d.offset, d.bytes, MmapFile::Advice::kDontNeed);
  }
}

void TieredListStore::Unpin(std::span<const std::uint32_t> lists) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::uint32_t list : lists) {
    ListState& s = states_[list];
    if (s.pin_count > 0) --s.pin_count;
  }
}

TieredListStore::PinGuard& TieredListStore::PinGuard::operator=(
    PinGuard&& other) noexcept {
  if (this == &other) return *this;
  if (store_ != nullptr && !pinned_.empty()) store_->Unpin(pinned_);
  store_ = std::exchange(other.store_, nullptr);
  pinned_ = std::move(other.pinned_);
  other.pinned_.clear();
  return *this;
}

TieredListStore::PinGuard::~PinGuard() {
  if (store_ != nullptr && !pinned_.empty()) store_->Unpin(pinned_);
}

TieredStoreStats TieredListStore::Stats() const {
  TieredStoreStats stats;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.num_lists = states_.size();
    stats.resident_lists = resident_lists_;
    stats.resident_bytes = resident_bytes_;
  }
  stats.budget_bytes = config_.resident_bytes_budget;
  stats.payload_bytes = payload_bytes_;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.probes_dropped = probes_dropped_.load(std::memory_order_relaxed);
  stats.has_checksums = !checksums_.empty();
  stats.quarantined_lists = quarantined_now_.load(std::memory_order_relaxed);
  stats.quarantine_events =
      quarantine_events_.load(std::memory_order_relaxed);
  stats.quarantine_skips = quarantine_skips_.load(std::memory_order_relaxed);
  stats.io_errors = io_errors_.load(std::memory_order_relaxed);
  return stats;
}

void TieredListStore::RenderStatus(std::ostream& os) const {
  const TieredStoreStats s = Stats();
  const double hit_rate =
      (s.hits + s.misses) == 0
          ? 0.0
          : static_cast<double>(s.hits) /
                static_cast<double>(s.hits + s.misses);
  os << "  mapped: " << (file_.mapped() ? "yes" : "no (heap fallback)")
     << "\n  lists: " << s.num_lists << " (" << s.resident_lists
     << " resident)\n  payload bytes: " << s.payload_bytes
     << " on disk, " << s.resident_bytes << " resident, budget "
     << s.budget_bytes << "\n  hits: " << s.hits << "  misses: " << s.misses
     << "  hit rate: " << hit_rate << "\n  evictions: " << s.evictions
     << "  probes dropped (io budget): " << s.probes_dropped
     << "\n  integrity: " << (s.has_checksums ? "crc32c" : "none (v4)")
     << "  quarantined: " << s.quarantined_lists << " ("
     << s.quarantine_events << " events, " << s.quarantine_skips
     << " probes skipped, " << s.io_errors << " io errors)\n";
}

}  // namespace jdvs

#include "tier/tiered_store.h"

#include <algorithm>
#include <utility>

namespace jdvs {
namespace {

constexpr std::size_t kTouchStride = 4096;  // conservative page size

}  // namespace

TieredListStore::TieredListStore(MmapFile file,
                                 std::vector<ListExtent> extents,
                                 const TieredStoreConfig& config)
    : file_(std::move(file)),
      config_(config),
      clock_(config.clock != nullptr ? config.clock
                                     : &MonotonicClock::Instance()) {
  obs::Registry& registry =
      config.registry != nullptr ? *config.registry : obs::Registry::Default();
  hits_metric_ = &registry.GetCounter("jdvs_tier_hits_total");
  misses_metric_ = &registry.GetCounter("jdvs_tier_misses_total");
  evictions_metric_ = &registry.GetCounter("jdvs_tier_evictions_total");
  probes_dropped_metric_ =
      &registry.GetCounter("jdvs_tier_probes_dropped_total");
  resident_bytes_metric_ = &registry.GetGauge("jdvs_tier_resident_bytes");
  budget_bytes_metric_ = &registry.GetGauge("jdvs_tier_budget_bytes");
  fault_micros_metric_ = &registry.GetHistogram("jdvs_tier_fault_micros");
  fault_micros_metric_->EnableExemplars();
  budget_bytes_metric_->Add(
      static_cast<std::int64_t>(config_.resident_bytes_budget));

  states_.reserve(extents.size());
  for (const ListExtent& extent : extents) {
    ListState state;
    state.extent = extent;
    states_.push_back(state);
    payload_bytes_ += extent.bytes;
  }
  if (config_.drop_pages_on_load) {
    for (const ListState& state : states_) {
      if (state.extent.bytes > 0) {
        file_.Advise(state.extent.offset, state.extent.bytes,
                     MmapFile::Advice::kDontNeed);
      }
    }
  }
}

void TieredListStore::TouchExtent(const ListExtent& extent) const {
  const volatile std::uint8_t* base = file_.data() + extent.offset;
  std::uint8_t sink = 0;
  for (std::uint64_t off = 0; off < extent.bytes; off += kTouchStride) {
    sink ^= base[off];
  }
  if (extent.bytes > 0) sink ^= base[extent.bytes - 1];
  (void)sink;
}

void TieredListStore::EvictForLocked(std::size_t need,
                                     std::vector<ListExtent>& dropped) {
  if (config_.resident_bytes_budget == 0 || states_.empty()) return;
  const std::size_t budget = config_.resident_bytes_budget;
  // Clock sweep, at most two full revolutions (first clears ref bits, the
  // second evicts). Pinned lists are skipped unconditionally: pin wins.
  std::size_t steps = 2 * states_.size();
  while (steps-- > 0 && resident_bytes_ + need > budget) {
    ListState& s = states_[clock_hand_];
    clock_hand_ = (clock_hand_ + 1) % states_.size();
    if (!s.resident || s.pin_count > 0) continue;
    if (s.ref) {
      s.ref = false;  // second chance
      continue;
    }
    s.resident = false;
    resident_bytes_ -= s.extent.bytes;
    --resident_lists_;
    dropped.push_back(s.extent);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    evictions_metric_->Increment();
    resident_bytes_metric_->Add(-static_cast<std::int64_t>(s.extent.bytes));
  }
}

TieredListStore::PinGuard TieredListStore::Pin(
    std::span<const std::uint32_t> lists, Micros io_budget_micros,
    TierScanStats* stats) {
  PinGuard guard;
  guard.store_ = this;
  guard.pinned_.reserve(lists.size());
  Micros fault_total = 0;
  std::vector<ListExtent> dropped;
  for (std::size_t i = 0; i < lists.size(); ++i) {
    const std::uint32_t list = lists[i];
    if (list >= states_.size()) break;  // malformed probe: stop cleanly
    bool fault = false;
    ListExtent extent;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ListState& s = states_[list];
      if (s.resident || s.extent.bytes == 0) {
        ++s.pin_count;
        s.ref = true;
        hits_.fetch_add(1, std::memory_order_relaxed);
        hits_metric_->Increment();
        if (stats != nullptr) ++stats->lists_hit;
      } else {
        // Cold list: charge it to the io budget before committing. The
        // first list is always served, however cold — a degraded answer
        // still needs at least one probe.
        if (io_budget_micros > 0 && fault_total >= io_budget_micros &&
            !guard.pinned_.empty()) {
          const auto remaining =
              static_cast<std::uint32_t>(lists.size() - i);
          probes_dropped_.fetch_add(remaining, std::memory_order_relaxed);
          probes_dropped_metric_->Increment(remaining);
          if (stats != nullptr) stats->probes_dropped += remaining;
          break;
        }
        EvictForLocked(s.extent.bytes, dropped);
        s.resident = true;
        s.ref = true;
        ++s.pin_count;
        resident_bytes_ += s.extent.bytes;
        ++resident_lists_;
        misses_.fetch_add(1, std::memory_order_relaxed);
        misses_metric_->Increment();
        resident_bytes_metric_->Add(
            static_cast<std::int64_t>(s.extent.bytes));
        fault = true;
        extent = s.extent;
        if (stats != nullptr) ++stats->lists_faulted;
      }
    }
    // Page release for evicted lists and the fault walk for this one happen
    // outside the lock. A concurrent re-pin racing the DONTNEED merely
    // refaults the same file bytes — a latency hazard the pin prevents on
    // lists that matter, never a correctness one.
    for (const ListExtent& d : dropped) {
      file_.Advise(d.offset, d.bytes, MmapFile::Advice::kDontNeed);
    }
    dropped.clear();
    if (fault) {
      const Stopwatch watch(*clock_);
      file_.Advise(extent.offset, extent.bytes, MmapFile::Advice::kWillNeed);
      TouchExtent(extent);
      const Micros micros = watch.ElapsedMicros();
      fault_total += micros;
      fault_micros_metric_->RecordWithExemplar(micros, /*trace_id=*/0,
                                               /*ref=*/list);
    }
    guard.pinned_.push_back(list);
  }
  if (stats != nullptr) stats->fault_micros += fault_total;
  return guard;
}

void TieredListStore::Unpin(std::span<const std::uint32_t> lists) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::uint32_t list : lists) {
    ListState& s = states_[list];
    if (s.pin_count > 0) --s.pin_count;
  }
}

TieredListStore::PinGuard& TieredListStore::PinGuard::operator=(
    PinGuard&& other) noexcept {
  if (this == &other) return *this;
  if (store_ != nullptr && !pinned_.empty()) store_->Unpin(pinned_);
  store_ = std::exchange(other.store_, nullptr);
  pinned_ = std::move(other.pinned_);
  other.pinned_.clear();
  return *this;
}

TieredListStore::PinGuard::~PinGuard() {
  if (store_ != nullptr && !pinned_.empty()) store_->Unpin(pinned_);
}

TieredStoreStats TieredListStore::Stats() const {
  TieredStoreStats stats;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.num_lists = states_.size();
    stats.resident_lists = resident_lists_;
    stats.resident_bytes = resident_bytes_;
  }
  stats.budget_bytes = config_.resident_bytes_budget;
  stats.payload_bytes = payload_bytes_;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.probes_dropped = probes_dropped_.load(std::memory_order_relaxed);
  return stats;
}

void TieredListStore::RenderStatus(std::ostream& os) const {
  const TieredStoreStats s = Stats();
  const double hit_rate =
      (s.hits + s.misses) == 0
          ? 0.0
          : static_cast<double>(s.hits) /
                static_cast<double>(s.hits + s.misses);
  os << "  mapped: " << (file_.mapped() ? "yes" : "no (heap fallback)")
     << "\n  lists: " << s.num_lists << " (" << s.resident_lists
     << " resident)\n  payload bytes: " << s.payload_bytes
     << " on disk, " << s.resident_bytes << " resident, budget "
     << s.budget_bytes << "\n  hits: " << s.hits << "  misses: " << s.misses
     << "  hit rate: " << hit_rate << "\n  evictions: " << s.evictions
     << "  probes dropped (io budget): " << s.probes_dropped << "\n";
}

}  // namespace jdvs

// Snapshot format v4: the tiered (mmap-able) index layout.
//
// Versions 1-3 interleave every entry's feature row with its metadata, so a
// loader must stream the whole file through AddImage and copy each row into
// heap scan storage. Version 4 splits the file into a "head" the loader keeps
// in RAM — config, quantizer centroids, per-entry metadata, per-list
// LocalId/norm arrays, the per-list payload directory, and the v3-style
// verification trailer — and a payload region of per-list ScanBlock segments:
// each inverted list's padded feature rows as one contiguous, 64-byte-aligned,
// independently-addressable extent. The payload region is exactly what the
// PR 7 fused kernels scan, so a searcher can mmap the file and serve queries
// from it in place with zero deserialization, demand-paging lists through a
// TieredListStore residency cache (head-in-RAM, postings-on-disk).
//
// Layout:
//   u64 magic "JDVSIDX1" | u32 version=4|5 | u64 update_hwm | u64 payload_base
//   head (byte stream, same Write/ReadPod idiom as v1-v3):
//     config block (6 fields, as v3)
//     quantizer: dim, num_clusters, centroid floats
//     padded_dim (payload row stride in floats; loader cross-checks its own)
//     entries: count, then per entry in LocalId order the v3 metadata fields
//       (url, product, category, sales/price/praise, detail url, valid) —
//       but NO feature floats
//     directory: num_lists, then per list {entry_count, rel_offset, bytes}
//       (v5 appends u32 crc32c over the segment's exact payload bytes);
//       rel_offset is 64-aligned and relative to payload_base
//     per-list head arrays: LocalId ids[entry_count], float norms[entry_count]
//     verification: per-category populations + numeric column checksum (v3)
//   zero padding to payload_base (64-aligned)
//   payload segments: list i's rows at payload_base + rel_offset[i]
//
// Both loaders restore bit-identical search behaviour: the mapped loader
// installs the stored ids/norms/rows directly (AttachFrozenList), the heap
// loader replays AddImage with features read from the payload rows — the
// coarse assignment and norm computations are deterministic, so the rebuilt
// structure matches the stored one exactly.
//
// Integrity (version 5, "v4.1"): each directory entry carries a CRC32C over
// the segment's exact payload bytes. The mapped loader hands the checksums
// to the TieredListStore, which verifies a segment on first fault-in per
// residency; the heap loader verifies while copying. Version 4 files still
// load everywhere with checksums marked absent. The mapped loader also
// holds a shared flock on the file for the lifetime of the mapping and
// refuses a file whose size disagrees with the directory's last segment
// extent; SaveTieredSnapshot takes an exclusive flock first, so a deploy
// rewriting a file under a live mapping fails loudly instead of scrambling
// a scan later.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "index/snapshot.h"
#include "tier/tiered_store.h"

namespace jdvs {

// Current tiered snapshot version written by SaveTieredSnapshot.
inline constexpr std::uint32_t kTieredSnapshotVersion = 5;

// Writes `index` to `path` in the tiered layout. Throws SnapshotError on
// I/O failure or when the file is flock'd by a live mapping. Must not race
// the index's writer. `version` must be 4 (no checksums, compatibility
// writer for tests/tools) or 5.
void SaveTieredSnapshot(const IvfIndex& index, const std::string& path,
                        std::uint64_t update_hwm = 0,
                        std::uint32_t version = kTieredSnapshotVersion);

// Mapped load of a v4/v5 snapshot: head in RAM, payload left in the file
// and served through an attached TieredListStore built with `tier_config`.
// Throws SnapshotError on bad magic, unknown version, truncation, a file
// size that disagrees with the directory, a writer's flock, or a corrupt
// directory (misaligned or out-of-range extents, id/count mismatches). The
// returned index's real-time delta path stays fully mutable: AddImage
// appends heap chunks behind each frozen prefix.
std::unique_ptr<IvfIndex> LoadTieredSnapshot(
    const std::string& path, const TieredStoreConfig& tier_config,
    CopyExecutor copy_executor = InlineCopyExecutor(),
    std::uint64_t* update_hwm = nullptr);

// One payload segment as recorded in the directory (offsets absolute).
struct TieredSegmentInfo {
  std::uint32_t list = 0;
  std::uint64_t offset = 0;  // absolute file offset
  std::uint64_t bytes = 0;
  std::uint64_t entry_count = 0;
  std::uint32_t crc32c = 0;  // meaningful only when has_checksums
};

// Directory summary of a tiered snapshot file (chaos tools, inspection).
struct TieredDirectoryInfo {
  std::uint32_t version = 0;
  bool has_checksums = false;
  std::uint64_t payload_base = 0;
  std::vector<TieredSegmentInfo> segments;
};

// Parses just the head of a tiered snapshot. Throws SnapshotError on a
// malformed file.
TieredDirectoryInfo ReadTieredDirectory(const std::string& path);

// Offline integrity walk: recompute every segment's CRC32C against the
// directory (jdvs_snapshot_inspect --verify). On a v4 file, checked == 0
// and has_checksums == false.
struct TieredVerifyResult {
  bool has_checksums = false;
  std::size_t checked = 0;
  std::vector<std::uint32_t> corrupt_lists;
};
TieredVerifyResult VerifyTieredSnapshot(const std::string& path);

namespace internal {

// Heap load of a v4/v5 snapshot: everything copied to RAM via the AddImage
// replay path, no mapping, no tier store. LoadIndexSnapshot dispatches
// tiered files here so the generic loader keeps working on every version;
// the bit-exactness test compares this against LoadTieredSnapshot. v5
// checksums are verified during the copy (mismatch throws SnapshotError —
// a heap restore has no quarantine to degrade into).
std::unique_ptr<IvfIndex> LoadTieredSnapshotHeap(const std::string& path,
                                                 CopyExecutor copy_executor,
                                                 std::uint64_t* update_hwm);

}  // namespace internal

}  // namespace jdvs

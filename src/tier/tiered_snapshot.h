// Snapshot format v4: the tiered (mmap-able) index layout.
//
// Versions 1-3 interleave every entry's feature row with its metadata, so a
// loader must stream the whole file through AddImage and copy each row into
// heap scan storage. Version 4 splits the file into a "head" the loader keeps
// in RAM — config, quantizer centroids, per-entry metadata, per-list
// LocalId/norm arrays, the per-list payload directory, and the v3-style
// verification trailer — and a payload region of per-list ScanBlock segments:
// each inverted list's padded feature rows as one contiguous, 64-byte-aligned,
// independently-addressable extent. The payload region is exactly what the
// PR 7 fused kernels scan, so a searcher can mmap the file and serve queries
// from it in place with zero deserialization, demand-paging lists through a
// TieredListStore residency cache (head-in-RAM, postings-on-disk).
//
// Layout:
//   u64 magic "JDVSIDX1" | u32 version=4 | u64 update_hwm | u64 payload_base
//   head (byte stream, same Write/ReadPod idiom as v1-v3):
//     config block (6 fields, as v3)
//     quantizer: dim, num_clusters, centroid floats
//     padded_dim (payload row stride in floats; loader cross-checks its own)
//     entries: count, then per entry in LocalId order the v3 metadata fields
//       (url, product, category, sales/price/praise, detail url, valid) —
//       but NO feature floats
//     directory: num_lists, then per list {entry_count, rel_offset, bytes};
//       rel_offset is 64-aligned and relative to payload_base
//     per-list head arrays: LocalId ids[entry_count], float norms[entry_count]
//     verification: per-category populations + numeric column checksum (v3)
//   zero padding to payload_base (64-aligned)
//   payload segments: list i's rows at payload_base + rel_offset[i]
//
// Both loaders restore bit-identical search behaviour: the mapped loader
// installs the stored ids/norms/rows directly (AttachFrozenList), the heap
// loader replays AddImage with features read from the payload rows — the
// coarse assignment and norm computations are deterministic, so the rebuilt
// structure matches the stored one exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "index/snapshot.h"
#include "tier/tiered_store.h"

namespace jdvs {

// Writes `index` to `path` in the v4 tiered layout. Throws SnapshotError on
// I/O failure. Must not race the index's writer.
void SaveTieredSnapshot(const IvfIndex& index, const std::string& path,
                        std::uint64_t update_hwm = 0);

// Mapped load of a v4 snapshot: head in RAM, payload left in the file and
// served through an attached TieredListStore built with `tier_config`.
// Throws SnapshotError on bad magic, non-v4 version, truncation, or a
// corrupt directory (misaligned or out-of-range extents, id/count
// mismatches). The returned index's real-time delta path stays fully
// mutable: AddImage appends heap chunks behind each frozen prefix.
std::unique_ptr<IvfIndex> LoadTieredSnapshot(
    const std::string& path, const TieredStoreConfig& tier_config,
    CopyExecutor copy_executor = InlineCopyExecutor(),
    std::uint64_t* update_hwm = nullptr);

namespace internal {

// Heap load of a v4 snapshot: everything copied to RAM via the AddImage
// replay path, no mapping, no tier store. LoadIndexSnapshot dispatches v4
// files here so the generic loader keeps working on every version; the
// bit-exactness test compares this against LoadTieredSnapshot.
std::unique_ptr<IvfIndex> LoadTieredSnapshotHeap(const std::string& path,
                                                 CopyExecutor copy_executor,
                                                 std::uint64_t* update_hwm);

}  // namespace internal

}  // namespace jdvs

#include "tier/scrubber.h"

#include <chrono>

namespace jdvs {

TierScrubber::TierScrubber(StoreProvider provider,
                           const TierScrubConfig& config)
    : provider_(std::move(provider)), config_(config) {
  obs::Registry& registry =
      config.registry != nullptr ? *config.registry : obs::Registry::Default();
  lists_metric_ = &registry.GetCounter("jdvs_scrub_lists_total");
  corrupt_metric_ = &registry.GetCounter("jdvs_scrub_corrupt_total");
  cycles_metric_ = &registry.GetCounter("jdvs_scrub_cycles_total");
}

TierScrubber::~TierScrubber() { Stop(); }

void TierScrubber::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void TierScrubber::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

void TierScrubber::Loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::microseconds(config_.poll_micros),
                   [this] { return stop_; });
      if (stop_) return;
    }
    // Re-resolve every slice: a controller repair swaps the index (and its
    // store) out from under us, and the shared_ptr keeps this slice's store
    // alive even then.
    const std::shared_ptr<TieredListStore> store = provider_();
    if (store == nullptr || store->num_lists() == 0 ||
        !store->has_checksums()) {
      continue;
    }
    Micros spent = 0;
    for (std::size_t i = 0; i < config_.lists_per_slice; ++i) {
      if (config_.io_budget_micros_per_slice > 0 &&
          spent >= config_.io_budget_micros_per_slice) {
        break;
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (stop_) return;
      }
      std::size_t list;
      {
        std::lock_guard<std::mutex> lock(mu_);
        list = cursor_ % store->num_lists();
        cursor_ = (cursor_ + 1) % store->num_lists();
        if (cursor_ == 0) {
          cycles_.fetch_add(1, std::memory_order_relaxed);
          cycles_metric_->Increment();
        }
      }
      const TieredListStore::ScrubStatus status =
          store->ScrubList(static_cast<std::uint32_t>(list), &spent);
      lists_scrubbed_.fetch_add(1, std::memory_order_relaxed);
      lists_metric_->Increment();
      if (status == TieredListStore::ScrubStatus::kCorrupt ||
          status == TieredListStore::ScrubStatus::kIoError) {
        corrupt_found_.fetch_add(1, std::memory_order_relaxed);
        corrupt_metric_->Increment();
      }
    }
  }
}

}  // namespace jdvs

// Read-only memory-mapped file with advisory residency control.
//
// The v4 tiered snapshot is scanned in place: posting-list payload segments
// are 64-byte-aligned in the file, the file is mapped once, and the SIMD
// scan kernels read rows straight out of the mapping — the kernel's page
// cache is the storage tier. MmapFile is the RAII wrapper the tier layer
// builds on: open + map at construction, unmap at destruction, and
// madvise() pass-throughs so the hot-list cache can hint which segments
// should be resident (kWillNeed on admit) or dropped (kDontNeed on evict).
//
// Residency hints are *advisory*: on a read-only file mapping, MADV_DONTNEED
// discards the pages and a later access refaults them from the file, so an
// over-eager eviction is a performance hazard, never a correctness hazard.
// On platforms without mmap the whole file is read into an aligned heap
// block instead (mapped() == false) and the hints become no-ops — every
// consumer works unchanged, it just stops being demand-paged.
//
// The descriptor stays open for the lifetime of the mapping. That gives two
// integrity hooks the tier layer relies on: an advisory LOCK_SH flock held
// while the file is mapped (a writer taking LOCK_EX fails loudly instead of
// rewriting bytes under a live scan), and Pread() — a syscall-path read that
// never touches the mapping, so the scrubber can verify segments without
// SIGBUS risk and without perturbing page residency.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "vecmath/aligned.h"

namespace jdvs {

// Typed failure for open/map errors (missing file, empty file, non-regular
// file, lock conflict, mmap denial).
struct MmapError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class MmapFile {
 public:
  enum class Advice {
    kWillNeed,  // fault these pages in soon (cache admit)
    kDontNeed,  // drop these pages; refault from file on next access (evict)
  };

  MmapFile() = default;

  // Opens `path` read-only and maps it (or heap-reads it on platforms
  // without mmap). Throws MmapError on failure; an empty or non-regular
  // file is an error. With `lock_shared`, takes a non-blocking LOCK_SH
  // flock held until destruction — throws MmapError if a writer holds
  // LOCK_EX (the file is being rewritten).
  static MmapFile Open(const std::string& path, bool lock_shared = false);

  MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  ~MmapFile();

  const std::uint8_t* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool valid() const noexcept { return data_ != nullptr; }
  // True when the bytes are a real file mapping (demand-paged); false on the
  // heap-read fallback, where Advise is a no-op.
  bool mapped() const noexcept { return mapped_; }
  // True when a LOCK_SH flock is held on the underlying descriptor.
  bool locked() const noexcept { return locked_; }

  // madvise() over [offset, offset+length), widened to page boundaries.
  // Returns false when the hint was not applied (fallback mode or kernel
  // refusal) — callers must treat that as "no hint", not as an error.
  bool Advise(std::size_t offset, std::size_t length, Advice advice) const;

  // Reads [offset, offset+length) through the syscall path (pread on the
  // retained descriptor), never through the mapping — an I/O error comes
  // back as `false`, not SIGBUS. Falls back to a copy from the heap block
  // in fallback mode. Returns false on short read or out-of-range request.
  bool Pread(std::size_t offset, void* out, std::size_t length) const;

 private:
  std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  bool locked_ = false;
  int fd_ = -1;
  // Heap fallback storage (only set when mapped_ is false).
  AlignedArray<std::uint8_t> heap_;
};

}  // namespace jdvs

// Read-only memory-mapped file with advisory residency control.
//
// The v4 tiered snapshot is scanned in place: posting-list payload segments
// are 64-byte-aligned in the file, the file is mapped once, and the SIMD
// scan kernels read rows straight out of the mapping — the kernel's page
// cache is the storage tier. MmapFile is the RAII wrapper the tier layer
// builds on: open + map at construction, unmap at destruction, and
// madvise() pass-throughs so the hot-list cache can hint which segments
// should be resident (kWillNeed on admit) or dropped (kDontNeed on evict).
//
// Residency hints are *advisory*: on a read-only file mapping, MADV_DONTNEED
// discards the pages and a later access refaults them from the file, so an
// over-eager eviction is a performance hazard, never a correctness hazard.
// On platforms without mmap the whole file is read into an aligned heap
// block instead (mapped() == false) and the hints become no-ops — every
// consumer works unchanged, it just stops being demand-paged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "vecmath/aligned.h"

namespace jdvs {

// Typed failure for open/map errors (missing file, empty file, mmap denial).
struct MmapError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class MmapFile {
 public:
  enum class Advice {
    kWillNeed,  // fault these pages in soon (cache admit)
    kDontNeed,  // drop these pages; refault from file on next access (evict)
  };

  MmapFile() = default;

  // Opens `path` read-only and maps it (or heap-reads it on platforms
  // without mmap). Throws MmapError on failure; an empty file is an error.
  static MmapFile Open(const std::string& path);

  MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  ~MmapFile();

  const std::uint8_t* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool valid() const noexcept { return data_ != nullptr; }
  // True when the bytes are a real file mapping (demand-paged); false on the
  // heap-read fallback, where Advise is a no-op.
  bool mapped() const noexcept { return mapped_; }

  // madvise() over [offset, offset+length), widened to page boundaries.
  // Returns false when the hint was not applied (fallback mode or kernel
  // refusal) — callers must treat that as "no hint", not as an error.
  bool Advise(std::size_t offset, std::size_t length, Advice advice) const;

 private:
  std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  // Heap fallback storage (only set when mapped_ is false).
  AlignedArray<std::uint8_t> heap_;
};

}  // namespace jdvs

// Background integrity scrub over a TieredListStore.
//
// Bitrot on a demand-paged index is only discovered when a query faults the
// corrupt list in — which on a Zipfian workload can take arbitrarily long
// for cold lists. The scrubber closes that gap: a low-priority thread walks
// the payload directory round-robin, verifying each segment's CRC32C
// through the syscall path (TieredListStore::ScrubList — pread, so no
// SIGBUS exposure and no page-cache perturbation) and poisoning anything
// corrupt. Quarantine then shows up in the replica's health signal and the
// ClusterController repairs the replica from a healthy peer.
//
// Pacing reuses the io budget discipline of the serving path: each slice
// verifies at most `lists_per_slice` lists and stops early once
// `io_budget_micros_per_slice` of read+hash time has been charged, then
// sleeps `poll_micros`. The store is re-resolved from the provider every
// slice, so a controller re-installing the index (new store) never leaves
// the scrubber holding a dangling pointer — it just picks up the fresh
// store on its next slice.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "common/clock.h"
#include "obs/registry.h"
#include "tier/tiered_store.h"

namespace jdvs {

struct TierScrubConfig {
  // Sleep between slices. The default walks ~160 lists/second.
  Micros poll_micros = 50'000;
  // Lists verified per slice (before the io budget is consulted).
  std::size_t lists_per_slice = 8;
  // Read+hash budget per slice; 0 = unlimited (bounded by lists_per_slice).
  Micros io_budget_micros_per_slice = 0;
  obs::Registry* registry = nullptr;  // nullptr = obs::Registry::Default()
};

class TierScrubber {
 public:
  // Returns the store to scrub, or nullptr when there is nothing tiered to
  // verify right now (heap index installed, index mid-swap).
  using StoreProvider = std::function<std::shared_ptr<TieredListStore>()>;

  TierScrubber(StoreProvider provider, const TierScrubConfig& config);
  ~TierScrubber();

  TierScrubber(const TierScrubber&) = delete;
  TierScrubber& operator=(const TierScrubber&) = delete;

  void Start();
  void Stop();

  std::uint64_t lists_scrubbed() const {
    return lists_scrubbed_.load(std::memory_order_relaxed);
  }
  std::uint64_t corrupt_found() const {
    return corrupt_found_.load(std::memory_order_relaxed);
  }
  std::uint64_t cycles() const {
    return cycles_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();

  const StoreProvider provider_;
  const TierScrubConfig config_;

  obs::Counter* lists_metric_;
  obs::Counter* corrupt_metric_;
  obs::Counter* cycles_metric_;

  std::atomic<std::uint64_t> lists_scrubbed_{0};
  std::atomic<std::uint64_t> corrupt_found_{0};
  std::atomic<std::uint64_t> cycles_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool running_ = false;
  std::size_t cursor_ = 0;  // next list to verify (mod store size)
  std::thread thread_;
};

}  // namespace jdvs

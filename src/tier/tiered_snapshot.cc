#include "tier/tiered_snapshot.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "common/crc32c.h"
#include "vecmath/aligned.h"

#if defined(__linux__) || defined(__APPLE__)
#define JDVS_HAVE_FLOCK 1
#include <cerrno>
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#endif

namespace jdvs {
namespace {

constexpr std::uint64_t kMagic = 0x4A44565349445831ULL;  // "JDVSIDX1"
constexpr std::uint32_t kTieredVersion = 4;
constexpr std::uint32_t kTieredVersionChecksummed = 5;
constexpr std::uint64_t kSegmentAlign = kCacheLineBytes;
static_assert(kTieredSnapshotVersion == kTieredVersionChecksummed);

std::uint64_t AlignUp(std::uint64_t value) {
  return (value + kSegmentAlign - 1) & ~(kSegmentAlign - 1);
}

void WriteRaw(std::ostream& os, const void* data, std::size_t bytes) {
  os.write(static_cast<const char*>(data),
           static_cast<std::streamsize>(bytes));
  if (!os) throw SnapshotError("snapshot write failed");
}

template <typename T>
void WritePod(std::ostream& os, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  WriteRaw(os, &value, sizeof(T));
}

void WriteString(std::ostream& os, std::string_view s) {
  WritePod<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
  WriteRaw(os, s.data(), s.size());
}

void ReadRaw(std::istream& is, void* data, std::size_t bytes) {
  is.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (is.gcount() != static_cast<std::streamsize>(bytes)) {
    throw SnapshotError("snapshot truncated");
  }
}

template <typename T>
T ReadPod(std::istream& is) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value;
  ReadRaw(is, &value, sizeof(T));
  return value;
}

std::string ReadString(std::istream& is) {
  const auto size = ReadPod<std::uint32_t>(is);
  if (size > (1u << 24)) throw SnapshotError("snapshot string too large");
  std::string s(size, '\0');
  ReadRaw(is, s.data(), size);
  return s;
}

struct ListDirEntry {
  std::uint64_t entry_count = 0;
  std::uint64_t rel_offset = 0;  // from payload_base, kSegmentAlign-aligned
  std::uint64_t bytes = 0;
};

struct EntryMeta {
  std::string image_url;
  ProductId product_id = 0;
  CategoryId category = 0;
  ProductAttributes attributes;
  std::string detail_url;
  bool valid = true;
};

// Everything a loader needs before it decides heap-vs-mapped for the
// payload: the full head section plus where the payload region starts.
struct ParsedHead {
  std::uint32_t version = 0;
  std::uint64_t update_hwm = 0;
  std::uint64_t payload_base = 0;
  IvfIndexConfig config;
  std::size_t dim = 0;
  std::vector<float> centroids;
  std::size_t padded_dim = 0;
  std::vector<EntryMeta> entries;
  std::vector<ListDirEntry> directory;
  std::vector<std::vector<LocalId>> list_ids;
  std::vector<std::vector<float>> list_norms;
  std::vector<std::pair<CategoryId, std::uint64_t>> category_populations;
  std::uint64_t column_checksum = 0;
  // v5: per-list CRC32C over each segment's exact payload bytes. Empty on
  // v4 files (checksums absent).
  std::vector<std::uint32_t> list_crcs;
};

// The file size the directory implies: payload_base when every list is
// empty, otherwise the end of the furthest segment. The writer emits
// nothing after the last segment, so any other size means the file was
// rewritten or truncated under us.
std::uint64_t ExpectedFileSize(const ParsedHead& head) {
  std::uint64_t end = head.payload_base;
  for (const ListDirEntry& dir : head.directory) {
    if (dir.bytes == 0) continue;
    end = std::max(end, head.payload_base + dir.rel_offset + dir.bytes);
  }
  return end;
}

ParsedHead ParseHead(std::istream& is, const std::string& path) {
  if (ReadPod<std::uint64_t>(is) != kMagic) {
    throw SnapshotError("bad snapshot magic: " + path);
  }
  const auto version = ReadPod<std::uint32_t>(is);
  if (version != kTieredVersion && version != kTieredVersionChecksummed) {
    throw SnapshotError("not a tiered snapshot (version " +
                        std::to_string(version) + "): " + path);
  }
  ParsedHead head;
  head.version = version;
  head.update_hwm = ReadPod<std::uint64_t>(is);
  head.payload_base = ReadPod<std::uint64_t>(is);
  if (head.payload_base % kSegmentAlign != 0) {
    throw SnapshotError("v4 payload base not 64-byte aligned");
  }

  head.config.nprobe = static_cast<std::size_t>(ReadPod<std::uint64_t>(is));
  head.config.initial_list_capacity =
      static_cast<std::size_t>(ReadPod<std::uint64_t>(is));
  head.config.filter_invalid_during_scan = ReadPod<std::uint8_t>(is) != 0;
  head.config.filter_post_threshold = ReadPod<double>(is);
  head.config.filter_widen_threshold = ReadPod<double>(is);
  head.config.filter_widen_factor =
      static_cast<std::size_t>(ReadPod<std::uint64_t>(is));

  head.dim = static_cast<std::size_t>(ReadPod<std::uint64_t>(is));
  const auto num_clusters =
      static_cast<std::size_t>(ReadPod<std::uint64_t>(is));
  if (head.dim == 0 || head.dim > (1u << 20) || num_clusters == 0 ||
      num_clusters > (1u << 24)) {
    throw SnapshotError("implausible snapshot dimensions");
  }
  head.centroids.resize(num_clusters * head.dim);
  ReadRaw(is, head.centroids.data(),
          head.centroids.size() * sizeof(float));
  head.padded_dim = static_cast<std::size_t>(ReadPod<std::uint64_t>(is));
  if (head.padded_dim < head.dim || head.padded_dim > (1u << 20)) {
    throw SnapshotError("implausible v4 padded row stride");
  }

  const auto count = ReadPod<std::uint64_t>(is);
  head.entries.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    EntryMeta entry;
    entry.image_url = ReadString(is);
    entry.product_id = ReadPod<std::uint64_t>(is);
    entry.category = ReadPod<std::uint32_t>(is);
    entry.attributes.sales = ReadPod<std::uint64_t>(is);
    entry.attributes.price_cents = ReadPod<std::uint64_t>(is);
    entry.attributes.praise = ReadPod<std::uint64_t>(is);
    entry.detail_url = ReadString(is);
    entry.valid = ReadPod<std::uint8_t>(is) != 0;
    head.entries.push_back(std::move(entry));
  }

  const auto num_lists = static_cast<std::size_t>(ReadPod<std::uint64_t>(is));
  if (num_lists != num_clusters) {
    throw SnapshotError("v4 directory list count does not match quantizer");
  }
  head.directory.resize(num_lists);
  const bool has_checksums = version >= kTieredVersionChecksummed;
  if (has_checksums) head.list_crcs.reserve(num_lists);
  const std::uint64_t row_bytes = head.padded_dim * sizeof(float);
  std::uint64_t total_entries = 0;
  for (ListDirEntry& dir : head.directory) {
    dir.entry_count = ReadPod<std::uint64_t>(is);
    dir.rel_offset = ReadPod<std::uint64_t>(is);
    dir.bytes = ReadPod<std::uint64_t>(is);
    if (has_checksums) head.list_crcs.push_back(ReadPod<std::uint32_t>(is));
    if (dir.rel_offset % kSegmentAlign != 0) {
      throw SnapshotError("v4 directory segment not 64-byte aligned");
    }
    if (dir.bytes != dir.entry_count * row_bytes) {
      throw SnapshotError("v4 directory segment size mismatch");
    }
    total_entries += dir.entry_count;
  }
  if (total_entries != count) {
    throw SnapshotError("v4 directory entry counts do not sum to the "
                        "entry-section count");
  }

  head.list_ids.resize(num_lists);
  head.list_norms.resize(num_lists);
  for (std::size_t list = 0; list < num_lists; ++list) {
    const auto n = static_cast<std::size_t>(head.directory[list].entry_count);
    head.list_ids[list].resize(n);
    head.list_norms[list].resize(n);
    if (n == 0) continue;
    ReadRaw(is, head.list_ids[list].data(), n * sizeof(LocalId));
    ReadRaw(is, head.list_norms[list].data(), n * sizeof(float));
    for (const LocalId id : head.list_ids[list]) {
      if (id >= count) {
        throw SnapshotError("v4 list references a local id past the entry "
                            "section");
      }
    }
  }

  const auto num_categories = ReadPod<std::uint64_t>(is);
  if (num_categories > (1u << 24)) {
    throw SnapshotError("implausible category count in snapshot");
  }
  head.category_populations.reserve(
      static_cast<std::size_t>(num_categories));
  for (std::uint64_t i = 0; i < num_categories; ++i) {
    const auto category = ReadPod<std::uint32_t>(is);
    const auto population = ReadPod<std::uint64_t>(is);
    head.category_populations.emplace_back(category, population);
  }
  head.column_checksum = ReadPod<std::uint64_t>(is);
  return head;
}

// The v3 verification contract, applied after whichever restore path rebuilt
// the attribute filter index.
void VerifyFilters(const IvfIndex& index, const ParsedHead& head) {
  const AttributeFilterIndex& filters = index.attribute_filters();
  for (const auto& [category, population] : head.category_populations) {
    const ValidityBitmap* bitmap = filters.CategoryBitmap(category);
    const std::uint64_t rebuilt = bitmap == nullptr ? 0 : bitmap->CountValid();
    if (rebuilt != population) {
      throw SnapshotError("filter index verification failed: category " +
                          std::to_string(category) + " has " +
                          std::to_string(rebuilt) + " images, snapshot " +
                          "recorded " + std::to_string(population));
    }
  }
  if (filters.ColumnChecksum() != head.column_checksum) {
    throw SnapshotError(
        "filter index verification failed: numeric column checksum "
        "mismatch after rebuild");
  }
}

// Holds LOCK_EX on an existing snapshot file across a rewrite. A mapped
// loader holds LOCK_SH for the lifetime of its mapping, so a deploy trying
// to rewrite a file that a live index is scanning fails here, loudly,
// before the first truncating byte.
class ExclusiveWriteLock {
 public:
  explicit ExclusiveWriteLock(const std::string& path) {
#if JDVS_HAVE_FLOCK
    do {
      fd_ = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
    } while (fd_ < 0 && errno == EINTR);
    if (fd_ < 0) return;  // no existing file: nothing can be mapping it
    int rc;
    do {
      rc = ::flock(fd_, LOCK_EX | LOCK_NB);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
      ::close(fd_);
      fd_ = -1;
      throw SnapshotError(
          "snapshot file is mapped by a live index (shared flock held), "
          "refusing to rewrite: " + path);
    }
#else
    (void)path;
#endif
  }
  ~ExclusiveWriteLock() {
#if JDVS_HAVE_FLOCK
    if (fd_ >= 0) ::close(fd_);
#endif
  }
  ExclusiveWriteLock(const ExclusiveWriteLock&) = delete;
  ExclusiveWriteLock& operator=(const ExclusiveWriteLock&) = delete;

 private:
  int fd_ = -1;
};

}  // namespace

void SaveTieredSnapshot(const IvfIndex& index, const std::string& path,
                        std::uint64_t update_hwm, std::uint32_t version) {
  if (version != kTieredVersion && version != kTieredVersionChecksummed) {
    throw SnapshotError("unsupported tiered snapshot version " +
                        std::to_string(version));
  }
  const std::size_t num_lists = index.num_lists();
  const std::uint64_t row_bytes = index.padded_dim() * sizeof(float);

  // Per-list directory first: counts now, relative offsets by running sum.
  std::vector<ListDirEntry> directory(num_lists);
  std::uint64_t running = 0;
  for (std::size_t list = 0; list < num_lists; ++list) {
    ListDirEntry& dir = directory[list];
    dir.entry_count = index.ListEntryCount(list);
    dir.rel_offset = running;
    dir.bytes = dir.entry_count * row_bytes;
    running += AlignUp(dir.bytes);
  }

  // v5: CRC32C per segment, over the exact payload bytes the segment will
  // contain (alignment padding between segments is not covered — it is
  // never scanned). One extra pass over the rows, paid only at save time.
  std::vector<std::uint32_t> list_crcs;
  if (version >= kTieredVersionChecksummed) {
    list_crcs.resize(num_lists, 0);
    for (std::size_t list = 0; list < num_lists; ++list) {
      std::uint32_t crc = 0;
      index.ForEachScanRun(
          list, [&](const LocalId* /*ids*/, const std::uint8_t* payload,
                    const float* /*norms*/, std::size_t count) {
            crc = Crc32c(payload, count * row_bytes, crc);
          });
      list_crcs[list] = crc;
    }
  }

  // Head section in memory: its size determines payload_base.
  std::ostringstream head(std::ios::binary);
  const IvfIndexConfig& config = index.config();
  WritePod<std::uint64_t>(head, config.nprobe);
  WritePod<std::uint64_t>(head, config.initial_list_capacity);
  WritePod<std::uint8_t>(head, config.filter_invalid_during_scan ? 1 : 0);
  WritePod<double>(head, config.filter_post_threshold);
  WritePod<double>(head, config.filter_widen_threshold);
  WritePod<std::uint64_t>(head, config.filter_widen_factor);

  const CoarseQuantizer& quantizer = index.quantizer();
  WritePod<std::uint64_t>(head, quantizer.dim());
  WritePod<std::uint64_t>(head, quantizer.num_clusters());
  for (std::size_t c = 0; c < quantizer.num_clusters(); ++c) {
    const FeatureView centroid = quantizer.Centroid(c);
    WriteRaw(head, centroid.data(), centroid.size() * sizeof(float));
  }
  WritePod<std::uint64_t>(head, index.padded_dim());

  WritePod<std::uint64_t>(head, index.size());
  std::map<CategoryId, std::uint64_t> category_populations;
  index.ForEachEntry([&](LocalId, const AttributeSnapshot& snapshot,
                         FeatureView, bool valid) {
    WriteString(head, snapshot.image_url);
    WritePod<std::uint64_t>(head, snapshot.product_id);
    WritePod<std::uint32_t>(head, snapshot.category);
    WritePod<std::uint64_t>(head, snapshot.attributes.sales);
    WritePod<std::uint64_t>(head, snapshot.attributes.price_cents);
    WritePod<std::uint64_t>(head, snapshot.attributes.praise);
    WriteString(head, snapshot.detail_url);
    WritePod<std::uint8_t>(head, valid ? 1 : 0);
    ++category_populations[snapshot.category];
  });

  WritePod<std::uint64_t>(head, static_cast<std::uint64_t>(num_lists));
  for (std::size_t list = 0; list < num_lists; ++list) {
    const ListDirEntry& dir = directory[list];
    WritePod<std::uint64_t>(head, dir.entry_count);
    WritePod<std::uint64_t>(head, dir.rel_offset);
    WritePod<std::uint64_t>(head, dir.bytes);
    if (version >= kTieredVersionChecksummed) {
      WritePod<std::uint32_t>(head, list_crcs[list]);
    }
  }
  for (std::size_t list = 0; list < num_lists; ++list) {
    index.ForEachScanRun(
        list, [&](const LocalId* ids, const std::uint8_t* /*payload*/,
                  const float* /*norms*/, std::size_t count) {
          WriteRaw(head, ids, count * sizeof(LocalId));
        });
    index.ForEachScanRun(
        list, [&](const LocalId* /*ids*/, const std::uint8_t* /*payload*/,
                  const float* norms, std::size_t count) {
          WriteRaw(head, norms, count * sizeof(float));
        });
  }

  WritePod<std::uint64_t>(head, category_populations.size());
  for (const auto& [category, population] : category_populations) {
    WritePod<std::uint32_t>(head, category);
    WritePod<std::uint64_t>(head, population);
  }
  WritePod<std::uint64_t>(head, index.attribute_filters().ColumnChecksum());

  const std::string head_bytes = head.str();
  constexpr std::uint64_t kPrefixBytes =
      sizeof(std::uint64_t) + sizeof(std::uint32_t) + sizeof(std::uint64_t) +
      sizeof(std::uint64_t);  // magic + version + hwm + payload_base
  const std::uint64_t payload_base =
      AlignUp(kPrefixBytes + head_bytes.size());

  // Refuses (throws) when a live mapping holds the shared lock; held until
  // the rewrite below completes.
  const ExclusiveWriteLock write_lock(path);
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw SnapshotError("cannot open for writing: " + path);
  WritePod(os, kMagic);
  WritePod(os, version);
  WritePod<std::uint64_t>(os, update_hwm);
  WritePod<std::uint64_t>(os, payload_base);
  WriteRaw(os, head_bytes.data(), head_bytes.size());

  // Zero padding up to payload_base, then the aligned payload segments with
  // zero padding between them (rel offsets are AlignUp'd).
  const std::string zeros(kSegmentAlign, '\0');
  std::uint64_t pos = kPrefixBytes + head_bytes.size();
  auto pad_to = [&](std::uint64_t target) {
    while (pos < target) {
      const std::uint64_t n =
          std::min<std::uint64_t>(zeros.size(), target - pos);
      WriteRaw(os, zeros.data(), n);
      pos += n;
    }
  };
  pad_to(payload_base);
  for (std::size_t list = 0; list < num_lists; ++list) {
    pad_to(payload_base + directory[list].rel_offset);
    index.ForEachScanRun(
        list, [&](const LocalId* /*ids*/, const std::uint8_t* payload,
                  const float* /*norms*/, std::size_t count) {
          WriteRaw(os, payload, count * row_bytes);
          pos += count * row_bytes;
        });
  }
  os.flush();
  if (!os) throw SnapshotError("snapshot flush failed");
}

std::unique_ptr<IvfIndex> LoadTieredSnapshot(const std::string& path,
                                             const TieredStoreConfig& tier_config,
                                             CopyExecutor copy_executor,
                                             std::uint64_t* update_hwm) {
  ParsedHead head = [&] {
    std::ifstream is(path, std::ios::binary);
    if (!is) throw SnapshotError("cannot open for reading: " + path);
    return ParseHead(is, path);
  }();
  if (update_hwm != nullptr) *update_hwm = head.update_hwm;

  // The shared flock outlives the mapping (it rides the retained fd inside
  // MmapFile), so SaveTieredSnapshot's exclusive lock fails while any index
  // is still serving from this file.
  MmapFile file = [&] {
    try {
      return MmapFile::Open(path, /*lock_shared=*/true);
    } catch (const MmapError& e) {
      throw SnapshotError(std::string("cannot map tiered snapshot: ") +
                          e.what());
    }
  }();
  const std::uint64_t expected_size = ExpectedFileSize(head);
  if (file.size() != expected_size) {
    throw SnapshotError(
        "tiered snapshot size disagrees with its directory (file " +
        std::to_string(file.size()) + " bytes, directory implies " +
        std::to_string(expected_size) +
        " — truncated or rewritten under us?): " + path);
  }

  auto quantizer = std::make_shared<const CoarseQuantizer>(
      std::move(head.centroids), head.dim);
  auto index = std::make_unique<IvfIndex>(std::move(quantizer), head.config,
                                          std::move(copy_executor));
  if (index->padded_dim() != head.padded_dim) {
    throw SnapshotError(
        "v4 row stride mismatch: snapshot rows are " +
        std::to_string(head.padded_dim) + " floats, this build pads to " +
        std::to_string(index->padded_dim()));
  }

  for (const EntryMeta& entry : head.entries) {
    index->AddImageMetadata(entry.image_url, entry.product_id, entry.category,
                            entry.attributes, entry.detail_url);
  }
  for (const EntryMeta& entry : head.entries) {
    if (!entry.valid) index->SetImageValidity(entry.image_url, false);
  }
  std::vector<TieredListStore::ListExtent> extents;
  extents.reserve(head.directory.size());
  for (std::size_t list = 0; list < head.directory.size(); ++list) {
    const ListDirEntry& dir = head.directory[list];
    extents.push_back({head.payload_base + dir.rel_offset, dir.bytes});
    if (dir.entry_count == 0) continue;
    index->AttachFrozenList(
        list, head.list_ids[list].data(), head.list_norms[list].data(),
        file.data() + head.payload_base + dir.rel_offset,
        static_cast<std::size_t>(dir.entry_count));
  }
  index->FinishPendingExpansions();
  VerifyFilters(*index, head);
  if (!index->feature_storage_aligned()) {
    throw SnapshotError("mapped feature storage is not 64-byte aligned");
  }
  // The store owns the mapping; the frozen payload pointers installed above
  // stay valid because MmapFile moves transfer the mapping, never remap it.
  index->AttachTieredStore(std::make_shared<TieredListStore>(
      std::move(file), std::move(extents), std::move(head.list_crcs),
      tier_config));
  return index;
}

TieredDirectoryInfo ReadTieredDirectory(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw SnapshotError("cannot open for reading: " + path);
  const ParsedHead head = ParseHead(is, path);
  TieredDirectoryInfo info;
  info.version = head.version;
  info.has_checksums = !head.list_crcs.empty();
  info.payload_base = head.payload_base;
  info.segments.reserve(head.directory.size());
  for (std::size_t list = 0; list < head.directory.size(); ++list) {
    const ListDirEntry& dir = head.directory[list];
    TieredSegmentInfo seg;
    seg.list = static_cast<std::uint32_t>(list);
    seg.offset = head.payload_base + dir.rel_offset;
    seg.bytes = dir.bytes;
    seg.entry_count = dir.entry_count;
    if (info.has_checksums) seg.crc32c = head.list_crcs[list];
    info.segments.push_back(seg);
  }
  return info;
}

TieredVerifyResult VerifyTieredSnapshot(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw SnapshotError("cannot open for reading: " + path);
  const ParsedHead head = ParseHead(is, path);
  TieredVerifyResult result;
  result.has_checksums = !head.list_crcs.empty();
  if (!result.has_checksums) return result;
  std::vector<char> buf(1 << 18);
  for (std::size_t list = 0; list < head.directory.size(); ++list) {
    const ListDirEntry& dir = head.directory[list];
    if (dir.bytes == 0) continue;
    is.clear();
    is.seekg(static_cast<std::streamoff>(head.payload_base + dir.rel_offset));
    std::uint32_t crc = 0;
    for (std::uint64_t off = 0; off < dir.bytes;) {
      const auto n = static_cast<std::size_t>(
          std::min<std::uint64_t>(dir.bytes - off, buf.size()));
      ReadRaw(is, buf.data(), n);
      crc = Crc32c(buf.data(), n, crc);
      off += n;
    }
    ++result.checked;
    if (crc != head.list_crcs[list]) {
      result.corrupt_lists.push_back(static_cast<std::uint32_t>(list));
    }
  }
  return result;
}

namespace internal {

std::unique_ptr<IvfIndex> LoadTieredSnapshotHeap(const std::string& path,
                                                 CopyExecutor copy_executor,
                                                 std::uint64_t* update_hwm) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw SnapshotError("cannot open for reading: " + path);
  ParsedHead head = ParseHead(is, path);
  if (update_hwm != nullptr) *update_hwm = head.update_hwm;

  // Gather every entry's feature from its list's payload segment, keyed back
  // to LocalId, so AddImage can replay in LocalId order (the order the
  // lookup maps and forward index expect).
  const std::size_t count = head.entries.size();
  std::vector<float> features(count * head.dim);
  std::vector<float> row(head.padded_dim);
  for (std::size_t list = 0; list < head.directory.size(); ++list) {
    const ListDirEntry& dir = head.directory[list];
    if (dir.entry_count == 0) continue;
    is.clear();
    is.seekg(static_cast<std::streamoff>(head.payload_base + dir.rel_offset));
    if (!is) throw SnapshotError("v4 payload seek failed (truncated?)");
    std::uint32_t crc = 0;
    for (std::uint64_t j = 0; j < dir.entry_count; ++j) {
      ReadRaw(is, row.data(), head.padded_dim * sizeof(float));
      if (!head.list_crcs.empty()) {
        crc = Crc32c(row.data(), head.padded_dim * sizeof(float), crc);
      }
      const LocalId local = head.list_ids[list][static_cast<std::size_t>(j)];
      std::memcpy(features.data() + static_cast<std::size_t>(local) * head.dim,
                  row.data(), head.dim * sizeof(float));
    }
    if (!head.list_crcs.empty() && crc != head.list_crcs[list]) {
      throw SnapshotError("payload checksum mismatch on list " +
                          std::to_string(list) + " (bitrot?): " + path);
    }
  }

  auto quantizer = std::make_shared<const CoarseQuantizer>(
      std::move(head.centroids), head.dim);
  auto index = std::make_unique<IvfIndex>(std::move(quantizer), head.config,
                                          std::move(copy_executor));
  for (std::size_t i = 0; i < count; ++i) {
    const EntryMeta& entry = head.entries[i];
    index->AddImage(entry.image_url, entry.product_id, entry.category,
                    entry.attributes, entry.detail_url,
                    FeatureView(features.data() + i * head.dim, head.dim));
  }
  for (const EntryMeta& entry : head.entries) {
    if (!entry.valid) index->SetImageValidity(entry.image_url, false);
  }
  index->FinishPendingExpansions();
  VerifyFilters(*index, head);
  if (!index->feature_storage_aligned()) {
    throw SnapshotError("restored feature storage is not 64-byte aligned");
  }
  return index;
}

}  // namespace internal

}  // namespace jdvs

#include "tier/mmap_file.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/logging.h"

#if defined(__linux__) || defined(__APPLE__)
#define JDVS_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define JDVS_HAVE_MMAP 0
#endif

namespace jdvs {
namespace {

#if JDVS_HAVE_MMAP
std::size_t PageSize() noexcept {
  static const std::size_t page =
      static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return page == 0 ? 4096 : page;
}

int OpenRetry(const char* path) noexcept {
  int fd;
  do {
    fd = ::open(path, O_RDONLY | O_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  return fd;
}

int FlockRetry(int fd, int operation) noexcept {
  int rc;
  do {
    rc = ::flock(fd, operation);
  } while (rc != 0 && errno == EINTR);
  return rc;
}
#endif

}  // namespace

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this == &other) return *this;
  this->~MmapFile();
  data_ = std::exchange(other.data_, nullptr);
  size_ = std::exchange(other.size_, 0);
  mapped_ = std::exchange(other.mapped_, false);
  locked_ = std::exchange(other.locked_, false);
  fd_ = std::exchange(other.fd_, -1);
  heap_ = std::move(other.heap_);
  return *this;
}

MmapFile::~MmapFile() {
#if JDVS_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    if (::munmap(data_, size_) != 0) {
      // Leaks the address range but is otherwise survivable; it must not be
      // silent — a bad unmap here usually means the mapping bookkeeping is
      // wrong and the next map may land on top of it.
      JDVS_LOG(kWarning)
          << "munmap of " << size_ << " bytes failed: " << std::strerror(errno);
    }
  }
  if (fd_ >= 0) {
    // close() is called exactly once: on Linux the descriptor is released
    // even when the call returns EINTR, so retrying could close a descriptor
    // reused by another thread. Closing also drops the flock.
    if (::close(fd_) != 0 && errno != EINTR) {
      JDVS_LOG(kWarning)
          << "close of mapped file descriptor failed: " << std::strerror(errno);
    }
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  locked_ = false;
  fd_ = -1;
}

MmapFile MmapFile::Open(const std::string& path, bool lock_shared) {
#if JDVS_HAVE_MMAP
  const int fd = OpenRetry(path.c_str());
  if (fd < 0) throw MmapError("cannot open for reading: " + path);
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw MmapError("cannot stat: " + path);
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    throw MmapError("not a regular file: " + path);
  }
  if (st.st_size == 0) {
    ::close(fd);
    throw MmapError("empty file: " + path);
  }
  bool locked = false;
  if (lock_shared) {
    if (FlockRetry(fd, LOCK_SH | LOCK_NB) != 0) {
      ::close(fd);
      throw MmapError("file is locked by a writer (being rewritten?): " +
                      path);
    }
    locked = true;
  }
  const auto bytes = static_cast<std::size_t>(st.st_size);
  void* base = ::mmap(nullptr, bytes, PROT_READ, MAP_SHARED, fd, 0);
  if (base == MAP_FAILED) {
    ::close(fd);
    throw MmapError("mmap failed: " + path);
  }
  // The descriptor is retained for the lifetime of the mapping: it anchors
  // the advisory flock and serves Pread()'s syscall-path reads.
  MmapFile file;
  file.data_ = static_cast<std::uint8_t*>(base);
  file.size_ = bytes;
  file.mapped_ = true;
  file.locked_ = locked;
  file.fd_ = fd;
  return file;
#else
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  if (!is) throw MmapError("cannot open for reading: " + path);
  const auto bytes = static_cast<std::size_t>(is.tellg());
  if (bytes == 0) throw MmapError("empty file: " + path);
  (void)lock_shared;  // no advisory locking on the heap fallback
  MmapFile file;
  file.heap_ = AllocateAligned<std::uint8_t>(bytes);
  is.seekg(0);
  is.read(reinterpret_cast<char*>(file.heap_.get()),
          static_cast<std::streamsize>(bytes));
  if (is.gcount() != static_cast<std::streamsize>(bytes)) {
    throw MmapError("short read: " + path);
  }
  file.data_ = file.heap_.get();
  file.size_ = bytes;
  file.mapped_ = false;
  return file;
#endif
}

bool MmapFile::Advise(std::size_t offset, std::size_t length,
                      Advice advice) const {
#if JDVS_HAVE_MMAP
  if (!mapped_ || data_ == nullptr || length == 0) return false;
  if (offset > size_ || length > size_ - offset) return false;
  const std::size_t page = PageSize();
  // Widen to page boundaries (madvise requires a page-aligned address); the
  // mapping itself covers whole pages, so rounding the end up stays in range.
  const std::size_t begin = (offset / page) * page;
  const std::size_t end = ((offset + length + page - 1) / page) * page;
  const int flag = advice == Advice::kWillNeed ? MADV_WILLNEED : MADV_DONTNEED;
  return ::madvise(data_ + begin, end - begin, flag) == 0;
#else
  (void)offset;
  (void)length;
  (void)advice;
  return false;
#endif
}

bool MmapFile::Pread(std::size_t offset, void* out, std::size_t length) const {
  if (data_ == nullptr) return false;
  if (offset > size_ || length > size_ - offset) return false;
  if (length == 0) return true;
#if JDVS_HAVE_MMAP
  if (fd_ >= 0) {
    auto* dst = static_cast<std::uint8_t*>(out);
    std::size_t done = 0;
    while (done < length) {
      const ::ssize_t n =
          ::pread(fd_, dst + done, length - done,
                  static_cast<::off_t>(offset + done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (n == 0) return false;  // short file: truncated behind the mapping
      done += static_cast<std::size_t>(n);
    }
    return true;
  }
#endif
  std::memcpy(out, data_ + offset, length);
  return true;
}

}  // namespace jdvs

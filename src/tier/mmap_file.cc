#include "tier/mmap_file.h"

#include <cstring>
#include <fstream>
#include <utility>

#if defined(__linux__) || defined(__APPLE__)
#define JDVS_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define JDVS_HAVE_MMAP 0
#endif

namespace jdvs {
namespace {

#if JDVS_HAVE_MMAP
std::size_t PageSize() noexcept {
  static const std::size_t page =
      static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return page == 0 ? 4096 : page;
}
#endif

}  // namespace

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this == &other) return *this;
  this->~MmapFile();
  data_ = std::exchange(other.data_, nullptr);
  size_ = std::exchange(other.size_, 0);
  mapped_ = std::exchange(other.mapped_, false);
  heap_ = std::move(other.heap_);
  return *this;
}

MmapFile::~MmapFile() {
#if JDVS_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(data_, size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

MmapFile MmapFile::Open(const std::string& path) {
#if JDVS_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw MmapError("cannot open for reading: " + path);
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    throw MmapError("cannot stat (or empty): " + path);
  }
  const auto bytes = static_cast<std::size_t>(st.st_size);
  void* base = ::mmap(nullptr, bytes, PROT_READ, MAP_SHARED, fd, 0);
  // The mapping holds its own reference; the descriptor is not needed after.
  ::close(fd);
  if (base == MAP_FAILED) throw MmapError("mmap failed: " + path);
  MmapFile file;
  file.data_ = static_cast<std::uint8_t*>(base);
  file.size_ = bytes;
  file.mapped_ = true;
  return file;
#else
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  if (!is) throw MmapError("cannot open for reading: " + path);
  const auto bytes = static_cast<std::size_t>(is.tellg());
  if (bytes == 0) throw MmapError("empty file: " + path);
  MmapFile file;
  file.heap_ = AllocateAligned<std::uint8_t>(bytes);
  is.seekg(0);
  is.read(reinterpret_cast<char*>(file.heap_.get()),
          static_cast<std::streamsize>(bytes));
  if (is.gcount() != static_cast<std::streamsize>(bytes)) {
    throw MmapError("short read: " + path);
  }
  file.data_ = file.heap_.get();
  file.size_ = bytes;
  file.mapped_ = false;
  return file;
#endif
}

bool MmapFile::Advise(std::size_t offset, std::size_t length,
                      Advice advice) const {
#if JDVS_HAVE_MMAP
  if (!mapped_ || data_ == nullptr || length == 0) return false;
  if (offset > size_ || length > size_ - offset) return false;
  const std::size_t page = PageSize();
  // Widen to page boundaries (madvise requires a page-aligned address); the
  // mapping itself covers whole pages, so rounding the end up stays in range.
  const std::size_t begin = (offset / page) * page;
  const std::size_t end = ((offset + length + page - 1) / page) * page;
  const int flag = advice == Advice::kWillNeed ? MADV_WILLNEED : MADV_DONTNEED;
  return ::madvise(data_ + begin, end - begin, flag) == 0;
#else
  (void)offset;
  (void)length;
  (void)advice;
  return false;
#endif
}

}  // namespace jdvs

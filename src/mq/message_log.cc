#include "mq/message_log.h"

namespace jdvs {

std::uint64_t MessageLog::Append(ProductUpdateMessage message) {
  std::lock_guard lock(mu_);
  message.sequence = ++next_sequence_;
  entries_.push_back(std::move(message));
  return entries_.back().sequence;
}

std::uint64_t MessageLog::last_sequence() const {
  std::lock_guard lock(mu_);
  return next_sequence_;
}

void MessageLog::Replay(
    const std::function<void(const ProductUpdateMessage&)>& visit) const {
  // Snapshot under the lock, visit outside it: replay drives feature
  // extraction and index construction, which must not serialize appends.
  const std::vector<ProductUpdateMessage> snapshot = Snapshot();
  for (const auto& message : snapshot) visit(message);
}

std::vector<ProductUpdateMessage> MessageLog::Snapshot() const {
  std::lock_guard lock(mu_);
  return std::vector<ProductUpdateMessage>(entries_.begin(), entries_.end());
}

std::size_t MessageLog::size() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

void MessageLog::Clear() {
  std::lock_guard lock(mu_);
  entries_.clear();
}

void MessageLog::TruncateThrough(std::uint64_t sequence) {
  std::lock_guard lock(mu_);
  while (!entries_.empty() && entries_.front().sequence <= sequence) {
    entries_.pop_front();
  }
}

}  // namespace jdvs

// Topic-based message queue (JMQ stand-in).
//
// Producers publish ProductUpdateMessages to a topic; each subscriber group
// member pops from a shared bounded queue (work-sharing, like one consumer
// group). A separate fan-out mode clones the message to every subscription,
// which is how one update stream feeds many searcher partitions (the
// partition owner filters by image-URL hash).
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mpmc_queue.h"
#include "mq/message.h"
#include "obs/gauge.h"
#include "obs/registry.h"

namespace jdvs {

class Subscription {
 public:
  explicit Subscription(std::size_t capacity) : queue_(capacity) {}

  // Blocking pop; nullopt when the topic is closed and drained.
  std::optional<ProductUpdateMessage> Receive() {
    auto message = queue_.Pop();
    if (message && depth_ != nullptr) depth_->Decrement();
    return message;
  }
  std::optional<ProductUpdateMessage> TryReceive() {
    auto message = queue_.TryPop();
    if (message && depth_ != nullptr) depth_->Decrement();
    return message;
  }
  std::size_t pending() const { return queue_.size(); }

  // Unblocks receivers; remaining messages drain, then Receive() returns
  // nullopt. Used by consumers shutting down independently of the topic.
  void Close() { queue_.Close(); }

 private:
  friend class TopicQueue;
  MpmcQueue<ProductUpdateMessage> queue_;
  obs::Gauge* depth_ = nullptr;  // shared queue-depth gauge, set on Subscribe
};

class TopicQueue {
 public:
  explicit TopicQueue(std::size_t per_subscription_capacity = 65536,
                      obs::Registry* registry = nullptr)
      : capacity_(per_subscription_capacity),
        registry_(registry != nullptr ? registry : &obs::Registry::Default()),
        published_(&registry_->GetCounter("jdvs_mq_published_total")),
        depth_(&registry_->GetGauge("jdvs_mq_queue_depth")) {}

  // Creates a new subscription on `topic`. Every message published to the
  // topic after this call is delivered to every live subscription (fan-out).
  std::shared_ptr<Subscription> Subscribe(const std::string& topic);

  // Publishes to all subscriptions of `topic`. Blocks on full subscriber
  // queues (backpressure). Returns the number of subscriptions reached.
  std::size_t Publish(const std::string& topic, ProductUpdateMessage message);

  // Closes a topic: subscribers drain and then see end-of-stream.
  void CloseTopic(const std::string& topic);

  // Closes everything.
  void CloseAll();

 private:
  struct Topic {
    std::vector<std::shared_ptr<Subscription>> subscriptions;
    bool closed = false;
  };

  std::mutex mu_;
  std::unordered_map<std::string, Topic> topics_;
  std::size_t capacity_;
  obs::Registry* registry_;
  obs::Counter* published_;  // jdvs_mq_published_total
  obs::Gauge* depth_;        // jdvs_mq_queue_depth: delivered, not yet popped
};

}  // namespace jdvs

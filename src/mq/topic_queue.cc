#include "mq/topic_queue.h"

namespace jdvs {

std::shared_ptr<Subscription> TopicQueue::Subscribe(const std::string& topic) {
  auto subscription = std::make_shared<Subscription>(capacity_);
  subscription->depth_ = depth_;
  std::lock_guard lock(mu_);
  Topic& t = topics_[topic];
  if (t.closed) {
    subscription->queue_.Close();
  } else {
    t.subscriptions.push_back(subscription);
  }
  return subscription;
}

std::size_t TopicQueue::Publish(const std::string& topic,
                                ProductUpdateMessage message) {
  // Snapshot subscriptions under the lock, push outside it so a slow
  // subscriber cannot block Subscribe/Publish on other topics.
  std::vector<std::shared_ptr<Subscription>> targets;
  {
    std::lock_guard lock(mu_);
    const auto it = topics_.find(topic);
    if (it == topics_.end() || it->second.closed) return 0;
    targets = it->second.subscriptions;
  }
  std::size_t delivered = 0;
  std::vector<Subscription*> dead;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    // The last target can take the message by move.
    const bool pushed =
        i + 1 == targets.size() ? targets[i]->queue_.Push(std::move(message))
                                : targets[i]->queue_.Push(message);
    if (pushed) {
      ++delivered;
    } else {
      // Push fails only on a closed queue: the subscriber shut down on its
      // own (e.g. a crashed searcher whose recovery re-subscribes). Prune it
      // so abandoned subscriptions don't accumulate across recoveries.
      dead.push_back(targets[i].get());
    }
  }
  if (!dead.empty()) {
    std::lock_guard lock(mu_);
    const auto it = topics_.find(topic);
    if (it != topics_.end()) {
      auto& subs = it->second.subscriptions;
      std::erase_if(subs, [&dead](const std::shared_ptr<Subscription>& s) {
        for (Subscription* d : dead) {
          if (s.get() == d) return true;
        }
        return false;
      });
    }
  }
  published_->Increment();
  if (delivered > 0) depth_->Add(static_cast<std::int64_t>(delivered));
  return delivered;
}

void TopicQueue::CloseTopic(const std::string& topic) {
  std::vector<std::shared_ptr<Subscription>> targets;
  {
    std::lock_guard lock(mu_);
    const auto it = topics_.find(topic);
    if (it == topics_.end()) return;
    it->second.closed = true;
    targets = it->second.subscriptions;
  }
  for (const auto& s : targets) s->queue_.Close();
}

void TopicQueue::CloseAll() {
  std::vector<std::shared_ptr<Subscription>> targets;
  {
    std::lock_guard lock(mu_);
    for (auto& [name, topic] : topics_) {
      topic.closed = true;
      for (const auto& s : topic.subscriptions) targets.push_back(s);
    }
  }
  for (const auto& s : targets) s->queue_.Close();
}

}  // namespace jdvs

#include "mq/message.h"

#include <sstream>

namespace jdvs {

const char* UpdateTypeName(UpdateType type) {
  switch (type) {
    case UpdateType::kAttributeUpdate:
      return "attribute_update";
    case UpdateType::kAddProduct:
      return "add_product";
    case UpdateType::kRemoveProduct:
      return "remove_product";
  }
  return "unknown";
}

std::string ToString(const ProductUpdateMessage& message) {
  std::ostringstream os;
  os << "{" << UpdateTypeName(message.type) << " product=" << message.product_id
     << " category=" << message.category_id
     << " images=" << message.image_urls.size()
     << " sales=" << message.attributes.sales
     << " price=" << message.attributes.price_cents
     << " praise=" << message.attributes.praise << " seq=" << message.sequence
     << "}";
  return os.str();
}

}  // namespace jdvs

// Append-only, replayable message log.
//
// Section 2.2 / Figure 2: "All product update messages of a day are buffered
// in a message log. At the end of the day, each message in the log is
// processed in order." The log records every message the real-time path saw
// so the periodic full indexing can rebuild state deterministically, then be
// truncated for the next day.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "mq/message.h"

namespace jdvs {

class MessageLog {
 public:
  MessageLog() = default;

  MessageLog(const MessageLog&) = delete;
  MessageLog& operator=(const MessageLog&) = delete;

  // Appends a message; assigns and returns its log sequence number.
  // Sequences are 1-based and globally monotone, so 0 always means "no
  // update" — the natural zero of a snapshot high-water mark.
  std::uint64_t Append(ProductUpdateMessage message);

  // Highest sequence number assigned so far (0 before the first append).
  std::uint64_t last_sequence() const;

  // Invokes `visit` on every logged message in append order. The log is
  // snapshot-consistent: messages appended during replay are not visited.
  void Replay(const std::function<void(const ProductUpdateMessage&)>& visit) const;

  // Copies out the full contents in order.
  std::vector<ProductUpdateMessage> Snapshot() const;

  std::size_t size() const;

  // Truncates the log (start of a new day).
  void Clear();

  // Drops entries with sequence <= `sequence` (a prefix: the log is in
  // sequence order). Called after a rolling deployment re-based every
  // replica on a snapshot whose high-water mark covers that prefix, so the
  // backlog before it can never be needed for catch-up replay again.
  void TruncateThrough(std::uint64_t sequence);

 private:
  mutable std::mutex mu_;
  std::deque<ProductUpdateMessage> entries_;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace jdvs

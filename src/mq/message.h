// Product update messages.
//
// Section 2.3: "Messages about product or image updates are received from a
// message queue and processed instantly." Three message kinds drive the
// real-time index (Figure 6): numeric/attribute updates, product additions
// (including re-listings of previously seen products), and removals.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vecmath/vector.h"

namespace jdvs {

enum class UpdateType : std::uint8_t {
  kAttributeUpdate = 0,  // numeric or variable-length attribute change
  kAddProduct = 1,       // add (or re-list) a product and its images
  kRemoveProduct = 2,    // take the product off the market
};

const char* UpdateTypeName(UpdateType type);

// Numeric product attributes carried by the forward index (Section 2.2: "The
// numeric attributes such as product ID, sales, price are stored in the
// fixed-length fields").
struct ProductAttributes {
  std::uint64_t sales = 0;
  std::uint64_t price_cents = 0;
  std::uint64_t praise = 0;  // favorable-review count, used in ranking

  friend bool operator==(const ProductAttributes&,
                         const ProductAttributes&) = default;
};

struct ProductUpdateMessage {
  UpdateType type = UpdateType::kAttributeUpdate;
  ProductId product_id = 0;
  CategoryId category_id = 0;
  // Image URLs of the product. Required for kAddProduct; optional context
  // for the other types.
  std::vector<std::string> image_urls;
  ProductAttributes attributes;
  // Optional variable-length attribute change (e.g. a new landing URL);
  // empty means unchanged.
  std::string detail_url;
  // Event time in microseconds (producer clock).
  std::int64_t timestamp_micros = 0;
  // Monotone 1-based log sequence number, assigned by MessageLog::Append and
  // stamped onto the copy published to the update topic; searchers track the
  // highest applied sequence as their recovery high-water mark and skip
  // duplicates during catch-up replay. 0 = unsequenced (direct injection),
  // always applied.
  std::uint64_t sequence = 0;
  // Trace propagation (obs::TraceContext flattened): when trace_id != 0 the
  // publisher sampled this update, and each consumer's apply records a child
  // span of parent_span_id — stitching the real-time path (publish → queue →
  // per-partition index apply) into one trace tree.
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
};

std::string ToString(const ProductUpdateMessage& message);

}  // namespace jdvs

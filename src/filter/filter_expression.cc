#include "filter/filter_expression.h"

#include <cstring>
#include <limits>
#include <stdexcept>

#include "common/hash.h"

namespace jdvs {
namespace {

constexpr std::uint8_t kWireVersion = 1;
constexpr std::uint8_t kMaxField = static_cast<std::uint8_t>(FilterField::kPraise);
// A conjunction over 4 fields never usefully needs more than a handful of
// predicates; the cap bounds what a malformed wire blob can make us allocate.
constexpr std::size_t kMaxPredicates = 64;

std::uint64_t ReadU64Le(const unsigned char* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

void AppendU64Le(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint64_t FieldValue(FilterField field, CategoryId category,
                         const ProductAttributes& attributes) noexcept {
  switch (field) {
    case FilterField::kCategory:
      return category;
    case FilterField::kSales:
      return attributes.sales;
    case FilterField::kPriceCents:
      return attributes.price_cents;
    case FilterField::kPraise:
      return attributes.praise;
  }
  return 0;
}

}  // namespace

const char* FilterFieldName(FilterField field) noexcept {
  switch (field) {
    case FilterField::kCategory:
      return "category";
    case FilterField::kSales:
      return "sales";
    case FilterField::kPriceCents:
      return "price_cents";
    case FilterField::kPraise:
      return "praise";
  }
  return "unknown";
}

FilterExpression& FilterExpression::WithCategory(CategoryId category) {
  return WithRange(FilterField::kCategory, category, category);
}

FilterExpression& FilterExpression::WithCategoryRange(CategoryId min,
                                                      CategoryId max) {
  return WithRange(FilterField::kCategory, min, max);
}

FilterExpression& FilterExpression::WithRange(FilterField field,
                                              std::uint64_t min,
                                              std::uint64_t max) {
  if (min > max) {
    throw std::invalid_argument("FilterExpression: min > max for field " +
                                std::string(FilterFieldName(field)));
  }
  predicates_.push_back(FilterPredicate{field, min, max});
  return *this;
}

FilterExpression& FilterExpression::WithMin(FilterField field,
                                            std::uint64_t min) {
  return WithRange(field, min, std::numeric_limits<std::uint64_t>::max());
}

FilterExpression& FilterExpression::WithMax(FilterField field,
                                            std::uint64_t max) {
  return WithRange(field, 0, max);
}

bool FilterExpression::Matches(
    CategoryId category, const ProductAttributes& attributes) const noexcept {
  for (const FilterPredicate& p : predicates_) {
    const std::uint64_t value = FieldValue(p.field, category, attributes);
    if (value < p.min || value > p.max) return false;
  }
  return true;
}

std::uint64_t FilterExpression::Hash() const noexcept {
  std::uint64_t key = Fnv1a64("jdvs.filter_expression");
  for (const FilterPredicate& p : predicates_) {
    key = HashCombine(key, Mix64(static_cast<std::uint64_t>(p.field) + 1));
    key = HashCombine(key, Mix64(p.min));
    key = HashCombine(key, Mix64(p.max));
  }
  return key;
}

std::string FilterExpression::Serialize() const {
  std::string out;
  out.reserve(3 + predicates_.size() * 17);
  out.push_back(static_cast<char>(kWireVersion));
  const std::size_t count = predicates_.size();
  out.push_back(static_cast<char>(count & 0xff));
  out.push_back(static_cast<char>((count >> 8) & 0xff));
  for (const FilterPredicate& p : predicates_) {
    out.push_back(static_cast<char>(p.field));
    AppendU64Le(out, p.min);
    AppendU64Le(out, p.max);
  }
  return out;
}

FilterExpression FilterExpression::Deserialize(std::string_view bytes) {
  if (bytes.size() < 3) {
    throw std::invalid_argument("FilterExpression: truncated header");
  }
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
  if (p[0] != kWireVersion) {
    throw std::invalid_argument("FilterExpression: unknown wire version");
  }
  const std::size_t count = std::size_t{p[1]} | (std::size_t{p[2]} << 8);
  if (count > kMaxPredicates) {
    throw std::invalid_argument("FilterExpression: predicate count too large");
  }
  if (bytes.size() != 3 + count * 17) {
    throw std::invalid_argument("FilterExpression: length mismatch");
  }
  FilterExpression expr;
  expr.predicates_.reserve(count);
  const unsigned char* cursor = p + 3;
  for (std::size_t i = 0; i < count; ++i) {
    if (cursor[0] > kMaxField) {
      throw std::invalid_argument("FilterExpression: unknown field");
    }
    FilterPredicate pred;
    pred.field = static_cast<FilterField>(cursor[0]);
    pred.min = ReadU64Le(cursor + 1);
    pred.max = ReadU64Le(cursor + 9);
    if (pred.min > pred.max) {
      throw std::invalid_argument("FilterExpression: min > max");
    }
    expr.predicates_.push_back(pred);
    cursor += 17;
  }
  return expr;
}

std::string FilterExpression::ToString() const {
  if (predicates_.empty()) return "(no filter)";
  std::string out;
  for (std::size_t i = 0; i < predicates_.size(); ++i) {
    const FilterPredicate& p = predicates_[i];
    if (i > 0) out += " AND ";
    out += FilterFieldName(p.field);
    if (p.min == p.max) {
      out += "=" + std::to_string(p.min);
    } else {
      out += " in [" + std::to_string(p.min) + ",";
      out += p.max == std::numeric_limits<std::uint64_t>::max()
                 ? "inf"
                 : std::to_string(p.max);
      out += "]";
    }
  }
  return out;
}

}  // namespace jdvs

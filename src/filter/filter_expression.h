// Structured attribute predicates for hybrid (visual + attribute) search.
//
// Real queries are "looks like this AND price < 5000 AND category=shoes";
// Mu et al. (PAPERS.md, "Towards Practical Visual Search Engine within
// Elasticsearch") build their whole engine around combining structured
// predicates with visual KNN. A FilterExpression is the query-side half of
// that: a conjunction of predicates over the structured attributes the
// forward index already stores (src/mq/message.h ProductAttributes plus the
// CategoryId tag), carried in QueryOptions and serialized across the
// Blender -> Broker -> Searcher hops. The index-side half — bitmaps and
// numeric columns the expression is evaluated against — lives in
// filter/attribute_filter_index.h.
//
// Only conjunctions are modeled (every predicate must hold). Category
// predicates are tag tests (equality, or a closed range over category ids);
// numeric predicates are closed ranges [min, max] over the wait-free
// per-image counters sales / price_cents / praise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mq/message.h"
#include "vecmath/vector.h"

namespace jdvs {

enum class FilterField : std::uint8_t {
  kCategory = 0,    // tag equality/range over CategoryId
  kSales = 1,       // ProductAttributes::sales
  kPriceCents = 2,  // ProductAttributes::price_cents
  kPraise = 3,      // ProductAttributes::praise
};

const char* FilterFieldName(FilterField field) noexcept;

// One conjunct: field value must lie in the closed range [min, max].
// Tag equality is the degenerate range min == max.
struct FilterPredicate {
  FilterField field = FilterField::kSales;
  std::uint64_t min = 0;
  std::uint64_t max = ~std::uint64_t{0};

  bool operator==(const FilterPredicate&) const = default;
};

class FilterExpression {
 public:
  FilterExpression() = default;

  // Fluent builders (return *this so predicates chain).
  FilterExpression& WithCategory(CategoryId category);
  FilterExpression& WithCategoryRange(CategoryId min, CategoryId max);
  FilterExpression& WithRange(FilterField field, std::uint64_t min,
                              std::uint64_t max);
  FilterExpression& WithMin(FilterField field, std::uint64_t min);
  FilterExpression& WithMax(FilterField field, std::uint64_t max);

  bool empty() const noexcept { return predicates_.empty(); }
  std::size_t size() const noexcept { return predicates_.size(); }
  const std::vector<FilterPredicate>& predicates() const noexcept {
    return predicates_;
  }

  // True when every predicate holds for (category, attributes). Wait-free;
  // callable from scan hot paths.
  bool Matches(CategoryId category,
               const ProductAttributes& attributes) const noexcept;

  // Order-sensitive structural hash (Mix64/HashCombine chain). The empty
  // expression hashes to a fixed seed, so cache keys that never carried a
  // filter keep hashing the same stream of inputs.
  std::uint64_t Hash() const noexcept;

  // Compact byte encoding for the RPC fabric: version byte, u16 predicate
  // count, then (field u8, min u64 LE, max u64 LE) per predicate.
  std::string Serialize() const;
  // Throws std::invalid_argument on truncated bytes, an unknown version or
  // field, or min > max.
  static FilterExpression Deserialize(std::string_view bytes);

  // Human-readable form for spans/logs, e.g.
  // "category=7 AND sales in [100,inf] AND price_cents in [0,5000]".
  std::string ToString() const;

  bool operator==(const FilterExpression&) const = default;

 private:
  std::vector<FilterPredicate> predicates_;
};

}  // namespace jdvs

// Per-partition attribute filter index: the index-side half of hybrid
// filtered search.
//
// Generalizes ValidityBitmap's single-writer / wait-free-reader
// chunked-atomic design from one global bitmap to one bitmap per category
// tag, and adds columnar copies of the numeric attributes (sales,
// price_cents, praise) aligned with LocalId. The forward index already holds
// these values, but one ForwardEntry is a cache line of mostly-irrelevant
// fields (URLs, ids); evaluating a numeric range over thousands of locals
// wants a dense contiguous column, same argument as ScanBlock vs the
// per-candidate feature pointer chase.
//
// RediSearch's hybrid queries (SNIPPETS.md Snippet 1) work the same way:
// the structured half of the query is resolved to a docid set first, then
// intersected against the vector candidates. Materialize() is that first
// half: it folds the category bitmaps, the validity bitmap and the numeric
// columns into one plain (non-atomic) bitmap the scan loop tests — the
// scan-time strategy choice (pre-filter sub-blocks vs post-filter
// survivors vs widen nprobe) belongs to the IVF indexes, keyed off the
// selectivity this returns.
//
// Concurrency contract: exactly one writer (the partition's searcher,
// calling Append/UpdateNumeric in the same sequence it mutates the owning
// index), any number of concurrent Materialize() readers; no locks.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "filter/filter_expression.h"
#include "index/bitmap.h"
#include "mq/message.h"
#include "vecmath/vector.h"

namespace jdvs {

// Query-time evaluation result: one bit per LocalId < universe, snapshotted
// at materialization. Plain words — the per-query filter is private to the
// query, so tests in the scan hot loop are non-atomic loads.
struct MaterializedFilter {
  std::vector<std::uint64_t> words;
  std::size_t universe = 0;  // locals considered (index size at materialize)
  std::size_t matches = 0;   // popcount of words

  bool Test(LocalId local) const noexcept {
    const std::size_t w = local / 64;
    if (w >= words.size()) return false;
    return (words[w] >> (local % 64)) & 1ULL;
  }

  // Word covering locals [w*64, w*64+64); out-of-range reads as dead.
  std::uint64_t WordAt(std::size_t w) const noexcept {
    return w < words.size() ? words[w] : 0;
  }

  double selectivity() const noexcept {
    return universe == 0 ? 0.0
                         : static_cast<double>(matches) /
                               static_cast<double>(universe);
  }
};

class AttributeFilterIndex {
 public:
  AttributeFilterIndex();

  AttributeFilterIndex(const AttributeFilterIndex&) = delete;
  AttributeFilterIndex& operator=(const AttributeFilterIndex&) = delete;

  // ---- Writer operations (single writer, same thread as the owning
  // index's writer ops) ----

  // Registers the next local id (must be called in append order: the entry
  // being registered is local id size()). Sets the bit in the category's
  // bitmap and appends the numeric column values.
  void Append(CategoryId category, const ProductAttributes& attributes);

  // Updates the numeric columns for an existing local id. Wait-free;
  // mirrors ForwardIndex::UpdateNumeric. The category tag is immutable
  // after append, like ForwardEntry::category.
  void UpdateNumeric(LocalId local,
                     const ProductAttributes& attributes) noexcept;

  // ---- Reader operations (any thread, wait-free) ----

  std::size_t size() const noexcept {
    return size_.load(std::memory_order_acquire);
  }
  std::size_t num_categories() const noexcept {
    return num_categories_.load(std::memory_order_acquire);
  }

  // Category bitmap, or nullptr if no entry with that tag was ever appended.
  const ValidityBitmap* CategoryBitmap(CategoryId category) const noexcept;

  // Numeric column read for one local id (0 for out-of-range locals).
  std::uint64_t NumericAt(FilterField field, LocalId local) const noexcept;

  // Evaluates `expr AND category_filter AND validity` over every local id
  // published at call time. `category_filter` is the legacy single-tag
  // QueryOptions knob (kNoCategoryFilter = none); `validity` may be null
  // (the filter_invalid_during_scan=false ablation keeps validity out of
  // the bitmap and defers it to materialization, matching the unfiltered
  // scan's contract). Word-wise ANDs for the bitmap parts, then per-set-bit
  // column tests for the numeric ranges.
  MaterializedFilter Materialize(const FilterExpression& expr,
                                 CategoryId category_filter,
                                 const ValidityBitmap* validity) const;

  // Writer-side checksum over the numeric columns (order-sensitive mix of
  // every published value) — snapshot v3 stamps this so load can verify the
  // rebuilt filter state matches what was saved.
  std::uint64_t ColumnChecksum() const noexcept;

 private:
  static constexpr std::size_t kColumnChunk = 4096;  // values per chunk
  // Open-addressed category slot table capacity. Power of two; sized for
  // catalogs with a few thousand distinct tags (the testbed uses 50).
  static constexpr std::size_t kCategorySlots = 4096;

  using Column = std::vector<std::unique_ptr<std::atomic<std::uint64_t>[]>>;

  std::atomic<std::uint64_t>* ColumnCell(Column& column,
                                         std::size_t index) noexcept;
  const std::atomic<std::uint64_t>* ColumnCell(const Column& column,
                                               std::size_t index) const noexcept;
  void ColumnAppend(Column& column, std::size_t index, std::uint64_t value);

  // Returns the bitmap for `category`, inserting a new slot on first use
  // (writer only). Throws std::runtime_error if the slot table is full.
  ValidityBitmap* BitmapForInsert(CategoryId category);

  // Per-category bitmaps behind a fixed-capacity open-addressed table:
  // slot key is category+1 (0 = empty), published with release ordering
  // after the bitmap pointer, so a reader that sees the key sees the
  // bitmap. Bitmaps are owned by bitmaps_ and never move or die.
  struct CategorySlot {
    std::atomic<std::uint64_t> key{0};
    std::atomic<ValidityBitmap*> bitmap{nullptr};
  };
  std::unique_ptr<CategorySlot[]> category_slots_;
  std::vector<std::unique_ptr<ValidityBitmap>> bitmaps_;  // writer-owned
  std::atomic<std::size_t> num_categories_{0};

  // LocalId-aligned numeric columns (stable chunks, like ForwardIndex).
  Column sales_;
  Column price_cents_;
  Column praise_;
  std::atomic<std::size_t> size_{0};
};

}  // namespace jdvs

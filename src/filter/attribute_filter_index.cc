#include "filter/attribute_filter_index.h"

#include <bit>
#include <stdexcept>

#include "common/hash.h"

namespace jdvs {
namespace {

std::uint64_t TailMask(std::size_t bits) noexcept {
  const std::size_t rem = bits % 64;
  return rem == 0 ? ~std::uint64_t{0} : (std::uint64_t{1} << rem) - 1;
}

}  // namespace

AttributeFilterIndex::AttributeFilterIndex()
    : category_slots_(std::make_unique<CategorySlot[]>(kCategorySlots)) {
  bitmaps_.reserve(kCategorySlots);
}

std::atomic<std::uint64_t>* AttributeFilterIndex::ColumnCell(
    Column& column, std::size_t index) noexcept {
  return &column[index / kColumnChunk][index % kColumnChunk];
}

const std::atomic<std::uint64_t>* AttributeFilterIndex::ColumnCell(
    const Column& column, std::size_t index) const noexcept {
  return &column[index / kColumnChunk][index % kColumnChunk];
}

void AttributeFilterIndex::ColumnAppend(Column& column, std::size_t index,
                                        std::uint64_t value) {
  if (index / kColumnChunk >= column.size()) {
    column.push_back(
        std::make_unique<std::atomic<std::uint64_t>[]>(kColumnChunk));
  }
  ColumnCell(column, index)->store(value, std::memory_order_release);
}

ValidityBitmap* AttributeFilterIndex::BitmapForInsert(CategoryId category) {
  const std::uint64_t key = std::uint64_t{category} + 1;
  std::size_t slot = Mix64(key) & (kCategorySlots - 1);
  for (std::size_t probes = 0; probes < kCategorySlots; ++probes) {
    const std::uint64_t existing =
        category_slots_[slot].key.load(std::memory_order_acquire);
    if (existing == key) {
      return category_slots_[slot].bitmap.load(std::memory_order_acquire);
    }
    if (existing == 0) {
      bitmaps_.push_back(std::make_unique<ValidityBitmap>());
      ValidityBitmap* bitmap = bitmaps_.back().get();
      // Publish the bitmap pointer before the key: a reader that observes
      // the key observes the bitmap (single writer, so no insert races).
      category_slots_[slot].bitmap.store(bitmap, std::memory_order_release);
      category_slots_[slot].key.store(key, std::memory_order_release);
      num_categories_.fetch_add(1, std::memory_order_release);
      return bitmap;
    }
    slot = (slot + 1) & (kCategorySlots - 1);
  }
  throw std::runtime_error(
      "AttributeFilterIndex: category slot table full (too many distinct "
      "category tags)");
}

const ValidityBitmap* AttributeFilterIndex::CategoryBitmap(
    CategoryId category) const noexcept {
  const std::uint64_t key = std::uint64_t{category} + 1;
  std::size_t slot = Mix64(key) & (kCategorySlots - 1);
  for (std::size_t probes = 0; probes < kCategorySlots; ++probes) {
    const std::uint64_t existing =
        category_slots_[slot].key.load(std::memory_order_acquire);
    if (existing == key) {
      return category_slots_[slot].bitmap.load(std::memory_order_acquire);
    }
    if (existing == 0) return nullptr;
    slot = (slot + 1) & (kCategorySlots - 1);
  }
  return nullptr;
}

void AttributeFilterIndex::Append(CategoryId category,
                                  const ProductAttributes& attributes) {
  const std::size_t local = size_.load(std::memory_order_relaxed);
  ColumnAppend(sales_, local, attributes.sales);
  ColumnAppend(price_cents_, local, attributes.price_cents);
  ColumnAppend(praise_, local, attributes.praise);
  BitmapForInsert(category)->Set(local, true);
  size_.store(local + 1, std::memory_order_release);
}

void AttributeFilterIndex::UpdateNumeric(
    LocalId local, const ProductAttributes& attributes) noexcept {
  if (local >= size_.load(std::memory_order_acquire)) return;
  ColumnCell(sales_, local)->store(attributes.sales,
                                   std::memory_order_release);
  ColumnCell(price_cents_, local)
      ->store(attributes.price_cents, std::memory_order_release);
  ColumnCell(praise_, local)->store(attributes.praise,
                                    std::memory_order_release);
}

std::uint64_t AttributeFilterIndex::NumericAt(FilterField field,
                                              LocalId local) const noexcept {
  if (local >= size_.load(std::memory_order_acquire)) return 0;
  switch (field) {
    case FilterField::kSales:
      return ColumnCell(sales_, local)->load(std::memory_order_acquire);
    case FilterField::kPriceCents:
      return ColumnCell(price_cents_, local)->load(std::memory_order_acquire);
    case FilterField::kPraise:
      return ColumnCell(praise_, local)->load(std::memory_order_acquire);
    case FilterField::kCategory:
      break;  // tags live in the bitmaps, not a column
  }
  return 0;
}

MaterializedFilter AttributeFilterIndex::Materialize(
    const FilterExpression& expr, CategoryId category_filter,
    const ValidityBitmap* validity) const {
  MaterializedFilter out;
  const std::size_t n = size_.load(std::memory_order_acquire);
  out.universe = n;
  if (n == 0) return out;
  const std::size_t num_words = (n + 63) / 64;
  out.words.assign(num_words, ~std::uint64_t{0});
  out.words.back() &= TailMask(n);

  // Word-wise AND of one category tag's bitmap (a missing tag kills every
  // bit: no entry ever carried it).
  const auto and_category = [&](CategoryId category) {
    const ValidityBitmap* bitmap = CategoryBitmap(category);
    for (std::size_t w = 0; w < num_words; ++w) {
      out.words[w] &= bitmap ? bitmap->WordAt(w) : 0;
    }
  };

  // Bitmap phase: category predicates, the legacy single-tag filter, then
  // validity — all word-wise ANDs.
  std::vector<std::uint64_t> range_scratch;
  for (const FilterPredicate& p : expr.predicates()) {
    if (p.field != FilterField::kCategory) continue;
    if (p.min == p.max) {
      and_category(static_cast<CategoryId>(p.min));
      continue;
    }
    // Range over tags: OR every stored category bitmap whose id falls in
    // [min, max] into scratch, then AND. The slot table is fixed-capacity,
    // so the sweep is bounded.
    range_scratch.assign(num_words, 0);
    for (std::size_t slot = 0; slot < kCategorySlots; ++slot) {
      const std::uint64_t key =
          category_slots_[slot].key.load(std::memory_order_acquire);
      if (key == 0) continue;
      const std::uint64_t category = key - 1;
      if (category < p.min || category > p.max) continue;
      const ValidityBitmap* bitmap =
          category_slots_[slot].bitmap.load(std::memory_order_acquire);
      const std::size_t limit = std::min(num_words, bitmap->num_words());
      for (std::size_t w = 0; w < limit; ++w) {
        range_scratch[w] |= bitmap->WordAt(w);
      }
    }
    for (std::size_t w = 0; w < num_words; ++w) {
      out.words[w] &= range_scratch[w];
    }
  }
  if (category_filter != kNoCategoryFilter) and_category(category_filter);
  if (validity != nullptr) {
    for (std::size_t w = 0; w < num_words; ++w) {
      out.words[w] &= validity->WordAt(w);
    }
  }

  // Numeric phase: column range tests over surviving bits only.
  FilterPredicate numeric[8];
  std::size_t num_numeric = 0;
  for (const FilterPredicate& p : expr.predicates()) {
    if (p.field == FilterField::kCategory) continue;
    if (num_numeric < 8) {
      numeric[num_numeric++] = p;
    }
  }
  // More than 8 numeric conjuncts over 3 fields never tightens further in
  // practice, but stay exact: spill to the slow per-bit Matches-equivalent.
  const bool spill = [&] {
    std::size_t total = 0;
    for (const FilterPredicate& p : expr.predicates()) {
      if (p.field != FilterField::kCategory) ++total;
    }
    return total > 8;
  }();

  std::size_t matches = 0;
  for (std::size_t w = 0; w < num_words; ++w) {
    std::uint64_t word = out.words[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      word &= word - 1;
      const LocalId local = static_cast<LocalId>(w * 64 + bit);
      bool ok = true;
      if (!spill) {
        for (std::size_t i = 0; i < num_numeric && ok; ++i) {
          const std::uint64_t value = NumericAt(numeric[i].field, local);
          ok = value >= numeric[i].min && value <= numeric[i].max;
        }
      } else {
        for (const FilterPredicate& p : expr.predicates()) {
          if (p.field == FilterField::kCategory) continue;
          const std::uint64_t value = NumericAt(p.field, local);
          if (value < p.min || value > p.max) {
            ok = false;
            break;
          }
        }
      }
      if (!ok) {
        out.words[w] &= ~(std::uint64_t{1} << bit);
      } else {
        ++matches;
      }
    }
  }
  out.matches = matches;
  return out;
}

std::uint64_t AttributeFilterIndex::ColumnChecksum() const noexcept {
  const std::size_t n = size_.load(std::memory_order_acquire);
  std::uint64_t key = Fnv1a64("jdvs.filter_columns");
  for (std::size_t i = 0; i < n; ++i) {
    key = HashCombine(key,
                      Mix64(ColumnCell(sales_, i)->load(
                          std::memory_order_acquire)));
    key = HashCombine(key, Mix64(ColumnCell(price_cents_, i)
                                     ->load(std::memory_order_acquire)));
    key = HashCombine(key, Mix64(ColumnCell(praise_, i)->load(
                               std::memory_order_acquire)));
  }
  return key;
}

}  // namespace jdvs

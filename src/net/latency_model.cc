#include "net/latency_model.h"

#include <chrono>
#include <cmath>
#include <thread>

#include "common/hash.h"

namespace jdvs {

std::int64_t LatencyModel::SampleMicros(Rng& rng) const {
  std::int64_t total = base_micros > 0 ? base_micros : 0;
  if (jitter_median_micros > 0) {
    const double mu = std::log(static_cast<double>(jitter_median_micros));
    total += static_cast<std::int64_t>(std::exp(mu + sigma * rng.NextGaussian()));
  }
  return total;
}

void ChargeHop(const LatencyModel& model, std::uint64_t stream_seed) {
  if (model.IsZero()) return;
  thread_local Rng rng(HashCombine(
      Mix64(stream_seed),
      Mix64(std::hash<std::thread::id>{}(std::this_thread::get_id()))));
  const std::int64_t delay = model.SampleMicros(rng);
  if (delay > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay));
  }
}

}  // namespace jdvs

#include "net/latency_model.h"

#include <chrono>
#include <cmath>
#include <thread>

#include "common/hash.h"

namespace jdvs {

std::int64_t LatencyModel::SampleMicros(Rng& rng) const {
  std::int64_t total = base_micros > 0 ? base_micros : 0;
  if (jitter_median_micros > 0) {
    const double mu = std::log(static_cast<double>(jitter_median_micros));
    total += static_cast<std::int64_t>(std::exp(mu + sigma * rng.NextGaussian()));
  }
  return total;
}

void ChargeHop(const LatencyModel& model, std::uint64_t stream_seed) {
  ChargeHop(model, stream_seed, 1.0, 0);
}

void ChargeHop(const LatencyModel& model, std::uint64_t stream_seed,
               double multiplier, std::int64_t added_micros) {
  if (model.IsZero() && added_micros <= 0) return;
  std::int64_t delay = added_micros > 0 ? added_micros : 0;
  if (!model.IsZero()) {
    thread_local Rng rng(HashCombine(
        Mix64(stream_seed),
        Mix64(std::hash<std::thread::id>{}(std::this_thread::get_id()))));
    std::int64_t sampled = model.SampleMicros(rng);
    if (multiplier != 1.0 && sampled > 0) {
      sampled = static_cast<std::int64_t>(static_cast<double>(sampled) *
                                          (multiplier > 0.0 ? multiplier : 0.0));
    }
    delay += sampled;
  }
  if (delay > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay));
  }
}

}  // namespace jdvs

// Simulated cluster node.
//
// Each blender, broker and searcher instance of Figure 10 runs as a Node: a
// named entity with its own bounded worker pool (standing in for a server's
// cores) and a fail switch for availability experiments. Invoke() is the RPC
// entry point: the callable runs on the *callee's* pool after a simulated
// network hop, and the result travels back through a future after a second
// hop — so fan-out calls from one node to many execute genuinely in
// parallel, and a saturated node queues requests exactly like a busy server.
// InvokeAsync() is the continuation-passing variant the serving pipeline
// uses: the result is delivered to a completion callback on the callee's
// pool thread, so no caller thread ever parks waiting for a response.
//
// Fault model: an attached FaultInjector (set_fault_injector) gives every
// message a per-link fate — dropped request, dropped or duplicated reply,
// stretched latency, directed partition. A dropped message is *silent*: the
// continuation never fires unless the caller armed a per-RPC timeout
// (InvokeAsyncWithTimeout), in which case the shared TimeoutScheduler
// delivers a typed RpcTimeoutError instead, and a late or duplicated reply
// is swallowed by the per-call first-completion-wins guard.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>

#include "common/hash.h"
#include "common/thread_pool.h"
#include "net/fault_injector.h"
#include "net/latency_model.h"
#include "net/rpc.h"
#include "net/timeout.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "qos/deadline.h"

namespace jdvs {

// Thrown by Invoke()'d work when the callee is marked failed; surfaces to
// the caller through the future (brokers catch it and fail over to a
// replica, Section 2.4 "multiple copies for availability").
class NodeFailedError : public std::runtime_error {
 public:
  explicit NodeFailedError(const std::string& node)
      : std::runtime_error("node failed: " + node) {}
};

class Node {
 public:
  Node(std::string name, std::size_t threads, LatencyModel latency = {},
       std::uint64_t seed = 0)
      : name_(std::move(name)),
        latency_(latency),
        seed_(HashCombine(Mix64(seed), Fnv1a64(name_))),
        pool_(threads, name_) {}

  // Schedules `fn` on this node's pool, charging one inbound network hop
  // before it runs and one outbound hop before the future is fulfilled.
  // Throws NodeFailedError through the future while failed() is set. With a
  // fault injector attached, a dropped message breaks the promise (the
  // future throws std::future_error) rather than hanging the caller.
  template <typename F>
  auto Invoke(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto promise = std::make_shared<std::promise<R>>();
    std::future<R> future = promise->get_future();
    InvokeAsync(std::forward<F>(fn), [promise](AsyncResult<R> result) {
      if (!result.ok()) {
        promise->set_exception(result.error);
      } else if constexpr (std::is_void_v<R>) {
        promise->set_value();
      } else {
        promise->set_value(std::move(*result.value));
      }
    });
    return future;
  }

  // Continuation-passing Invoke: schedules `fn` on this node's pool exactly
  // like Invoke(), but delivers the outcome (value or std::exception_ptr,
  // including the NodeFailedError thrown while failed() is set) to `on_done`
  // as an AsyncResult<R> instead of a future. `on_done` runs on the callee's
  // pool thread right after `fn`; no caller thread blocks. If the pool is
  // already shut down the task runs inline so the callback always fires.
  template <typename F, typename Done>
  void InvokeAsync(F&& fn, Done&& on_done) {
    InvokeAsyncWithTimeout(0, std::forward<F>(fn), std::forward<Done>(on_done));
  }

  // InvokeAsync with a per-RPC timeout: when `timeout_micros` > 0 and no
  // reply reached `on_done` by then, the shared TimeoutScheduler delivers
  // AsyncResult<R>::Fail(RpcTimeoutError) on its timer thread. Exactly one
  // delivery ever reaches `on_done` — reply, duplicated reply or timeout —
  // whichever wins the per-call OnceCallback guard; the rest are swallowed
  // (and a swallowed injected duplicate is counted by the injector).
  template <typename F, typename Done>
  void InvokeAsyncWithTimeout(Micros timeout_micros, F&& fn, Done&& on_done) {
    using R = std::invoke_result_t<F>;
    FaultInjector* injector = fault_injector_.load(std::memory_order_acquire);
    if (injector == nullptr && timeout_micros <= 0) {
      // Clean fabric, no deadline to arm: skip the guard entirely. This is
      // the steady-state hot path.
      auto task = [this, fn = std::forward<F>(fn),
                   done = std::forward<Done>(on_done)]() mutable {
        RpcSourceScope source(name_);
        AsyncResult<R> result;
        try {
          ChargeHop(latency_, seed_);  // request transit
          if (failed_.load(std::memory_order_acquire)) {
            throw NodeFailedError(name_);
          }
          if constexpr (std::is_void_v<R>) {
            fn();
          } else {
            result.value.emplace(fn());
          }
          ChargeHop(latency_, seed_ ^ 1);  // response transit
        } catch (...) {
          result.error = std::current_exception();
        }
        done(std::move(result));
      };
      // shared_ptr wrapper: std::function requires copyable callables, and a
      // failed Submit (pool shut down) must still be able to run the task.
      auto shared = std::make_shared<decltype(task)>(std::move(task));
      if (!pool_.Submit([shared] { (*shared)(); })) (*shared)();
      return;
    }

    // Guarded path: the message gets a fate from the injector and the
    // continuation gets a first-completion-wins guard shared with the
    // timeout timer.
    FaultInjector::Decision decision;
    if (injector != nullptr) decision = injector->Decide(CurrentRpcSource(), name_);
    auto guard =
        std::make_shared<OnceCallback<R>>(std::forward<Done>(on_done));
    if (timeout_micros > 0) {
      const TimeoutScheduler::TimerId id = TimeoutScheduler::Default().Schedule(
          timeout_micros, [guard, callee = name_, timeout_micros] {
            guard->Deliver(AsyncResult<R>::Fail(std::make_exception_ptr(
                RpcTimeoutError(callee, timeout_micros))));
          });
      guard->timer_id.store(id, std::memory_order_release);
    }
    if (decision.drop_request) {
      // Lost in transit: the callee never sees it. Only the timer (if any)
      // can answer the caller — exactly the hang the timeout exists for.
      return;
    }
    auto task = [this, injector, decision, guard,
                 fn = std::forward<F>(fn)]() mutable {
      RpcSourceScope source(name_);
      AsyncResult<R> result;
      try {
        ChargeHop(latency_, seed_, decision.latency_multiplier,
                  decision.added_latency_micros);  // request transit
        if (failed_.load(std::memory_order_acquire)) {
          throw NodeFailedError(name_);
        }
        if constexpr (std::is_void_v<R>) {
          fn();
        } else {
          result.value.emplace(fn());
        }
        ChargeHop(latency_, seed_ ^ 1, decision.latency_multiplier,
                  decision.added_latency_micros);  // response transit
      } catch (...) {
        result.error = std::current_exception();
      }
      if (decision.drop_reply) {
        // The work ran (side effects applied) but the caller hears nothing.
        if (injector != nullptr) injector->OnReplyDropped();
        return;
      }
      if (decision.duplicate_reply) {
        if constexpr (std::is_void_v<R> || std::is_copy_constructible_v<R>) {
          AsyncResult<R> duplicate = result;
          DeliverAndCancelTimer(*guard, std::move(result));
          if (!guard->Deliver(std::move(duplicate)) && injector != nullptr) {
            injector->OnDuplicateSuppressed();
          }
          return;
        }
      }
      DeliverAndCancelTimer(*guard, std::move(result));
    };
    auto shared = std::make_shared<decltype(task)>(std::move(task));
    if (!pool_.Submit([shared] { (*shared)(); })) (*shared)();
  }

  // Span-aware InvokeAsync: `fn(span)` runs under a child span of `parent`
  // covering the callee-side execution; an exception marks the span failed
  // and reaches `on_done` as the AsyncResult error. The span finishes when
  // `fn` returns — work that outlives `fn` (a continuation chain) should
  // instead own a Span in its per-request state.
  template <typename F, typename Done>
  void InvokeSpannedAsync(obs::TraceSink* sink, const obs::TraceContext& parent,
                          std::string span_name, F&& fn, Done&& on_done) {
    InvokeAsync(
        [this, sink, parent, name = std::move(span_name),
         fn = std::forward<F>(fn)]() mutable {
          obs::Span span(sink, MonotonicClock::Instance(), parent,
                         std::move(name), name_);
          try {
            return fn(span);
          } catch (const std::exception& e) {
            span.SetError(e.what());
            throw;
          }
        },
        std::forward<Done>(on_done));
  }

  // Deadline-aware InvokeSpannedAsync: identical, except the deadline is
  // re-checked on the callee's pool thread after the request hop — i.e.
  // after the time the call spent in the network and the pool queue — and
  // an expired budget fails the call with DeadlineExceededError *before*
  // `fn` runs, so a saturated node sheds queued work it could no longer
  // answer in time instead of scanning for a caller that already gave up.
  // The span still records, tagged deadline_exceeded, so traces show where
  // budgets die. An unlimited deadline costs one integer compare.
  // `timeout_micros` > 0 additionally arms a per-RPC timeout (see
  // InvokeAsyncWithTimeout) so a dropped message cannot hang the caller.
  template <typename F, typename Done>
  void InvokeSpannedAsyncWithDeadline(obs::TraceSink* sink,
                                      const obs::TraceContext& parent,
                                      std::string span_name,
                                      qos::Deadline deadline,
                                      Micros timeout_micros, F&& fn,
                                      Done&& on_done) {
    InvokeAsyncWithTimeout(
        timeout_micros,
        [this, sink, parent, name = std::move(span_name), deadline,
         fn = std::forward<F>(fn)]() mutable {
          obs::Span span(sink, MonotonicClock::Instance(), parent,
                         std::move(name), name_);
          if (deadline.Expired(MonotonicClock::Instance())) {
            span.AddTag("deadline_exceeded", std::uint64_t{1});
            span.SetError("deadline exceeded");
            throw qos::DeadlineExceededError(name_);
          }
          try {
            return fn(span);
          } catch (const std::exception& e) {
            span.SetError(e.what());
            throw;
          }
        },
        std::forward<Done>(on_done));
  }

  template <typename F, typename Done>
  void InvokeSpannedAsyncWithDeadline(obs::TraceSink* sink,
                                      const obs::TraceContext& parent,
                                      std::string span_name,
                                      qos::Deadline deadline, F&& fn,
                                      Done&& on_done) {
    InvokeSpannedAsyncWithDeadline(sink, parent, std::move(span_name),
                                   deadline, /*timeout_micros=*/0,
                                   std::forward<F>(fn),
                                   std::forward<Done>(on_done));
  }

  // Span-aware Invoke: runs `fn(span)` on this node's pool under a span that
  // is a child of `parent`, covering the callee-side execution (the gap
  // between the parent span and this one is network + queue time). The span
  // is a no-op when `parent` is unsampled or `sink` is null, so untraced
  // requests pay nothing. An exception from `fn` marks the span failed and
  // still propagates through the future.
  template <typename F>
  auto InvokeSpanned(obs::TraceSink* sink, const obs::TraceContext& parent,
                     std::string span_name, F&& fn)
      -> std::future<std::invoke_result_t<F, obs::Span&>> {
    return Invoke([this, sink, parent, name = std::move(span_name),
                   fn = std::forward<F>(fn)]() mutable {
      obs::Span span(sink, MonotonicClock::Instance(), parent,
                     std::move(name), name_);
      try {
        return fn(span);
      } catch (const std::exception& e) {
        span.SetError(e.what());
        throw;
      }
    });
  }

  void set_failed(bool failed) {
    failed_.store(failed, std::memory_order_release);
  }
  bool failed() const { return failed_.load(std::memory_order_acquire); }

  // Attaches (or detaches, with null) the fault injector consulted for
  // every message into this node. The injector must outlive the node's
  // in-flight work; benches install it at cluster wiring time.
  void set_fault_injector(FaultInjector* injector) {
    fault_injector_.store(injector, std::memory_order_release);
  }
  FaultInjector* fault_injector() const {
    return fault_injector_.load(std::memory_order_acquire);
  }

  const std::string& name() const { return name_; }
  ThreadPool& pool() { return pool_; }
  const LatencyModel& latency() const { return latency_; }

 private:
  std::string name_;
  LatencyModel latency_;
  std::uint64_t seed_;
  std::atomic<bool> failed_{false};
  std::atomic<FaultInjector*> fault_injector_{nullptr};
  ThreadPool pool_;
};

}  // namespace jdvs

#include "net/rpc.h"

// Header-only helpers; this translation unit anchors the header.
namespace jdvs {}

// Front-end load balancer (the paper's Nginx stand-in).
//
// "Upon receiving a query from the user, a front end (i.e., load balancer)
// forwards the query to one of the blenders." Round robin over backends,
// skipping unhealthy ones via a caller-supplied predicate.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <stdexcept>
#include <vector>

namespace jdvs {

// Thrown by RoundRobinBalancer::Next when the health predicate rejects every
// backend. Typed so callers can degrade gracefully (serve a partial result,
// shed the request) instead of treating total-outage like a generic error.
class NoHealthyBackendError : public std::runtime_error {
 public:
  NoHealthyBackendError() : std::runtime_error("no healthy backend available") {}
};

template <typename Backend>
class RoundRobinBalancer {
 public:
  using HealthCheck = std::function<bool(const Backend&)>;

  explicit RoundRobinBalancer(
      std::vector<Backend*> backends,
      HealthCheck healthy = [](const Backend&) { return true; })
      : backends_(std::move(backends)), healthy_(std::move(healthy)) {
    if (backends_.empty()) {
      throw std::invalid_argument("load balancer needs at least one backend");
    }
  }

  // Next healthy backend, round robin. Throws NoHealthyBackendError when
  // every backend is down.
  Backend& Next() {
    const std::size_t n = backends_.size();
    const std::size_t start = cursor_.fetch_add(1, std::memory_order_relaxed);
    for (std::size_t i = 0; i < n; ++i) {
      Backend* candidate = backends_[(start + i) % n];
      if (healthy_(*candidate)) return *candidate;
    }
    throw NoHealthyBackendError();
  }

  std::size_t num_backends() const { return backends_.size(); }

 private:
  std::vector<Backend*> backends_;
  HealthCheck healthy_;
  std::atomic<std::size_t> cursor_{0};
};

}  // namespace jdvs

#include "net/fault_injector.h"

#include <fstream>

#include "common/hash.h"

namespace jdvs {
namespace {

// Uniform double in [0, 1) from a mixed hash: 53 mantissa bits.
double ToUnit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

thread_local std::string current_rpc_source;

}  // namespace

void FaultInjector::Install(LinkKey key, const LinkFaults& faults) {
  Rule rule;
  rule.faults = faults;
  rule.key_hash = HashCombine(
      Mix64(seed_),
      HashCombine(Fnv1a64(key.first), Mix64(Fnv1a64(key.second))));
  rule.ordinal = std::make_shared<std::atomic<std::uint64_t>>(0);
  std::lock_guard lock(mu_);
  rules_[std::move(key)] = std::move(rule);
}

void FaultInjector::SetLink(const std::string& from, const std::string& to,
                            const LinkFaults& faults) {
  Install({from, to}, faults);
}

void FaultInjector::SetNode(const std::string& to, const LinkFaults& faults) {
  Install({"*", to}, faults);
}

void FaultInjector::Partition(const std::string& from, const std::string& to) {
  Install({from, to}, LinkFaults{.partitioned = true});
}

void FaultInjector::Heal(const std::string& from, const std::string& to) {
  std::lock_guard lock(mu_);
  rules_.erase({from, to});
}

void FaultInjector::HealNode(const std::string& to) {
  std::lock_guard lock(mu_);
  rules_.erase({"*", to});
}

void FaultInjector::Clear() {
  std::lock_guard lock(mu_);
  rules_.clear();
}

FaultInjector::Decision FaultInjector::Decide(const std::string& from,
                                              const std::string& to) {
  LinkFaults faults;
  std::uint64_t key_hash = 0;
  std::shared_ptr<std::atomic<std::uint64_t>> ordinal;
  {
    std::lock_guard lock(mu_);
    auto found = rules_.find({from, to});
    if (found == rules_.end()) found = rules_.find({std::string("*"), to});
    if (found == rules_.end()) return Decision{};
    faults = found->second.faults;
    key_hash = found->second.key_hash;
    ordinal = found->second.ordinal;
  }
  Decision decision;
  decision.latency_multiplier = faults.latency_multiplier;
  decision.added_latency_micros = faults.added_latency_micros;
  if (faults.partitioned) {
    decision.drop_request = true;
    requests_dropped_.fetch_add(1, std::memory_order_relaxed);
    return decision;
  }
  // The n-th message on this link draws independent uniforms by hashing
  // (key, n, draw#): deterministic in the seed, independent of which thread
  // dispatches and in what order the links interleave.
  const std::uint64_t n = ordinal->fetch_add(1, std::memory_order_relaxed);
  auto draw = [&](std::uint64_t stream) {
    return ToUnit(Mix64(HashCombine(key_hash, HashCombine(Mix64(n), stream))));
  };
  if (faults.drop_probability > 0.0 && draw(1) < faults.drop_probability) {
    decision.drop_request = true;
    requests_dropped_.fetch_add(1, std::memory_order_relaxed);
    return decision;
  }
  if (faults.reply_drop_probability > 0.0 &&
      draw(2) < faults.reply_drop_probability) {
    // Counted by the delivery path (OnReplyDropped) once the work actually
    // ran — a request that also failed upstream never had a reply to drop.
    decision.drop_reply = true;
    return decision;
  }
  if (faults.duplicate_probability > 0.0 &&
      draw(3) < faults.duplicate_probability) {
    decision.duplicate_reply = true;
    replies_duplicated_.fetch_add(1, std::memory_order_relaxed);
  }
  return decision;
}

void FaultInjector::SetStorage(const std::string& node,
                               const StorageFaults& faults) {
  StorageRule rule;
  rule.faults = faults;
  rule.key_hash = HashCombine(Mix64(seed_), Mix64(Fnv1a64(node)));
  rule.ordinal = std::make_shared<std::atomic<std::uint64_t>>(0);
  rule.fail_next =
      std::make_shared<std::atomic<bool>>(faults.fail_next_fault_in);
  std::lock_guard lock(mu_);
  storage_rules_[node] = std::move(rule);
}

void FaultInjector::HealStorage(const std::string& node) {
  std::lock_guard lock(mu_);
  storage_rules_.erase(node);
}

FaultInjector::StorageDecision FaultInjector::DecideStorage(
    const std::string& node) {
  StorageFaults faults;
  std::uint64_t key_hash = 0;
  std::shared_ptr<std::atomic<std::uint64_t>> ordinal;
  std::shared_ptr<std::atomic<bool>> fail_next;
  {
    std::lock_guard lock(mu_);
    const auto found = storage_rules_.find(node);
    if (found == storage_rules_.end()) return StorageDecision{};
    faults = found->second.faults;
    key_hash = found->second.key_hash;
    ordinal = found->second.ordinal;
    fail_next = found->second.fail_next;
  }
  StorageDecision decision;
  decision.delay_micros = faults.fault_in_delay_micros;
  if (fail_next->exchange(false, std::memory_order_relaxed)) {
    decision.fail = true;
    storage_faults_injected_.fetch_add(1, std::memory_order_relaxed);
    return decision;
  }
  const std::uint64_t n = ordinal->fetch_add(1, std::memory_order_relaxed);
  if (faults.fault_in_error_probability > 0.0 &&
      ToUnit(Mix64(HashCombine(key_hash, HashCombine(Mix64(n), 7)))) <
          faults.fault_in_error_probability) {
    decision.fail = true;
    storage_faults_injected_.fetch_add(1, std::memory_order_relaxed);
  }
  return decision;
}

bool FaultInjector::FlipBit(const std::string& path, std::uint64_t offset,
                            std::uint64_t length, std::uint64_t seed) {
  if (length == 0) return false;
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!f) return false;
  const std::uint64_t bit = Mix64(seed) % (length * 8);
  const std::uint64_t byte = offset + bit / 8;
  f.seekg(static_cast<std::streamoff>(byte));
  char c = 0;
  if (!f.get(c)) return false;
  c = static_cast<char>(c ^ static_cast<char>(1u << (bit % 8)));
  f.seekp(static_cast<std::streamoff>(byte));
  if (!f.put(c)) return false;
  f.flush();
  return f.good();
}

const std::string& CurrentRpcSource() { return current_rpc_source; }

RpcSourceScope::RpcSourceScope(std::string source)
    : previous_(std::move(current_rpc_source)) {
  current_rpc_source = std::move(source);
}

RpcSourceScope::~RpcSourceScope() {
  current_rpc_source = std::move(previous_);
}

}  // namespace jdvs

#include "net/partitioner.h"

#include <algorithm>

#include "common/hash.h"

namespace jdvs {

UrlPartitioner::UrlPartitioner(std::size_t num_partitions)
    : num_partitions_(std::max<std::size_t>(num_partitions, 1)) {}

std::size_t UrlPartitioner::PartitionOf(
    std::string_view image_url) const noexcept {
  return static_cast<std::size_t>(Fnv1a64(image_url) % num_partitions_);
}

PartitionFilter UrlPartitioner::FilterFor(std::size_t partition) const {
  const std::size_t p = partition;
  const std::size_t n = num_partitions_;
  return [p, n](std::string_view url) {
    return static_cast<std::size_t>(Fnv1a64(url) % n) == p;
  };
}

}  // namespace jdvs

#include "net/load_balancer.h"

// RoundRobinBalancer is a template; this translation unit anchors the header.
namespace jdvs {}

// Network latency model for the simulated cluster fabric.
//
// The paper's evaluation runs on a real datacenter network; the simulated
// RPC layer charges each hop a lognormal delay (base + jitter) so fan-out
// amplification and tail-latency effects — the phenomena the 3-level
// architecture is designed around — appear at laptop scale.
#pragma once

#include <cstdint>

#include "common/rng.h"

namespace jdvs {

struct LatencyModel {
  // Fixed per-hop cost; 0 with zero sigma disables delays entirely.
  std::int64_t base_micros = 0;
  // Median of the lognormal jitter component (0 => no jitter).
  std::int64_t jitter_median_micros = 0;
  // Lognormal shape parameter of the jitter.
  double sigma = 0.5;

  bool IsZero() const noexcept {
    return base_micros <= 0 && jitter_median_micros <= 0;
  }

  // One-hop delay sample.
  std::int64_t SampleMicros(Rng& rng) const;
};

// Sleeps for one sampled hop delay using a thread-local RNG derived from
// `stream_seed` (per-thread streams keep sampling lock-free).
void ChargeHop(const LatencyModel& model, std::uint64_t stream_seed);

// ChargeHop with fault-injection scaling: the sampled delay is multiplied
// by `multiplier` and extended by `added_micros` (a limping link per
// net/fault_injector.h). A nonzero `added_micros` charges even when the
// model itself is zero.
void ChargeHop(const LatencyModel& model, std::uint64_t stream_seed,
               double multiplier, std::int64_t added_micros);

}  // namespace jdvs

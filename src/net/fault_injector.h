// Deterministic, seeded network fault injection for the simulated RPC
// fabric.
//
// The only failure the fabric used to model was a binary crash switch on
// Node. Production gray failures look nothing like that: messages get lost,
// replies get duplicated, links partition in one direction, and a "limping"
// node answers every heartbeat while serving queries 50x slow. A
// FaultInjector attached to a Node (Node::set_fault_injector) intercepts
// every Invoke/InvokeAsync and decides, per message, whether to drop the
// request, drop or duplicate the reply, or stretch the hop latency — per
// directed link (from caller to callee), controllable at runtime from
// benches and tests.
//
// Decisions are deterministic in (seed, link rule, message ordinal): the
// n-th message on a link draws its fate by hashing, not from a shared RNG,
// so the same seed replays the same drop/duplication schedule regardless of
// thread interleaving. That is what makes chaos benches reproducible
// (--seed) and fault tests debuggable.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "common/clock.h"

namespace jdvs {

// Fault profile of one directed link (or one callee, with the wildcard
// source "*"). Defaults are a clean link.
struct LinkFaults {
  // Probability the request is lost in transit: the callee never runs it,
  // the caller hears nothing (only a timeout can break the silence).
  double drop_probability = 0.0;
  // Probability the work runs but the reply is lost on the way back —
  // indistinguishable from a dropped request to the caller, but the callee
  // did the work (and applied its side effects).
  double reply_drop_probability = 0.0;
  // Probability the reply is delivered twice (retransmission artifact);
  // callers must suppress the duplicate or double-complete their fan-in.
  double duplicate_probability = 0.0;
  // Gray failure: scales the sampled hop latency (50.0 = limping node that
  // still answers everything, just 50x late).
  double latency_multiplier = 1.0;
  // Flat extra delay per hop, for links whose latency model is zero.
  Micros added_latency_micros = 0;
  // Directed partition: every message from `from` to `to` is dropped.
  bool partitioned = false;

  bool IsClean() const {
    return drop_probability <= 0.0 && reply_drop_probability <= 0.0 &&
           duplicate_probability <= 0.0 && latency_multiplier == 1.0 &&
           added_latency_micros <= 0 && !partitioned;
  }
};

class FaultInjector {
 public:
  // The fate of one message, computed at dispatch on the caller's side.
  struct Decision {
    bool drop_request = false;
    bool drop_reply = false;
    bool duplicate_reply = false;
    double latency_multiplier = 1.0;
    Micros added_latency_micros = 0;

    bool IsClean() const {
      return !drop_request && !drop_reply && !duplicate_reply &&
             latency_multiplier == 1.0 && added_latency_micros <= 0;
    }
  };

  explicit FaultInjector(std::uint64_t seed = 0) : seed_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Installs the fault profile of the directed link `from` -> `to`. An
  // exact (from, to) rule overrides a wildcard one; use SetNode for "every
  // caller of `to`". Replacing a rule resets its message ordinal, so the
  // schedule restarts from message 0.
  void SetLink(const std::string& from, const std::string& to,
               const LinkFaults& faults);
  // Faults every message into `to` regardless of caller (wildcard source).
  void SetNode(const std::string& to, const LinkFaults& faults);
  // Directed partition helpers: from -/-> to (replies included — the whole
  // message is dropped).
  void Partition(const std::string& from, const std::string& to);
  // Removes the (from, to) rule; HealNode removes the wildcard rule for
  // `to`. Exact rules installed separately must be healed separately.
  void Heal(const std::string& from, const std::string& to);
  void HealNode(const std::string& to);
  void Clear();

  // Decides the n-th message's fate on the matching link. Clean (and cheap:
  // one map lookup) when no rule matches.
  Decision Decide(const std::string& from, const std::string& to);

  // ---- Counters (what the chaos actually did, for bench reports) ----
  std::uint64_t requests_dropped() const {
    return requests_dropped_.load(std::memory_order_relaxed);
  }
  std::uint64_t replies_dropped() const {
    return replies_dropped_.load(std::memory_order_relaxed);
  }
  std::uint64_t replies_duplicated() const {
    return replies_duplicated_.load(std::memory_order_relaxed);
  }
  // Duplicate deliveries a caller-side OnceCallback guard swallowed —
  // proof the suppression worked (bumped by the delivery path in Node).
  std::uint64_t duplicates_suppressed() const {
    return duplicates_suppressed_.load(std::memory_order_relaxed);
  }
  void OnDuplicateSuppressed() {
    duplicates_suppressed_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnReplyDropped() {
    replies_dropped_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  struct Rule {
    LinkFaults faults;
    std::uint64_t key_hash = 0;  // folds the seed and the link key
    // Message ordinal on this link; shared_ptr so Decide can draw outside
    // the rules lock and a concurrent Heal cannot invalidate it.
    std::shared_ptr<std::atomic<std::uint64_t>> ordinal;
  };

  using LinkKey = std::pair<std::string, std::string>;

  void Install(LinkKey key, const LinkFaults& faults);

  const std::uint64_t seed_;
  mutable std::mutex mu_;
  std::map<LinkKey, Rule> rules_;
  std::atomic<std::uint64_t> requests_dropped_{0};
  std::atomic<std::uint64_t> replies_dropped_{0};
  std::atomic<std::uint64_t> replies_duplicated_{0};
  std::atomic<std::uint64_t> duplicates_suppressed_{0};
};

// Identity of the node (or external actor) issuing RPCs from the current
// thread, used as the `from` side of fault-injection link lookups. Empty
// when unset (an anonymous caller, e.g. a test harness thread) — wildcard
// rules still apply. Node sets it to the callee's name while running a
// task, so nested RPCs (broker -> searcher) carry the right source; actors
// that dispatch from their own threads (the failure detector, benches)
// scope it explicitly.
const std::string& CurrentRpcSource();

class RpcSourceScope {
 public:
  explicit RpcSourceScope(std::string source);
  ~RpcSourceScope();

  RpcSourceScope(const RpcSourceScope&) = delete;
  RpcSourceScope& operator=(const RpcSourceScope&) = delete;

 private:
  std::string previous_;
};

}  // namespace jdvs

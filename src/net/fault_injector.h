// Deterministic, seeded network fault injection for the simulated RPC
// fabric.
//
// The only failure the fabric used to model was a binary crash switch on
// Node. Production gray failures look nothing like that: messages get lost,
// replies get duplicated, links partition in one direction, and a "limping"
// node answers every heartbeat while serving queries 50x slow. A
// FaultInjector attached to a Node (Node::set_fault_injector) intercepts
// every Invoke/InvokeAsync and decides, per message, whether to drop the
// request, drop or duplicate the reply, or stretch the hop latency — per
// directed link (from caller to callee), controllable at runtime from
// benches and tests.
//
// Decisions are deterministic in (seed, link rule, message ordinal): the
// n-th message on a link draws its fate by hashing, not from a shared RNG,
// so the same seed replays the same drop/duplication schedule regardless of
// thread interleaving. That is what makes chaos benches reproducible
// (--seed) and fault tests debuggable.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "common/clock.h"

namespace jdvs {

// Fault profile of one directed link (or one callee, with the wildcard
// source "*"). Defaults are a clean link.
struct LinkFaults {
  // Probability the request is lost in transit: the callee never runs it,
  // the caller hears nothing (only a timeout can break the silence).
  double drop_probability = 0.0;
  // Probability the work runs but the reply is lost on the way back —
  // indistinguishable from a dropped request to the caller, but the callee
  // did the work (and applied its side effects).
  double reply_drop_probability = 0.0;
  // Probability the reply is delivered twice (retransmission artifact);
  // callers must suppress the duplicate or double-complete their fan-in.
  double duplicate_probability = 0.0;
  // Gray failure: scales the sampled hop latency (50.0 = limping node that
  // still answers everything, just 50x late).
  double latency_multiplier = 1.0;
  // Flat extra delay per hop, for links whose latency model is zero.
  Micros added_latency_micros = 0;
  // Directed partition: every message from `from` to `to` is dropped.
  bool partitioned = false;

  bool IsClean() const {
    return drop_probability <= 0.0 && reply_drop_probability <= 0.0 &&
           duplicate_probability <= 0.0 && latency_multiplier == 1.0 &&
           added_latency_micros <= 0 && !partitioned;
  }
};

// Storage fault profile of one node's tiered store. Fault-ins on that node
// consult DecideStorage() before touching the mapping; the store converts a
// `fail` into quarantine + skip, never a crash.
struct StorageFaults {
  // One-shot: the next fault-in on this node fails (consumed on first draw).
  bool fail_next_fault_in = false;
  // Probability an individual fault-in fails (flaky disk / lost pages).
  double fault_in_error_probability = 0.0;
  // Flat extra delay per fault-in (degraded disk); charged to the query's
  // io budget like real fault time.
  Micros fault_in_delay_micros = 0;

  bool IsClean() const {
    return !fail_next_fault_in && fault_in_error_probability <= 0.0 &&
           fault_in_delay_micros <= 0;
  }
};

class FaultInjector {
 public:
  // The fate of one message, computed at dispatch on the caller's side.
  struct Decision {
    bool drop_request = false;
    bool drop_reply = false;
    bool duplicate_reply = false;
    double latency_multiplier = 1.0;
    Micros added_latency_micros = 0;

    bool IsClean() const {
      return !drop_request && !drop_reply && !duplicate_reply &&
             latency_multiplier == 1.0 && added_latency_micros <= 0;
    }
  };

  explicit FaultInjector(std::uint64_t seed = 0) : seed_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Installs the fault profile of the directed link `from` -> `to`. An
  // exact (from, to) rule overrides a wildcard one; use SetNode for "every
  // caller of `to`". Replacing a rule resets its message ordinal, so the
  // schedule restarts from message 0.
  void SetLink(const std::string& from, const std::string& to,
               const LinkFaults& faults);
  // Faults every message into `to` regardless of caller (wildcard source).
  void SetNode(const std::string& to, const LinkFaults& faults);
  // Directed partition helpers: from -/-> to (replies included — the whole
  // message is dropped).
  void Partition(const std::string& from, const std::string& to);
  // Removes the (from, to) rule; HealNode removes the wildcard rule for
  // `to`. Exact rules installed separately must be healed separately.
  void Heal(const std::string& from, const std::string& to);
  void HealNode(const std::string& to);
  void Clear();

  // The fate of one storage fault-in on a node.
  struct StorageDecision {
    bool fail = false;
    Micros delay_micros = 0;
  };

  // Decides the n-th message's fate on the matching link. Clean (and cheap:
  // one map lookup) when no rule matches.
  Decision Decide(const std::string& from, const std::string& to);

  // Installs / removes the storage fault profile of `node`'s tiered store.
  // Replacing a rule resets its fault-in ordinal (and re-arms
  // fail_next_fault_in).
  void SetStorage(const std::string& node, const StorageFaults& faults);
  void HealStorage(const std::string& node);

  // Decides the n-th fault-in's fate on `node`. Deterministic in
  // (seed, node, ordinal), same discipline as Decide().
  StorageDecision DecideStorage(const std::string& node);

  // Seeded at-rest corruption: flips one deterministically chosen bit inside
  // [offset, offset+length) of `path` (bit index = Mix64(seed) mod length*8).
  // Returns false when the file cannot be opened or is too short. This is a
  // file-level chaos tool, not tied to an injector instance.
  static bool FlipBit(const std::string& path, std::uint64_t offset,
                      std::uint64_t length, std::uint64_t seed);

  // ---- Counters (what the chaos actually did, for bench reports) ----
  std::uint64_t requests_dropped() const {
    return requests_dropped_.load(std::memory_order_relaxed);
  }
  std::uint64_t replies_dropped() const {
    return replies_dropped_.load(std::memory_order_relaxed);
  }
  std::uint64_t replies_duplicated() const {
    return replies_duplicated_.load(std::memory_order_relaxed);
  }
  // Duplicate deliveries a caller-side OnceCallback guard swallowed —
  // proof the suppression worked (bumped by the delivery path in Node).
  std::uint64_t duplicates_suppressed() const {
    return duplicates_suppressed_.load(std::memory_order_relaxed);
  }
  void OnDuplicateSuppressed() {
    duplicates_suppressed_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnReplyDropped() {
    replies_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  // Fault-ins failed by DecideStorage (bench report: injected disk faults).
  std::uint64_t storage_faults_injected() const {
    return storage_faults_injected_.load(std::memory_order_relaxed);
  }

 private:
  struct Rule {
    LinkFaults faults;
    std::uint64_t key_hash = 0;  // folds the seed and the link key
    // Message ordinal on this link; shared_ptr so Decide can draw outside
    // the rules lock and a concurrent Heal cannot invalidate it.
    std::shared_ptr<std::atomic<std::uint64_t>> ordinal;
  };

  using LinkKey = std::pair<std::string, std::string>;

  struct StorageRule {
    StorageFaults faults;
    std::uint64_t key_hash = 0;
    std::shared_ptr<std::atomic<std::uint64_t>> ordinal;
    // One-shot flag lives behind a shared_ptr for the same reason as the
    // ordinal: consumed outside the rules lock.
    std::shared_ptr<std::atomic<bool>> fail_next;
  };

  void Install(LinkKey key, const LinkFaults& faults);

  const std::uint64_t seed_;
  mutable std::mutex mu_;
  std::map<LinkKey, Rule> rules_;
  std::map<std::string, StorageRule> storage_rules_;
  std::atomic<std::uint64_t> requests_dropped_{0};
  std::atomic<std::uint64_t> replies_dropped_{0};
  std::atomic<std::uint64_t> replies_duplicated_{0};
  std::atomic<std::uint64_t> duplicates_suppressed_{0};
  std::atomic<std::uint64_t> storage_faults_injected_{0};
};

// Identity of the node (or external actor) issuing RPCs from the current
// thread, used as the `from` side of fault-injection link lookups. Empty
// when unset (an anonymous caller, e.g. a test harness thread) — wildcard
// rules still apply. Node sets it to the callee's name while running a
// task, so nested RPCs (broker -> searcher) carry the right source; actors
// that dispatch from their own threads (the failure detector, benches)
// scope it explicitly.
const std::string& CurrentRpcSource();

class RpcSourceScope {
 public:
  explicit RpcSourceScope(std::string source);
  ~RpcSourceScope();

  RpcSourceScope(const RpcSourceScope&) = delete;
  RpcSourceScope& operator=(const RpcSourceScope&) = delete;

 private:
  std::string previous_;
};

}  // namespace jdvs

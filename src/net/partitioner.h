// Index partitioning.
//
// Section 2.4: "The entire image index data is divided into multiple
// partitions by hashing the image's URL. ... A partition is handled by a
// single searcher node." Stable FNV-1a hashing guarantees every node agrees
// on ownership without coordination.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "index/realtime_indexer.h"

namespace jdvs {

class UrlPartitioner {
 public:
  explicit UrlPartitioner(std::size_t num_partitions);

  std::size_t PartitionOf(std::string_view image_url) const noexcept;

  // Filter accepting exactly the URLs owned by `partition`.
  PartitionFilter FilterFor(std::size_t partition) const;

  std::size_t num_partitions() const noexcept { return num_partitions_; }

 private:
  std::size_t num_partitions_;
};

}  // namespace jdvs

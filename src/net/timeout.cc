#include "net/timeout.h"

#include <chrono>
#include <utility>

namespace jdvs {

TimeoutScheduler::TimeoutScheduler(const Clock& clock) : clock_(&clock) {
  worker_ = std::thread([this] { RunLoop(); });
}

TimeoutScheduler::~TimeoutScheduler() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
    // Pending timers are dropped, not fired: at teardown the continuations
    // they would complete are being destroyed too.
    queue_.clear();
    by_id_.clear();
  }
  cv_.notify_all();
  worker_.join();
}

TimeoutScheduler& TimeoutScheduler::Default() {
  static TimeoutScheduler instance;
  return instance;
}

TimeoutScheduler::TimerId TimeoutScheduler::Schedule(
    Micros delay_micros, std::function<void()> fire) {
  const Micros due = clock_->NowMicros() + (delay_micros > 0 ? delay_micros : 0);
  bool is_next = false;
  TimerId id = 0;
  {
    std::lock_guard lock(mu_);
    id = next_id_++;
    auto it = queue_.emplace(due, PendingTimer{id, std::move(fire)});
    by_id_.emplace(id, it);
    is_next = it == queue_.begin();
  }
  // Only a new earliest deadline changes what the worker should be
  // sleeping until.
  if (is_next) cv_.notify_one();
  return id;
}

bool TimeoutScheduler::Cancel(TimerId id) {
  std::lock_guard lock(mu_);
  auto found = by_id_.find(id);
  if (found == by_id_.end()) return false;
  queue_.erase(found->second);
  by_id_.erase(found);
  cancelled_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::size_t TimeoutScheduler::pending() const {
  std::lock_guard lock(mu_);
  return queue_.size();
}

void TimeoutScheduler::RunLoop() {
  std::unique_lock lock(mu_);
  while (!stop_) {
    if (queue_.empty()) {
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      continue;
    }
    const Micros now = clock_->NowMicros();
    auto first = queue_.begin();
    if (first->first > now) {
      cv_.wait_for(lock, std::chrono::microseconds(first->first - now));
      continue;
    }
    std::function<void()> fire = std::move(first->second.fire);
    by_id_.erase(first->second.id);
    queue_.erase(first);
    fired_.fetch_add(1, std::memory_order_relaxed);
    lock.unlock();  // callbacks may Schedule()/Cancel()
    fire();
    lock.lock();
  }
}

}  // namespace jdvs

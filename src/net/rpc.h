// Small RPC helpers over Node::Invoke.
#pragma once

#include <exception>
#include <future>
#include <string>
#include <vector>

namespace jdvs {

// Collects the results of a vector of futures, dropping those that failed
// with an exception (fan-out with partial results: a broker still answers
// when one searcher replica call fails and the retry also fails). Returns
// how many futures failed via `failures` and the first failure's what() via
// `first_error` when non-null — so the caller can tag the failure on a
// trace span instead of silently counting it.
template <typename R>
std::vector<R> CollectPartial(std::vector<std::future<R>>& futures,
                              std::size_t* failures = nullptr,
                              std::string* first_error = nullptr) {
  std::vector<R> results;
  results.reserve(futures.size());
  std::size_t failed = 0;
  for (auto& f : futures) {
    try {
      results.push_back(f.get());
    } catch (const std::exception& e) {
      ++failed;
      if (first_error != nullptr && first_error->empty()) {
        *first_error = e.what();
      }
    } catch (...) {
      ++failed;
      if (first_error != nullptr && first_error->empty()) {
        *first_error = "unknown error";
      }
    }
  }
  if (failures != nullptr) *failures = failed;
  return results;
}

}  // namespace jdvs

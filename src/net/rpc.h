// Small RPC helpers over Node::Invoke.
#pragma once

#include <future>
#include <vector>

namespace jdvs {

// Collects the results of a vector of futures, dropping those that failed
// with an exception (fan-out with partial results: a broker still answers
// when one searcher replica call fails and the retry also fails). Returns
// how many futures failed via `failures` when non-null.
template <typename R>
std::vector<R> CollectPartial(std::vector<std::future<R>>& futures,
                              std::size_t* failures = nullptr) {
  std::vector<R> results;
  results.reserve(futures.size());
  std::size_t failed = 0;
  for (auto& f : futures) {
    try {
      results.push_back(f.get());
    } catch (...) {
      ++failed;
    }
  }
  if (failures != nullptr) *failures = failed;
  return results;
}

}  // namespace jdvs

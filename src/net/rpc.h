// RPC helpers over Node::Invoke / Node::InvokeAsync.
//
// The continuation-passing request path (blender -> broker -> searcher)
// moves results between tiers as AsyncResult<R> values delivered to
// completion callbacks, and joins fan-outs with FanInCollector: an
// atomic-countdown aggregator that owns the per-request partials on the
// heap and fires a single continuation on whichever pool thread delivers
// the last child. No thread ever parks in a future.get() between tiers.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace jdvs {

// Outcome of one async invocation: exactly one of `value` (engaged) or
// `error` (non-null) is set. The value travels by move through the
// continuation chain.
template <typename R>
struct AsyncResult {
  std::optional<R> value;
  std::exception_ptr error;

  bool ok() const { return error == nullptr; }

  static AsyncResult Ok(R v) {
    AsyncResult r;
    r.value.emplace(std::move(v));
    return r;
  }
  static AsyncResult Fail(std::exception_ptr e) {
    AsyncResult r;
    r.error = std::move(e);
    return r;
  }
};

template <>
struct AsyncResult<void> {
  std::exception_ptr error;

  bool ok() const { return error == nullptr; }

  static AsyncResult Ok() { return AsyncResult{}; }
  static AsyncResult Fail(std::exception_ptr e) {
    AsyncResult r;
    r.error = std::move(e);
    return r;
  }
};

// what() of the exception inside `error`, for tagging trace spans.
inline std::string DescribeException(const std::exception_ptr& error) {
  if (error == nullptr) return "ok";
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown error";
  }
}

// First-completion-wins delivery guard for one RPC.
//
// With timeouts, hedged requests and a fabric that can duplicate replies,
// several deliveries race for the same continuation: the real reply, an
// injected duplicate, the timeout timer, a hedge's reply. Exactly one may
// win — a FanInCollector slot completed twice corrupts the fan-in. The
// guard is the arbitration point: Deliver() runs the wrapped callback for
// the first caller and tells every later one it lost.
template <typename R>
class OnceCallback {
 public:
  using Done = std::function<void(AsyncResult<R>)>;

  explicit OnceCallback(Done done) : done_(std::move(done)) {}

  OnceCallback(const OnceCallback&) = delete;
  OnceCallback& operator=(const OnceCallback&) = delete;

  // Runs the callback with `result` iff no delivery won yet; returns
  // whether this one did. The acq_rel exchange makes the winner's read of
  // done_ safe against the losers.
  bool Deliver(AsyncResult<R> result) {
    if (delivered_.exchange(true, std::memory_order_acq_rel)) return false;
    Done done = std::move(done_);
    done_ = nullptr;  // release captures promptly; the guard may outlive us
    done(std::move(result));
    return true;
  }

  bool delivered() const {
    return delivered_.load(std::memory_order_acquire);
  }

  // Cooperating one-shot timer (TimeoutScheduler id; 0 = none): armed by
  // the caller next to the RPC, disarmed by whichever delivery wins (see
  // DeliverAndCancelTimer in net/timeout.h).
  std::atomic<std::uint64_t> timer_id{0};

 private:
  std::atomic<bool> delivered_{false};
  Done done_;
};

// Countdown fan-in aggregator for one fan-out wave.
//
// Create() fixes the child count up front; each child chain calls
// Complete(slot, result) exactly once when its outcome is final (a failed
// replica that will be retried must NOT complete its slot — the retry is
// dispatched from the child's completion callback and completes the slot
// later). The thread that delivers the last slot invokes the continuation
// with all slots; the continuation is released immediately after firing so
// per-request state captured in it (and any cycle back to the collector)
// is freed promptly. Zero children fire the continuation inside Create().
template <typename R>
class FanInCollector {
 public:
  using Continuation = std::function<void(std::vector<AsyncResult<R>>)>;

  static std::shared_ptr<FanInCollector> Create(std::size_t children,
                                                Continuation done) {
    auto collector = std::shared_ptr<FanInCollector>(
        new FanInCollector(children, std::move(done)));
    if (children == 0) collector->Fire();
    return collector;
  }

  FanInCollector(const FanInCollector&) = delete;
  FanInCollector& operator=(const FanInCollector&) = delete;

  // Thread-safe across slots; each slot must be completed exactly once.
  // The release-decrement publishes the slot write to the acquiring thread
  // that brings the count to zero and fires.
  void Complete(std::size_t slot, AsyncResult<R> result) {
    slots_[slot] = std::move(result);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) Fire();
  }

  std::size_t num_children() const { return slots_.size(); }

 private:
  FanInCollector(std::size_t children, Continuation done)
      : remaining_(children), slots_(children), done_(std::move(done)) {}

  void Fire() {
    Continuation done = std::move(done_);
    done_ = nullptr;  // break state <-> collector reference cycles
    done(std::move(slots_));
  }

  std::atomic<std::size_t> remaining_;
  std::vector<AsyncResult<R>> slots_;
  Continuation done_;
};

// Collects the results of a vector of futures, dropping those that failed
// with an exception (fan-out with partial results). Returns how many
// futures failed via `failures` and the first failure's what() via
// `first_error` when non-null. Only used off the hot path (tests, tools);
// the serving pipeline joins fan-outs with FanInCollector instead.
template <typename R>
std::vector<R> CollectPartial(std::vector<std::future<R>>& futures,
                              std::size_t* failures = nullptr,
                              std::string* first_error = nullptr) {
  std::vector<R> results;
  results.reserve(futures.size());
  std::size_t failed = 0;
  for (auto& f : futures) {
    try {
      results.push_back(f.get());
    } catch (const std::exception& e) {
      ++failed;
      if (first_error != nullptr && first_error->empty()) {
        *first_error = e.what();
      }
    } catch (...) {
      ++failed;
      if (first_error != nullptr && first_error->empty()) {
        *first_error = "unknown error";
      }
    }
  }
  if (failures != nullptr) *failures = failed;
  return results;
}

}  // namespace jdvs

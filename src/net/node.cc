#include "net/node.h"

// Node is header-only (template Invoke); this translation unit anchors the
// header so the build lists every module explicitly.
namespace jdvs {}

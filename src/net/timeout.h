// Shared timer scheduler for per-RPC timeouts and hedged requests.
//
// The fabric's failure model (fault_injector.h) can silently drop a message,
// and a real network can too — so a continuation that only fires when the
// reply arrives is a continuation that may never fire. TimeoutScheduler is
// the process-wide alarm clock that breaks that hang: callers arm a one-shot
// timer alongside the RPC, the reply path cancels it, and if the reply never
// comes the timer delivers a typed RpcTimeoutError through the same
// first-completion-wins guard (OnceCallback in rpc.h) the reply would have
// used. One worker thread serves every node in the process, mirroring how a
// real client library multiplexes deadlines onto one timer wheel instead of
// burning a thread per outstanding call.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/clock.h"
#include "net/rpc.h"

namespace jdvs {

// Thrown (through the continuation's AsyncResult) when an RPC's timeout
// fires before any reply arrived. Distinct from NodeFailedError: the callee
// may be perfectly healthy and the message lost in transit — the caller
// only knows the reply did not come back in time.
class RpcTimeoutError : public std::runtime_error {
 public:
  RpcTimeoutError(const std::string& callee, Micros timeout_micros)
      : std::runtime_error("rpc timeout after " +
                           std::to_string(timeout_micros) + "us calling " +
                           callee) {}
};

// True when `error` holds an RpcTimeoutError (broker failover and client SLO
// accounting branch on it).
inline bool IsRpcTimeout(const std::exception_ptr& error) {
  if (error == nullptr) return false;
  try {
    std::rethrow_exception(error);
  } catch (const RpcTimeoutError&) {
    return true;
  } catch (...) {
    return false;
  }
}

class TimeoutScheduler {
 public:
  using TimerId = std::uint64_t;

  explicit TimeoutScheduler(const Clock& clock = MonotonicClock::Instance());
  ~TimeoutScheduler();

  TimeoutScheduler(const TimeoutScheduler&) = delete;
  TimeoutScheduler& operator=(const TimeoutScheduler&) = delete;

  // The process-wide instance every Node shares.
  static TimeoutScheduler& Default();

  // Arms a one-shot timer: `fire` runs on the scheduler's worker thread
  // `delay_micros` from now, unless cancelled first. Returns a nonzero id.
  // `fire` may itself Schedule() or Cancel() other timers (the scheduler
  // drops its lock while firing).
  TimerId Schedule(Micros delay_micros, std::function<void()> fire);

  // Disarms a pending timer. False when the timer already fired, was
  // already cancelled, or never existed — the caller lost the race, and the
  // callback either ran or is running.
  bool Cancel(TimerId id);

  std::size_t pending() const;
  std::uint64_t fired_total() const {
    return fired_.load(std::memory_order_relaxed);
  }
  std::uint64_t cancelled_total() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  struct PendingTimer {
    TimerId id = 0;
    std::function<void()> fire;
  };
  using Queue = std::multimap<Micros, PendingTimer>;

  void RunLoop();

  const Clock* clock_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  Queue queue_;                                      // keyed by fire time
  std::unordered_map<TimerId, Queue::iterator> by_id_;
  TimerId next_id_ = 1;
  bool stop_ = false;
  std::atomic<std::uint64_t> fired_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::thread worker_;  // last member: joins before the rest is torn down
};

// Completes `guard` with `result`; when this delivery wins the race it also
// disarms the cooperating timeout timer (if one was armed in
// guard->timer_id), so the scheduler does not hold dead closures until they
// expire. Returns whether this delivery won.
template <typename R>
bool DeliverAndCancelTimer(OnceCallback<R>& guard, AsyncResult<R> result) {
  const bool won = guard.Deliver(std::move(result));
  if (won) {
    const TimeoutScheduler::TimerId id =
        guard.timer_id.load(std::memory_order_acquire);
    if (id != 0) TimeoutScheduler::Default().Cancel(id);
  }
  return won;
}

}  // namespace jdvs

#include "index/image_index.h"

#include <algorithm>

namespace jdvs {

const char* FilterStrategyName(FilterScanStats::Strategy strategy) noexcept {
  switch (strategy) {
    case FilterScanStats::Strategy::kNone:
      return "none";
    case FilterScanStats::Strategy::kPre:
      return "pre";
    case FilterScanStats::Strategy::kPost:
      return "post";
    case FilterScanStats::Strategy::kFallback:
      return "fallback";
  }
  return "unknown";
}

std::vector<SearchHit> ImageIndex::Search(FeatureView query, std::size_t k,
                                          std::size_t nprobe_override,
                                          CategoryId category_filter,
                                          const FilterExpression& filter,
                                          FilterScanStats* stats) const {
  if (stats != nullptr) {
    *stats = FilterScanStats{};
    stats->universe = size();
  }
  if (filter.empty()) {
    return Search(query, k, nprobe_override, category_filter);
  }
  if (stats != nullptr) stats->strategy = FilterScanStats::Strategy::kFallback;
  // Generic over-fetch-and-post-filter: fetch a growing multiple of k and
  // keep the hits that satisfy the predicates. Gives every index a correct
  // hybrid answer; selective filters pay recall (documented — the IVF
  // overrides exist precisely to do better).
  const std::size_t total = size();
  std::size_t fetch = std::max<std::size_t>(k * 4, 64);
  for (;;) {
    std::vector<SearchHit> raw =
        Search(query, fetch, nprobe_override, category_filter);
    std::vector<SearchHit> kept;
    kept.reserve(k);
    for (SearchHit& hit : raw) {
      if (!filter.Matches(hit.category, hit.attributes)) continue;
      kept.push_back(std::move(hit));
      if (kept.size() == k) break;
    }
    if (kept.size() == k || raw.size() < fetch || fetch >= total) {
      if (stats != nullptr) stats->matches = kept.size();
      return kept;
    }
    fetch = std::min(total, fetch * 4);
  }
}

}  // namespace jdvs

#include "index/realtime_indexer.h"

namespace jdvs {

PartitionFilter AcceptAllPartitionFilter() {
  return [](std::string_view) { return true; };
}

RealTimeIndexer::RealTimeIndexer(ImageIndex& index, FeatureDb& features,
                                 PartitionFilter filter, std::uint64_t seed,
                                 const Clock& clock, obs::Registry* registry,
                                 std::string_view owner)
    : index_(index),
      features_(features),
      filter_(std::move(filter)),
      rng_(seed),
      clock_(&clock) {
  obs::Registry& reg =
      registry != nullptr ? *registry : obs::Registry::Default();
  updates_total_ = &reg.GetCounter(
      obs::Labeled("jdvs_realtime_updates_total", "searcher", owner));
  apply_stage_ = &reg.GetHistogram(
      obs::Labeled("jdvs_stage_micros", "stage", "rt_apply"));
}

void RealTimeIndexer::Apply(const ProductUpdateMessage& message) {
  const Micros start = clock_->NowMicros();
  switch (message.type) {
    case UpdateType::kAttributeUpdate:
      ApplyAttributeUpdate(message);
      break;
    case UpdateType::kAddProduct:
      ApplyAddition(message);
      break;
    case UpdateType::kRemoveProduct:
      ApplyDeletion(message);
      break;
  }
  const Micros elapsed = clock_->NowMicros() - start;
  latency_.Record(elapsed);
  apply_stage_->Record(elapsed);
  updates_total_->Increment();
}

void RealTimeIndexer::ApplyAttributeUpdate(
    const ProductUpdateMessage& message) {
  ++counters_.attribute_updates;
  counters_.entries_touched += index_.UpdateProductAttributes(
      message.product_id, message.attributes, message.detail_url);
}

void RealTimeIndexer::ApplyAddition(const ProductUpdateMessage& message) {
  ++counters_.additions;
  // "we first check if the product already exists. If it is, we simply
  // update its validity in the bitmap and reuse its images' features."
  // Attribute values may have changed while the product was off the market,
  // so the forward index is refreshed too.
  if (index_.HasProduct(message.product_id)) {
    counters_.entries_touched += index_.UpdateProductAttributes(
        message.product_id, message.attributes, message.detail_url);
  }
  for (const std::string& url : message.image_urls) {
    if (!filter_(url)) continue;  // another partition owns this image
    if (index_.HasImage(url)) {
      index_.SetImageValidity(url, true);
      ++counters_.images_revalidated;
      continue;
    }
    // New image: feature DB consulted first; extraction only on a miss
    // ("always checks if an image's features have been previously
    // extracted", Section 2.1).
    const ImageContent content{url, message.product_id, message.category_id};
    auto [feature, reused] = features_.GetOrExtract(content, rng_);
    if (reused) {
      ++counters_.features_reused;
    } else {
      ++counters_.features_extracted;
    }
    index_.AddImage(url, message.product_id, message.category_id,
                    message.attributes, message.detail_url, feature);
    ++counters_.images_added;
  }
}

void RealTimeIndexer::ApplyDeletion(const ProductUpdateMessage& message) {
  ++counters_.deletions;
  counters_.images_invalidated +=
      index_.SetProductValidity(message.product_id, false);
}

void RealTimeIndexer::ResetStats() {
  counters_ = RealTimeIndexerCounters{};
  latency_.Reset();
}

}  // namespace jdvs

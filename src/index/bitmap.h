// Validity bitmap.
//
// Section 2.1: "A bitmap is used to indicate if a product or image is valid
// or not. When a product is removed from the market ... it is marked invalid
// and excluded from the indexing and search processes." Deletion in the
// real-time index is therefore O(1) per image (Figure 6: flip the flag from
// 1 to 0) and never touches the inverted lists.
//
// Concurrency: bits are stored in atomic words; Set/Get are wait-free.
// Growth appends whole chunks (pointers never move), published through an
// atomic word count, so a single writer can grow the bitmap while searches
// read it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace jdvs {

class ValidityBitmap {
 public:
  static constexpr std::size_t kBitsPerWord = 64;

  explicit ValidityBitmap(std::size_t initial_bits = 0);

  ValidityBitmap(const ValidityBitmap&) = delete;
  ValidityBitmap& operator=(const ValidityBitmap&) = delete;

  // Grows the bitmap to cover at least `bits` bits (new bits are 0/invalid).
  // Single writer.
  void EnsureSize(std::size_t bits);

  // Sets bit `index` to `valid`. Grows if needed (single writer).
  void Set(std::size_t index, bool valid);

  // Reads bit `index`; out-of-range bits read as invalid. Wait-free.
  bool Get(std::size_t index) const noexcept;

  // Number of bits currently addressable.
  std::size_t size_bits() const noexcept {
    return num_words_.load(std::memory_order_acquire) * kBitsPerWord;
  }

  // Population count over all words (approximate under concurrent writes).
  std::size_t CountValid() const noexcept;

  // Word-level read access for bulk materialization: word `w` covers bits
  // [w*64, w*64+64). Out-of-range words read as all-zero. Wait-free; the
  // attribute filter index ANDs whole bitmaps this way instead of testing
  // bit by bit.
  std::uint64_t WordAt(std::size_t w) const noexcept;
  std::size_t num_words() const noexcept {
    return num_words_.load(std::memory_order_acquire);
  }

 private:
  static constexpr std::size_t kWordsPerChunk = 1024;  // 64K bits per chunk

  using Word = std::atomic<std::uint64_t>;

  Word* WordFor(std::size_t index) noexcept;
  const Word* WordFor(std::size_t index) const noexcept;

  std::vector<std::unique_ptr<Word[]>> chunks_;
  std::atomic<std::size_t> num_words_{0};
};

}  // namespace jdvs

// Contiguous, cache-aligned posting-list scan storage.
//
// The seed scanned a posting list by chasing each LocalId through a chunked
// per-partition feature store — one dependent pointer hop and a random-ish
// cache line per candidate. ScanBlock is the scan-order layout that replaces
// that indirection: each inverted list owns one ScanBlock holding its
// members' payloads (padded float vectors for IvfIndex, packed PQ codes for
// IvfPqIndex) contiguously in append order, SoA against a parallel LocalId
// array, with every chunk base 64-byte aligned. A scan walks whole runs
// linearly — exactly what the batch kernels in vecmath/kernels.h and the
// hardware prefetcher want.
//
// Chunks grow geometrically (16 entries, doubling), so a small list — the
// common case: a testbed partition spreads ~5k images over 64 lists — wastes
// at most its own size in slack and the whole index stays cache-resident.
// Doubling also bounds the chunk count at O(log size), which is what makes
// the lock-free reader contract cheap: the chunk vector is reserved once and
// never reallocates.
//
// Concurrency contract mirrors VectorSet / InvertedList: single writer (the
// partition's searcher), lock-free readers. Chunks never move once
// published; growth is published through an atomic size with release
// ordering after the slot write.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "vecmath/aligned.h"
#include "vecmath/vector.h"

namespace jdvs {

class ScanBlock {
 public:
  // `payload_stride_bytes` is the fixed per-entry payload size (already
  // padded by the caller if padding is wanted). `max_run_entries` bounds the
  // length of one run handed to ForEachRun's callback — callers size their
  // distance scratch buffers to it.
  explicit ScanBlock(std::size_t payload_stride_bytes,
                     std::size_t max_run_entries = 256);

  ScanBlock(const ScanBlock&) = delete;
  ScanBlock& operator=(const ScanBlock&) = delete;

  // Appends one entry (single writer): copies payload_stride_bytes from
  // `payload` and records `id` at the same position. `aux` is a per-entry
  // float rider published together with the entry — IvfIndex stores the
  // row's squared L2 norm there so the scan kernel can use the
  // dot-product form of the distance (see DistanceKernels::l2sq_scan_filter);
  // payloads without a norm (PQ codes) leave it zero.
  void Append(LocalId id, const void* payload, float aux = 0.0f);

  // Installs a frozen prefix (single writer, block must be empty): chunk 0
  // becomes `count` entries whose ids/aux the block owns but whose payload
  // is a non-owning pointer — in the tiered index it points into the mmap'd
  // v4 snapshot, so the rows are demand-paged and never copied. The frozen
  // chunk is immutable (MutablePayloadAt on it is a contract violation);
  // subsequent Appends allocate heap chunks exactly as before, which is what
  // makes the real-time delta RAM-resident and mutable on top of a
  // disk-resident base. `payload` must be 64-byte aligned and hold
  // count * payload_stride_bytes() bytes for the block's lifetime.
  void AttachFrozen(AlignedArray<LocalId> ids, AlignedArray<float> aux,
                    const std::uint8_t* payload, std::size_t count);

  // Entries in the frozen prefix (0 when none was attached); their payload
  // bytes are external (disk-backed), everything after them is heap.
  std::size_t frozen_entries() const noexcept { return frozen_entries_; }

  // Payload pointer of entry `index`. Stable for the lifetime of the block;
  // safe concurrently with Append for any index < size() observed earlier.
  const std::uint8_t* PayloadAt(std::size_t index) const noexcept;
  // Writer-side mutable access (in-place rewrite of invisible entries only,
  // same caveat as VectorSet::Overwrite).
  std::uint8_t* MutablePayloadAt(std::size_t index) noexcept;
  LocalId IdAt(std::size_t index) const noexcept;

  // Visits every published entry as contiguous runs of at most
  // max_run_entries: fn(ids, payload, aux, count) where `ids` is count
  // LocalIds, `payload` is count * stride bytes and `aux` is count per-entry
  // rider floats. Run bases are 64-byte aligned when max_run_entries *
  // stride is a cache-line multiple (true for the index layouts: padded
  // float rows, and code runs sized to whole lines).
  // Lock-free; safe concurrently with Append.
  template <typename Fn>
  void ForEachRun(Fn&& fn) const {
    const std::size_t published = size_.load(std::memory_order_acquire);
    const std::size_t chunks = chunk_count_.load(std::memory_order_acquire);
    for (std::size_t c = 0; c < chunks; ++c) {
      const Chunk& chunk = chunks_[c];
      if (chunk.begin >= published) break;
      const std::size_t in_chunk =
          std::min(chunk.capacity, published - chunk.begin);
      for (std::size_t offset = 0; offset < in_chunk;
           offset += max_run_entries_) {
        fn(chunk.ids + offset, chunk.payload + offset * stride_,
           chunk.aux + offset, std::min(max_run_entries_, in_chunk - offset));
      }
    }
  }

  std::size_t size() const noexcept {
    return size_.load(std::memory_order_acquire);
  }
  std::size_t payload_stride_bytes() const noexcept { return stride_; }
  std::size_t max_run_entries() const noexcept { return max_run_entries_; }
  // Bytes of payload + id storage allocated (capacity, not entries).
  std::size_t memory_bytes() const noexcept {
    return allocated_bytes_.load(std::memory_order_relaxed);
  }

  // True when every published chunk base is 64-byte aligned (always, by
  // construction; re-checked by snapshot load as a layout invariant).
  bool storage_aligned() const noexcept;

 private:
  // Readers go through the raw pointers; the owning arrays (null for the
  // frozen chunk's external payload) just pin the storage's lifetime.
  struct Chunk {
    AlignedArray<std::uint8_t> owned_payload;
    AlignedArray<LocalId> owned_ids;
    AlignedArray<float> owned_aux;
    const std::uint8_t* payload = nullptr;
    const LocalId* ids = nullptr;
    const float* aux = nullptr;
    std::size_t begin = 0;     // global index of this chunk's first entry
    std::size_t capacity = 0;  // entries this chunk can hold
    bool frozen = false;       // immutable prefix (external payload)
  };

  const Chunk* FindChunk(std::size_t index) const noexcept;

  const std::size_t stride_;
  const std::size_t max_run_entries_;
  std::vector<Chunk> chunks_;  // pre-reserved; pointers never move
  std::atomic<std::size_t> chunk_count_{0};
  std::atomic<std::size_t> size_{0};
  std::atomic<std::size_t> allocated_bytes_{0};
  std::size_t frozen_entries_ = 0;  // writer-owned
};

}  // namespace jdvs

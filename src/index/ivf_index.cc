#include "index/ivf_index.h"

#include <algorithm>
#include <cassert>

#include "common/hash.h"
#include "vecmath/distance.h"

namespace jdvs {

IvfIndex::IvfIndex(std::shared_ptr<const CoarseQuantizer> quantizer,
                   const IvfIndexConfig& config, CopyExecutor copy_executor)
    : quantizer_(std::move(quantizer)),
      config_(config),
      features_(quantizer_->dim()) {
  lists_.reserve(quantizer_->num_clusters());
  for (std::size_t c = 0; c < quantizer_->num_clusters(); ++c) {
    lists_.push_back(std::make_unique<InvertedList>(
        config_.initial_list_capacity, copy_executor));
  }
}

LocalId IvfIndex::AddImage(std::string_view image_url, ProductId product_id,
                           CategoryId category,
                           const ProductAttributes& attributes,
                           std::string_view detail_url, FeatureView feature) {
  assert(feature.size() == dim());
  // 1. "a new index element plus the product's attributes are created in the
  //    forward index. The image URL is then inserted to the buffer and the
  //    offset is recorded" (Figure 8).
  const ImageId image_id = Fnv1a64(image_url);
  const LocalId local = forward_.Append(image_id, product_id, category,
                                        attributes, image_url, detail_url);
  // 2. Feature stored so inverted-list scans can compute distances.
  const std::size_t slot = features_.Append(feature);
  (void)slot;
  assert(slot == local);
  // 3. "the inverted index list that the image belongs to is calculated
  //    based on its high-dimensional features. The image ID is then added to
  //    the end of the inverted list and the last element position ... is
  //    updated in the auxiliary array."
  const std::uint32_t list = quantizer_->NearestCentroid(feature);
  lists_[list]->Append(local);
  // 4. Valid and searchable from this moment (data freshness).
  valid_.Set(local, true);
  // Writer-side lookup state.
  url_to_local_.emplace(std::string(image_url), local);
  product_to_locals_[product_id].push_back(local);
  return local;
}

bool IvfIndex::HasImage(std::string_view image_url) const {
  return url_to_local_.find(std::string(image_url)) != url_to_local_.end();
}

bool IvfIndex::HasProduct(ProductId product_id) const {
  return product_to_locals_.find(product_id) != product_to_locals_.end();
}

std::size_t IvfIndex::UpdateProductAttributes(ProductId product_id,
                                              const ProductAttributes& attributes,
                                              std::string_view detail_url) {
  const auto it = product_to_locals_.find(product_id);
  if (it == product_to_locals_.end()) return 0;
  for (const LocalId local : it->second) {
    forward_.UpdateNumeric(local, attributes);
    if (!detail_url.empty()) forward_.UpdateDetailUrl(local, detail_url);
  }
  return it->second.size();
}

std::size_t IvfIndex::SetProductValidity(ProductId product_id, bool valid) {
  const auto it = product_to_locals_.find(product_id);
  if (it == product_to_locals_.end()) return 0;
  for (const LocalId local : it->second) valid_.Set(local, valid);
  return it->second.size();
}

bool IvfIndex::SetImageValidity(std::string_view image_url, bool valid) {
  const auto it = url_to_local_.find(std::string(image_url));
  if (it == url_to_local_.end()) return false;
  valid_.Set(it->second, valid);
  return true;
}

bool IvfIndex::IsImageValid(std::string_view image_url) const {
  const auto it = url_to_local_.find(std::string(image_url));
  return it != url_to_local_.end() && valid_.Get(it->second);
}

void IvfIndex::FinishPendingExpansions() {
  for (const auto& list : lists_) list->MaybeFinishExpansion();
}

void IvfIndex::ScanList(std::size_t list, FeatureView query,
                        CategoryId category_filter, TopK& topk) const {
  lists_[list]->Scan([&](LocalId local) {
    // "Only the valid images are used" — the bitmap check costs one atomic
    // load and skips the O(dim) distance for removed products.
    if (config_.filter_invalid_during_scan && !valid_.Get(local)) return;
    // Category scoping: the entry's category is immutable after append.
    if (category_filter != kNoCategoryFilter &&
        forward_.CategoryOf(local) != category_filter) {
      return;
    }
    const float d = L2SquaredDistance(query, features_.At(local));
    topk.Offer(local, d);
  });
}

SearchHit IvfIndex::MaterializeHit(const ScoredImage& scored) const {
  const auto local = static_cast<LocalId>(scored.image_id);
  const AttributeSnapshot snapshot = forward_.Get(local);
  SearchHit hit;
  hit.image_id = snapshot.image_id;
  hit.distance = scored.distance;
  hit.product_id = snapshot.product_id;
  hit.category = snapshot.category;
  hit.attributes = snapshot.attributes;
  hit.image_url = std::string(snapshot.image_url);
  hit.detail_url = std::string(snapshot.detail_url);
  return hit;
}

std::vector<SearchHit> IvfIndex::Search(FeatureView query, std::size_t k,
                                        std::size_t nprobe_override,
                                        CategoryId category_filter) const {
  assert(query.size() == dim());
  const std::size_t nprobe =
      nprobe_override == 0 ? config_.nprobe : nprobe_override;
  // "each searcher node identifies the cluster that is most similar to the
  // queried image based on its features" (Section 2.4), generalized to the
  // standard multi-probe recall knob.
  const std::vector<std::uint32_t> probes =
      quantizer_->NearestCentroids(query, nprobe);
  TopK topk(k);
  for (const std::uint32_t list : probes) {
    ScanList(list, query, category_filter, topk);
  }

  std::vector<SearchHit> hits;
  for (const ScoredImage& scored : topk.TakeSorted()) {
    if (!config_.filter_invalid_during_scan &&
        !valid_.Get(static_cast<LocalId>(scored.image_id))) {
      continue;  // late filtering (ablation baseline)
    }
    hits.push_back(MaterializeHit(scored));
  }
  return hits;
}

std::vector<SearchHit> IvfIndex::SearchExhaustive(FeatureView query,
                                                  std::size_t k) const {
  assert(query.size() == dim());
  TopK topk(k);
  const std::size_t n = features_.size();
  for (std::size_t local = 0; local < n; ++local) {
    if (!valid_.Get(local)) continue;
    topk.Offer(static_cast<ImageId>(local),
               L2SquaredDistance(query, features_.At(local)));
  }
  std::vector<SearchHit> hits;
  for (const ScoredImage& scored : topk.TakeSorted()) {
    hits.push_back(MaterializeHit(scored));
  }
  return hits;
}

void IvfIndex::ForEachEntry(
    const std::function<void(LocalId, const AttributeSnapshot&, FeatureView,
                             bool)>& visit) const {
  const std::size_t n = forward_.size();
  for (std::size_t local = 0; local < n; ++local) {
    const auto id = static_cast<LocalId>(local);
    visit(id, forward_.Get(id), features_.At(local), valid_.Get(local));
  }
}

IvfIndexStats IvfIndex::Stats() const {
  IvfIndexStats stats;
  stats.total_images = forward_.size();
  stats.valid_images = valid_.CountValid();
  stats.num_lists = lists_.size();
  for (const auto& list : lists_) {
    stats.largest_list = std::max(stats.largest_list, list->VisibleSize());
    stats.list_expansions += list->expansions();
  }
  stats.buffer_bytes = forward_.buffer_bytes_used();
  return stats;
}

}  // namespace jdvs

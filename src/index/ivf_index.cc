#include "index/ivf_index.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <utility>

#include "common/clock.h"
#include "common/hash.h"
#include "vecmath/kernels.h"

namespace jdvs {

namespace {
// Entries per contiguous scan run. Bounds the stack survivor buffers in
// ScanListPadded; 256 rows of a 960-d (padded) feature are ~1 MB, well past
// the L2 prefetch horizon, so longer runs buy nothing.
constexpr std::size_t kScanRunEntries = 256;

// Squared L2 norm with a float64 accumulator: appended once per row and
// reused by every query, so spend the extra precision here rather than in
// the hot kernel.
float SquaredNorm(const float* v, std::size_t n) noexcept {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    s += static_cast<double>(v[i]) * static_cast<double>(v[i]);
  }
  return static_cast<float>(s);
}
}  // namespace

IvfIndex::IvfIndex(std::shared_ptr<const CoarseQuantizer> quantizer,
                   const IvfIndexConfig& config, CopyExecutor copy_executor)
    : quantizer_(std::move(quantizer)),
      config_(config),
      padded_dim_(PaddedDim(quantizer_->dim())),
      pad_scratch_(AllocateAligned<float>(PaddedDim(quantizer_->dim()))) {
  lists_.reserve(quantizer_->num_clusters());
  blocks_.reserve(quantizer_->num_clusters());
  for (std::size_t c = 0; c < quantizer_->num_clusters(); ++c) {
    lists_.push_back(std::make_unique<InvertedList>(
        config_.initial_list_capacity, copy_executor));
    blocks_.push_back(std::make_unique<ScanBlock>(
        padded_dim_ * sizeof(float), kScanRunEntries));
  }
}

LocalId IvfIndex::AddImage(std::string_view image_url, ProductId product_id,
                           CategoryId category,
                           const ProductAttributes& attributes,
                           std::string_view detail_url, FeatureView feature) {
  assert(feature.size() == dim());
  // 1. "a new index element plus the product's attributes are created in the
  //    forward index. The image URL is then inserted to the buffer and the
  //    offset is recorded" (Figure 8).
  const ImageId image_id = Fnv1a64(image_url);
  const LocalId local = forward_.Append(image_id, product_id, category,
                                        attributes, image_url, detail_url);
  // 2. "the inverted index list that the image belongs to is calculated
  //    based on its high-dimensional features. The image ID is then added to
  //    the end of the inverted list and the last element position ... is
  //    updated in the auxiliary array."
  // Attribute filter index in lockstep with the forward index: same local
  // id, same tag, same numeric values.
  filters_.Append(category, attributes);
  const std::uint32_t list = quantizer_->NearestCentroid(feature);
  lists_[list]->Append(local);
  // 3. Feature row into the list's scan block (padding lanes stay zero: the
  //    scratch row was zero-allocated and only dim() floats are rewritten).
  std::memcpy(pad_scratch_.get(), feature.data(),
              dim() * sizeof(float));
  ScanBlock& block = *blocks_[list];
  block.Append(local, pad_scratch_.get(),
               SquaredNorm(pad_scratch_.get(), dim()));
  local_feature_.push_back(
      reinterpret_cast<const float*>(block.PayloadAt(block.size() - 1)));
  // 4. Valid and searchable from this moment (data freshness).
  valid_.Set(local, true);
  // Writer-side lookup state.
  url_to_local_.emplace(std::string(image_url), local);
  product_to_locals_[product_id].push_back(local);
  return local;
}

bool IvfIndex::HasImage(std::string_view image_url) const {
  return url_to_local_.find(std::string(image_url)) != url_to_local_.end();
}

bool IvfIndex::HasProduct(ProductId product_id) const {
  return product_to_locals_.find(product_id) != product_to_locals_.end();
}

std::size_t IvfIndex::UpdateProductAttributes(ProductId product_id,
                                              const ProductAttributes& attributes,
                                              std::string_view detail_url) {
  const auto it = product_to_locals_.find(product_id);
  if (it == product_to_locals_.end()) return 0;
  for (const LocalId local : it->second) {
    forward_.UpdateNumeric(local, attributes);
    filters_.UpdateNumeric(local, attributes);
    if (!detail_url.empty()) forward_.UpdateDetailUrl(local, detail_url);
  }
  return it->second.size();
}

std::size_t IvfIndex::SetProductValidity(ProductId product_id, bool valid) {
  const auto it = product_to_locals_.find(product_id);
  if (it == product_to_locals_.end()) return 0;
  for (const LocalId local : it->second) valid_.Set(local, valid);
  return it->second.size();
}

bool IvfIndex::SetImageValidity(std::string_view image_url, bool valid) {
  const auto it = url_to_local_.find(std::string(image_url));
  if (it == url_to_local_.end()) return false;
  valid_.Set(it->second, valid);
  return true;
}

bool IvfIndex::IsImageValid(std::string_view image_url) const {
  const auto it = url_to_local_.find(std::string(image_url));
  return it != url_to_local_.end() && valid_.Get(it->second);
}

void IvfIndex::FinishPendingExpansions() {
  for (const auto& list : lists_) list->MaybeFinishExpansion();
}

LocalId IvfIndex::AddImageMetadata(std::string_view image_url,
                                   ProductId product_id, CategoryId category,
                                   const ProductAttributes& attributes,
                                   std::string_view detail_url) {
  const ImageId image_id = Fnv1a64(image_url);
  const LocalId local = forward_.Append(image_id, product_id, category,
                                        attributes, image_url, detail_url);
  filters_.Append(category, attributes);
  // Feature pointer resolved later by AttachFrozenList.
  local_feature_.push_back(nullptr);
  valid_.Set(local, true);
  url_to_local_.emplace(std::string(image_url), local);
  product_to_locals_[product_id].push_back(local);
  return local;
}

void IvfIndex::AttachFrozenList(std::size_t list, const LocalId* ids,
                                const float* norms,
                                const std::uint8_t* payload,
                                std::size_t count) {
  assert(list < lists_.size());
  if (count == 0) return;
  auto owned_ids = AllocateAligned<LocalId>(count);
  auto owned_norms = AllocateAligned<float>(count);
  std::memcpy(owned_ids.get(), ids, count * sizeof(LocalId));
  std::memcpy(owned_norms.get(), norms, count * sizeof(float));
  for (std::size_t i = 0; i < count; ++i) {
    lists_[list]->Append(ids[i]);
    assert(ids[i] < local_feature_.size());
    local_feature_[ids[i]] =
        reinterpret_cast<const float*>(payload + i * padded_dim_ *
                                                     sizeof(float));
  }
  blocks_[list]->AttachFrozen(std::move(owned_ids), std::move(owned_norms),
                              payload, count);
}

void IvfIndex::ForEachScanRun(
    std::size_t list,
    const std::function<void(const LocalId*, const std::uint8_t*,
                             const float*, std::size_t)>& fn) const {
  blocks_[list]->ForEachRun(fn);
}

const float* IvfIndex::PadQuery(FeatureView query, float* stack_buf,
                                AlignedArray<float>& heap_buf) const {
  float* dst;
  if (padded_dim_ <= kMaxStackQueryFloats) {
    dst = stack_buf;
    std::memset(dst + dim(), 0, (padded_dim_ - dim()) * sizeof(float));
  } else {
    heap_buf = AllocateAligned<float>(padded_dim_);  // zero-initialized
    dst = heap_buf.get();
  }
  std::memcpy(dst, query.data(), dim() * sizeof(float));
  return dst;
}

void IvfIndex::ScanListPadded(std::size_t list, const float* padded_query,
                              float query_norm, CategoryId category_filter,
                              const MaterializedFilter* filter,
                              bool post_filter,
                              const FilterExpression* direct,
                              FilterScanStats* stats, TopK& topk) const {
  const DistanceKernels& kernels = Kernels();
  const std::size_t stride = padded_dim_;
  blocks_[list]->ForEachRun([&](const LocalId* ids,
                                const std::uint8_t* payload,
                                const float* norms, std::size_t count) {
    const float* rows = reinterpret_cast<const float*>(payload);
    // Fused distance + admission: the kernel computes every distance in the
    // dot form against the block's precomputed row norms and compacts the
    // candidates at or under the top-k threshold (<=, because a distance
    // tie can still displace a larger id inside the heap) in one sweep —
    // no per-run distance buffer, no second pass. Distances for invalid /
    // off-category entries are computed and then discarded — on this layout
    // a branchless linear sweep beats the seed's per-candidate skip, and
    // removed products are rare.
    //
    // Sub-blocks of kFilterBlock entries refresh the threshold between
    // kernel calls: on the first probed list the top-k starts empty
    // (threshold +inf, everything "survives"), and the refresh caps that
    // flood at one sub-block instead of the whole run. The threshold only
    // tightens while offering, so a sub-block's survivors are a superset;
    // each is re-checked against the freshest threshold before its Offer.
    //
    // Hybrid pushdown: with a materialized filter in pre mode, the
    // sub-block's alive mask is gathered first (ids are in list-append
    // order, so each bit is a bitmap probe) and a wholly-dead sub-block
    // skips the kernel — its 64 feature rows are never touched. The bitmap
    // already folds validity and the category tag, so survivor admission is
    // a single mask test in place of the two legacy checks.
    constexpr std::size_t kFilterBlock = 64;
    std::uint32_t keep[kFilterBlock];
    float keep_dist[kFilterBlock];
    for (std::size_t b = 0; b < count; b += kFilterBlock) {
      const std::size_t block = std::min(kFilterBlock, count - b);
      std::uint64_t alive = 0;
      if (filter != nullptr && !post_filter) {
        for (std::size_t s = 0; s < block; ++s) {
          alive |= std::uint64_t{filter->Test(ids[b + s])} << s;
        }
        if (alive == 0) {
          if (stats != nullptr) ++stats->blocks_skipped;
          continue;
        }
      }
      if (stats != nullptr) ++stats->blocks_scanned;
      float threshold = topk.Threshold();
      const std::size_t kept = kernels.l2sq_scan_filter(
          padded_query, query_norm, rows + b * stride, norms + b, stride,
          stride, block, threshold, keep, keep_dist);
      for (std::size_t s = 0; s < kept; ++s) {
        const float dist = keep_dist[s];
        if (dist > threshold) continue;
        const LocalId local = ids[b + keep[s]];
        if (filter != nullptr) {
          const bool pass = post_filter ? filter->Test(local)
                                        : ((alive >> keep[s]) & 1) != 0;
          if (!pass) continue;
        } else if (direct != nullptr) {
          // Broad-filter direct post mode: no bitmap was materialized, so
          // validity / category / predicates are all evaluated here — but
          // only on the <= k survivors the kernel admitted, which is the
          // whole point of skipping materialization.
          if (config_.filter_invalid_during_scan && !valid_.Get(local)) {
            continue;
          }
          if (category_filter != kNoCategoryFilter &&
              forward_.CategoryOf(local) != category_filter) {
            continue;
          }
          const AttributeSnapshot snapshot = forward_.Get(local);
          if (!direct->Matches(snapshot.category, snapshot.attributes)) {
            continue;
          }
        } else {
          if (config_.filter_invalid_during_scan && !valid_.Get(local)) {
            continue;
          }
          if (category_filter != kNoCategoryFilter &&
              forward_.CategoryOf(local) != category_filter) {
            continue;
          }
        }
        topk.Offer(local, dist);
        threshold = topk.Threshold();
      }
    }
  });
}

double IvfIndex::EstimateFilterSelectivity(const FilterExpression& filter,
                                           CategoryId category_filter) const {
  const std::size_t n = forward_.size();
  if (n == 0) return 0.0;
  // Deterministic strided sample of the forward index: ~256 probes bound the
  // cost regardless of index size, and appended entries arrive in workload
  // order, so strides see a representative attribute mix.
  constexpr std::size_t kSamples = 256;
  const std::size_t step = std::max<std::size_t>(1, n / kSamples);
  std::size_t seen = 0;
  std::size_t pass = 0;
  for (std::size_t local = 0; local < n; local += step) {
    ++seen;
    const auto id = static_cast<LocalId>(local);
    if (config_.filter_invalid_during_scan && !valid_.Get(id)) continue;
    const AttributeSnapshot snapshot = forward_.Get(id);
    if (category_filter != kNoCategoryFilter &&
        snapshot.category != category_filter) {
      continue;
    }
    if (!filter.Matches(snapshot.category, snapshot.attributes)) continue;
    ++pass;
  }
  return static_cast<double>(pass) / static_cast<double>(seen);
}

IvfIndex::FilterPlan IvfIndex::PlanFilteredScan(
    const FilterExpression& filter, CategoryId category_filter,
    std::size_t nprobe, FilterScanStats* stats,
    std::shared_ptr<const MaterializedFilter> reuse) const {
  FilterPlan plan;
  plan.nprobe = nprobe;
  if (stats != nullptr) {
    *stats = FilterScanStats{};
    stats->universe = forward_.size();
  }
  if (filter.empty()) return plan;
  if (reuse == nullptr) {
    // Broad filters never materialize (PR 8's open cut): a sampled estimate
    // at/above the post threshold routes the query into direct post mode,
    // where predicates run only against the <= k kernel survivors and the
    // per-query ~1ms/100k-entry bitmap cost disappears.
    const double estimate = EstimateFilterSelectivity(filter, category_filter);
    if (estimate >= config_.filter_post_threshold) {
      plan.use_filter = true;
      plan.post_mode = true;
      plan.direct = &filter;
      if (stats != nullptr) {
        stats->strategy = FilterScanStats::Strategy::kPost;
        stats->selectivity_bp =
            static_cast<std::uint32_t>(estimate * 10000.0);
        stats->estimated = true;
      }
      return plan;
    }
  }
  Micros materialize_micros = 0;
  if (reuse != nullptr) {
    // A batch sibling with an identical filter already paid for the bitmap.
    plan.bits = std::move(reuse);
    if (stats != nullptr) stats->reused_bitmap = true;
  } else {
    const Stopwatch watch(MonotonicClock::Instance());
    // The ablation flag keeps validity out of the bitmap (deferred to
    // materialization), matching the unfiltered scan's contract.
    plan.bits = std::make_shared<const MaterializedFilter>(filters_.Materialize(
        filter, category_filter,
        config_.filter_invalid_during_scan ? &valid_ : nullptr));
    materialize_micros = watch.ElapsedMicros();
  }
  plan.use_filter = true;
  const double selectivity = plan.bits->selectivity();
  if (plan.bits->matches == 0) {
    plan.empty_result = true;
  } else if (selectivity >= config_.filter_post_threshold) {
    plan.post_mode = true;
  } else if (selectivity < config_.filter_widen_threshold &&
             config_.filter_widen_factor > 1) {
    plan.nprobe = std::min(nprobe * config_.filter_widen_factor,
                           quantizer_->num_clusters());
  }
  if (stats != nullptr) {
    stats->strategy = plan.post_mode ? FilterScanStats::Strategy::kPost
                                     : FilterScanStats::Strategy::kPre;
    stats->selectivity_bp = static_cast<std::uint32_t>(selectivity * 10000.0);
    stats->matches = plan.bits->matches;
    stats->universe = plan.bits->universe;
    stats->widened_nprobe = plan.nprobe != nprobe;
    stats->materialize_micros = materialize_micros;
  }
  return plan;
}

SearchHit IvfIndex::MaterializeHit(const ScoredImage& scored) const {
  const auto local = static_cast<LocalId>(scored.image_id);
  const AttributeSnapshot snapshot = forward_.Get(local);
  SearchHit hit;
  hit.image_id = snapshot.image_id;
  hit.distance = scored.distance;
  hit.product_id = snapshot.product_id;
  hit.category = snapshot.category;
  hit.attributes = snapshot.attributes;
  hit.image_url = std::string(snapshot.image_url);
  hit.detail_url = std::string(snapshot.detail_url);
  return hit;
}

std::vector<SearchHit> IvfIndex::MaterializeRanked(
    std::span<const ScoredImage> ranked) const {
  std::vector<SearchHit> hits;
  hits.reserve(ranked.size());
  for (const ScoredImage& scored : ranked) {
    if (!config_.filter_invalid_during_scan &&
        !valid_.Get(static_cast<LocalId>(scored.image_id))) {
      continue;  // late filtering (ablation baseline)
    }
    hits.push_back(MaterializeHit(scored));
  }
  return hits;
}

std::vector<ScoredImage> IvfIndex::ScanProbes(
    FeatureView query, std::size_t k, std::span<const std::uint32_t> probes,
    CategoryId category_filter, const MaterializedFilter* filter,
    bool post_filter, FilterScanStats* stats,
    const FilterExpression* direct_filter) const {
  assert(query.size() == dim());
  alignas(kCacheLineBytes) float stack_query[kMaxStackQueryFloats];
  AlignedArray<float> heap_query;
  const float* padded = PadQuery(query, stack_query, heap_query);
  const float query_norm = SquaredNorm(padded, dim());
  TopK topk(k);
  for (const std::uint32_t list : probes) {
    ScanListPadded(list, padded, query_norm, category_filter, filter,
                   post_filter, direct_filter, stats, topk);
  }
  return topk.TakeSorted();
}

std::vector<SearchHit> IvfIndex::Search(FeatureView query, std::size_t k,
                                        std::size_t nprobe_override,
                                        CategoryId category_filter) const {
  return Search(query, k, nprobe_override, category_filter, nullptr, nullptr,
                /*io_budget_micros=*/0, /*tier_stats=*/nullptr);
}

std::vector<SearchHit> IvfIndex::Search(FeatureView query, std::size_t k,
                                        std::size_t nprobe_override,
                                        CategoryId category_filter,
                                        const FilterExpression& filter,
                                        FilterScanStats* stats) const {
  return Search(query, k, nprobe_override, category_filter, &filter, stats,
                /*io_budget_micros=*/0, /*tier_stats=*/nullptr);
}

std::vector<SearchHit> IvfIndex::Search(FeatureView query, std::size_t k,
                                        std::size_t nprobe_override,
                                        CategoryId category_filter,
                                        const FilterExpression* filter,
                                        FilterScanStats* stats,
                                        Micros io_budget_micros,
                                        TierScanStats* tier_stats) const {
  assert(query.size() == dim());
  const std::size_t nprobe =
      nprobe_override == 0 ? config_.nprobe : nprobe_override;
  FilterPlan plan;
  if (filter != nullptr && !filter->empty()) {
    plan = PlanFilteredScan(*filter, category_filter, nprobe, stats);
    // Zero matches: empty-but-successful, no scan work at all.
    if (plan.empty_result) return {};
  } else {
    plan.nprobe = nprobe;
    if (stats != nullptr) {
      *stats = FilterScanStats{};
      stats->universe = forward_.size();
    }
  }
  // "each searcher node identifies the cluster that is most similar to the
  // queried image based on its features" (Section 2.4), generalized to the
  // standard multi-probe recall knob.
  std::vector<std::uint32_t> probes =
      quantizer_->NearestCentroids(query, plan.nprobe);
  // Tiered mode: pin the probed lists before the fused kernel touches any
  // row. The guard keeps them evict-exempt for the whole scan; probes past
  // the io budget were dropped (reduced effective nprobe).
  TieredListStore::PinGuard guard;
  if (tiered_store_ != nullptr) {
    guard = tiered_store_->Pin(probes, io_budget_micros, tier_stats);
    // Not a prefix: quarantined lists are skipped mid-set, over-budget
    // tails are dropped. Scan exactly what the guard holds pinned.
    probes = guard.pinned();
  }
  // With a bitmap, category/validity are folded in already; direct mode and
  // the unfiltered scan carry the category filter through.
  std::vector<ScoredImage> ranked =
      ScanProbes(query, k, probes,
                 plan.bits != nullptr ? kNoCategoryFilter : category_filter,
                 plan.bits.get(), plan.post_mode, stats, plan.direct);
  return MaterializeRanked(ranked);
}

std::vector<std::vector<SearchHit>> IvfIndex::SearchBatch(
    std::span<const IvfBatchQuery> queries) const {
  const std::size_t n = queries.size();
  std::vector<std::vector<SearchHit>> out(n);
  if (n == 0) return out;
  // Coarse assignment: one centroid-major sweep for the whole batch.
  std::vector<FeatureView> views;
  std::vector<std::size_t> nprobes;
  views.reserve(n);
  nprobes.reserve(n);
  // Per-query filter plans first: extreme selectivity can widen a query's
  // nprobe, which must happen before the shared coarse pass. Queries whose
  // FilterExpression hashes (and compares) equal share one materialized
  // bitmap — the batch pays the materialization cost once, not per query.
  struct SharedBitmap {
    std::uint64_t hash = 0;
    CategoryId category = kNoCategoryFilter;
    const FilterExpression* expr = nullptr;
    std::shared_ptr<const MaterializedFilter> bits;  // null if direct mode
  };
  std::vector<SharedBitmap> shared;
  std::vector<FilterPlan> plans(n);
  for (std::size_t i = 0; i < n; ++i) {
    const IvfBatchQuery& bq = queries[i];
    assert(bq.query.size() == dim());
    views.push_back(bq.query);
    const std::size_t nprobe = bq.nprobe == 0 ? config_.nprobe : bq.nprobe;
    if (bq.filter != nullptr && !bq.filter->empty()) {
      const std::uint64_t hash = bq.filter->Hash();
      SharedBitmap* match = nullptr;
      for (SharedBitmap& s : shared) {
        if (s.hash == hash && s.category == bq.category_filter &&
            *s.expr == *bq.filter) {
          match = &s;
          break;
        }
      }
      plans[i] = PlanFilteredScan(*bq.filter, bq.category_filter, nprobe,
                                  bq.filter_stats,
                                  match != nullptr ? match->bits : nullptr);
      if (match == nullptr) {
        shared.push_back(
            {hash, bq.category_filter, bq.filter, plans[i].bits});
      }
    } else {
      plans[i].nprobe = nprobe;
      if (bq.filter_stats != nullptr) {
        *bq.filter_stats = FilterScanStats{};
        bq.filter_stats->universe = forward_.size();
      }
    }
    nprobes.push_back(plans[i].nprobe);
  }
  std::vector<std::vector<std::uint32_t>> probes =
      quantizer_->NearestCentroidsBatch(views, nprobes);
  // Tiered mode: pin every query's probe set for the batch's whole scan;
  // per-query io budgets truncate their own probe lists.
  std::vector<TieredListStore::PinGuard> guards;
  if (tiered_store_ != nullptr) {
    guards.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      guards.push_back(tiered_store_->Pin(probes[i],
                                          queries[i].io_budget_micros,
                                          queries[i].tier_stats));
      probes[i] = guards.back().pinned();
    }
  }
  // All padded queries in one aligned block, with their norms.
  AlignedArray<float> padded = AllocateAligned<float>(n * padded_dim_);
  std::vector<float> query_norms(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::memcpy(padded.get() + i * padded_dim_, queries[i].query.data(),
                dim() * sizeof(float));
    query_norms[i] = SquaredNorm(padded.get() + i * padded_dim_, dim());
  }
  // Scan in list order so a list probed by several queries is swept
  // back-to-back while its rows are still in cache.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> plan;  // (list, query)
  for (std::size_t i = 0; i < n; ++i) {
    if (plans[i].empty_result) continue;  // zero-match filter: no scan work
    for (const std::uint32_t list : probes[i]) {
      plan.emplace_back(list, static_cast<std::uint32_t>(i));
    }
  }
  std::stable_sort(plan.begin(), plan.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<TopK> topks;
  topks.reserve(n);
  for (const IvfBatchQuery& bq : queries) topks.emplace_back(bq.k);
  for (const auto& [list, qi] : plan) {
    const FilterPlan& fp = plans[qi];
    ScanListPadded(list, padded.get() + qi * padded_dim_, query_norms[qi],
                   fp.bits != nullptr ? kNoCategoryFilter
                                      : queries[qi].category_filter,
                   fp.bits.get(), fp.post_mode, fp.direct,
                   queries[qi].filter_stats, topks[qi]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = MaterializeRanked(topks[i].TakeSorted());
  }
  return out;
}

std::vector<SearchHit> IvfIndex::SearchExhaustive(FeatureView query,
                                                  std::size_t k) const {
  assert(query.size() == dim());
  alignas(kCacheLineBytes) float stack_query[kMaxStackQueryFloats];
  AlignedArray<float> heap_query;
  const float* padded = PadQuery(query, stack_query, heap_query);
  const DistanceKernels& kernels = Kernels();
  const std::size_t stride = padded_dim_;
  TopK topk(k);
  // Every list's block, whole-run distances, validity always applied (ground
  // truth ignores the scan-filter ablation flag, as the seed did).
  for (const auto& block : blocks_) {
    block->ForEachRun([&](const LocalId* ids, const std::uint8_t* payload,
                          const float* /*norms*/, std::size_t count) {
      const float* rows = reinterpret_cast<const float*>(payload);
      float dists[kScanRunEntries];
      kernels.l2sq_scan(padded, rows, stride, stride, count, dists);
      for (std::size_t j = 0; j < count; ++j) {
        if (!valid_.Get(ids[j])) continue;
        topk.Offer(static_cast<ImageId>(ids[j]), dists[j]);
      }
    });
  }
  std::vector<SearchHit> hits;
  for (const ScoredImage& scored : topk.TakeSorted()) {
    hits.push_back(MaterializeHit(scored));
  }
  return hits;
}

std::vector<SearchHit> IvfIndex::SearchExhaustive(
    FeatureView query, std::size_t k, const FilterExpression& filter) const {
  assert(query.size() == dim());
  alignas(kCacheLineBytes) float stack_query[kMaxStackQueryFloats];
  AlignedArray<float> heap_query;
  const float* padded = PadQuery(query, stack_query, heap_query);
  const DistanceKernels& kernels = Kernels();
  const std::size_t stride = padded_dim_;
  TopK topk(k);
  // Predicates evaluated per candidate straight off the forward index — the
  // slow, obviously-correct oracle the bitmap path is checked against.
  for (const auto& block : blocks_) {
    block->ForEachRun([&](const LocalId* ids, const std::uint8_t* payload,
                          const float* /*norms*/, std::size_t count) {
      const float* rows = reinterpret_cast<const float*>(payload);
      float dists[kScanRunEntries];
      kernels.l2sq_scan(padded, rows, stride, stride, count, dists);
      for (std::size_t j = 0; j < count; ++j) {
        if (!valid_.Get(ids[j])) continue;
        const AttributeSnapshot snapshot = forward_.Get(ids[j]);
        if (!filter.Matches(snapshot.category, snapshot.attributes)) continue;
        topk.Offer(static_cast<ImageId>(ids[j]), dists[j]);
      }
    });
  }
  std::vector<SearchHit> hits;
  for (const ScoredImage& scored : topk.TakeSorted()) {
    hits.push_back(MaterializeHit(scored));
  }
  return hits;
}

void IvfIndex::ForEachEntry(
    const std::function<void(LocalId, const AttributeSnapshot&, FeatureView,
                             bool)>& visit) const {
  const std::size_t n = forward_.size();
  for (std::size_t local = 0; local < n; ++local) {
    const auto id = static_cast<LocalId>(local);
    visit(id, forward_.Get(id), FeatureView(local_feature_[local], dim()),
          valid_.Get(local));
  }
}

bool IvfIndex::feature_storage_aligned() const noexcept {
  for (const auto& block : blocks_) {
    if (!block->storage_aligned()) return false;
  }
  return true;
}

IvfIndexStats IvfIndex::Stats() const {
  IvfIndexStats stats;
  stats.total_images = forward_.size();
  stats.valid_images = valid_.CountValid();
  stats.num_lists = lists_.size();
  for (const auto& list : lists_) {
    stats.largest_list = std::max(stats.largest_list, list->VisibleSize());
    stats.list_expansions += list->expansions();
  }
  stats.buffer_bytes = forward_.buffer_bytes_used();
  return stats;
}

}  // namespace jdvs

// Per-partition IVF index: the unit a searcher owns.
//
// Combines everything Sections 2.2-2.4 describe for one partition of the
// image set: the coarse quantizer (k-means classes), the N inverted lists,
// the forward index with product attributes, the per-image feature store
// (needed to compute Euclidean distances during the inverted-list scan), and
// the validity bitmap.
//
// Scan layout: each inverted list owns a ScanBlock holding its members'
// features contiguously in append order — 64-byte-aligned rows of
// padded_dim() floats with zeroed padding — so the hot loop is a linear,
// prefetch-friendly sweep through the runtime-dispatched batch kernels
// (vecmath/kernels.h) instead of a per-candidate pointer chase. The
// InvertedList remains the id-ordering authority (expansion protocol,
// stats); the ScanBlock is the distance-computation layout.
//
// Concurrency contract (matching the paper's architecture): exactly one
// writer — the searcher applies every index mutation, both real-time updates
// and re-additions — and any number of concurrent reader threads executing
// Search(). All reader-visible state is published via atomics; Search never
// takes a lock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cluster/quantizer.h"
#include "common/clock.h"
#include "filter/attribute_filter_index.h"
#include "index/bitmap.h"
#include "index/forward_index.h"
#include "index/image_index.h"
#include "index/inverted_index.h"
#include "index/scan_block.h"
#include "mq/message.h"
#include "tier/tiered_store.h"
#include "vecmath/aligned.h"
#include "vecmath/topk.h"
#include "vecmath/vector.h"

namespace jdvs {

struct IvfIndexConfig {
  // Number of inverted lists probed per search (recall knob).
  std::size_t nprobe = 4;
  // Pre-allocated capacity of each inverted list.
  std::size_t initial_list_capacity = 64;
  // When false, the validity bitmap is ignored during the scan and invalid
  // images are filtered only when materializing results — the "no bitmap
  // optimization" ablation baseline.
  bool filter_invalid_during_scan = true;
  // ---- Hybrid filter pushdown strategy knobs ----
  // Selectivity (matching fraction) at or above which the scan post-filters
  // kernel survivors instead of evaluating the bitmap per sub-block: when
  // almost everything passes, per-survivor tests are cheaper than
  // per-candidate mask gathering.
  double filter_post_threshold = 0.5;
  // Selectivity below which nprobe is widened (probed lists multiplied by
  // filter_widen_factor, clamped to the list count) so k results can still
  // be found under an extreme filter.
  double filter_widen_threshold = 0.01;
  std::size_t filter_widen_factor = 4;
};

struct IvfIndexStats {
  std::size_t total_images = 0;    // forward index entries
  std::size_t valid_images = 0;    // bitmap population
  std::size_t num_lists = 0;
  std::size_t largest_list = 0;
  std::uint64_t list_expansions = 0;
  std::size_t buffer_bytes = 0;
};

// One query of an in-searcher micro-batch: the per-query knobs of Search()
// as a value, so concurrently admitted queries can share a coarse-probe pass
// and back-to-back list scans (see Searcher micro-batching).
struct IvfBatchQuery {
  FeatureView query;
  std::size_t k = 10;
  std::size_t nprobe = 0;  // 0 = configured default
  CategoryId category_filter = kNoCategoryFilter;
  // Optional hybrid filter: the pointee must outlive the SearchBatch call
  // (the searcher keeps it alive in the per-request QueryOptions). Null or
  // empty means unfiltered.
  const FilterExpression* filter = nullptr;
  // Optional per-query diagnostics sink (caller-owned).
  FilterScanStats* filter_stats = nullptr;
  // Tiered serving: fault-time budget for cold posting lists (0 = no limit;
  // probes past the budget are dropped — reduced effective nprobe) and an
  // optional residency accounting sink (caller-owned).
  Micros io_budget_micros = 0;
  TierScanStats* tier_stats = nullptr;
};

class IvfIndex final : public ImageIndex {
 public:
  IvfIndex(std::shared_ptr<const CoarseQuantizer> quantizer,
           const IvfIndexConfig& config = {},
           CopyExecutor copy_executor = InlineCopyExecutor());

  IvfIndex(const IvfIndex&) = delete;
  IvfIndex& operator=(const IvfIndex&) = delete;

  // ---- Writer operations (single writer) ----

  // Inserts a brand-new image (Figure 8): forward-index entry + attributes,
  // URL into the buffer, feature stored, image id appended to the inverted
  // list chosen by the quantizer, validity bit set. Returns the local id.
  LocalId AddImage(std::string_view image_url, ProductId product_id,
                   CategoryId category, const ProductAttributes& attributes,
                   std::string_view detail_url, FeatureView feature) override;

  // True if this image URL already has a forward-index entry (the re-listing
  // reuse path: no re-extraction, no new entry — just revalidation).
  bool HasImage(std::string_view image_url) const override;
  bool HasProduct(ProductId product_id) const override;

  // Updates numeric attributes (and optionally the detail URL) on every
  // image of the product in this partition (Figure 7). Returns the number of
  // entries touched.
  std::size_t UpdateProductAttributes(ProductId product_id,
                                      const ProductAttributes& attributes,
                                      std::string_view detail_url = {}) override;

  // Marks all of the product's images (in this partition) valid/invalid —
  // O(1) per image, never touches the inverted lists (Deletion, Figure 6).
  // Returns the number of bits flipped.
  std::size_t SetProductValidity(ProductId product_id, bool valid) override;

  // Marks one image valid/invalid; false if unknown.
  bool SetImageValidity(std::string_view image_url, bool valid) override;

  bool IsImageValid(std::string_view image_url) const;

  // Finishes any outstanding inverted-list expansions (writer housekeeping).
  void FinishPendingExpansions() override;

  // ---- Reader operations (any thread, lock-free) ----

  // Top-k most similar valid images to `query`. `nprobe_override` of 0 uses
  // the configured nprobe; `category_filter` optionally restricts the scan.
  using ImageIndex::Search;
  std::vector<SearchHit> Search(FeatureView query, std::size_t k,
                                std::size_t nprobe_override,
                                CategoryId category_filter) const override;

  // Hybrid filtered search with true predicate pushdown: the filter is
  // materialized once into a bitmap (category tags AND validity AND numeric
  // ranges), a selectivity-adaptive strategy is chosen (pre-filter
  // sub-blocks / post-filter survivors / widen nprobe — see the
  // IvfIndexConfig knobs) and the scan skips wholly-dead 64-entry
  // sub-blocks without touching their feature rows.
  std::vector<SearchHit> Search(FeatureView query, std::size_t k,
                                std::size_t nprobe_override,
                                CategoryId category_filter,
                                const FilterExpression& filter,
                                FilterScanStats* stats = nullptr) const override;

  // Full-fat search: every per-query knob in one call (the virtuals above
  // forward here). `filter` may be null or empty (unfiltered). In tiered
  // mode the probed lists are pinned in the residency cache before the scan;
  // `io_budget_micros` bounds the accumulated cold-list fault time (0 = no
  // limit; probes past the budget are dropped — a reduced effective nprobe)
  // and `tier_stats` receives the hit/fault accounting.
  std::vector<SearchHit> Search(FeatureView query, std::size_t k,
                                std::size_t nprobe_override,
                                CategoryId category_filter,
                                const FilterExpression* filter,
                                FilterScanStats* stats,
                                Micros io_budget_micros,
                                TierScanStats* tier_stats) const;

  // Answers a group of concurrently admitted queries in one pass:
  // coarse assignment is a single centroid-major sweep for the whole batch,
  // and inverted lists probed by several queries are scanned back-to-back so
  // their feature rows are read from cache instead of memory. Results are
  // identical to calling Search() per query. out[i] answers queries[i].
  std::vector<std::vector<SearchHit>> SearchBatch(
      std::span<const IvfBatchQuery> queries) const;

  // Scan stage alone: top-k (local id, distance) pairs over an
  // already-chosen probe set, without forward-index materialization. The
  // building block Search() composes (probe -> ScanProbes -> materialize);
  // exposed for callers that schedule coarse probing themselves and for
  // stage-level benchmarking.
  std::vector<ScoredImage> ScanProbes(
      FeatureView query, std::size_t k,
      std::span<const std::uint32_t> probes,
      CategoryId category_filter = kNoCategoryFilter,
      const MaterializedFilter* filter = nullptr, bool post_filter = false,
      FilterScanStats* stats = nullptr,
      const FilterExpression* direct_filter = nullptr) const;

  // Brute-force scan over all valid images (ground truth for recall tests).
  std::vector<SearchHit> SearchExhaustive(FeatureView query,
                                          std::size_t k) const;

  // Brute-force filtered ground truth: every valid image matching the
  // predicates, exact distances (subtract form), top-k. The oracle the
  // hybrid property tests compare pushdown against.
  std::vector<SearchHit> SearchExhaustive(FeatureView query, std::size_t k,
                                          const FilterExpression& filter) const;

  // Visits every entry in local-id order with its attributes, feature and
  // validity — the iteration snapshotting and replication tooling builds on.
  // Safe concurrently with searches; must not race the writer (the per-local
  // feature pointers are writer-owned state).
  void ForEachEntry(
      const std::function<void(LocalId, const AttributeSnapshot&, FeatureView,
                               bool valid)>& visit) const;

  IvfIndexStats Stats() const;
  std::size_t size() const override { return forward_.size(); }
  std::size_t dim() const override { return quantizer_->dim(); }
  // Per-row scan stride in floats (dim rounded up to whole cache lines).
  std::size_t padded_dim() const noexcept { return padded_dim_; }
  const CoarseQuantizer& quantizer() const { return *quantizer_; }
  const IvfIndexConfig& config() const { return config_; }
  // The attribute filter index this partition maintains alongside the
  // forward index (read-only: snapshot verification and tests).
  const AttributeFilterIndex& attribute_filters() const { return filters_; }

  // True when every published feature row sits on a 64-byte boundary — the
  // layout invariant snapshot load re-checks before SIMD scans run on the
  // restored storage.
  bool feature_storage_aligned() const noexcept;

  // ---- Tiered (mmap) restore hooks: writer-only, load-time ----

  // Appends an entry's metadata only — forward index, attribute filters,
  // validity, lookup maps — without touching the inverted lists or scan
  // storage; the feature row arrives later through AttachFrozenList. The
  // restore-path twin of AddImage for the v4 mapped loader.
  LocalId AddImageMetadata(std::string_view image_url, ProductId product_id,
                           CategoryId category,
                           const ProductAttributes& attributes,
                           std::string_view detail_url);

  // Installs list `list`'s frozen scan storage: `count` entries whose ids
  // and norms the index copies into heap arrays (the RAM-resident "head")
  // and whose payload rows stay at `payload` — 64-byte aligned, padded_dim()
  // stride, typically inside an mmap'd v4 snapshot, valid for the index's
  // lifetime. Replays the ids into the InvertedList and resolves the
  // per-local feature pointers. Must follow the AddImageMetadata calls that
  // defined the ids; each list may be attached once, before any AddImage.
  void AttachFrozenList(std::size_t list, const LocalId* ids,
                        const float* norms, const std::uint8_t* payload,
                        std::size_t count);

  // Attaches the residency cache; searches pin their probe sets through it
  // from then on. The store must own the mapping AttachFrozenList's payload
  // pointers refer into.
  void AttachTieredStore(std::shared_ptr<TieredListStore> store) {
    tiered_store_ = std::move(store);
  }
  const TieredListStore* tiered_store() const noexcept {
    return tiered_store_.get();
  }
  // Shared (mutable) handle for the background scrubber: ScrubList poisons
  // corrupt lists, which is a store-internal state change, not an index one.
  std::shared_ptr<TieredListStore> tiered_store_shared() const noexcept {
    return tiered_store_;
  }

  // Per-list scan storage introspection (tiered snapshot writer).
  std::size_t num_lists() const noexcept { return lists_.size(); }
  std::size_t ListEntryCount(std::size_t list) const {
    return blocks_[list]->size();
  }
  // Visits list `list`'s published entries as contiguous runs:
  // fn(ids, payload, norms, count). Safe concurrently with searches.
  void ForEachScanRun(
      std::size_t list,
      const std::function<void(const LocalId*, const std::uint8_t*,
                               const float*, std::size_t)>& fn) const;

 private:
  // One query's hybrid scan decision: the (possibly shared) materialized
  // bitmap — or, for broad filters, a direct predicate pointer and no bitmap
  // at all — plus the strategy the selectivity picked. Shared by Search and
  // SearchBatch.
  struct FilterPlan {
    std::shared_ptr<const MaterializedFilter> bits;  // null in direct mode
    // Direct post mode: predicates evaluated only on kernel survivors,
    // nothing materialized (the broad-filter fix from PR 8's open cut).
    const FilterExpression* direct = nullptr;
    bool use_filter = false;    // false = unfiltered legacy scan
    bool post_mode = false;     // survivors tested vs sub-block masks
    bool empty_result = false;  // zero matches: skip the scan entirely
    std::size_t nprobe = 0;     // effective probe count (possibly widened)
  };
  // `reuse` (optional) is an already-materialized bitmap for this exact
  // (filter, category_filter) — SearchBatch shares one across a batch's
  // queries with equal FilterExpression::Hash().
  FilterPlan PlanFilteredScan(
      const FilterExpression& filter, CategoryId category_filter,
      std::size_t nprobe, FilterScanStats* stats,
      std::shared_ptr<const MaterializedFilter> reuse = nullptr) const;
  // Sampled selectivity estimate (bounded forward-index probes, no bitmap):
  // the gate that sends broad filters into direct post mode.
  double EstimateFilterSelectivity(const FilterExpression& filter,
                                   CategoryId category_filter) const;

  SearchHit MaterializeHit(const ScoredImage& scored) const;
  // Materializes ranked scan results, applying the late validity filter when
  // the ablation flag disabled filtering during the scan.
  std::vector<SearchHit> MaterializeRanked(
      std::span<const ScoredImage> ranked) const;
  // Scans one list given a query padded to padded_dim() (zeroed tail,
  // 64-byte-aligned base) and its squared L2 norm (the fused scan kernel
  // computes distances in the dot-product form against per-row norms stored
  // in the scan block). A non-null `filter` replaces the per-survivor
  // validity/category checks (the bitmap already folds them): post_filter
  // tests kernel survivors only, otherwise sub-block masks are gathered
  // first and wholly-dead sub-blocks skip the kernel.
  // A non-null `direct` (mutually exclusive with `filter`) post-filters
  // kernel survivors straight against the predicates — no bitmap exists.
  void ScanListPadded(std::size_t list, const float* padded_query,
                      float query_norm, CategoryId category_filter,
                      const MaterializedFilter* filter, bool post_filter,
                      const FilterExpression* direct, FilterScanStats* stats,
                      TopK& topk) const;
  // Copies `query` into a padded row: `stack_buf` (kMaxStackQueryFloats
  // capacity) when it fits, else a fresh aligned heap block kept alive by
  // `heap_buf`.
  const float* PadQuery(FeatureView query, float* stack_buf,
                        AlignedArray<float>& heap_buf) const;

  static constexpr std::size_t kMaxStackQueryFloats = 1024;

  std::shared_ptr<const CoarseQuantizer> quantizer_;
  IvfIndexConfig config_;
  const std::size_t padded_dim_;
  ForwardIndex forward_;
  ValidityBitmap valid_;
  // Attribute filter index (per-tag bitmaps + numeric columns), appended in
  // lockstep with forward_ so LocalIds align.
  AttributeFilterIndex filters_;
  std::vector<std::unique_ptr<InvertedList>> lists_;
  // Per-list contiguous feature rows in list order (the scan layout).
  std::vector<std::unique_ptr<ScanBlock>> blocks_;
  // Writer-owned scratch row for padding incoming features.
  AlignedArray<float> pad_scratch_;
  // Writer-owned lookup state (never touched by Search).
  // local id -> its feature row inside a ScanBlock (pointers are stable:
  // chunks never move once allocated).
  std::vector<const float*> local_feature_;
  std::unordered_map<std::string, LocalId> url_to_local_;
  std::unordered_map<ProductId, std::vector<LocalId>> product_to_locals_;
  // Residency cache for disk-backed frozen lists (null = fully RAM-resident;
  // attached once at load, before the index takes traffic).
  std::shared_ptr<TieredListStore> tiered_store_;
};

}  // namespace jdvs

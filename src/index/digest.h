// Index content digests for replica verification.
//
// "Each partition can have multiple copies for availability" (Section 2.4);
// replicas consume the same update stream independently, so operations need
// a cheap way to confirm they converged to the same logical content. The
// digest folds every entry's identity, attributes and validity into a single
// order-insensitive 64-bit value: equal digests (plus equal counts) mean the
// replicas agree, regardless of internal layout differences such as
// inverted-list expansion states.
#pragma once

#include <cstdint>

#include "index/ivf_index.h"

namespace jdvs {

struct IndexDigest {
  std::uint64_t content_hash = 0;  // XOR-fold of per-entry hashes
  std::uint64_t entries = 0;
  std::uint64_t valid_entries = 0;

  friend bool operator==(const IndexDigest&, const IndexDigest&) = default;
};

// Digest over (image url, product, category, attributes, detail url, valid)
// for every entry. Features are excluded: they are a deterministic function
// of the image content, so entry identity pins them.
IndexDigest ComputeIndexDigest(const IvfIndex& index);

}  // namespace jdvs

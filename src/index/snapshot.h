// Index snapshot persistence.
//
// The production pipeline builds the full index weekly (Section 2.2) and
// ships it to searcher nodes; that requires a durable on-disk form. A
// snapshot captures one partition's complete index — quantizer centroids,
// every entry's attributes, feature and validity bit, and the index
// configuration — and reloads into an IvfIndex whose search results are
// bit-for-bit identical (inverted-list assignment is recomputed from the
// same centroids, so the structure reproduces deterministically).
//
// Format: a little-endian binary stream with a magic/version header. The
// format is an internal interchange format between builder and searchers of
// the same build, not a long-term stable archive. Version 2 stamps the
// header with the index's update high-water mark — the last applied
// ProductUpdateMessage::sequence — so a node restoring from the snapshot
// knows exactly which suffix of the message-log backlog to replay to catch
// up (the control plane's recovery protocol).
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "index/inverted_index.h"
#include "index/ivf_index.h"

namespace jdvs {

class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what) : std::runtime_error(what) {}
};

// Writes `index` to `path`, stamping `update_hwm` (the highest applied
// update sequence; 0 = none) into the header. Throws SnapshotError on I/O
// failure. Must not race the index's writer (searchers snapshot between
// update batches).
void SaveIndexSnapshot(const IvfIndex& index, const std::string& path,
                       std::uint64_t update_hwm = 0);

// Reads a snapshot back into a fresh index. Fills `update_hwm` (when
// non-null) with the header's high-water mark — 0 for version-1 snapshots,
// which predate the field. Throws SnapshotError on I/O failure, bad magic,
// unsupported version, or truncation.
std::unique_ptr<IvfIndex> LoadIndexSnapshot(
    const std::string& path, CopyExecutor copy_executor = InlineCopyExecutor(),
    std::uint64_t* update_hwm = nullptr);

}  // namespace jdvs

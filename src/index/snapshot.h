// Index snapshot persistence.
//
// The production pipeline builds the full index weekly (Section 2.2) and
// ships it to searcher nodes; that requires a durable on-disk form. A
// snapshot captures one partition's complete index — quantizer centroids,
// every entry's attributes, feature and validity bit, and the index
// configuration — and reloads into an IvfIndex whose search results are
// bit-for-bit identical (inverted-list assignment is recomputed from the
// same centroids, so the structure reproduces deterministically).
//
// Format: a little-endian binary stream with a magic/version header. The
// format is an internal interchange format between builder and searchers of
// the same build, not a long-term stable archive.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>

#include "index/inverted_index.h"
#include "index/ivf_index.h"

namespace jdvs {

class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what) : std::runtime_error(what) {}
};

// Writes `index` to `path`. Throws SnapshotError on I/O failure. Must not
// race the index's writer (searchers snapshot between update batches).
void SaveIndexSnapshot(const IvfIndex& index, const std::string& path);

// Reads a snapshot back into a fresh index. Throws SnapshotError on I/O
// failure, bad magic, version mismatch, or truncation.
std::unique_ptr<IvfIndex> LoadIndexSnapshot(
    const std::string& path, CopyExecutor copy_executor = InlineCopyExecutor());

}  // namespace jdvs

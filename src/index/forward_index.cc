#include "index/forward_index.h"

#include <cassert>
#include <cstring>

namespace jdvs {
namespace {

constexpr std::uint64_t PackRef(std::uint64_t offset, std::uint64_t length) {
  return (offset << 24) | (length & 0xFFFFFFULL);
}

constexpr std::uint64_t RefOffset(std::uint64_t ref) { return ref >> 24; }
constexpr std::uint64_t RefLength(std::uint64_t ref) {
  return ref & 0xFFFFFFULL;
}

}  // namespace

AppendOnlyBuffer::AppendOnlyBuffer(std::size_t chunk_bytes)
    : chunk_bytes_(chunk_bytes) {
  chunks_.reserve(1 << 16);
  chunks_.push_back(std::make_unique<char[]>(chunk_bytes_));
}

std::uint64_t AppendOnlyBuffer::Append(std::string_view data) {
  assert(data.size() < chunk_bytes_);
  if (data.empty()) return kEmptyRef;
  if (write_offset_ + data.size() > chunk_bytes_) {
    // Pad out the current chunk; strings never straddle chunks.
    bytes_used_.fetch_add(chunk_bytes_ - write_offset_,
                          std::memory_order_relaxed);
    chunks_.push_back(std::make_unique<char[]>(chunk_bytes_));
    ++write_chunk_;
    write_offset_ = 0;
  }
  char* dst = chunks_[write_chunk_].get() + write_offset_;
  std::memcpy(dst, data.data(), data.size());
  const std::uint64_t global_offset =
      static_cast<std::uint64_t>(write_chunk_) * chunk_bytes_ + write_offset_;
  write_offset_ += data.size();
  bytes_used_.fetch_add(data.size(), std::memory_order_relaxed);
  // +1 so that offset 0 is distinguishable from kEmptyRef.
  return PackRef(global_offset + 1, data.size());
}

std::string_view AppendOnlyBuffer::View(std::uint64_t ref) const noexcept {
  if (ref == kEmptyRef) return {};
  const std::uint64_t offset = RefOffset(ref) - 1;
  const std::uint64_t length = RefLength(ref);
  const char* base = chunks_[offset / chunk_bytes_].get();
  return std::string_view(base + offset % chunk_bytes_, length);
}

ForwardIndex::ForwardIndex(std::size_t chunk_entries)
    : chunk_entries_(chunk_entries) {
  chunks_.reserve(1 << 20);
}

ForwardEntry& ForwardIndex::EntryFor(std::size_t id) noexcept {
  return chunks_[id / chunk_entries_][id % chunk_entries_];
}

const ForwardEntry& ForwardIndex::EntryFor(std::size_t id) const noexcept {
  return chunks_[id / chunk_entries_][id % chunk_entries_];
}

LocalId ForwardIndex::Append(ImageId image_id, ProductId product_id,
                             CategoryId category,
                             const ProductAttributes& attributes,
                             std::string_view image_url,
                             std::string_view detail_url) {
  const std::size_t id = size_.load(std::memory_order_relaxed);
  if (id / chunk_entries_ == chunks_.size()) {
    chunks_.push_back(std::make_unique<ForwardEntry[]>(chunk_entries_));
  }
  ForwardEntry& entry = EntryFor(id);
  entry.image_id = image_id;
  entry.product_id = product_id;
  entry.category = category;
  entry.sales.store(attributes.sales, std::memory_order_relaxed);
  entry.price_cents.store(attributes.price_cents, std::memory_order_relaxed);
  entry.praise.store(attributes.praise, std::memory_order_relaxed);
  entry.image_url_ref.store(buffer_.Append(image_url),
                            std::memory_order_relaxed);
  entry.detail_url_ref.store(buffer_.Append(detail_url),
                             std::memory_order_relaxed);
  // Publish: all fields above become visible before the new size.
  size_.store(id + 1, std::memory_order_release);
  return static_cast<LocalId>(id);
}

void ForwardIndex::UpdateNumeric(LocalId id,
                                 const ProductAttributes& attributes) noexcept {
  assert(id < size());
  ForwardEntry& entry = EntryFor(id);
  entry.sales.store(attributes.sales, std::memory_order_release);
  entry.price_cents.store(attributes.price_cents, std::memory_order_release);
  entry.praise.store(attributes.praise, std::memory_order_release);
}

void ForwardIndex::UpdateDetailUrl(LocalId id, std::string_view detail_url) {
  assert(id < size());
  const std::uint64_t ref = buffer_.Append(detail_url);
  // Single-word swap publishes the new value atomically.
  EntryFor(id).detail_url_ref.store(ref, std::memory_order_release);
}

AttributeSnapshot ForwardIndex::Get(LocalId id) const noexcept {
  assert(id < size());
  const ForwardEntry& entry = EntryFor(id);
  AttributeSnapshot snapshot;
  snapshot.image_id = entry.image_id;
  snapshot.product_id = entry.product_id;
  snapshot.category = entry.category;
  snapshot.attributes.sales = entry.sales.load(std::memory_order_acquire);
  snapshot.attributes.price_cents =
      entry.price_cents.load(std::memory_order_acquire);
  snapshot.attributes.praise = entry.praise.load(std::memory_order_acquire);
  snapshot.image_url =
      buffer_.View(entry.image_url_ref.load(std::memory_order_acquire));
  snapshot.detail_url =
      buffer_.View(entry.detail_url_ref.load(std::memory_order_acquire));
  return snapshot;
}

std::string_view ForwardIndex::ImageUrl(LocalId id) const noexcept {
  assert(id < size());
  return buffer_.View(
      EntryFor(id).image_url_ref.load(std::memory_order_acquire));
}

ProductId ForwardIndex::ProductOf(LocalId id) const noexcept {
  assert(id < size());
  return EntryFor(id).product_id;
}

CategoryId ForwardIndex::CategoryOf(LocalId id) const noexcept {
  assert(id < size());
  return EntryFor(id).category;
}

}  // namespace jdvs

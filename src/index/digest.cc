#include "index/digest.h"

#include "common/hash.h"

namespace jdvs {

IndexDigest ComputeIndexDigest(const IvfIndex& index) {
  IndexDigest digest;
  index.ForEachEntry([&](LocalId, const AttributeSnapshot& snapshot,
                         FeatureView, bool valid) {
    std::uint64_t h = Fnv1a64(snapshot.image_url);
    h = HashCombine(h, Mix64(snapshot.product_id));
    h = HashCombine(h, Mix64(snapshot.category));
    h = HashCombine(h, Mix64(snapshot.attributes.sales));
    h = HashCombine(h, Mix64(snapshot.attributes.price_cents));
    h = HashCombine(h, Mix64(snapshot.attributes.praise));
    h = HashCombine(h, Fnv1a64(snapshot.detail_url));
    h = HashCombine(h, Mix64(valid ? 0x5A5AULL : 0xA5A5ULL));
    // XOR makes the fold independent of insertion order, so replicas that
    // interleaved partitions differently still match.
    digest.content_hash ^= Mix64(h);
    ++digest.entries;
    if (valid) ++digest.valid_entries;
  });
  return digest;
}

}  // namespace jdvs

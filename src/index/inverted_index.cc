#include "index/inverted_index.h"

#include <algorithm>
#include <cstring>
#include <thread>

namespace jdvs {

CopyExecutor InlineCopyExecutor() {
  return [](std::function<void()> task) { task(); };
}

CopyExecutor PoolCopyExecutor(ThreadPool& pool) {
  return [&pool](std::function<void()> task) { pool.Submit(std::move(task)); };
}

InvertedList::InvertedList(std::size_t initial_capacity,
                           CopyExecutor copy_executor)
    : copy_executor_(std::move(copy_executor)) {
  current_.store(
      std::make_shared<Buffer>(std::max<std::size_t>(initial_capacity, 1)),
      std::memory_order_release);
}

void InvertedList::StartExpansion(const std::shared_ptr<Buffer>& full) {
  // "a new inverted list of double size is created" (Figure 9).
  next_ = std::make_shared<Buffer>(full->capacity * 2);
  next_append_pos_ = full->capacity;  // new ids land after the copy region
  copy_done_ = std::make_shared<std::atomic<bool>>(false);
  ++expansions_;

  auto source = full;
  auto destination = next_;
  auto done = copy_done_;
  // "a background process finishes copying all the content of the current
  // list to the new list".
  copy_executor_([source, destination, done] {
    std::memcpy(destination->ids.get(), source->ids.get(),
                source->capacity * sizeof(LocalId));
    done->store(true, std::memory_order_release);
  });
}

void InvertedList::MaybeFinishExpansion() {
  if (!next_ || !copy_done_->load(std::memory_order_acquire)) return;
  // Publish everything appended during the window, then swap: "the newly
  // created inverted list becomes the current one and the old one is
  // deleted" (the shared_ptr refcount retires the old buffer once the last
  // in-flight reader drops it — safe reclamation without locks).
  next_->size.store(next_append_pos_, std::memory_order_release);
  current_.store(next_, std::memory_order_release);
  next_.reset();
  copy_done_.reset();
}

void InvertedList::WaitForCopy() const noexcept {
  while (!copy_done_->load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
}

void InvertedList::Append(LocalId id) {
  MaybeFinishExpansion();
  if (next_) {
    // Expansion window: append into the new buffer past the copy region.
    if (next_append_pos_ == next_->capacity) {
      // The doubled buffer also filled up before the copy landed (pathological
      // burst). Wait for the copy, finish the swap, and fall through to a
      // fresh expansion. This is the only blocking path and it requires an
      // insert burst of >= capacity during one O(n) copy.
      WaitForCopy();
      MaybeFinishExpansion();
      Append(id);
      return;
    }
    next_->ids[next_append_pos_++] = id;
    ++total_appended_;
    MaybeFinishExpansion();
    return;
  }

  const std::shared_ptr<Buffer> buffer =
      current_.load(std::memory_order_acquire);
  const std::size_t n = buffer->size.load(std::memory_order_relaxed);
  if (n < buffer->capacity) {
    buffer->ids[n] = id;
    // Release publishes the slot write before the new "last position".
    buffer->size.store(n + 1, std::memory_order_release);
    ++total_appended_;
    return;
  }
  StartExpansion(buffer);
  Append(id);
}

void InvertedList::Scan(const std::function<void(LocalId)>& visit) const {
  const std::shared_ptr<Buffer> buffer =
      current_.load(std::memory_order_acquire);
  const std::size_t n = buffer->size.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) visit(buffer->ids[i]);
}

std::vector<LocalId> InvertedList::SnapshotIds() const {
  std::vector<LocalId> out;
  out.reserve(VisibleSize());
  Scan([&out](LocalId id) { out.push_back(id); });
  return out;
}

std::size_t InvertedList::VisibleSize() const noexcept {
  const std::shared_ptr<Buffer> buffer =
      current_.load(std::memory_order_acquire);
  return buffer->size.load(std::memory_order_acquire);
}

std::size_t InvertedList::VisibleCapacity() const noexcept {
  return current_.load(std::memory_order_acquire)->capacity;
}

LockedInvertedList::LockedInvertedList(std::size_t initial_capacity) {
  ids_.reserve(std::max<std::size_t>(initial_capacity, 1));
}

void LockedInvertedList::Append(LocalId id) {
  std::lock_guard lock(mu_);
  ids_.push_back(id);
}

void LockedInvertedList::Scan(
    const std::function<void(LocalId)>& visit) const {
  std::lock_guard lock(mu_);
  for (const LocalId id : ids_) visit(id);
}

std::vector<LocalId> LockedInvertedList::SnapshotIds() const {
  std::lock_guard lock(mu_);
  return ids_;
}

std::size_t LockedInvertedList::VisibleSize() const noexcept {
  std::lock_guard lock(mu_);
  return ids_.size();
}

}  // namespace jdvs

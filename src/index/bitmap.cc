#include "index/bitmap.h"

#include <bit>

namespace jdvs {

ValidityBitmap::ValidityBitmap(std::size_t initial_bits) {
  chunks_.reserve(1 << 16);
  EnsureSize(initial_bits);
}

ValidityBitmap::Word* ValidityBitmap::WordFor(std::size_t index) noexcept {
  const std::size_t word = index / kBitsPerWord;
  return &chunks_[word / kWordsPerChunk][word % kWordsPerChunk];
}

const ValidityBitmap::Word* ValidityBitmap::WordFor(
    std::size_t index) const noexcept {
  const std::size_t word = index / kBitsPerWord;
  return &chunks_[word / kWordsPerChunk][word % kWordsPerChunk];
}

void ValidityBitmap::EnsureSize(std::size_t bits) {
  const std::size_t words_needed = (bits + kBitsPerWord - 1) / kBitsPerWord;
  std::size_t words = num_words_.load(std::memory_order_relaxed);
  if (words_needed <= words) return;
  while (chunks_.size() * kWordsPerChunk < words_needed) {
    // Word is an atomic with a trivial default constructor zero-initialized
    // by value initialization in make_unique.
    chunks_.push_back(std::make_unique<Word[]>(kWordsPerChunk));
  }
  words = chunks_.size() * kWordsPerChunk;
  num_words_.store(words, std::memory_order_release);
}

void ValidityBitmap::Set(std::size_t index, bool valid) {
  EnsureSize(index + 1);
  const std::uint64_t mask = 1ULL << (index % kBitsPerWord);
  if (valid) {
    WordFor(index)->fetch_or(mask, std::memory_order_release);
  } else {
    WordFor(index)->fetch_and(~mask, std::memory_order_release);
  }
}

bool ValidityBitmap::Get(std::size_t index) const noexcept {
  if (index >= size_bits()) return false;
  const std::uint64_t mask = 1ULL << (index % kBitsPerWord);
  return (WordFor(index)->load(std::memory_order_acquire) & mask) != 0;
}

std::uint64_t ValidityBitmap::WordAt(std::size_t w) const noexcept {
  if (w >= num_words_.load(std::memory_order_acquire)) return 0;
  return chunks_[w / kWordsPerChunk][w % kWordsPerChunk].load(
      std::memory_order_acquire);
}

std::size_t ValidityBitmap::CountValid() const noexcept {
  const std::size_t words = num_words_.load(std::memory_order_acquire);
  std::size_t valid = 0;
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t value =
        chunks_[w / kWordsPerChunk][w % kWordsPerChunk].load(
            std::memory_order_relaxed);
    valid += static_cast<std::size_t>(std::popcount(value));
  }
  return valid;
}

}  // namespace jdvs

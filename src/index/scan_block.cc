#include "index/scan_block.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace jdvs {
namespace {

// First chunk size; every subsequent chunk doubles. 64 doublings cover any
// addressable list, so the chunk vector can be reserved once up front and
// its elements never move under a concurrent reader.
constexpr std::size_t kFirstChunkEntries = 16;
constexpr std::size_t kMaxChunks = 64;

}  // namespace

ScanBlock::ScanBlock(std::size_t payload_stride_bytes,
                     std::size_t max_run_entries)
    : stride_(payload_stride_bytes),
      max_run_entries_(std::max<std::size_t>(max_run_entries, 1)) {
  assert(stride_ > 0);
  chunks_.reserve(kMaxChunks);
}

void ScanBlock::Append(LocalId id, const void* payload, float aux) {
  const std::size_t index = size_.load(std::memory_order_relaxed);
  if (chunks_.empty() ||
      index == chunks_.back().begin + chunks_.back().capacity) {
    assert(chunks_.size() < kMaxChunks);
    Chunk c;
    c.begin = index;
    // Delta chunks after a frozen prefix restart at the small size: the
    // prefix can be arbitrarily large and doubling from it would make the
    // first real-time append allocate a prefix-sized heap block.
    c.capacity = (chunks_.empty() || chunks_.back().frozen)
                     ? kFirstChunkEntries
                     : chunks_.back().capacity * 2;
    c.owned_payload = AllocateAligned<std::uint8_t>(c.capacity * stride_);
    c.owned_ids = AllocateAligned<LocalId>(c.capacity);
    c.owned_aux = AllocateAligned<float>(c.capacity);
    c.payload = c.owned_payload.get();
    c.ids = c.owned_ids.get();
    c.aux = c.owned_aux.get();
    allocated_bytes_.fetch_add(
        c.capacity * (stride_ + sizeof(LocalId) + sizeof(float)),
        std::memory_order_relaxed);
    chunks_.push_back(std::move(c));
    // Publish the new chunk's pointers before any entry in it can become
    // visible through size_.
    chunk_count_.store(chunks_.size(), std::memory_order_release);
  }
  Chunk& chunk = chunks_.back();
  assert(!chunk.frozen);
  const std::size_t offset = index - chunk.begin;
  std::memcpy(chunk.owned_payload.get() + offset * stride_, payload, stride_);
  chunk.owned_ids.get()[offset] = id;
  chunk.owned_aux.get()[offset] = aux;
  size_.store(index + 1, std::memory_order_release);
}

void ScanBlock::AttachFrozen(AlignedArray<LocalId> ids, AlignedArray<float> aux,
                             const std::uint8_t* payload, std::size_t count) {
  assert(size_.load(std::memory_order_relaxed) == 0 && chunks_.empty());
  assert(IsCacheAligned(payload));
  if (count == 0) return;
  Chunk c;
  c.begin = 0;
  c.capacity = count;
  c.owned_ids = std::move(ids);
  c.owned_aux = std::move(aux);
  c.payload = payload;  // external, disk-backed; not counted in memory_bytes
  c.ids = c.owned_ids.get();
  c.aux = c.owned_aux.get();
  c.frozen = true;
  allocated_bytes_.fetch_add(count * (sizeof(LocalId) + sizeof(float)),
                             std::memory_order_relaxed);
  chunks_.push_back(std::move(c));
  frozen_entries_ = count;
  chunk_count_.store(chunks_.size(), std::memory_order_release);
  size_.store(count, std::memory_order_release);
}

const ScanBlock::Chunk* ScanBlock::FindChunk(
    std::size_t index) const noexcept {
  // Backwards from the newest chunk: random access clusters on recently
  // appended entries (e.g. PayloadAt(size()-1) right after Append), and the
  // chunk count is O(log size) anyway.
  const std::size_t chunks = chunk_count_.load(std::memory_order_acquire);
  for (std::size_t c = chunks; c-- > 0;) {
    if (chunks_[c].begin <= index) return &chunks_[c];
  }
  return nullptr;
}

const std::uint8_t* ScanBlock::PayloadAt(std::size_t index) const noexcept {
  assert(index < size());
  const Chunk* chunk = FindChunk(index);
  return chunk->payload + (index - chunk->begin) * stride_;
}

std::uint8_t* ScanBlock::MutablePayloadAt(std::size_t index) noexcept {
  assert(index < size());
  const Chunk* chunk = FindChunk(index);
  assert(!chunk->frozen);
  return const_cast<std::uint8_t*>(chunk->payload) +
         (index - chunk->begin) * stride_;
}

LocalId ScanBlock::IdAt(std::size_t index) const noexcept {
  assert(index < size());
  const Chunk* chunk = FindChunk(index);
  return chunk->ids[index - chunk->begin];
}

bool ScanBlock::storage_aligned() const noexcept {
  const std::size_t chunks = chunk_count_.load(std::memory_order_acquire);
  for (std::size_t c = 0; c < chunks; ++c) {
    if (!IsCacheAligned(chunks_[c].payload)) return false;
  }
  return true;
}

}  // namespace jdvs

#include "index/full_index_builder.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"

namespace jdvs {

FullIndexBuilder::FullIndexBuilder(ProductCatalog& catalog,
                                   ImageStore& image_store, FeatureDb& features,
                                   const FullIndexBuilderConfig& config,
                                   const Clock& clock)
    : catalog_(catalog),
      image_store_(image_store),
      features_(features),
      config_(config),
      clock_(&clock) {}

std::uint64_t FullIndexBuilder::ApplyMessageLog(MessageLog& log) {
  std::uint64_t applied = 0;
  log.Replay([&](const ProductUpdateMessage& message) {
    ++applied;
    switch (message.type) {
      case UpdateType::kAttributeUpdate:
        catalog_.UpdateAttributes(message.product_id, message.attributes,
                                  message.detail_url);
        break;
      case UpdateType::kAddProduct: {
        if (catalog_.Contains(message.product_id)) {
          catalog_.SetOnMarket(message.product_id, true);
          catalog_.UpdateAttributes(message.product_id, message.attributes,
                                    message.detail_url);
        } else {
          ProductRecord record;
          record.id = message.product_id;
          record.category = message.category_id;
          record.attributes = message.attributes;
          record.detail_url = message.detail_url;
          record.image_urls = message.image_urls;
          record.on_market = true;
          catalog_.Upsert(std::move(record));
        }
        for (const std::string& url : message.image_urls) {
          image_store_.Put(url, message.product_id, message.category_id);
        }
        break;
      }
      case UpdateType::kRemoveProduct:
        catalog_.SetOnMarket(message.product_id, false);
        break;
    }
  });
  log.Clear();
  return applied;
}

std::shared_ptr<const CoarseQuantizer> FullIndexBuilder::TrainQuantizer() {
  // Reservoir-sample up to training_sample features over valid products'
  // images; dedup/extraction goes through the feature DB like all paths.
  Rng rng(config_.seed);
  std::vector<FeatureVector> sample;
  sample.reserve(config_.training_sample);
  std::uint64_t seen = 0;
  catalog_.ForEach([&](const ProductRecord& record) {
    if (!record.on_market) return;
    for (const std::string& url : record.image_urls) {
      ++seen;
      const ImageContent content{url, record.id, record.category};
      if (sample.size() < config_.training_sample) {
        sample.push_back(features_.GetOrExtract(content, rng).first);
      } else {
        const std::uint64_t slot = rng.Below(seen);
        if (slot < sample.size()) {
          sample[slot] = features_.GetOrExtract(content, rng).first;
        }
      }
    }
  });
  if (sample.empty()) {
    // Empty catalog: a single zero centroid keeps downstream code simple.
    const std::size_t dim = features_.embedder().dim();
    return std::make_shared<CoarseQuantizer>(std::vector<float>(dim, 0.f),
                                             dim);
  }
  const KMeansResult kmeans = TrainKMeans(sample, config_.kmeans);
  JDVS_LOG(kInfo) << "trained quantizer: " << kmeans.num_clusters
                  << " clusters over " << sample.size() << " samples, inertia "
                  << kmeans.inertia << " after " << kmeans.iterations_run
                  << " iterations";
  return std::make_shared<CoarseQuantizer>(kmeans);
}

std::unique_ptr<IvfIndex> FullIndexBuilder::Build(
    std::shared_ptr<const CoarseQuantizer> quantizer,
    const PartitionFilter& filter, FullIndexReport* report,
    CopyExecutor copy_executor) {
  const Micros start = clock_->NowMicros();
  FullIndexReport local_report;
  auto index = std::make_unique<IvfIndex>(std::move(quantizer),
                                          config_.index_config,
                                          std::move(copy_executor));
  Rng rng(config_.seed ^ 0xF00DULL);
  catalog_.ForEach([&](const ProductRecord& record) {
    // "Only the valid images are used to create the full index."
    if (!record.on_market) {
      ++local_report.products_skipped_invalid;
      return;
    }
    bool any = false;
    for (const std::string& url : record.image_urls) {
      if (!filter(url)) {
        ++local_report.images_skipped_other_partition;
        continue;
      }
      // Full indexing pulls the image from the image store (Figure 2), then
      // checks the feature DB before extracting.
      const auto content = image_store_.Fetch(url);
      if (!content) continue;
      auto [feature, reused] = features_.GetOrExtract(*content, rng);
      if (reused) {
        ++local_report.features_reused;
      } else {
        ++local_report.features_extracted;
      }
      index->AddImage(url, record.id, record.category, record.attributes,
                      record.detail_url, feature);
      ++local_report.images_indexed;
      any = true;
    }
    if (any) ++local_report.products_indexed;
  });
  local_report.elapsed_micros = clock_->NowMicros() - start;
  if (report != nullptr) *report = local_report;
  return index;
}

}  // namespace jdvs

// Forward index.
//
// Section 2.2: "Each image is numbered sequentially and the product
// attributes of the image are stored in a forward index, which is a custom
// array ... The numeric attributes such as product ID, sales, price are
// stored in the fixed-length fields in the array. The variable length
// attributes like URL are stored in an additional buffer, and the offset of
// the attribute in the buffer is recorded in the array."
//
// Real-time attribute updates (Section 2.3, Figure 7) must be atomic with
// respect to concurrent searches: numeric fields are single-word atomics and
// variable-length values are appended to the buffer first, then published by
// swapping one packed (offset,length) word — readers see either the old or
// the new value, never a torn one, and no lock is ever taken.
//
// Concurrency contract: one writer (the partition's searcher applies all
// index mutations), any number of readers.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "mq/message.h"
#include "vecmath/vector.h"

namespace jdvs {

// Append-only byte buffer for variable-length attributes. Strings are stored
// contiguously inside fixed-size chunks; a packed 64-bit reference
// (offset:40, length:24) addresses them. Old values are never reclaimed —
// exactly the paper's scheme ("the value is added at the end of the buffer
// and the offset value is updated"), traded for lock-freedom; the weekly
// full index rebuild (Section 2.2) is what compacts the buffer in production
// and here.
class AppendOnlyBuffer {
 public:
  explicit AppendOnlyBuffer(std::size_t chunk_bytes = 1 << 20);

  AppendOnlyBuffer(const AppendOnlyBuffer&) = delete;
  AppendOnlyBuffer& operator=(const AppendOnlyBuffer&) = delete;

  // Appends `data` (single writer); returns the packed reference.
  // Precondition: data.size() < chunk_bytes.
  std::uint64_t Append(std::string_view data);

  // Resolves a packed reference. Safe concurrently with Append for any
  // reference previously obtained from it.
  std::string_view View(std::uint64_t ref) const noexcept;

  // Total bytes consumed (including chunk-tail padding waste).
  std::size_t bytes_used() const noexcept {
    return bytes_used_.load(std::memory_order_relaxed);
  }

  static constexpr std::uint64_t kEmptyRef = 0;

 private:
  static constexpr int kLengthBits = 24;

  const std::size_t chunk_bytes_;
  std::vector<std::unique_ptr<char[]>> chunks_;
  std::size_t write_chunk_ = 0;   // writer-only
  std::size_t write_offset_ = 0;  // writer-only, intra-chunk
  std::atomic<std::size_t> bytes_used_{0};
};

// One element of the paper's "custom array": fixed-length numeric fields as
// atomics plus packed buffer references for the variable-length attributes.
// Entries are neither copyable nor movable; ForwardIndex stores them in
// stable chunks.
struct ForwardEntry {
  ImageId image_id = 0;        // immutable after append
  ProductId product_id = 0;    // immutable after append
  CategoryId category = 0;     // immutable after append
  std::atomic<std::uint64_t> sales{0};
  std::atomic<std::uint64_t> price_cents{0};
  std::atomic<std::uint64_t> praise{0};
  std::atomic<std::uint64_t> image_url_ref{AppendOnlyBuffer::kEmptyRef};
  std::atomic<std::uint64_t> detail_url_ref{AppendOnlyBuffer::kEmptyRef};
};

// Read-side snapshot of one entry (string_views point into the buffer and
// remain valid for the index's lifetime).
struct AttributeSnapshot {
  ImageId image_id = 0;
  ProductId product_id = 0;
  CategoryId category = 0;
  ProductAttributes attributes;
  std::string_view image_url;
  std::string_view detail_url;
};

class ForwardIndex {
 public:
  explicit ForwardIndex(std::size_t chunk_entries = 4096);

  ForwardIndex(const ForwardIndex&) = delete;
  ForwardIndex& operator=(const ForwardIndex&) = delete;

  // Appends a new image entry (single writer); returns its sequential id.
  LocalId Append(ImageId image_id, ProductId product_id, CategoryId category,
                 const ProductAttributes& attributes,
                 std::string_view image_url, std::string_view detail_url);

  // Atomic numeric-attribute update (Figure 7); wait-free, never blocks
  // concurrent searches.
  void UpdateNumeric(LocalId id, const ProductAttributes& attributes) noexcept;

  // Variable-length attribute update: append-then-swap-offset (Figure 7).
  void UpdateDetailUrl(LocalId id, std::string_view detail_url);

  // Consistent-enough read of one entry (each field individually atomic; the
  // paper makes the same per-field atomicity guarantee, not a multi-field
  // transaction).
  AttributeSnapshot Get(LocalId id) const noexcept;

  std::string_view ImageUrl(LocalId id) const noexcept;
  ProductId ProductOf(LocalId id) const noexcept;
  CategoryId CategoryOf(LocalId id) const noexcept;

  std::size_t size() const noexcept {
    return size_.load(std::memory_order_acquire);
  }

  std::size_t buffer_bytes_used() const noexcept {
    return buffer_.bytes_used();
  }

 private:
  ForwardEntry& EntryFor(std::size_t id) noexcept;
  const ForwardEntry& EntryFor(std::size_t id) const noexcept;

  const std::size_t chunk_entries_;
  std::vector<std::unique_ptr<ForwardEntry[]>> chunks_;
  std::atomic<std::size_t> size_{0};
  AppendOnlyBuffer buffer_;
};

}  // namespace jdvs

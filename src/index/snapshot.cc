#include "index/snapshot.h"

#include <cstdint>
#include <fstream>
#include <map>
#include <vector>

#include "tier/tiered_snapshot.h"

namespace jdvs {
namespace {

constexpr std::uint64_t kMagic = 0x4A44565349445831ULL;  // "JDVSIDX1"
// Version 2 adds the update high-water mark right after the version field;
// version-1 snapshots still load (hwm = 0, "replay everything").
// Version 3 adds the hybrid-filter strategy knobs to the config block and a
// trailing verification section (per-category populations + numeric-column
// checksum) that load cross-checks against the rebuilt attribute filter
// index; v1/v2 snapshots still load with default knobs and no verification.
// Version 4 is the tiered (mmap-able) layout defined in tier/tiered_snapshot;
// this writer still emits v3 and the loader dispatches v4 files there.
constexpr std::uint32_t kVersion = 3;

void WriteRaw(std::ostream& os, const void* data, std::size_t bytes) {
  os.write(static_cast<const char*>(data),
           static_cast<std::streamsize>(bytes));
  if (!os) throw SnapshotError("snapshot write failed");
}

template <typename T>
void WritePod(std::ostream& os, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  WriteRaw(os, &value, sizeof(T));
}

void WriteString(std::ostream& os, std::string_view s) {
  WritePod<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
  WriteRaw(os, s.data(), s.size());
}

void ReadRaw(std::istream& is, void* data, std::size_t bytes) {
  is.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (is.gcount() != static_cast<std::streamsize>(bytes)) {
    throw SnapshotError("snapshot truncated");
  }
}

template <typename T>
T ReadPod(std::istream& is) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value;
  ReadRaw(is, &value, sizeof(T));
  return value;
}

std::string ReadString(std::istream& is) {
  const auto size = ReadPod<std::uint32_t>(is);
  if (size > (1u << 24)) throw SnapshotError("snapshot string too large");
  std::string s(size, '\0');
  ReadRaw(is, s.data(), size);
  return s;
}

}  // namespace

void SaveIndexSnapshot(const IvfIndex& index, const std::string& path,
                       std::uint64_t update_hwm) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw SnapshotError("cannot open for writing: " + path);

  WritePod(os, kMagic);
  WritePod(os, kVersion);
  WritePod<std::uint64_t>(os, update_hwm);

  // Index configuration.
  const IvfIndexConfig& config = index.config();
  WritePod<std::uint64_t>(os, config.nprobe);
  WritePod<std::uint64_t>(os, config.initial_list_capacity);
  WritePod<std::uint8_t>(os, config.filter_invalid_during_scan ? 1 : 0);
  WritePod<double>(os, config.filter_post_threshold);
  WritePod<double>(os, config.filter_widen_threshold);
  WritePod<std::uint64_t>(os, config.filter_widen_factor);

  // Quantizer.
  const CoarseQuantizer& quantizer = index.quantizer();
  WritePod<std::uint64_t>(os, quantizer.dim());
  WritePod<std::uint64_t>(os, quantizer.num_clusters());
  for (std::size_t c = 0; c < quantizer.num_clusters(); ++c) {
    const FeatureView centroid = quantizer.Centroid(c);
    WriteRaw(os, centroid.data(), centroid.size() * sizeof(float));
  }

  // Entries.
  WritePod<std::uint64_t>(os, index.size());
  std::map<CategoryId, std::uint64_t> category_populations;
  index.ForEachEntry([&](LocalId, const AttributeSnapshot& snapshot,
                         FeatureView feature, bool valid) {
    WriteString(os, snapshot.image_url);
    WritePod<std::uint64_t>(os, snapshot.product_id);
    WritePod<std::uint32_t>(os, snapshot.category);
    WritePod<std::uint64_t>(os, snapshot.attributes.sales);
    WritePod<std::uint64_t>(os, snapshot.attributes.price_cents);
    WritePod<std::uint64_t>(os, snapshot.attributes.praise);
    WriteString(os, snapshot.detail_url);
    WritePod<std::uint8_t>(os, valid ? 1 : 0);
    WriteRaw(os, feature.data(), feature.size() * sizeof(float));
    // Category bitmaps count every appended image, valid or not (validity
    // is a separate fold at materialization time).
    ++category_populations[snapshot.category];
  });

  // Verification section: the saved filter-index state the loader must be
  // able to reproduce by replaying the entries above through AddImage.
  WritePod<std::uint64_t>(os, category_populations.size());
  for (const auto& [category, population] : category_populations) {
    WritePod<std::uint32_t>(os, category);
    WritePod<std::uint64_t>(os, population);
  }
  WritePod<std::uint64_t>(os, index.attribute_filters().ColumnChecksum());
  os.flush();
  if (!os) throw SnapshotError("snapshot flush failed");
}

std::unique_ptr<IvfIndex> LoadIndexSnapshot(const std::string& path,
                                            CopyExecutor copy_executor,
                                            std::uint64_t* update_hwm) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw SnapshotError("cannot open for reading: " + path);

  if (ReadPod<std::uint64_t>(is) != kMagic) {
    throw SnapshotError("bad snapshot magic: " + path);
  }
  const auto version = ReadPod<std::uint32_t>(is);
  if (version == 4 || version == 5) {
    // Tiered layout (v5 = v4 + per-list payload checksums): a different body
    // entirely. The heap loader replays it through AddImage so callers of
    // the generic entry point keep getting a fully RAM-resident index; use
    // LoadTieredSnapshot for mapped serving.
    is.close();
    return internal::LoadTieredSnapshotHeap(path, std::move(copy_executor),
                                            update_hwm);
  }
  if (version < 1 || version > kVersion) {
    throw SnapshotError("unsupported snapshot version " +
                        std::to_string(version));
  }
  const std::uint64_t hwm = version >= 2 ? ReadPod<std::uint64_t>(is) : 0;
  if (update_hwm != nullptr) *update_hwm = hwm;

  IvfIndexConfig config;
  config.nprobe = static_cast<std::size_t>(ReadPod<std::uint64_t>(is));
  config.initial_list_capacity =
      static_cast<std::size_t>(ReadPod<std::uint64_t>(is));
  config.filter_invalid_during_scan = ReadPod<std::uint8_t>(is) != 0;
  if (version >= 3) {
    config.filter_post_threshold = ReadPod<double>(is);
    config.filter_widen_threshold = ReadPod<double>(is);
    config.filter_widen_factor =
        static_cast<std::size_t>(ReadPod<std::uint64_t>(is));
  }

  const auto dim = static_cast<std::size_t>(ReadPod<std::uint64_t>(is));
  const auto num_clusters = static_cast<std::size_t>(ReadPod<std::uint64_t>(is));
  if (dim == 0 || dim > (1u << 20) || num_clusters == 0 ||
      num_clusters > (1u << 24)) {
    throw SnapshotError("implausible snapshot dimensions");
  }
  std::vector<float> centroids(num_clusters * dim);
  ReadRaw(is, centroids.data(), centroids.size() * sizeof(float));
  auto quantizer =
      std::make_shared<const CoarseQuantizer>(std::move(centroids), dim);

  auto index = std::make_unique<IvfIndex>(std::move(quantizer), config,
                                          std::move(copy_executor));
  const auto count = ReadPod<std::uint64_t>(is);
  std::vector<float> feature(dim);
  std::vector<std::pair<std::string, bool>> validity;
  validity.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string image_url = ReadString(is);
    const auto product_id = ReadPod<std::uint64_t>(is);
    const auto category = ReadPod<std::uint32_t>(is);
    ProductAttributes attributes;
    attributes.sales = ReadPod<std::uint64_t>(is);
    attributes.price_cents = ReadPod<std::uint64_t>(is);
    attributes.praise = ReadPod<std::uint64_t>(is);
    const std::string detail_url = ReadString(is);
    const bool valid = ReadPod<std::uint8_t>(is) != 0;
    ReadRaw(is, feature.data(), feature.size() * sizeof(float));
    index->AddImage(image_url, product_id, category, attributes, detail_url,
                    FeatureView(feature.data(), feature.size()));
    if (!valid) validity.emplace_back(image_url, false);
  }
  // AddImage marks entries valid; reapply the invalid bits afterwards.
  for (const auto& [url, valid] : validity) {
    index->SetImageValidity(url, valid);
  }
  index->FinishPendingExpansions();
  if (version >= 3) {
    // The AddImage replay above rebuilt the attribute filter index; verify
    // it reproduces the saved state before the index takes hybrid traffic —
    // a mismatch means filtered queries would silently return wrong results.
    const AttributeFilterIndex& filters = index->attribute_filters();
    const auto num_categories = ReadPod<std::uint64_t>(is);
    if (num_categories > (1u << 24)) {
      throw SnapshotError("implausible category count in snapshot");
    }
    for (std::uint64_t i = 0; i < num_categories; ++i) {
      const auto category = ReadPod<std::uint32_t>(is);
      const auto population = ReadPod<std::uint64_t>(is);
      const ValidityBitmap* bitmap = filters.CategoryBitmap(category);
      const std::uint64_t rebuilt =
          bitmap == nullptr ? 0 : bitmap->CountValid();
      if (rebuilt != population) {
        throw SnapshotError("filter index verification failed: category " +
                            std::to_string(category) + " has " +
                            std::to_string(rebuilt) + " images, snapshot " +
                            "recorded " + std::to_string(population));
      }
    }
    const auto checksum = ReadPod<std::uint64_t>(is);
    if (filters.ColumnChecksum() != checksum) {
      throw SnapshotError(
          "filter index verification failed: numeric column checksum "
          "mismatch after rebuild");
    }
  }
  // Layout invariant before the restored index takes SIMD traffic: every
  // feature row the scan kernels will touch must sit on a cache-line
  // boundary. Cannot fail with the current allocator; a snapshot load is the
  // one place a foreign build/libc combination would surface it.
  if (!index->feature_storage_aligned()) {
    throw SnapshotError("restored feature storage is not 64-byte aligned");
  }
  return index;
}

}  // namespace jdvs

// Periodic full indexing (Section 2.2, Figures 2-3).
//
// "The full indexing is performed periodically to ensure the data
// completeness." The pipeline: replay the day's buffered message log onto
// the product catalog, pull new images from the image store, consult the
// feature DB before extracting (extract-once), and rebuild the forward and
// inverted indexes from scratch over *valid* images only. "Building the
// full index for all images is performed every week."
#pragma once

#include <cstdint>
#include <memory>

#include "cluster/kmeans.h"
#include "cluster/quantizer.h"
#include "common/clock.h"
#include "index/ivf_index.h"
#include "index/realtime_indexer.h"
#include "mq/message_log.h"
#include "store/catalog.h"
#include "store/feature_db.h"
#include "store/image_store.h"

namespace jdvs {

struct FullIndexReport {
  std::uint64_t messages_replayed = 0;
  std::uint64_t products_indexed = 0;
  std::uint64_t products_skipped_invalid = 0;
  std::uint64_t images_indexed = 0;
  std::uint64_t images_skipped_other_partition = 0;
  std::uint64_t features_reused = 0;
  std::uint64_t features_extracted = 0;
  Micros elapsed_micros = 0;
};

struct FullIndexBuilderConfig {
  IvfIndexConfig index_config;
  // Max number of feature vectors sampled for quantizer training.
  std::size_t training_sample = 4096;
  KMeansConfig kmeans;
  std::uint64_t seed = 123;
};

class FullIndexBuilder {
 public:
  FullIndexBuilder(ProductCatalog& catalog, ImageStore& image_store,
                   FeatureDb& features,
                   const FullIndexBuilderConfig& config = {},
                   const Clock& clock = MonotonicClock::Instance());

  // Step 1 (Figure 2): replays the day's message log onto the catalog and
  // image store, so the catalog reflects every buffered update; then clears
  // the log. Returns the number of messages applied.
  std::uint64_t ApplyMessageLog(MessageLog& log);

  // Step 2 (Figure 3, left): trains the k-means coarse quantizer on a sample
  // of (deduplicated) image features of valid products.
  std::shared_ptr<const CoarseQuantizer> TrainQuantizer();

  // Step 3 (Figure 3, right): builds a fresh per-partition index over all
  // valid images that pass `filter`. Fills `report` when non-null.
  std::unique_ptr<IvfIndex> Build(
      std::shared_ptr<const CoarseQuantizer> quantizer,
      const PartitionFilter& filter = AcceptAllPartitionFilter(),
      FullIndexReport* report = nullptr,
      CopyExecutor copy_executor = InlineCopyExecutor());

 private:
  ProductCatalog& catalog_;
  ImageStore& image_store_;
  FeatureDb& features_;
  FullIndexBuilderConfig config_;
  const Clock* clock_;
};

}  // namespace jdvs

// ImageIndex: the mutation/search contract of a per-partition image index.
//
// The real-time indexing pipeline (Section 2.3) is index-representation
// agnostic: it needs to add images, flip validity bits, rewrite attributes
// and answer top-k searches. Both the paper's flat-feature IVF index and the
// compressed IVF-PQ variant implement this interface, so the same
// RealTimeIndexer drives either.
//
// Concurrency contract shared by all implementations: one writer (all
// mutating calls), any number of concurrent Search() readers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "filter/filter_expression.h"
#include "mq/message.h"
#include "vecmath/vector.h"

namespace jdvs {

// Per-query diagnostics of a hybrid (filtered) search: which pushdown
// strategy the index chose, how selective the materialized filter was and
// how much scan work the bitmap saved. Caller-owned, filled by the query
// that receives it — no concurrency.
struct FilterScanStats {
  enum class Strategy : std::uint8_t {
    kNone = 0,      // no filter, plain scan
    kPre = 1,       // bitmap evaluated per sub-block before the kernel
    kPost = 2,      // kernel survivors tested against the bitmap
    kFallback = 3,  // generic over-fetch + post-filter (non-IVF indexes)
  };

  Strategy strategy = Strategy::kNone;
  // matches / universe in basis points (10000 = everything passes).
  std::uint32_t selectivity_bp = 10000;
  std::size_t matches = 0;
  std::size_t universe = 0;
  // 64-entry sub-blocks whose kernel call was skipped because the bitmap
  // proved them wholly dead vs sub-blocks actually scanned.
  std::uint64_t blocks_skipped = 0;
  std::uint64_t blocks_scanned = 0;
  // True when extreme selectivity widened nprobe to keep recall.
  bool widened_nprobe = false;
  // True when the selectivity came from a sampled estimate and no bitmap was
  // ever materialized (broad-filter direct post mode) — matches/blocks
  // fields are then not populated by a bitmap.
  bool estimated = false;
  // True when this query reused a bitmap materialized by an earlier query of
  // the same batch (identical FilterExpression::Hash()).
  bool reused_bitmap = false;
  // Cost of materializing the filter bitmap (the "searcher_filter" stage).
  std::int64_t materialize_micros = 0;
};

const char* FilterStrategyName(FilterScanStats::Strategy strategy) noexcept;

// One search result as shipped from searcher to broker to blender. Strings
// are owned copies: results cross (simulated) process boundaries.
struct SearchHit {
  ImageId image_id = 0;
  float distance = 0.f;
  ProductId product_id = 0;
  CategoryId category = 0;
  ProductAttributes attributes;
  std::string image_url;
  std::string detail_url;
};

class ImageIndex {
 public:
  virtual ~ImageIndex() = default;

  // ---- Writer operations ----
  virtual LocalId AddImage(std::string_view image_url, ProductId product_id,
                           CategoryId category,
                           const ProductAttributes& attributes,
                           std::string_view detail_url,
                           FeatureView feature) = 0;
  virtual bool HasImage(std::string_view image_url) const = 0;
  virtual bool HasProduct(ProductId product_id) const = 0;
  virtual std::size_t UpdateProductAttributes(
      ProductId product_id, const ProductAttributes& attributes,
      std::string_view detail_url) = 0;
  virtual std::size_t SetProductValidity(ProductId product_id, bool valid) = 0;
  virtual bool SetImageValidity(std::string_view image_url, bool valid) = 0;
  // Writer housekeeping; default no-op for indexes without deferred work.
  virtual void FinishPendingExpansions() {}

  // ---- Reader operations (lock-free) ----

  // Top-k most similar valid images; `category_filter` of kNoCategoryFilter
  // searches everything, otherwise only images of that category are
  // considered (the production use of the detector output, Section 2.4).
  virtual std::vector<SearchHit> Search(FeatureView query, std::size_t k,
                                        std::size_t nprobe_override,
                                        CategoryId category_filter) const = 0;

  std::vector<SearchHit> Search(FeatureView query, std::size_t k,
                                std::size_t nprobe_override = 0) const {
    return Search(query, k, nprobe_override, kNoCategoryFilter);
  }

  // Hybrid filtered search: top-k valid images matching every predicate of
  // `filter` (conjoined with `category_filter`). The base implementation
  // over-fetches through the unfiltered Search and post-filters the hits,
  // so every index representation (LSH, IMI, binary-hash) answers hybrid
  // queries correctly out of the box; IvfIndex and IvfPqIndex override it
  // with true bitmap pushdown into the scan. `stats`, when non-null,
  // receives the per-query strategy/selectivity diagnostics.
  virtual std::vector<SearchHit> Search(FeatureView query, std::size_t k,
                                        std::size_t nprobe_override,
                                        CategoryId category_filter,
                                        const FilterExpression& filter,
                                        FilterScanStats* stats = nullptr) const;

  virtual std::size_t size() const = 0;
  virtual std::size_t dim() const = 0;
};

}  // namespace jdvs

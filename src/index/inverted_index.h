// Inverted index lists with real-time, lock-free expansion.
//
// Section 2.2: "The inverted index is composed of N inverted lists. Each
// inverted list represents a class of images with similar high-dimensional
// features." Section 2.3 adds the real-time machinery:
//
//  * "there is an auxiliary array for storing the position of the last
//    element in each inverted list" (Figure 5) — here, each list buffer
//    carries an atomic `size` published with release ordering after the slot
//    write, which is exactly that last-element position; InvertedIndex
//    exposes the whole auxiliary array via LastPositions().
//
//  * Memory management (Figure 9): lists are pre-allocated; when one fills
//    up, a double-size buffer is created, *new ids are appended to the new
//    buffer* while "the current inverted list continues to serve the
//    requests", a background task copies the old contents across, and once
//    the copy finishes the new buffer atomically becomes current and the old
//    one is retired. Readers are lock-free throughout (atomic shared_ptr
//    load + atomic size); the writer never waits for the O(n) copy.
//
// Concurrency contract: one writer per list (the partition's searcher owns
// all mutations — matching the paper's one-searcher-per-partition design),
// any number of readers, plus the background copier coordinated through an
// atomic flag. The *writer* performs the final swap when it observes the
// copy finished, so writer state needs no synchronization with the copier
// beyond that flag.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/thread_pool.h"
#include "vecmath/vector.h"

namespace jdvs {

// Executes the background copy of Figure 9. Abstracted so tests can run the
// copy synchronously or hold it back to exercise the expansion window.
using CopyExecutor = std::function<void(std::function<void()>)>;

// Runs the copy inline (expansion completes on the next append).
CopyExecutor InlineCopyExecutor();

// Runs the copy on a thread pool (the production configuration).
CopyExecutor PoolCopyExecutor(ThreadPool& pool);

class InvertedList {
 public:
  // `initial_capacity` is the pre-allocated size (Section 2.3: "the memory
  // of an inverted list is pre-allocated").
  explicit InvertedList(std::size_t initial_capacity = 64,
                        CopyExecutor copy_executor = InlineCopyExecutor());

  InvertedList(const InvertedList&) = delete;
  InvertedList& operator=(const InvertedList&) = delete;

  // Appends an image id (single writer). Triggers expansion when full.
  void Append(LocalId id);

  // Invokes `visit` on every readable id. Lock-free; safe concurrently with
  // Append/expansion. During an expansion window this reads the old buffer —
  // ids appended since the expansion started become visible at the swap,
  // which is the (bounded) freshness lag the paper's protocol accepts.
  void Scan(const std::function<void(LocalId)>& visit) const;

  // Copies the readable ids out (test/bench convenience).
  std::vector<LocalId> SnapshotIds() const;

  // Number of ids visible to readers right now.
  std::size_t VisibleSize() const noexcept;

  // Number of ids appended in total (visible + pending behind a copy).
  std::size_t TotalAppended() const noexcept { return total_appended_; }

  // Capacity of the buffer readers currently see.
  std::size_t VisibleCapacity() const noexcept;

  // True while an expansion copy is outstanding.
  bool expanding() const noexcept { return next_ != nullptr; }

  std::uint64_t expansions() const noexcept { return expansions_; }

  // If an expansion finished copying, performs the swap now (the writer also
  // does this on its next Append; exposing it lets the searcher finish
  // expansions during idle periods). Single writer.
  void MaybeFinishExpansion();

 private:
  struct Buffer {
    explicit Buffer(std::size_t cap)
        : capacity(cap), ids(std::make_unique<LocalId[]>(cap)) {}
    const std::size_t capacity;
    // Readable prefix; the paper's "position of the last element".
    std::atomic<std::size_t> size{0};
    std::unique_ptr<LocalId[]> ids;
  };

  void StartExpansion(const std::shared_ptr<Buffer>& full);
  void WaitForCopy() const noexcept;

  std::atomic<std::shared_ptr<Buffer>> current_;
  // Writer-owned expansion state.
  std::shared_ptr<Buffer> next_;
  std::size_t next_append_pos_ = 0;
  std::shared_ptr<std::atomic<bool>> copy_done_;
  std::size_t total_appended_ = 0;  // writer-only
  std::uint64_t expansions_ = 0;    // writer-only
  CopyExecutor copy_executor_;
};

// Baseline for the ablation bench: the same API with a mutex around a plain
// std::vector (readers and writers both take the lock; growth reallocates in
// place while holding it).
class LockedInvertedList {
 public:
  explicit LockedInvertedList(std::size_t initial_capacity = 64);

  void Append(LocalId id);
  void Scan(const std::function<void(LocalId)>& visit) const;
  std::vector<LocalId> SnapshotIds() const;
  std::size_t VisibleSize() const noexcept;

 private:
  mutable std::mutex mu_;
  std::vector<LocalId> ids_;
};

}  // namespace jdvs

// Real-time incremental indexing (Section 2.3, Figures 4 and 6-8).
//
// Consumes product-update messages and applies them to a partition's
// IvfIndex "instantly":
//
//   Update   — numeric attributes rewritten atomically in the forward index;
//              a detail-URL change appends to the buffer and swaps the
//              offset (Figure 7).
//   Insertion — if the product/image is already known, only the validity bit
//              is set and its previously extracted features are reused
//              (the re-listing fast path Table 1 shows dominating: 513M of
//              521M daily additions). Otherwise the feature is fetched from
//              the feature DB — extracting on a miss — and a new index
//              element is created (Figure 8).
//   Deletion — validity bits flipped to 0; O(1) per image (Figure 6).
//
// One RealTimeIndexer instance runs per searcher and is that partition's
// single writer. A partition filter restricts which of a product's images
// this instance owns (partitioning by hash of the image URL, Section 2.4).
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>

#include "common/clock.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "index/image_index.h"
#include "mq/message.h"
#include "obs/registry.h"
#include "store/feature_db.h"

namespace jdvs {

// True for image URLs owned by this partition.
using PartitionFilter = std::function<bool(std::string_view)>;

PartitionFilter AcceptAllPartitionFilter();

struct RealTimeIndexerCounters {
  std::uint64_t attribute_updates = 0;
  std::uint64_t additions = 0;
  std::uint64_t deletions = 0;
  std::uint64_t images_added = 0;         // new forward-index entries
  std::uint64_t images_revalidated = 0;   // reuse path (re-listings)
  std::uint64_t images_invalidated = 0;
  std::uint64_t features_reused = 0;
  std::uint64_t features_extracted = 0;
  std::uint64_t entries_touched = 0;      // attribute-update fan-out

  std::uint64_t TotalMessages() const {
    return attribute_updates + additions + deletions;
  }

  void Add(const RealTimeIndexerCounters& other) {
    attribute_updates += other.attribute_updates;
    additions += other.additions;
    deletions += other.deletions;
    images_added += other.images_added;
    images_revalidated += other.images_revalidated;
    images_invalidated += other.images_invalidated;
    features_reused += other.features_reused;
    features_extracted += other.features_extracted;
    entries_touched += other.entries_touched;
  }
};

class RealTimeIndexer {
 public:
  // `index` may be any ImageIndex implementation (flat IVF or IVF-PQ).
  // `registry` (null = process-global default) receives the cumulative
  // update counter `jdvs_realtime_updates_total{searcher=<owner>}` and the
  // apply-latency stage histogram; because instruments are looked up by
  // name, a re-created indexer (full-index install) keeps counting into the
  // same series.
  RealTimeIndexer(ImageIndex& index, FeatureDb& features,
                  PartitionFilter filter = AcceptAllPartitionFilter(),
                  std::uint64_t seed = 99,
                  const Clock& clock = MonotonicClock::Instance(),
                  obs::Registry* registry = nullptr,
                  std::string_view owner = "default");

  RealTimeIndexer(const RealTimeIndexer&) = delete;
  RealTimeIndexer& operator=(const RealTimeIndexer&) = delete;

  // Applies one message. Must be called from the partition's single writer
  // thread. Records end-to-end latency (including any extraction cost) in
  // the latency histogram.
  void Apply(const ProductUpdateMessage& message);

  const RealTimeIndexerCounters& counters() const { return counters_; }
  const Histogram& latency_micros() const { return latency_; }
  void ResetStats();

 private:
  void ApplyAttributeUpdate(const ProductUpdateMessage& message);
  void ApplyAddition(const ProductUpdateMessage& message);
  void ApplyDeletion(const ProductUpdateMessage& message);

  ImageIndex& index_;
  FeatureDb& features_;
  PartitionFilter filter_;
  Rng rng_;
  const Clock* clock_;
  RealTimeIndexerCounters counters_;
  Histogram latency_;
  obs::Counter* updates_total_;   // registry mirror of TotalMessages()
  Histogram* apply_stage_;        // jdvs_stage_micros{stage="rt_apply"}
};

}  // namespace jdvs

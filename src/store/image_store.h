// Image store: the blob store product images are pulled from during full
// indexing ("the images of new added products ... are pulled from an image
// store", Section 2.2). The synthetic store serves ImageContent records and
// charges a configurable fetch latency so indexing cost models stay honest.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "embedding/extractor.h"

namespace jdvs {

struct ImageStoreConfig {
  // Simulated per-fetch latency; 0 disables sleeping.
  std::int64_t fetch_latency_micros = 0;
};

class ImageStore {
 public:
  explicit ImageStore(const ImageStoreConfig& config = {}) : config_(config) {}

  ImageStore(const ImageStore&) = delete;
  ImageStore& operator=(const ImageStore&) = delete;

  // Registers an image blob (done when a product is created/listed).
  void Put(const std::string& url, ProductId product_id,
           CategoryId category_id);

  // Fetches an image; nullopt for unknown URLs. Sleeps for the configured
  // fetch latency on every hit.
  std::optional<ImageContent> Fetch(std::string_view url) const;

  bool Contains(std::string_view url) const;
  std::size_t size() const;
  std::uint64_t fetch_count() const {
    return fetches_.load(std::memory_order_relaxed);
  }

 private:
  struct Blob {
    ProductId product_id;
    CategoryId category_id;
  };

  ImageStoreConfig config_;
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, Blob> blobs_;
  mutable std::atomic<std::uint64_t> fetches_{0};
};

}  // namespace jdvs

#include "store/image_store.h"

#include <chrono>
#include <mutex>
#include <thread>

namespace jdvs {

void ImageStore::Put(const std::string& url, ProductId product_id,
                     CategoryId category_id) {
  std::unique_lock lock(mu_);
  blobs_.insert_or_assign(url, Blob{product_id, category_id});
}

std::optional<ImageContent> ImageStore::Fetch(std::string_view url) const {
  fetches_.fetch_add(1, std::memory_order_relaxed);
  Blob blob;  // copy out under the lock, sleep outside it
  {
    std::shared_lock lock(mu_);
    const auto it = blobs_.find(std::string(url));
    if (it == blobs_.end()) return std::nullopt;
    blob = it->second;
  }
  if (config_.fetch_latency_micros > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(config_.fetch_latency_micros));
  }
  return ImageContent{std::string(url), blob.product_id, blob.category_id};
}

bool ImageStore::Contains(std::string_view url) const {
  std::shared_lock lock(mu_);
  return blobs_.find(std::string(url)) != blobs_.end();
}

std::size_t ImageStore::size() const {
  std::shared_lock lock(mu_);
  return blobs_.size();
}

}  // namespace jdvs

#include "store/feature_db.h"

#include <chrono>
#include <thread>

namespace jdvs {

std::pair<FeatureVector, bool> FeatureDb::GetOrExtract(
    const ImageContent& content, Rng& rng) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  if (lookup_micros_ > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(lookup_micros_));
  }
  if (auto cached = store_.Get(content.url)) {
    reused_.fetch_add(1, std::memory_order_relaxed);
    return {*std::move(cached), true};
  }
  // Miss: run the (simulated) CNN.
  const std::int64_t cost = cost_model_.SampleMicros(rng);
  if (cost > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(cost));
  }
  FeatureVector feature = embedder_->Extract(content);
  extracted_.fetch_add(1, std::memory_order_relaxed);
  store_.Put(content.url, feature);
  return {std::move(feature), false};
}

}  // namespace jdvs

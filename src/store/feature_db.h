// Feature database with the extract-once (feature reuse) policy.
//
// Section 2.1/2.2: "Our system always checks if an image's features have
// been previously extracted to avoid the repeated feature extraction" —
// features live in a distributed KV store keyed by image URL. GetOrExtract
// is that check-then-extract path; it also charges the extraction cost model
// on misses and counts reuse, which is what Table 1 reports (513M of 521M
// added images reused previously extracted features).
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>

#include "embedding/extractor.h"
#include "kvstore/kvstore.h"
#include "vecmath/vector.h"

namespace jdvs {

struct FeatureDbStats {
  std::uint64_t lookups = 0;
  std::uint64_t reused = 0;
  std::uint64_t extracted = 0;

  double ReuseRate() const {
    return lookups == 0 ? 0.0 : static_cast<double>(reused) / lookups;
  }
};

class FeatureDb {
 public:
  // `lookup_micros` models the round trip to the *distributed* KV store the
  // production system queries before extraction (a remote call even on a
  // hit); 0 disables it.
  FeatureDb(const SyntheticEmbedder& embedder, ExtractionCostModel cost_model,
            std::size_t num_shards = 64, std::int64_t lookup_micros = 0)
      : embedder_(&embedder),
        cost_model_(cost_model),
        lookup_micros_(lookup_micros),
        store_(num_shards) {}

  // Returns (feature, reused): the cached feature when present, otherwise
  // extracts (charging the cost model by sleeping), stores, and returns it.
  // Thread-safe.
  std::pair<FeatureVector, bool> GetOrExtract(const ImageContent& content,
                                              Rng& rng);

  // Stores a feature without charging extraction cost or stats (warm-state
  // setup: in production, every image ever listed was extracted once
  // already; generators use this to reproduce that state).
  void Preload(std::string_view url, FeatureVector feature) {
    store_.PutIfAbsent(url, std::move(feature));
  }

  // Pure lookup, no extraction.
  std::optional<FeatureVector> Get(std::string_view url) const {
    return store_.Get(url);
  }

  bool Contains(std::string_view url) const { return store_.Contains(url); }

  std::size_t size() const { return store_.size(); }

  FeatureDbStats stats() const {
    return FeatureDbStats{
        .lookups = lookups_.load(std::memory_order_relaxed),
        .reused = reused_.load(std::memory_order_relaxed),
        .extracted = extracted_.load(std::memory_order_relaxed),
    };
  }

  void ResetStats() {
    lookups_.store(0, std::memory_order_relaxed);
    reused_.store(0, std::memory_order_relaxed);
    extracted_.store(0, std::memory_order_relaxed);
  }

  // Adjusts the simulated KV round-trip cost (benches disable it for bulk
  // setup, enable it for the measured phase). Not thread-safe against
  // concurrent GetOrExtract; call between phases.
  void set_lookup_micros(std::int64_t micros) { lookup_micros_ = micros; }
  std::int64_t lookup_micros() const { return lookup_micros_; }

  const SyntheticEmbedder& embedder() const { return *embedder_; }

 private:
  const SyntheticEmbedder* embedder_;
  ExtractionCostModel cost_model_;
  std::int64_t lookup_micros_ = 0;
  ShardedKvStore<FeatureVector> store_;
  std::atomic<std::uint64_t> lookups_{0};
  std::atomic<std::uint64_t> reused_{0};
  std::atomic<std::uint64_t> extracted_{0};
};

}  // namespace jdvs

// Product catalog: the source-of-truth product database the indexing
// pipeline reads from. In production this is JD's product service; here it
// is an in-memory registry populated by the synthetic catalog generator and
// mutated by the update trace.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "mq/message.h"
#include "vecmath/vector.h"

namespace jdvs {

struct ProductRecord {
  ProductId id = 0;
  CategoryId category = 0;
  ProductAttributes attributes;
  std::string detail_url;
  std::vector<std::string> image_urls;
  bool on_market = true;
};

// Canonical image URL for image #k of a product.
std::string MakeImageUrl(ProductId product_id, std::uint32_t k);

class ProductCatalog {
 public:
  ProductCatalog() = default;
  ProductCatalog(const ProductCatalog&) = delete;
  ProductCatalog& operator=(const ProductCatalog&) = delete;

  // Inserts or replaces a product record.
  void Upsert(ProductRecord record);

  std::optional<ProductRecord> Get(ProductId id) const;
  bool Contains(ProductId id) const;

  // Updates only the numeric attributes / detail URL of an existing product;
  // returns false if absent.
  bool UpdateAttributes(ProductId id, const ProductAttributes& attributes,
                        const std::string& detail_url);

  // Flips market availability; returns false if absent.
  bool SetOnMarket(ProductId id, bool on_market);

  std::size_t size() const;

  std::vector<ProductId> AllIds() const;

  // Visits every record (snapshot of ids, then per-id lookup, so the lock is
  // never held across the callback).
  void ForEach(const std::function<void(const ProductRecord&)>& visit) const;

 private:
  mutable std::shared_mutex mu_;
  std::unordered_map<ProductId, ProductRecord> products_;
};

}  // namespace jdvs

#include "store/catalog.h"

#include <mutex>

namespace jdvs {

std::string MakeImageUrl(ProductId product_id, std::uint32_t k) {
  return "jd://img/" + std::to_string(product_id) + "/" + std::to_string(k);
}

void ProductCatalog::Upsert(ProductRecord record) {
  std::unique_lock lock(mu_);
  products_.insert_or_assign(record.id, std::move(record));
}

std::optional<ProductRecord> ProductCatalog::Get(ProductId id) const {
  std::shared_lock lock(mu_);
  const auto it = products_.find(id);
  if (it == products_.end()) return std::nullopt;
  return it->second;
}

bool ProductCatalog::Contains(ProductId id) const {
  std::shared_lock lock(mu_);
  return products_.find(id) != products_.end();
}

bool ProductCatalog::UpdateAttributes(ProductId id,
                                      const ProductAttributes& attributes,
                                      const std::string& detail_url) {
  std::unique_lock lock(mu_);
  const auto it = products_.find(id);
  if (it == products_.end()) return false;
  it->second.attributes = attributes;
  if (!detail_url.empty()) it->second.detail_url = detail_url;
  return true;
}

bool ProductCatalog::SetOnMarket(ProductId id, bool on_market) {
  std::unique_lock lock(mu_);
  const auto it = products_.find(id);
  if (it == products_.end()) return false;
  it->second.on_market = on_market;
  return true;
}

std::size_t ProductCatalog::size() const {
  std::shared_lock lock(mu_);
  return products_.size();
}

std::vector<ProductId> ProductCatalog::AllIds() const {
  std::shared_lock lock(mu_);
  std::vector<ProductId> ids;
  ids.reserve(products_.size());
  for (const auto& [id, record] : products_) ids.push_back(id);
  return ids;
}

void ProductCatalog::ForEach(
    const std::function<void(const ProductRecord&)>& visit) const {
  for (const ProductId id : AllIds()) {
    if (auto record = Get(id)) visit(*record);
  }
}

}  // namespace jdvs

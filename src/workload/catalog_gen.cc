#include "workload/catalog_gen.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace jdvs {
namespace {

// Bounded Pareto draw: power-law tail with exponent `alpha`, floored at
// `scale`. Smaller alpha = heavier tail. The 1e15 cap keeps downstream
// arithmetic (praise = sales * fraction) far from uint64 overflow.
std::uint64_t ParetoDraw(Rng& rng, double scale, double alpha) {
  // NextDouble() in [0, 1): 1-u in (0, 1] so the pow never divides by zero.
  const double u = rng.NextDouble();
  const double value = scale * std::pow(1.0 - u, -1.0 / alpha);
  return static_cast<std::uint64_t>(std::min(value, 1e15));
}

}  // namespace

ProductAttributes SampleProductAttributes(Rng& rng) {
  ProductAttributes attributes;
  // Zipf-like sales: alpha ~1.1 gives the classic e-commerce shape — the
  // top ~1% of products carry orders of magnitude more sales than the
  // median, so "sales >= high threshold" predicates are genuinely rare.
  attributes.sales = ParetoDraw(rng, /*scale=*/10.0, /*alpha=*/1.1) - 10;
  // Prices: lognormal body around ~80 CNY with a Pareto luxury tail.
  const double body =
      std::max(100.0, 8000.0 * std::exp(0.8 * rng.NextGaussian()));
  const double tail = rng.NextBool(0.02)
                          ? static_cast<double>(
                                ParetoDraw(rng, /*scale=*/50000.0, /*alpha=*/1.5))
                          : 0.0;
  attributes.price_cents = static_cast<std::uint64_t>(std::max(body, tail));
  // Praise correlates with sales (a fraction of buyers leave a review).
  attributes.praise = static_cast<std::uint64_t>(
      static_cast<double>(attributes.sales) * rng.NextDouble() * 0.8);
  return attributes;
}

CatalogGenStats GenerateCatalog(const CatalogGenConfig& config,
                                ProductCatalog& catalog, ImageStore& images,
                                FeatureDb* features) {
  Rng rng(config.seed);
  CatalogGenStats stats;
  for (std::size_t i = 0; i < config.num_products; ++i) {
    ProductRecord record;
    record.id = static_cast<ProductId>(i + 1);  // 0 reserved as "no product"
    record.category =
        static_cast<CategoryId>(rng.Below(config.num_categories));
    record.attributes = SampleProductAttributes(rng);
    record.detail_url = "jd://item/" + std::to_string(record.id);
    const std::uint32_t num_images = static_cast<std::uint32_t>(
        rng.Uniform(config.min_images_per_product,
                    std::max(config.min_images_per_product,
                             config.max_images_per_product)));
    record.image_urls.reserve(num_images);
    for (std::uint32_t k = 0; k < num_images; ++k) {
      record.image_urls.push_back(MakeImageUrl(record.id, k));
    }
    record.on_market = !rng.NextBool(config.initial_off_market_fraction);

    for (const std::string& url : record.image_urls) {
      images.Put(url, record.id, record.category);
      if (features != nullptr) {
        const ImageContent content{url, record.id, record.category};
        features->Preload(url, features->embedder().Extract(content));
        ++stats.features_prewarmed;
      }
      ++stats.images;
    }
    if (record.on_market) ++stats.on_market_products;
    ++stats.products;
    catalog.Upsert(std::move(record));
  }
  return stats;
}

}  // namespace jdvs

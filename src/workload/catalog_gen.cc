#include "workload/catalog_gen.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace jdvs {
namespace {

ProductAttributes SampleAttributes(Rng& rng) {
  ProductAttributes attributes;
  // Heavy-tailed sales: most products sell little, a few sell a lot.
  attributes.sales =
      static_cast<std::uint64_t>(rng.NextExponential(/*mean=*/150.0));
  // Lognormal prices around ~80 CNY.
  attributes.price_cents = static_cast<std::uint64_t>(
      std::max(100.0, 8000.0 * std::exp(0.8 * rng.NextGaussian())));
  // Praise correlates with sales.
  attributes.praise = static_cast<std::uint64_t>(
      static_cast<double>(attributes.sales) * rng.NextDouble() * 0.8);
  return attributes;
}

}  // namespace

CatalogGenStats GenerateCatalog(const CatalogGenConfig& config,
                                ProductCatalog& catalog, ImageStore& images,
                                FeatureDb* features) {
  Rng rng(config.seed);
  CatalogGenStats stats;
  for (std::size_t i = 0; i < config.num_products; ++i) {
    ProductRecord record;
    record.id = static_cast<ProductId>(i + 1);  // 0 reserved as "no product"
    record.category =
        static_cast<CategoryId>(rng.Below(config.num_categories));
    record.attributes = SampleAttributes(rng);
    record.detail_url = "jd://item/" + std::to_string(record.id);
    const std::uint32_t num_images = static_cast<std::uint32_t>(
        rng.Uniform(config.min_images_per_product,
                    std::max(config.min_images_per_product,
                             config.max_images_per_product)));
    record.image_urls.reserve(num_images);
    for (std::uint32_t k = 0; k < num_images; ++k) {
      record.image_urls.push_back(MakeImageUrl(record.id, k));
    }
    record.on_market = !rng.NextBool(config.initial_off_market_fraction);

    for (const std::string& url : record.image_urls) {
      images.Put(url, record.id, record.category);
      if (features != nullptr) {
        const ImageContent content{url, record.id, record.category};
        features->Preload(url, features->embedder().Extract(content));
        ++stats.features_prewarmed;
      }
      ++stats.images;
    }
    if (record.on_market) ++stats.on_market_products;
    ++stats.products;
    catalog.Upsert(std::move(record));
  }
  return stats;
}

}  // namespace jdvs

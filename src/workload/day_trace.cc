#include "workload/day_trace.h"

#include <algorithm>
#include <cmath>

namespace jdvs {
namespace {

ProductAttributes SampleAttributes(Rng& rng) {
  ProductAttributes attributes;
  attributes.sales =
      static_cast<std::uint64_t>(rng.NextExponential(/*mean=*/150.0));
  attributes.price_cents = static_cast<std::uint64_t>(
      std::max(100.0, 8000.0 * std::exp(0.8 * rng.NextGaussian())));
  attributes.praise = static_cast<std::uint64_t>(
      static_cast<double>(attributes.sales) * rng.NextDouble() * 0.8);
  return attributes;
}

constexpr std::int64_t kMicrosPerHour = 3'600'000'000LL;

}  // namespace

std::array<double, 24> DayTraceConfig::DefaultDiurnalWeights() {
  // Shaped after Figure 11(a): quiet overnight, ramp from 8:00, peak at
  // 11:00, afternoon plateau, evening tail-off.
  return {1.0, 0.6, 0.4, 0.3, 0.3, 0.5,   // 0-5
          1.0, 1.8, 3.0, 4.5, 5.5, 6.2,   // 6-11 (peak 11:00)
          5.4, 4.8, 4.6, 4.4, 4.2, 3.8,   // 12-17
          3.4, 3.2, 3.6, 3.4, 2.6, 1.6};  // 18-23
}

DayTraceGenerator::DayTraceGenerator(const DayTraceConfig& config,
                                     const ProductCatalog& catalog)
    : config_(config), rng_(config.seed) {
  ProductId max_id = 0;
  catalog.ForEach([&](const ProductRecord& record) {
    const std::size_t index = products_.size();
    products_.push_back(
        KnownProduct{record.id, record.category, record.image_urls});
    if (record.on_market) {
      on_market_.push_back(index);
    } else {
      off_market_.push_back(index);
    }
    max_id = std::max(max_id, record.id);
  });
  next_new_id_ = max_id + 1;
}

bool DayTraceGenerator::PopRandom(std::vector<std::size_t>& pool,
                                  std::size_t& out) {
  if (pool.empty()) return false;
  const std::size_t slot = rng_.Below(pool.size());
  out = pool[slot];
  pool[slot] = pool.back();
  pool.pop_back();
  return true;
}

const DayTraceGenerator::KnownProduct& DayTraceGenerator::RandomKnown() {
  if (!on_market_.empty()) {
    return products_[on_market_[rng_.Below(on_market_.size())]];
  }
  return products_[rng_.Below(products_.size())];
}

ProductUpdateMessage DayTraceGenerator::MakeAttributeUpdate(int hour) {
  const KnownProduct& product = RandomKnown();
  ProductUpdateMessage message;
  message.type = UpdateType::kAttributeUpdate;
  message.product_id = product.id;
  message.category_id = product.category;
  message.attributes = SampleAttributes(rng_);
  message.timestamp_micros = base_time_micros_ + hour * kMicrosPerHour;
  return message;
}

ProductUpdateMessage DayTraceGenerator::MakeAddition(int hour,
                                                     DayTraceStats& stats) {
  ProductUpdateMessage message;
  message.type = UpdateType::kAddProduct;
  message.timestamp_micros = base_time_micros_ + hour * kMicrosPerHour;
  message.attributes = SampleAttributes(rng_);

  std::size_t index;
  if (rng_.NextBool(config_.relist_fraction) && PopRandom(off_market_, index)) {
    // Re-listing: "products which were removed from the market and put back
    // again. These images' features were extracted before." (Section 3.1)
    const KnownProduct& product = products_[index];
    message.product_id = product.id;
    message.category_id = product.category;
    message.image_urls = product.image_urls;
    on_market_.push_back(index);
    ++stats.relist_additions;
    return message;
  }

  // Brand-new product: fresh images whose features must be extracted.
  KnownProduct product;
  product.id = next_new_id_++;
  product.category = static_cast<CategoryId>(
      rng_.Below(std::max<std::uint32_t>(config_.num_categories, 1)));
  const std::uint32_t num_images = static_cast<std::uint32_t>(rng_.Uniform(
      config_.min_images_per_new_product,
      std::max(config_.min_images_per_new_product,
               config_.max_images_per_new_product)));
  for (std::uint32_t k = 0; k < num_images; ++k) {
    product.image_urls.push_back(MakeImageUrl(product.id, k));
  }
  message.product_id = product.id;
  message.category_id = product.category;
  message.image_urls = product.image_urls;
  message.detail_url = "jd://item/" + std::to_string(product.id);
  on_market_.push_back(products_.size());
  products_.push_back(std::move(product));
  ++stats.new_product_additions;
  return message;
}

ProductUpdateMessage DayTraceGenerator::MakeDeletion(int hour) {
  std::size_t index;
  if (!PopRandom(on_market_, index)) {
    // Nothing left to remove (degenerate config); emit an update instead.
    return MakeAttributeUpdate(hour);
  }
  off_market_.push_back(index);
  const KnownProduct& product = products_[index];
  ProductUpdateMessage message;
  message.type = UpdateType::kRemoveProduct;
  message.product_id = product.id;
  message.category_id = product.category;
  message.timestamp_micros = base_time_micros_ + hour * kMicrosPerHour;
  return message;
}

DayTraceStats DayTraceGenerator::Generate(
    const std::function<void(const TraceEvent&)>& sink) {
  DayTraceStats stats;
  double weight_sum = 0.0;
  for (const double w : config_.hourly_weights) weight_sum += std::max(w, 0.0);
  if (weight_sum <= 0.0) weight_sum = 1.0;

  std::uint64_t emitted = 0;
  for (int hour = 0; hour < 24; ++hour) {
    std::uint64_t hour_count = static_cast<std::uint64_t>(
        static_cast<double>(config_.total_messages) *
        std::max(config_.hourly_weights[hour], 0.0) / weight_sum);
    if (hour == 23) {
      // Last hour absorbs rounding so totals match exactly.
      hour_count = config_.total_messages - emitted;
    }
    for (std::uint64_t i = 0; i < hour_count; ++i) {
      TraceEvent event;
      event.hour = hour;
      const double roll = rng_.NextDouble();
      if (roll < config_.update_fraction) {
        event.message = MakeAttributeUpdate(hour);
        ++stats.attribute_updates;
      } else if (roll < config_.update_fraction + config_.addition_fraction) {
        event.message = MakeAddition(hour, stats);
        ++stats.additions;
      } else {
        event.message = MakeDeletion(hour);
        if (event.message.type == UpdateType::kAttributeUpdate) {
          ++stats.attribute_updates;
        } else {
          ++stats.deletions;
        }
      }
      ++stats.per_hour[hour];
      ++stats.total;
      sink(event);
    }
    emitted += hour_count;
  }
  return stats;
}

}  // namespace jdvs

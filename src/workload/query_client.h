// Query workload clients: closed-loop and open-loop.
//
// "The client machine emulates a different number of concurrent users by
// sending image query requests to the visual search system" (Section 3.2).
// Run(): each thread issues a query, waits for the response, records the
// latency, and immediately issues the next — the standard closed-loop client
// that produces the QPS-vs-threads curves of Figures 12 and 13. A
// closed-loop client self-throttles (a slow system slows its users), so it
// can never push the system past saturation.
//
// RunOpenLoop(): queries arrive on a Poisson process at a configured offered
// rate regardless of completions — the arrival model that *can* overload the
// cluster, which is what the QoS admission/degradation machinery exists for.
// Overload benches sweep arrival_qps past saturation and read goodput.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/clock.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "qos/deadline.h"
#include "search/cluster_builder.h"

namespace jdvs {

struct QueryWorkloadConfig {
  std::size_t num_threads = 8;
  // Run either a fixed count per thread or a fixed duration (duration wins
  // when > 0).
  std::size_t queries_per_thread = 100;
  Micros duration_micros = 0;
  std::size_t k = 10;
  std::uint64_t seed = 5;
  // Query-popularity skew: 0 = uniform over products; > 0 = Zipf exponent
  // (production visual-search traffic concentrates on trending products —
  // ~1.0 is a typical web skew).
  double zipf_exponent = 0.0;
  // A shed query (BlenderOverloadedError) is re-sent to the next blender the
  // front-end balancer offers, up to this many extra attempts; only then is
  // it counted as an error. 0 = fail on the first shed.
  std::size_t max_retries = 2;
  // Backoff before each overload retry: attempt n waits an exponentially
  // grown multiple of this base, capped at retry_backoff_max_micros, with
  // jitter (uniform over the upper half) so synchronized clients don't
  // re-stampede an overloaded blender in lockstep. 0 = retry immediately
  // (the pre-QoS behavior).
  Micros retry_backoff_micros = 0;
  Micros retry_backoff_max_micros = 100'000;
  // Latency budget stamped on every query (QueryOptions::budget_micros);
  // default = no budget (blender default applies).
  Micros budget_micros = QueryOptions::kNoBudget;
  // Admission class of the issued queries.
  qos::Priority priority = qos::Priority::kInteractive;

  // ---- Open-loop mode (RunOpenLoop only) ----
  // Poisson arrival rate of offered queries; must be > 0 for RunOpenLoop.
  double arrival_qps = 0.0;
  // Latency SLO used for goodput accounting (0 = every completion counts).
  Micros slo_micros = 0;
  // How long to wait after the arrival window for in-flight queries.
  Micros drain_timeout_micros = 10'000'000;
};

struct QueryWorkloadResult {
  std::uint64_t queries = 0;
  std::uint64_t errors = 0;
  // Breakdown of `errors` by SLO-relevant cause (both are included in
  // `errors`): per-RPC timeouts surfaced as RpcTimeoutError — the fabric
  // lost the exchange and every failover/hedge lost too — versus typed
  // DeadlineExceededError, where the cluster answered "too late" on
  // purpose. An availability report that lumps them together can't tell a
  // lossy network from an overloaded one.
  std::uint64_t timeouts = 0;         // jdvs_client_timeouts_total
  std::uint64_t deadline_errors = 0;
  // Overload retries performed (each is one extra blender round trip).
  std::uint64_t retries = 0;
  // Total time threads spent sleeping in retry backoff.
  std::uint64_t retry_backoff_micros = 0;
  Micros elapsed_micros = 0;
  double qps = 0.0;
  std::shared_ptr<Histogram> latency_micros;  // per-query response times

  // Fraction of queries whose top-k contained an image of the queried
  // product (ground-truth hit rate; a retrieval sanity metric).
  double subject_hit_rate = 0.0;
};

// One open-loop run. Rates are over the arrival window; latencies cover
// completed queries only. Offered = completed + the error counts +
// timed_out_in_flight.
struct OpenLoopResult {
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  std::uint64_t overload_errors = 0;  // shed at blender admission
  std::uint64_t deadline_errors = 0;  // typed DeadlineExceededError
  std::uint64_t timeout_errors = 0;   // typed RpcTimeoutError (lost RPCs)
  std::uint64_t other_errors = 0;
  std::uint64_t degraded = 0;         // completed at degradation level >= 1
  std::uint64_t slo_ok = 0;           // completed within slo_micros
  std::uint64_t timed_out_in_flight = 0;  // never completed before drain cut
  Micros elapsed_micros = 0;          // arrival window + drain tail
  double offered_qps = 0.0;
  double completed_qps = 0.0;
  double goodput_qps = 0.0;           // slo_ok per second of arrival window
  std::shared_ptr<Histogram> latency_micros;
};

class QueryClient {
 public:
  QueryClient(VisualSearchCluster& cluster, const QueryWorkloadConfig& config);

  // Runs the closed-loop workload to completion (blocking) and returns
  // merged results.
  QueryWorkloadResult Run();

  // Runs the open-loop workload: a dispatcher thread fires queries on a
  // Poisson process at config.arrival_qps for config.duration_micros,
  // through the blenders' continuation-passing SearchAsync — dispatch never
  // waits on a completion, so offered load is independent of service rate
  // and can exceed cluster capacity. No retries: under overload a shed
  // query is lost demand, and re-offering it would inflate the arrival rate
  // past the configured one.
  OpenLoopResult RunOpenLoop();

 private:
  struct Target {
    ProductId product;
    CategoryId category;
  };

  // Index into targets_ for one query, honoring the configured skew.
  std::size_t PickTarget(Rng& rng) const;

  VisualSearchCluster& cluster_;
  QueryWorkloadConfig config_;
  std::vector<Target> targets_;
  // Cumulative Zipf weights over targets_ (empty when uniform).
  std::vector<double> zipf_cdf_;
};

}  // namespace jdvs

// Closed-loop query workload client.
//
// "The client machine emulates a different number of concurrent users by
// sending image query requests to the visual search system" (Section 3.2).
// Each thread issues a query, waits for the response, records the latency,
// and immediately issues the next — the standard closed-loop client that
// produces the QPS-vs-threads curves of Figures 12 and 13.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/clock.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "search/cluster_builder.h"

namespace jdvs {

struct QueryWorkloadConfig {
  std::size_t num_threads = 8;
  // Run either a fixed count per thread or a fixed duration (duration wins
  // when > 0).
  std::size_t queries_per_thread = 100;
  Micros duration_micros = 0;
  std::size_t k = 10;
  std::uint64_t seed = 5;
  // Query-popularity skew: 0 = uniform over products; > 0 = Zipf exponent
  // (production visual-search traffic concentrates on trending products —
  // ~1.0 is a typical web skew).
  double zipf_exponent = 0.0;
  // A shed query (BlenderOverloadedError) is re-sent to the next blender the
  // front-end balancer offers, up to this many extra attempts; only then is
  // it counted as an error. 0 = fail on the first shed.
  std::size_t max_retries = 2;
};

struct QueryWorkloadResult {
  std::uint64_t queries = 0;
  std::uint64_t errors = 0;
  // Overload retries performed (each is one extra blender round trip).
  std::uint64_t retries = 0;
  Micros elapsed_micros = 0;
  double qps = 0.0;
  std::shared_ptr<Histogram> latency_micros;  // per-query response times

  // Fraction of queries whose top-k contained an image of the queried
  // product (ground-truth hit rate; a retrieval sanity metric).
  double subject_hit_rate = 0.0;
};

class QueryClient {
 public:
  QueryClient(VisualSearchCluster& cluster, const QueryWorkloadConfig& config);

  // Runs the workload to completion (blocking) and returns merged results.
  QueryWorkloadResult Run();

 private:
  struct Target {
    ProductId product;
    CategoryId category;
  };

  // Index into targets_ for one query, honoring the configured skew.
  std::size_t PickTarget(Rng& rng) const;

  VisualSearchCluster& cluster_;
  QueryWorkloadConfig config_;
  std::vector<Target> targets_;
  // Cumulative Zipf weights over targets_ (empty when uniform).
  std::vector<double> zipf_cdf_;
};

}  // namespace jdvs

// Trace file I/O: persist a generated day trace so different experiments
// (and different system configurations under ablation) replay the *same*
// update stream, byte for byte.
#pragma once

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>

#include "workload/day_trace.h"

namespace jdvs {

class TraceIoError : public std::runtime_error {
 public:
  explicit TraceIoError(const std::string& what) : std::runtime_error(what) {}
};

// Writes trace events to `path` as they stream in. Usage:
//   TraceWriter writer(path);
//   generator.Generate([&](const TraceEvent& e) { writer.Write(e); });
//   writer.Close();
class TraceWriter {
 public:
  explicit TraceWriter(const std::string& path);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void Write(const TraceEvent& event);
  // Finalizes the header (event count); called by the destructor if needed.
  void Close();

  std::uint64_t events_written() const { return events_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::uint64_t events_ = 0;
};

// Streams every event of a trace file, in order, into `visit`. Returns the
// number of events replayed. Throws TraceIoError on malformed files.
std::uint64_t ReplayTraceFile(
    const std::string& path,
    const std::function<void(const TraceEvent&)>& visit);

}  // namespace jdvs

// Synthetic product catalog generator.
//
// Builds the initial product universe the experiments run over: products
// with categories, images, and business attributes (sales/price/praise)
// drawn from heavy-tailed distributions typical of e-commerce catalogs. The
// paper's performance testbed indexes 100,000 images; the default here (20k
// products x ~5 images) matches that scale.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "store/catalog.h"
#include "store/feature_db.h"
#include "store/image_store.h"

namespace jdvs {

struct CatalogGenConfig {
  std::size_t num_products = 20000;
  std::uint32_t min_images_per_product = 3;
  std::uint32_t max_images_per_product = 7;
  std::uint32_t num_categories = 50;
  // Fraction of products generated off-market (the re-listing pool: products
  // "removed from the market and put back later", whose features were
  // "extracted before" — Section 2.1 / Table 1).
  double initial_off_market_fraction = 0.0;
  std::uint64_t seed = 11;
};

// Draws one product's business attributes from Zipf-like (Pareto) power-law
// distributions: a small head of products captures most sales/praise, with
// prices lognormal around ~80 CNY plus a Pareto tail of luxury items. This
// is the distribution shape the hybrid-filter selectivity sweep depends on —
// a "sales >= p99" predicate must actually be ~1% selective. Deterministic
// in the Rng state (same seed, same draw sequence -> same catalog).
ProductAttributes SampleProductAttributes(Rng& rng);

struct CatalogGenStats {
  std::uint64_t products = 0;
  std::uint64_t on_market_products = 0;
  std::uint64_t images = 0;
  std::uint64_t features_prewarmed = 0;
};

// Populates catalog and image store. When `features` is non-null, every
// image's feature is precomputed into the feature DB (production state:
// anything ever listed has been extracted once), bypassing the extraction
// cost model.
CatalogGenStats GenerateCatalog(const CatalogGenConfig& config,
                                ProductCatalog& catalog, ImageStore& images,
                                FeatureDb* features = nullptr);

}  // namespace jdvs

#include "workload/query_client.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/hash.h"
#include "common/rng.h"
#include "net/timeout.h"

namespace jdvs {

QueryClient::QueryClient(VisualSearchCluster& cluster,
                         const QueryWorkloadConfig& config)
    : cluster_(cluster), config_(config) {
  // Snapshot queryable products (with categories) once; query threads then
  // sample without touching the catalog.
  cluster_.catalog().ForEach([this](const ProductRecord& record) {
    if (record.on_market) {
      targets_.push_back(Target{record.id, record.category});
    }
  });
  if (config_.zipf_exponent > 0.0 && !targets_.empty()) {
    // Rank-r weight 1/r^s; the snapshot order is the popularity order.
    zipf_cdf_.resize(targets_.size());
    double total = 0.0;
    for (std::size_t r = 0; r < targets_.size(); ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1),
                              config_.zipf_exponent);
      zipf_cdf_[r] = total;
    }
    for (double& c : zipf_cdf_) c /= total;
  }
}

std::size_t QueryClient::PickTarget(Rng& rng) const {
  if (zipf_cdf_.empty()) return rng.Below(targets_.size());
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<std::size_t>(it - zipf_cdf_.begin());
}

QueryWorkloadResult QueryClient::Run() {
  QueryWorkloadResult result;
  result.latency_micros = std::make_shared<Histogram>();
  if (targets_.empty()) return result;

  std::atomic<std::uint64_t> total_queries{0};
  std::atomic<std::uint64_t> total_errors{0};
  std::atomic<std::uint64_t> total_timeouts{0};
  std::atomic<std::uint64_t> total_deadline{0};
  std::atomic<std::uint64_t> total_retries{0};
  std::atomic<std::uint64_t> total_backoff{0};
  std::atomic<std::uint64_t> subject_hits{0};
  obs::Counter& retries_counter =
      cluster_.registry().GetCounter("jdvs_client_query_retries_total");
  obs::Counter& timeouts_counter =
      cluster_.registry().GetCounter("jdvs_client_timeouts_total");
  const auto& clock = MonotonicClock::Instance();
  const Micros start = clock.NowMicros();
  const Micros deadline =
      config_.duration_micros > 0 ? start + config_.duration_micros : 0;

  std::vector<std::thread> threads;
  threads.reserve(config_.num_threads);
  for (std::size_t t = 0; t < std::max<std::size_t>(config_.num_threads, 1);
       ++t) {
    threads.emplace_back([&, t] {
      Rng rng(HashCombine(Mix64(config_.seed), Mix64(t)));
      std::size_t issued = 0;
      for (;;) {
        if (deadline > 0) {
          if (clock.NowMicros() >= deadline) break;
        } else if (issued >= config_.queries_per_thread) {
          break;
        }
        const Target& target = targets_[PickTarget(rng)];
        QueryImage query;
        query.subject_product = target.product;
        query.true_category = target.category;
        query.query_seed = rng.Next64();
        const Micros q_start = clock.NowMicros();
        try {
          // A shed query costs the client one round trip; the front end's
          // rotation lands the retry on a different blender instance.
          QueryResponse response;
          QueryOptions options{.k = config_.k, .nprobe = 0};
          options.budget_micros = config_.budget_micros;
          options.priority = config_.priority;
          for (std::size_t attempt = 0;; ++attempt) {
            try {
              response = cluster_.front_end().Next().Search(query, options);
              break;
            } catch (const BlenderOverloadedError&) {
              if (attempt >= config_.max_retries) throw;
              total_retries.fetch_add(1, std::memory_order_relaxed);
              retries_counter.Increment();
              if (config_.retry_backoff_micros > 0) {
                // Capped exponential backoff with jitter over the upper
                // half, so a fleet of shed clients spreads out instead of
                // re-stampeding the blenders in lockstep.
                const Micros base = config_.retry_backoff_micros
                                    << std::min<std::size_t>(attempt, 16);
                const Micros capped = std::max<Micros>(
                    std::min(base, config_.retry_backoff_max_micros), 1);
                const Micros wait =
                    capped / 2 +
                    static_cast<Micros>(rng.Below(
                        static_cast<std::uint64_t>(capped / 2 + 1)));
                total_backoff.fetch_add(static_cast<std::uint64_t>(wait),
                                        std::memory_order_relaxed);
                std::this_thread::sleep_for(std::chrono::microseconds(wait));
              }
            }
          }
          result.latency_micros->Record(clock.NowMicros() - q_start);
          const bool hit = std::any_of(
              response.results.begin(), response.results.end(),
              [&](const RankedResult& r) {
                return r.hit.product_id == target.product;
              });
          if (hit) subject_hits.fetch_add(1, std::memory_order_relaxed);
          total_queries.fetch_add(1, std::memory_order_relaxed);
        } catch (const RpcTimeoutError&) {
          total_timeouts.fetch_add(1, std::memory_order_relaxed);
          timeouts_counter.Increment();
          total_errors.fetch_add(1, std::memory_order_relaxed);
        } catch (const qos::DeadlineExceededError&) {
          total_deadline.fetch_add(1, std::memory_order_relaxed);
          total_errors.fetch_add(1, std::memory_order_relaxed);
        } catch (...) {
          total_errors.fetch_add(1, std::memory_order_relaxed);
        }
        ++issued;
      }
    });
  }
  for (auto& thread : threads) thread.join();

  result.elapsed_micros = clock.NowMicros() - start;
  result.queries = total_queries.load();
  result.errors = total_errors.load();
  result.timeouts = total_timeouts.load();
  result.deadline_errors = total_deadline.load();
  result.retries = total_retries.load();
  result.retry_backoff_micros = total_backoff.load();
  if (result.elapsed_micros > 0) {
    result.qps = static_cast<double>(result.queries) /
                 (static_cast<double>(result.elapsed_micros) * 1e-6);
  }
  if (result.queries > 0) {
    result.subject_hit_rate = static_cast<double>(subject_hits.load()) /
                              static_cast<double>(result.queries);
  }
  return result;
}

OpenLoopResult QueryClient::RunOpenLoop() {
  OpenLoopResult result;
  result.latency_micros = std::make_shared<Histogram>();
  if (targets_.empty() || config_.arrival_qps <= 0.0) return result;

  // Completion state outlives this frame by shared_ptr: a query still in
  // flight when the drain timeout cuts the run must find live counters, not
  // a dead stack.
  struct Shared {
    std::shared_ptr<Histogram> latency;
    Micros slo = 0;
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> overload{0};
    std::atomic<std::uint64_t> deadline{0};
    std::atomic<std::uint64_t> timeouts{0};
    std::atomic<std::uint64_t> other{0};
    obs::Counter* timeouts_total = nullptr;
    std::atomic<std::uint64_t> degraded{0};
    std::atomic<std::uint64_t> slo_ok{0};
    std::atomic<std::uint64_t> outstanding{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  auto shared = std::make_shared<Shared>();
  shared->latency = result.latency_micros;
  shared->slo = config_.slo_micros;
  shared->timeouts_total =
      &cluster_.registry().GetCounter("jdvs_client_timeouts_total");

  const auto& clock = MonotonicClock::Instance();
  const Micros start = clock.NowMicros();
  const Micros window =
      config_.duration_micros > 0 ? config_.duration_micros : 1'000'000;
  const Micros end = start + window;
  Rng rng(Mix64(config_.seed));

  // Poisson arrivals: exponential inter-arrival gaps at the offered rate.
  // The schedule is absolute (next_arrival accumulates gaps from `start`),
  // so a slow dispatch doesn't stretch the offered rate — the next query
  // fires immediately if its arrival time already passed.
  double next_arrival = static_cast<double>(start);
  std::uint64_t offered = 0;
  for (;;) {
    const double gap =
        -std::log(1.0 - rng.NextDouble()) * 1e6 / config_.arrival_qps;
    next_arrival += gap;
    if (next_arrival >= static_cast<double>(end)) break;
    const Micros at = static_cast<Micros>(next_arrival);
    const Micros now = clock.NowMicros();
    if (now < at) {
      std::this_thread::sleep_for(std::chrono::microseconds(at - now));
    }
    const Target& target = targets_[PickTarget(rng)];
    QueryImage query;
    query.subject_product = target.product;
    query.true_category = target.category;
    query.query_seed = rng.Next64();
    QueryOptions options{.k = config_.k, .nprobe = 0};
    options.budget_micros = config_.budget_micros;
    options.priority = config_.priority;
    ++offered;
    shared->outstanding.fetch_add(1, std::memory_order_acq_rel);
    const Micros q_start = clock.NowMicros();
    cluster_.front_end().Next().SearchAsync(
        query, options,
        [shared, q_start](AsyncResult<QueryResponse> outcome) {
          // Re-fetch the clock singleton: a drain-timeout straggler may run
          // this after RunOpenLoop's frame (and its `clock` ref) is gone.
          const Micros elapsed =
              MonotonicClock::Instance().NowMicros() - q_start;
          if (outcome.ok()) {
            shared->latency->Record(elapsed);
            shared->completed.fetch_add(1, std::memory_order_relaxed);
            if (outcome.value->degradation_level > 0) {
              shared->degraded.fetch_add(1, std::memory_order_relaxed);
            }
            if (shared->slo == 0 || elapsed <= shared->slo) {
              shared->slo_ok.fetch_add(1, std::memory_order_relaxed);
            }
          } else {
            try {
              std::rethrow_exception(outcome.error);
            } catch (const BlenderOverloadedError&) {
              shared->overload.fetch_add(1, std::memory_order_relaxed);
            } catch (const qos::DeadlineExceededError&) {
              shared->deadline.fetch_add(1, std::memory_order_relaxed);
            } catch (const RpcTimeoutError&) {
              shared->timeouts.fetch_add(1, std::memory_order_relaxed);
              shared->timeouts_total->Increment();
            } catch (...) {
              shared->other.fetch_add(1, std::memory_order_relaxed);
            }
          }
          if (shared->outstanding.fetch_sub(1, std::memory_order_acq_rel) ==
              1) {
            // Empty lock orders the notify after the drain waiter's
            // predicate check (same discipline as the cluster drain cv).
            { std::lock_guard lock(shared->mu); }
            shared->cv.notify_all();
          }
        });
  }

  // Drain: wait (bounded) for in-flight queries to complete; anything still
  // outstanding afterward keeps its shared_ptr on the counters and is
  // reported as timed out.
  {
    std::unique_lock lock(shared->mu);
    shared->cv.wait_for(
        lock, std::chrono::microseconds(config_.drain_timeout_micros), [&] {
          return shared->outstanding.load(std::memory_order_acquire) == 0;
        });
  }

  result.offered = offered;
  result.completed = shared->completed.load();
  result.overload_errors = shared->overload.load();
  result.deadline_errors = shared->deadline.load();
  result.timeout_errors = shared->timeouts.load();
  result.other_errors = shared->other.load();
  result.degraded = shared->degraded.load();
  result.slo_ok = shared->slo_ok.load();
  result.timed_out_in_flight = shared->outstanding.load();
  result.elapsed_micros = clock.NowMicros() - start;
  const double window_sec = static_cast<double>(window) * 1e-6;
  result.offered_qps = static_cast<double>(offered) / window_sec;
  result.completed_qps = static_cast<double>(result.completed) / window_sec;
  result.goodput_qps = static_cast<double>(result.slo_ok) / window_sec;
  return result;
}

}  // namespace jdvs

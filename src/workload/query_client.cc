#include "workload/query_client.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>

#include "common/hash.h"
#include "common/rng.h"

namespace jdvs {

QueryClient::QueryClient(VisualSearchCluster& cluster,
                         const QueryWorkloadConfig& config)
    : cluster_(cluster), config_(config) {
  // Snapshot queryable products (with categories) once; query threads then
  // sample without touching the catalog.
  cluster_.catalog().ForEach([this](const ProductRecord& record) {
    if (record.on_market) {
      targets_.push_back(Target{record.id, record.category});
    }
  });
  if (config_.zipf_exponent > 0.0 && !targets_.empty()) {
    // Rank-r weight 1/r^s; the snapshot order is the popularity order.
    zipf_cdf_.resize(targets_.size());
    double total = 0.0;
    for (std::size_t r = 0; r < targets_.size(); ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1),
                              config_.zipf_exponent);
      zipf_cdf_[r] = total;
    }
    for (double& c : zipf_cdf_) c /= total;
  }
}

std::size_t QueryClient::PickTarget(Rng& rng) const {
  if (zipf_cdf_.empty()) return rng.Below(targets_.size());
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<std::size_t>(it - zipf_cdf_.begin());
}

QueryWorkloadResult QueryClient::Run() {
  QueryWorkloadResult result;
  result.latency_micros = std::make_shared<Histogram>();
  if (targets_.empty()) return result;

  std::atomic<std::uint64_t> total_queries{0};
  std::atomic<std::uint64_t> total_errors{0};
  std::atomic<std::uint64_t> total_retries{0};
  std::atomic<std::uint64_t> subject_hits{0};
  obs::Counter& retries_counter =
      cluster_.registry().GetCounter("jdvs_client_query_retries_total");
  const auto& clock = MonotonicClock::Instance();
  const Micros start = clock.NowMicros();
  const Micros deadline =
      config_.duration_micros > 0 ? start + config_.duration_micros : 0;

  std::vector<std::thread> threads;
  threads.reserve(config_.num_threads);
  for (std::size_t t = 0; t < std::max<std::size_t>(config_.num_threads, 1);
       ++t) {
    threads.emplace_back([&, t] {
      Rng rng(HashCombine(Mix64(config_.seed), Mix64(t)));
      std::size_t issued = 0;
      for (;;) {
        if (deadline > 0) {
          if (clock.NowMicros() >= deadline) break;
        } else if (issued >= config_.queries_per_thread) {
          break;
        }
        const Target& target = targets_[PickTarget(rng)];
        QueryImage query;
        query.subject_product = target.product;
        query.true_category = target.category;
        query.query_seed = rng.Next64();
        const Micros q_start = clock.NowMicros();
        try {
          // A shed query costs the client one round trip; the front end's
          // rotation lands the retry on a different blender instance.
          QueryResponse response;
          for (std::size_t attempt = 0;; ++attempt) {
            try {
              response = cluster_.front_end().Next().Search(
                  query, QueryOptions{.k = config_.k, .nprobe = 0});
              break;
            } catch (const BlenderOverloadedError&) {
              if (attempt >= config_.max_retries) throw;
              total_retries.fetch_add(1, std::memory_order_relaxed);
              retries_counter.Increment();
            }
          }
          result.latency_micros->Record(clock.NowMicros() - q_start);
          const bool hit = std::any_of(
              response.results.begin(), response.results.end(),
              [&](const RankedResult& r) {
                return r.hit.product_id == target.product;
              });
          if (hit) subject_hits.fetch_add(1, std::memory_order_relaxed);
          total_queries.fetch_add(1, std::memory_order_relaxed);
        } catch (...) {
          total_errors.fetch_add(1, std::memory_order_relaxed);
        }
        ++issued;
      }
    });
  }
  for (auto& thread : threads) thread.join();

  result.elapsed_micros = clock.NowMicros() - start;
  result.queries = total_queries.load();
  result.errors = total_errors.load();
  result.retries = total_retries.load();
  if (result.elapsed_micros > 0) {
    result.qps = static_cast<double>(result.queries) /
                 (static_cast<double>(result.elapsed_micros) * 1e-6);
  }
  if (result.queries > 0) {
    result.subject_hit_rate = static_cast<double>(subject_hits.load()) /
                              static_cast<double>(result.queries);
  }
  return result;
}

}  // namespace jdvs

// Diurnal product-update trace generator.
//
// Reproduces the shape of JD's production update stream (Section 3.1):
// Table 1's type mix (32.2% attribute updates, 53.3% image additions, 14.4%
// removals, with 98.5% of additions being re-listings of previously seen
// products) and Figure 11(a)'s diurnal hourly rate with the peak around
// 11:00. The generator maintains its own on-/off-market view so deletions
// feed the re-listing pool, exactly the product lifecycle the paper
// describes ("e-commerce sites often remove a product from the market and
// put it back later").
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "mq/message.h"
#include "store/catalog.h"

namespace jdvs {

struct DayTraceConfig {
  std::uint64_t total_messages = 100000;
  // Table 1 mix: 315 / 521 / 141 of 977 million.
  double update_fraction = 0.3224;
  double addition_fraction = 0.5333;
  // (deletion fraction is the remainder)

  // Of additions, the fraction drawn from the off-market pool when possible
  // (Table 1: 513/521 = 98.46% reused).
  double relist_fraction = 0.9846;

  // Images per brand-new product.
  std::uint32_t min_images_per_new_product = 3;
  std::uint32_t max_images_per_new_product = 7;
  std::uint32_t num_categories = 50;

  // Relative message volume per hour 0..23; zeros allowed. Defaults to a
  // JD-like diurnal curve peaking at 11:00 (Figure 11(a)).
  std::array<double, 24> hourly_weights = DefaultDiurnalWeights();

  std::uint64_t seed = 31;

  static std::array<double, 24> DefaultDiurnalWeights();
};

struct TraceEvent {
  int hour = 0;  // 0..23
  ProductUpdateMessage message;
};

struct DayTraceStats {
  std::uint64_t total = 0;
  std::uint64_t attribute_updates = 0;
  std::uint64_t additions = 0;
  std::uint64_t relist_additions = 0;
  std::uint64_t new_product_additions = 0;
  std::uint64_t deletions = 0;
  std::array<std::uint64_t, 24> per_hour{};
};

class DayTraceGenerator {
 public:
  // Snapshots the catalog's current product population (ids, categories,
  // market state) as the starting universe.
  DayTraceGenerator(const DayTraceConfig& config,
                    const ProductCatalog& catalog);

  // Streams the whole day in hour order into `sink`; returns the stats.
  DayTraceStats Generate(const std::function<void(const TraceEvent&)>& sink);

 private:
  ProductUpdateMessage MakeAttributeUpdate(int hour);
  ProductUpdateMessage MakeAddition(int hour, DayTraceStats& stats);
  ProductUpdateMessage MakeDeletion(int hour);

  struct KnownProduct {
    ProductId id;
    CategoryId category;
    std::vector<std::string> image_urls;
  };

  const KnownProduct& RandomKnown();
  // Moves a random product between the pools; O(1) swap-remove.
  bool PopRandom(std::vector<std::size_t>& pool, std::size_t& out);

  DayTraceConfig config_;
  Rng rng_;
  std::vector<KnownProduct> products_;
  std::vector<std::size_t> on_market_;   // indexes into products_
  std::vector<std::size_t> off_market_;  // indexes into products_
  ProductId next_new_id_;
  std::int64_t base_time_micros_ = 0;
};

}  // namespace jdvs

#include "workload/trace_io.h"

#include <cstdint>
#include <fstream>

namespace jdvs {
namespace {

constexpr std::uint64_t kMagic = 0x4A44565354524331ULL;  // "JDVSTRC1"
constexpr std::uint32_t kVersion = 1;

void WriteRaw(std::ostream& os, const void* data, std::size_t bytes) {
  os.write(static_cast<const char*>(data),
           static_cast<std::streamsize>(bytes));
  if (!os) throw TraceIoError("trace write failed");
}

template <typename T>
void WritePod(std::ostream& os, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  WriteRaw(os, &value, sizeof(T));
}

void WriteString(std::ostream& os, std::string_view s) {
  WritePod<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
  WriteRaw(os, s.data(), s.size());
}

void ReadRaw(std::istream& is, void* data, std::size_t bytes) {
  is.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (is.gcount() != static_cast<std::streamsize>(bytes)) {
    throw TraceIoError("trace truncated");
  }
}

template <typename T>
T ReadPod(std::istream& is) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value;
  ReadRaw(is, &value, sizeof(T));
  return value;
}

std::string ReadString(std::istream& is) {
  const auto size = ReadPod<std::uint32_t>(is);
  if (size > (1u << 24)) throw TraceIoError("trace string too large");
  std::string s(size, '\0');
  ReadRaw(is, s.data(), size);
  return s;
}

}  // namespace

struct TraceWriter::Impl {
  std::ofstream os;
  bool closed = false;
};

TraceWriter::TraceWriter(const std::string& path)
    : impl_(std::make_unique<Impl>()) {
  impl_->os.open(path, std::ios::binary | std::ios::trunc);
  if (!impl_->os) throw TraceIoError("cannot open for writing: " + path);
  WritePod(impl_->os, kMagic);
  WritePod(impl_->os, kVersion);
  // Placeholder event count, patched by Close().
  WritePod<std::uint64_t>(impl_->os, 0);
}

TraceWriter::~TraceWriter() {
  try {
    Close();
  } catch (...) {
    // Destructors must not throw; a failed close surfaces on next read.
  }
}

void TraceWriter::Write(const TraceEvent& event) {
  std::ostream& os = impl_->os;
  WritePod<std::int32_t>(os, event.hour);
  const ProductUpdateMessage& m = event.message;
  WritePod<std::uint8_t>(os, static_cast<std::uint8_t>(m.type));
  WritePod<std::uint64_t>(os, m.product_id);
  WritePod<std::uint32_t>(os, m.category_id);
  WritePod<std::uint64_t>(os, m.attributes.sales);
  WritePod<std::uint64_t>(os, m.attributes.price_cents);
  WritePod<std::uint64_t>(os, m.attributes.praise);
  WriteString(os, m.detail_url);
  WritePod<std::int64_t>(os, m.timestamp_micros);
  WritePod<std::uint32_t>(os, static_cast<std::uint32_t>(m.image_urls.size()));
  for (const auto& url : m.image_urls) WriteString(os, url);
  ++events_;
}

void TraceWriter::Close() {
  if (impl_->closed) return;
  impl_->closed = true;
  impl_->os.seekp(sizeof(kMagic) + sizeof(kVersion));
  WritePod<std::uint64_t>(impl_->os, events_);
  impl_->os.flush();
  if (!impl_->os) throw TraceIoError("trace close failed");
  impl_->os.close();
}

std::uint64_t ReplayTraceFile(
    const std::string& path,
    const std::function<void(const TraceEvent&)>& visit) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw TraceIoError("cannot open for reading: " + path);
  if (ReadPod<std::uint64_t>(is) != kMagic) {
    throw TraceIoError("bad trace magic: " + path);
  }
  const auto version = ReadPod<std::uint32_t>(is);
  if (version != kVersion) {
    throw TraceIoError("unsupported trace version " + std::to_string(version));
  }
  const auto count = ReadPod<std::uint64_t>(is);
  for (std::uint64_t i = 0; i < count; ++i) {
    TraceEvent event;
    event.hour = ReadPod<std::int32_t>(is);
    if (event.hour < 0 || event.hour >= 24) {
      throw TraceIoError("trace hour out of range");
    }
    ProductUpdateMessage& m = event.message;
    const auto type = ReadPod<std::uint8_t>(is);
    if (type > 2) throw TraceIoError("trace message type out of range");
    m.type = static_cast<UpdateType>(type);
    m.product_id = ReadPod<std::uint64_t>(is);
    m.category_id = ReadPod<std::uint32_t>(is);
    m.attributes.sales = ReadPod<std::uint64_t>(is);
    m.attributes.price_cents = ReadPod<std::uint64_t>(is);
    m.attributes.praise = ReadPod<std::uint64_t>(is);
    m.detail_url = ReadString(is);
    m.timestamp_micros = ReadPod<std::int64_t>(is);
    const auto num_urls = ReadPod<std::uint32_t>(is);
    if (num_urls > (1u << 20)) throw TraceIoError("trace url count absurd");
    m.image_urls.reserve(num_urls);
    for (std::uint32_t u = 0; u < num_urls; ++u) {
      m.image_urls.push_back(ReadString(is));
    }
    visit(event);
  }
  return count;
}

}  // namespace jdvs

// Feature extraction substrate.
//
// The production system runs a deep CNN over product images; the extracted
// high-dimensional feature is the only thing any downstream component sees.
// This reproduction substitutes a deterministic synthetic embedder that
// preserves the two properties the systems evaluation depends on:
//
//   1. *Cluster structure*: images of the same category are close in feature
//      space (category prototypes), images of the same product are closer
//      still (product offsets), so k-means/IVF partitioning behaves as it
//      does on CNN features.
//   2. *Cost*: extraction is expensive relative to index operations and is
//      worth caching (Section 2.1 feature reuse). The cost is modelled
//      explicitly and configurable.
//
// Determinism: the same image content always yields the same feature, which
// is also what makes the KV-store dedup (extract-once) correct.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/rng.h"
#include "vecmath/vector.h"

namespace jdvs {

// The "pixels" stand-in: everything the synthetic embedder derives a feature
// from. Produced by the image store, consumed by the extractor.
struct ImageContent {
  std::string url;          // unique image key
  ProductId product_id = 0;
  CategoryId category_id = 0;
};

struct EmbedderConfig {
  std::size_t dim = 64;
  std::uint32_t num_categories = 50;
  // Scale of category prototypes (inter-class separation).
  float category_spread = 4.0f;
  // Scale of per-product offsets from the category prototype.
  float product_spread = 1.0f;
  // Scale of per-image noise around the product point.
  float image_noise = 0.25f;
  std::uint64_t seed = 42;
  bool normalize = false;  // L2-normalize outputs
};

class SyntheticEmbedder {
 public:
  explicit SyntheticEmbedder(const EmbedderConfig& config);

  // Deterministic feature for the image content. Pure function of
  // (config seed, content identity); thread-safe.
  FeatureVector Extract(const ImageContent& content) const;

  // The feature of a *query photo* of the given product: the product point
  // plus fresh query noise. Models a user photographing a product they want
  // to find; used by workload generators so queries have known ground truth.
  FeatureVector ExtractQuery(ProductId product_id, CategoryId category_id,
                             std::uint64_t query_seed) const;

  const EmbedderConfig& config() const { return config_; }
  std::size_t dim() const { return config_.dim; }

 private:
  // Writes prototype(category) + offset(product) into out.
  void ProductPoint(ProductId product_id, CategoryId category_id,
                    float* out) const;

  EmbedderConfig config_;
};

// Models the latency of running the CNN (the paper's motivation for feature
// reuse: extraction is "an expensive operation"). Lognormal service time.
struct ExtractionCostModel {
  // Mean extraction time; 0 disables simulated cost entirely.
  std::int64_t mean_micros = 20000;
  // Lognormal shape parameter (spread of the tail).
  double sigma = 0.4;

  std::int64_t SampleMicros(Rng& rng) const;
};

}  // namespace jdvs

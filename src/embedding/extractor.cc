#include "embedding/extractor.h"

#include <cmath>

#include "common/hash.h"
#include "vecmath/distance.h"

namespace jdvs {
namespace {

// Fills out[0..dim) with Gaussian(0, scale) deviates from a derived stream.
void FillGaussian(std::uint64_t stream_seed, float scale, std::size_t dim,
                  float* out, bool accumulate) {
  Rng rng(stream_seed);
  for (std::size_t i = 0; i < dim; ++i) {
    const float g = static_cast<float>(rng.NextGaussian()) * scale;
    if (accumulate) {
      out[i] += g;
    } else {
      out[i] = g;
    }
  }
}

}  // namespace

SyntheticEmbedder::SyntheticEmbedder(const EmbedderConfig& config)
    : config_(config) {}

void SyntheticEmbedder::ProductPoint(ProductId product_id,
                                     CategoryId category_id,
                                     float* out) const {
  const std::uint32_t cat =
      config_.num_categories == 0 ? 0 : category_id % config_.num_categories;
  const std::uint64_t cat_seed =
      HashCombine(Mix64(config_.seed), Mix64(0x43A7ULL + cat));
  FillGaussian(cat_seed, config_.category_spread, config_.dim, out,
               /*accumulate=*/false);
  const std::uint64_t prod_seed =
      HashCombine(Mix64(config_.seed ^ 0x9D0DULL), Mix64(product_id));
  FillGaussian(prod_seed, config_.product_spread, config_.dim, out,
               /*accumulate=*/true);
}

FeatureVector SyntheticEmbedder::Extract(const ImageContent& content) const {
  FeatureVector feature(config_.dim);
  ProductPoint(content.product_id, content.category_id, feature.data());
  const std::uint64_t img_seed =
      HashCombine(Mix64(config_.seed ^ 0x1237ULL), Fnv1a64(content.url));
  FillGaussian(img_seed, config_.image_noise, config_.dim, feature.data(),
               /*accumulate=*/true);
  if (config_.normalize) NormalizeL2(feature);
  return feature;
}

FeatureVector SyntheticEmbedder::ExtractQuery(ProductId product_id,
                                              CategoryId category_id,
                                              std::uint64_t query_seed) const {
  FeatureVector feature(config_.dim);
  ProductPoint(product_id, category_id, feature.data());
  const std::uint64_t q_seed =
      HashCombine(Mix64(config_.seed ^ 0xBEEFULL), Mix64(query_seed));
  FillGaussian(q_seed, config_.image_noise, config_.dim, feature.data(),
               /*accumulate=*/true);
  if (config_.normalize) NormalizeL2(feature);
  return feature;
}

std::int64_t ExtractionCostModel::SampleMicros(Rng& rng) const {
  if (mean_micros <= 0) return 0;
  // Lognormal with the requested mean: mean = exp(mu + sigma^2/2).
  const double mu =
      std::log(static_cast<double>(mean_micros)) - sigma * sigma / 2.0;
  const double sample = std::exp(mu + sigma * rng.NextGaussian());
  return static_cast<std::int64_t>(sample);
}

}  // namespace jdvs

#include "embedding/category_detector.h"

#include "common/hash.h"

namespace jdvs {

CategoryDetector::CategoryDetector(const CategoryDetectorConfig& config)
    : config_(config) {}

CategoryId CategoryDetector::Detect(CategoryId true_category,
                                    std::uint64_t query_seed) const {
  Rng rng(HashCombine(Mix64(config_.seed), Mix64(query_seed)));
  if (config_.num_categories <= 1 || rng.NextBool(config_.top1_accuracy)) {
    return true_category;
  }
  // Uniform over the other categories.
  const auto offset =
      1 + rng.Below(config_.num_categories - 1);
  return static_cast<CategoryId>(
      (true_category + offset) % config_.num_categories);
}

}  // namespace jdvs

// Item detection / category identification stand-in.
//
// Section 2.4: "an item in the picture is detected and the product category
// of the item is identified" before feature extraction. The detector here
// returns the true category with a configurable top-1 accuracy and a
// uniformly wrong category otherwise, so experiments can quantify how
// detector errors propagate into retrieval quality.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "vecmath/vector.h"

namespace jdvs {

struct CategoryDetectorConfig {
  std::uint32_t num_categories = 50;
  double top1_accuracy = 0.95;
  std::uint64_t seed = 7;
};

class CategoryDetector {
 public:
  explicit CategoryDetector(const CategoryDetectorConfig& config);

  // Detects the category of a query about `true_category`. Deterministic in
  // (seed, query_seed). Thread-safe (stateless per call).
  CategoryId Detect(CategoryId true_category, std::uint64_t query_seed) const;

  const CategoryDetectorConfig& config() const { return config_; }

 private:
  CategoryDetectorConfig config_;
};

}  // namespace jdvs

#include "metrics/time_series.h"

namespace jdvs {

HourlyUpdateSeries::HourlyUpdateSeries() {
  for (auto& per_type : counts_) {
    for (auto& c : per_type) c.store(0, std::memory_order_relaxed);
  }
  for (auto& h : latency_) h = std::make_unique<Histogram>();
}

void HourlyUpdateSeries::AddCount(int hour, UpdateType type,
                                  std::uint64_t n) noexcept {
  counts_[static_cast<std::size_t>(hour)][static_cast<std::size_t>(type)]
      .fetch_add(n, std::memory_order_relaxed);
}

void HourlyUpdateSeries::AddLatency(int hour, std::int64_t micros) noexcept {
  latency_[static_cast<std::size_t>(hour)]->Record(micros);
}

std::uint64_t HourlyUpdateSeries::CountAt(int hour,
                                          UpdateType type) const noexcept {
  return counts_[static_cast<std::size_t>(hour)]
                [static_cast<std::size_t>(type)]
                    .load(std::memory_order_relaxed);
}

std::uint64_t HourlyUpdateSeries::TotalAt(int hour) const noexcept {
  std::uint64_t total = 0;
  for (const auto& c : counts_[static_cast<std::size_t>(hour)]) {
    total += c.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace jdvs

#include "metrics/qps_counter.h"

namespace jdvs {

QpsCounter::QpsCounter(const Clock& clock)
    : clock_(&clock), start_(clock.NowMicros()) {}

double QpsCounter::Qps() const noexcept {
  const Micros elapsed =
      clock_->NowMicros() - start_.load(std::memory_order_relaxed);
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(count()) /
         (static_cast<double>(elapsed) * 1e-6);
}

void QpsCounter::Reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  start_.store(clock_->NowMicros(), std::memory_order_relaxed);
}

}  // namespace jdvs

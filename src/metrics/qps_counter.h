// Throughput counter.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/clock.h"

namespace jdvs {

class QpsCounter {
 public:
  explicit QpsCounter(const Clock& clock = MonotonicClock::Instance());

  void Add(std::uint64_t n = 1) noexcept {
    count_.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  // Events per second since construction (or the last Reset).
  double Qps() const noexcept;

  void Reset() noexcept;

 private:
  const Clock* clock_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<Micros> start_;
};

}  // namespace jdvs

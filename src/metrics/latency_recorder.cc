#include "metrics/latency_recorder.h"

#include <cstdio>
#include <ostream>

namespace jdvs {

std::string FormatMicros(std::int64_t micros) {
  char buffer[64];
  if (micros < 1000) {
    std::snprintf(buffer, sizeof(buffer), "%lldus",
                  static_cast<long long>(micros));
  } else if (micros < 1'000'000) {
    std::snprintf(buffer, sizeof(buffer), "%.1fms",
                  static_cast<double>(micros) / 1000.0);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.2fs",
                  static_cast<double>(micros) / 1e6);
  }
  return buffer;
}

std::string SummarizeLatency(const Histogram& histogram,
                             const std::string& label) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "%s: n=%llu mean=%s p50=%s p90=%s p99=%s max=%s",
                label.c_str(),
                static_cast<unsigned long long>(histogram.Count()),
                FormatMicros(static_cast<std::int64_t>(histogram.Mean())).c_str(),
                FormatMicros(histogram.P50()).c_str(),
                FormatMicros(histogram.P90()).c_str(),
                FormatMicros(histogram.P99()).c_str(),
                FormatMicros(histogram.Max()).c_str());
  return buffer;
}

void PrintLatency(std::ostream& os, const Histogram& histogram,
                  const std::string& label) {
  os << SummarizeLatency(histogram, label) << "\n";
}

}  // namespace jdvs

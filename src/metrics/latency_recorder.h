// Latency reporting helpers over common/Histogram.
#pragma once

#include <iosfwd>
#include <string>

#include "common/histogram.h"

namespace jdvs {

// Formats a microsecond value as a human-friendly string ("132ms", "1.2s").
std::string FormatMicros(std::int64_t micros);

// One-line summary: count, mean, p50/p90/p99, max.
std::string SummarizeLatency(const Histogram& histogram,
                             const std::string& label);

// Prints the summary to `os` with a trailing newline.
void PrintLatency(std::ostream& os, const Histogram& histogram,
                  const std::string& label);

}  // namespace jdvs

// CDF output (Figure 13(b)-style response-time distribution).
#pragma once

#include <iosfwd>

#include "common/histogram.h"

namespace jdvs {

// Prints "value_seconds<TAB>cumulative_fraction" lines, downsampled to at
// most `max_points` rows (evenly spaced in cumulative probability).
void PrintCdfSeconds(std::ostream& os, const Histogram& histogram,
                     std::size_t max_points = 40);

}  // namespace jdvs

#include "metrics/cdf.h"

#include <cstdio>
#include <ostream>

namespace jdvs {

void PrintCdfSeconds(std::ostream& os, const Histogram& histogram,
                     std::size_t max_points) {
  const auto points = histogram.CdfPoints();
  if (points.empty()) {
    os << "(empty)\n";
    return;
  }
  double next_fraction = 0.0;
  const double step =
      max_points > 1 ? 1.0 / static_cast<double>(max_points - 1) : 1.0;
  char line[64];
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& [upper_micros, fraction] = points[i];
    const bool last = i + 1 == points.size();
    if (fraction + 1e-12 < next_fraction && !last) continue;
    std::snprintf(line, sizeof(line), "%.4f\t%.4f\n",
                  static_cast<double>(upper_micros) * 1e-6, fraction);
    os << line;
    next_fraction = fraction + step;
  }
}

}  // namespace jdvs

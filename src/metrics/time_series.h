// Hourly time series for the operational plots (Figure 11).
//
// Buckets counts and latency histograms by hour-of-day and by update type,
// producing exactly the series the paper plots: per-hour stacked update
// counts (11(a)) and per-hour avg/p90/p99 update latency (11(b)).
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "common/histogram.h"
#include "mq/message.h"

namespace jdvs {

class HourlyUpdateSeries {
 public:
  HourlyUpdateSeries();

  // Thread-safe.
  void AddCount(int hour, UpdateType type, std::uint64_t n = 1) noexcept;
  void AddLatency(int hour, std::int64_t micros) noexcept;

  std::uint64_t CountAt(int hour, UpdateType type) const noexcept;
  std::uint64_t TotalAt(int hour) const noexcept;
  const Histogram& LatencyAt(int hour) const noexcept {
    return *latency_[static_cast<std::size_t>(hour)];
  }

 private:
  static constexpr std::size_t kTypes = 3;
  std::array<std::array<std::atomic<std::uint64_t>, kTypes>, 24> counts_;
  std::array<std::unique_ptr<Histogram>, 24> latency_;
};

}  // namespace jdvs

#include "ctrl/controller.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "common/logging.h"
#include "index/snapshot.h"
#include "tier/tiered_snapshot.h"

namespace jdvs::ctrl {

ClusterController::ClusterController(VisualSearchCluster& cluster,
                                     const ControllerConfig& config)
    : cluster_(cluster),
      config_(config),
      table_(cluster.replica_states()),
      has_snapshot_(cluster.config().num_partitions, false),
      tiered_paths_(cluster.config().num_partitions *
                    cluster.config().replicas_per_partition) {
  // With auto-recovery the controller owns DOWN -> RECOVERING -> UP; without
  // it the detector reinstates a DOWN replica as soon as it acks again (the
  // operator-revive mode).
  FailureDetectorConfig dc = config_.detector;
  dc.reinstate_on_ack = !config_.auto_recover;
  std::vector<FailureDetector::Target> targets;
  const std::size_t partitions = cluster_.config().num_partitions;
  const std::size_t replicas = cluster_.config().replicas_per_partition;
  targets.reserve(partitions * replicas);
  for (std::size_t p = 0; p < partitions; ++p) {
    for (std::size_t r = 0; r < replicas; ++r) {
      targets.push_back({&cluster_.searcher(p, r).node(),
                         cluster_.replica_slot(p, r)});
    }
  }
  detector_ = std::make_unique<FailureDetector>(std::move(targets), table_,
                                                dc, &cluster_.registry());
  obs::Registry& registry = cluster_.registry();
  recoveries_total_ = &registry.GetCounter("jdvs_ctrl_recoveries_total");
  quarantine_repairs_total_ =
      &registry.GetCounter("jdvs_ctrl_quarantine_repairs_total");
  catchup_total_ = &registry.GetCounter("jdvs_ctrl_catchup_replayed_total");
  rollouts_total_ = &registry.GetCounter("jdvs_ctrl_rollouts_total");
  qos_backoff_total_ =
      &registry.GetCounter("jdvs_qos_recovery_backoff_micros_total");
  rollout_done_gauge_ = &registry.GetGauge("jdvs_ctrl_rollout_replicas_done");
  recovery_micros_ = &registry.GetHistogram("jdvs_ctrl_recovery_micros");
}

ClusterController::~ClusterController() { Stop(); }

void ClusterController::Start() {
  if (started_) return;
  started_ = true;
  stop_.store(false, std::memory_order_relaxed);
  detector_->Start();
  if (config_.auto_recover) {
    recovery_thread_ = std::thread([this] { RecoveryLoop(); });
  }
}

void ClusterController::Stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_relaxed);
  if (recovery_thread_.joinable()) recovery_thread_.join();
  detector_->Stop();
  started_ = false;
}

double ClusterController::MeanRecoveryMicros() const {
  return recovery_micros_->Mean();
}

std::string ClusterController::SnapshotPath(std::size_t partition) const {
  return config_.snapshot_dir + "/partition-" + std::to_string(partition) +
         ".jdvsidx";
}

std::string ClusterController::TieredSnapshotPath(
    std::size_t partition, std::size_t replica,
    std::uint64_t generation) const {
  return config_.snapshot_dir + "/partition-" + std::to_string(partition) +
         "-replica-" + std::to_string(replica) + "-g" +
         std::to_string(generation) + ".jdvsidx";
}

bool ClusterController::HasBaseSnapshot(std::size_t partition) const {
  return !config_.snapshot_dir.empty() && has_snapshot_[partition];
}

void ClusterController::SnapshotAllPartitions() {
  if (config_.snapshot_dir.empty()) {
    throw std::invalid_argument(
        "SnapshotAllPartitions needs ControllerConfig::snapshot_dir");
  }
  std::lock_guard lock(ops_mu_);
  const std::size_t replicas = cluster_.config().replicas_per_partition;
  for (std::size_t p = 0; p < cluster_.config().num_partitions; ++p) {
    for (std::size_t r = 0; r < replicas; ++r) {
      Searcher& searcher = cluster_.searcher(p, r);
      if (!table_.Serving(cluster_.replica_slot(p, r)) ||
          !searcher.HasIndex()) {
        continue;
      }
      searcher.SaveIndexSnapshot(SnapshotPath(p));
      has_snapshot_[p] = true;
      break;
    }
  }
}

void ClusterController::RecoveryLoop() {
  const std::size_t replicas = cluster_.config().replicas_per_partition;
  while (!stop_.load(std::memory_order_relaxed)) {
    for (std::size_t slot = 0; slot < table_.size(); ++slot) {
      if (stop_.load(std::memory_order_relaxed)) return;
      const ReplicaState state = table_.Get(slot);
      if (state == ReplicaState::kUp &&
          config_.quarantine_repair_threshold > 0) {
        // Disk-health leg: an UP replica whose tiered store has quarantined
        // too many corrupt lists is serving degraded answers — re-image it
        // from a healthy peer before the rot spreads query impact.
        Searcher& searcher =
            cluster_.searcher(slot / replicas, slot % replicas);
        if (searcher.tier_quarantined_lists() >=
            config_.quarantine_repair_threshold) {
          RepairReplica(slot / replicas, slot % replicas, slot);
        }
        continue;
      }
      if (state != ReplicaState::kDown) continue;
      RecoverReplica(slot / replicas, slot % replicas, slot);
    }
    std::this_thread::sleep_for(
        std::chrono::microseconds(config_.recovery_poll_micros));
  }
}

void ClusterController::RecoverReplica(std::size_t partition,
                                       std::size_t replica, std::size_t slot) {
  std::lock_guard lock(ops_mu_);
  if (table_.Get(slot) != ReplicaState::kDown) return;  // raced a revive
  obs::Span span = cluster_.tracer().StartTrace("ctrl.recover", "controller");
  span.AddTag("replica", table_.name(slot));
  const Micros down_since = table_.down_since_micros(slot);
  table_.Set(slot, ReplicaState::kRecovering);
  Searcher& searcher = cluster_.searcher(partition, replica);
  try {
    searcher.StopConsuming();
    searcher.node().set_failed(false);  // the simulated process restart
    // Subscribe before installing: updates published during the restore
    // buffer in the subscription, and sequence dedup reconciles them with
    // the catch-up replay.
    std::shared_ptr<Subscription> subscription;
    if (cluster_.realtime_running()) {
      subscription = cluster_.SubscribeUpdates();
    }
    // Recovery catch-up is background work: the pacer yields between replay
    // batches while the cluster is degraded, so reviving a replica never
    // deepens the overload it is reviving into.
    Micros backoff = 0;
    const std::size_t replayed =
        RestoreIndex(partition, replica, searcher,
                     [this, &backoff] { backoff += BackoffWhileDegraded(); });
    if (subscription) searcher.StartConsuming(std::move(subscription));
    table_.Set(slot, ReplicaState::kUp);
    recoveries_.fetch_add(1, std::memory_order_relaxed);
    recoveries_total_->Increment();
    catchup_replayed_.fetch_add(replayed, std::memory_order_relaxed);
    catchup_total_->Increment(static_cast<std::uint64_t>(replayed));
    const Micros mttr =
        down_since > 0
            ? MonotonicClock::Instance().NowMicros() - down_since
            : 0;
    if (mttr > 0) recovery_micros_->Record(mttr);
    span.AddTag("replayed", static_cast<std::uint64_t>(replayed));
    span.AddTag("mttr_micros", static_cast<std::uint64_t>(mttr));
    if (backoff > 0) {
      span.AddTag("qos_backoff_micros", static_cast<std::uint64_t>(backoff));
    }
    JDVS_LOG(kInfo) << "ctrl: recovered " << table_.name(slot) << " ("
                    << replayed << " messages replayed, mttr " << mttr
                    << "us)";
  } catch (const std::exception& e) {
    // Leave the replica DOWN; the next loop iteration retries.
    table_.Set(slot, ReplicaState::kDown);
    span.SetError(e.what());
    JDVS_LOG(kWarning) << "ctrl: recovery of " << table_.name(slot)
                       << " failed: " << e.what();
  }
}

void ClusterController::RepairReplica(std::size_t partition,
                                      std::size_t replica, std::size_t slot) {
  std::lock_guard lock(ops_mu_);
  if (table_.Get(slot) != ReplicaState::kUp) return;  // raced an outage
  Searcher& searcher = cluster_.searcher(partition, replica);
  const std::uint64_t quarantined = searcher.tier_quarantined_lists();
  if (quarantined < config_.quarantine_repair_threshold) return;
  obs::Span span = cluster_.tracer().StartTrace("ctrl.repair", "controller");
  span.AddTag("replica", table_.name(slot));
  span.AddTag("quarantined_lists", quarantined);
  const Micros started = MonotonicClock::Instance().NowMicros();
  // Same drain-restore-rejoin choreography as recovery, minus the process
  // restart: the node never failed, its storage did. RECOVERING pulls the
  // replica out of broker rotation while the fresh image installs.
  table_.Set(slot, ReplicaState::kRecovering);
  try {
    searcher.StopConsuming();
    std::shared_ptr<Subscription> subscription;
    if (cluster_.realtime_running()) {
      subscription = cluster_.SubscribeUpdates();
    }
    Micros backoff = 0;
    const std::size_t replayed =
        RestoreIndex(partition, replica, searcher,
                     [this, &backoff] { backoff += BackoffWhileDegraded(); });
    if (subscription) searcher.StartConsuming(std::move(subscription));
    table_.Set(slot, ReplicaState::kUp);
    quarantine_repairs_.fetch_add(1, std::memory_order_relaxed);
    quarantine_repairs_total_->Increment();
    catchup_replayed_.fetch_add(replayed, std::memory_order_relaxed);
    catchup_total_->Increment(static_cast<std::uint64_t>(replayed));
    const Micros mttr = MonotonicClock::Instance().NowMicros() - started;
    if (mttr > 0) recovery_micros_->Record(mttr);
    span.AddTag("replayed", static_cast<std::uint64_t>(replayed));
    span.AddTag("mttr_micros", static_cast<std::uint64_t>(mttr));
    if (backoff > 0) {
      span.AddTag("qos_backoff_micros", static_cast<std::uint64_t>(backoff));
    }
    JDVS_LOG(kInfo) << "ctrl: repaired " << table_.name(slot) << " ("
                    << quarantined << " quarantined lists, " << replayed
                    << " messages replayed, mttr " << mttr << "us)";
  } catch (const std::exception& e) {
    // The install failed, so the old (sick but partially serving) state may
    // be gone too; mark the replica DOWN and let the recovery leg own the
    // retry — it tolerates an index-less searcher.
    table_.Set(slot, ReplicaState::kDown);
    span.SetError(e.what());
    JDVS_LOG(kWarning) << "ctrl: repair of " << table_.name(slot)
                       << " failed: " << e.what();
  }
}

Micros ClusterController::BackoffWhileDegraded() {
  qos::LoadController* load = cluster_.load_controller();
  if (load == nullptr || config_.qos_backoff_at_level <= 0) return 0;
  Micros waited = 0;
  while (!stop_.load(std::memory_order_relaxed) &&
         waited < config_.qos_max_backoff_micros &&
         load->level() >= config_.qos_backoff_at_level) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(config_.qos_backoff_slice_micros));
    waited += config_.qos_backoff_slice_micros;
    // If admission collapsed completely no query completions rotate the
    // controller's window; Poll() lets the level step down anyway.
    load->Poll();
  }
  if (waited > 0) {
    qos_backoff_total_->Increment(static_cast<std::uint64_t>(waited));
  }
  return waited;
}

std::size_t ClusterController::RestoreIndex(std::size_t partition,
                                            std::size_t replica,
                                            Searcher& searcher,
                                            const Searcher::CatchUpPacer& pacer) {
  bool installed = false;
  if (config_.tiered_snapshots && !config_.snapshot_dir.empty()) {
    // Tiered mode: write a fresh-generation image to a replica-private path
    // and map that. Never the file the sick replica still has flock'd, and
    // never a corrupt file re-served — a new inode per install. Source is a
    // serving sibling when one exists, else a catalog rebuild.
    const std::size_t slot = cluster_.replica_slot(partition, replica);
    const std::string path =
        TieredSnapshotPath(partition, replica, ++tiered_generation_);
    const std::size_t replicas = cluster_.config().replicas_per_partition;
    bool written = false;
    for (std::size_t r = 0; r < replicas && !written; ++r) {
      Searcher& sibling = cluster_.searcher(partition, r);
      if (&sibling == &searcher ||
          !table_.Serving(cluster_.replica_slot(partition, r)) ||
          !sibling.HasIndex()) {
        continue;
      }
      sibling.SaveTieredSnapshot(path);
      written = true;
    }
    if (!written) {
      const std::uint64_t hwm = cluster_.last_update_sequence();
      const auto index = cluster_.BuildPartitionIndex(partition);
      jdvs::SaveTieredSnapshot(*index, path, hwm);
    }
    searcher.InstallFromTieredSnapshot(path, config_.tiered_resident_budget);
    // The replaced generation's mapping just died with the old index; its
    // file is garbage now.
    if (!tiered_paths_[slot].empty() && tiered_paths_[slot] != path) {
      std::remove(tiered_paths_[slot].c_str());
    }
    tiered_paths_[slot] = path;
    installed = true;
  }
  // Best available heap image next: the partition base snapshot, else a
  // snapshot taken from a serving sibling right now, else a full rebuild
  // from the catalog.
  if (!installed && HasBaseSnapshot(partition)) {
    searcher.InstallFromSnapshot(SnapshotPath(partition));
    installed = true;
  }
  if (!installed && !config_.snapshot_dir.empty()) {
    const std::size_t replicas = cluster_.config().replicas_per_partition;
    for (std::size_t r = 0; r < replicas; ++r) {
      Searcher& sibling = cluster_.searcher(partition, r);
      if (&sibling == &searcher ||
          !table_.Serving(cluster_.replica_slot(partition, r)) ||
          !sibling.HasIndex()) {
        continue;
      }
      sibling.SaveIndexSnapshot(SnapshotPath(partition));
      has_snapshot_[partition] = true;
      searcher.InstallFromSnapshot(SnapshotPath(partition));
      installed = true;
      break;
    }
  }
  if (!installed) {
    // No snapshot storage or no healthy source: rebuild. The catalog holds
    // every published update, so the fresh index is current through the
    // sequence captured here.
    const std::uint64_t hwm = cluster_.last_update_sequence();
    searcher.InstallIndex(cluster_.BuildPartitionIndex(partition), hwm);
  }
  if (!cluster_.realtime_running()) return 0;
  return searcher.CatchUpFromLog(cluster_.day_log(), pacer);
}

bool ClusterController::WaitForServingSibling(std::size_t partition,
                                              std::size_t replica,
                                              Micros timeout_micros) {
  const std::size_t replicas = cluster_.config().replicas_per_partition;
  const Micros deadline =
      MonotonicClock::Instance().NowMicros() + timeout_micros;
  for (;;) {
    for (std::size_t r = 0; r < replicas; ++r) {
      if (r == replica) continue;
      if (table_.Serving(cluster_.replica_slot(partition, r))) return true;
    }
    if (MonotonicClock::Instance().NowMicros() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

RolloutReport ClusterController::DeployFullIndex() {
  RolloutReport report;
  const Stopwatch watch(MonotonicClock::Instance());
  const std::size_t partitions = cluster_.config().num_partitions;
  const std::size_t replicas = cluster_.config().replicas_per_partition;
  report.partitions = partitions;
  report.base_sequence = cluster_.last_update_sequence();
  rollout_done_gauge_->Set(0);
  obs::Span span = cluster_.tracer().StartTrace("ctrl.deploy", "controller");
  span.AddTag("base_sequence", report.base_sequence);

  // Phase 1: build the new generation — one index per partition, snapshotted
  // at the shared base sequence. These files also become the fresh recovery
  // base images.
  if (config_.snapshot_dir.empty()) {
    throw std::invalid_argument(
        "DeployFullIndex needs ControllerConfig::snapshot_dir");
  }
  cluster_.TrainQuantizer();
  for (std::size_t p = 0; p < partitions; ++p) {
    auto index = cluster_.BuildPartitionIndex(p);
    SaveIndexSnapshot(*index, SnapshotPath(p), report.base_sequence);
    std::lock_guard lock(ops_mu_);
    has_snapshot_[p] = true;
  }

  // Phase 2: roll the new generation in, one replica at a time, never
  // draining a partition below one serving replica.
  for (std::size_t p = 0; p < partitions; ++p) {
    for (std::size_t r = 0; r < replicas; ++r) {
      const std::size_t slot = cluster_.replica_slot(p, r);
      if (replicas > 1) {
        const bool waited_ok =
            WaitForServingSibling(p, r, config_.rollout_drain_wait_micros);
        if (!waited_ok) {
          ++report.invariant_waits;
          JDVS_LOG(kWarning)
              << "ctrl: rollout proceeding on " << table_.name(slot)
              << " without a serving sibling (wait timed out)";
        }
      }
      std::lock_guard lock(ops_mu_);
      if (!table_.Serving(slot)) {
        // DOWN / RECOVERING replicas are the recovery path's to fix — it
        // will install the new base snapshot written above.
        ++report.replicas_skipped;
        continue;
      }
      table_.Set(slot, ReplicaState::kRecovering);  // drain from brokers
      Searcher& searcher = cluster_.searcher(p, r);
      searcher.StopConsuming();
      std::shared_ptr<Subscription> subscription;
      if (cluster_.realtime_running()) {
        subscription = cluster_.SubscribeUpdates();
      }
      searcher.InstallFromSnapshot(SnapshotPath(p));
      if (cluster_.realtime_running()) {
        report.catchup_replayed +=
            searcher.CatchUpFromLog(cluster_.day_log());
      }
      if (subscription) searcher.StartConsuming(std::move(subscription));
      table_.Set(slot, ReplicaState::kUp);
      ++report.replicas_updated;
      rollout_done_gauge_->Set(
          static_cast<std::int64_t>(report.replicas_updated));
    }
  }

  // The new snapshots cover everything through base_sequence; drop the
  // day-log prefix so catch-up replay stays proportional to the delta.
  cluster_.day_log().TruncateThrough(report.base_sequence);
  catchup_replayed_.fetch_add(report.catchup_replayed,
                              std::memory_order_relaxed);
  catchup_total_->Increment(
      static_cast<std::uint64_t>(report.catchup_replayed));
  rollouts_total_->Increment();
  report.elapsed_micros = watch.ElapsedMicros();
  span.AddTag("replicas_updated",
              static_cast<std::uint64_t>(report.replicas_updated));
  span.AddTag("catchup_replayed",
              static_cast<std::uint64_t>(report.catchup_replayed));
  JDVS_LOG(kInfo) << "ctrl: rollout complete — " << report.replicas_updated
                  << " replicas updated, " << report.catchup_replayed
                  << " delta messages replayed, base seq "
                  << report.base_sequence;
  return report;
}

}  // namespace jdvs::ctrl

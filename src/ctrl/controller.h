// Cluster control plane: automatic replica recovery and rolling full-index
// deployment on top of the heartbeat failure detector.
//
// The controller owns the DOWN -> RECOVERING -> UP leg of the replica state
// machine. Its recovery loop watches the shared ReplicaStateTable; when the
// detector declares a replica DOWN the controller revives it without
// operator action:
//
//   1. clear the node's fail switch (the "process restart"),
//   2. subscribe a fresh update-topic subscription (buffers new updates
//      while the index restores),
//   3. install an index — the partition's base snapshot when one exists,
//      else a snapshot taken from a serving sibling replica, else a fresh
//      build from the catalog,
//   4. replay the day log's suffix past the installed high-water mark
//      (catch-up: everything published while the replica was down),
//   5. start the consumer on the fresh subscription (sequence dedup absorbs
//      the overlap between replay and the subscription's buffered backlog),
//   6. mark the replica UP — brokers resume dispatching to it.
//
// DeployFullIndex is the weekly full-index rollout (Figure 2 cadence) done
// without downtime: build + snapshot every partition at one base sequence,
// then swap replicas in one at a time, never draining a partition below one
// serving replica, catching each replica up over the real-time delta before
// it rejoins. Afterwards the day log is truncated through the base sequence
// — the new snapshots cover it.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/histogram.h"
#include "ctrl/failure_detector.h"
#include "ctrl/replica_state.h"
#include "obs/registry.h"
#include "search/cluster_builder.h"

namespace jdvs::ctrl {

struct ControllerConfig {
  FailureDetectorConfig detector;
  // Revive DOWN replicas automatically. When false the controller only
  // detects (the detector reinstates on ack, the operator-revive mode).
  bool auto_recover = true;
  // Directory for partition base snapshots (SnapshotAllPartitions /
  // DeployFullIndex write them; recovery prefers them). Empty = no snapshot
  // storage: recovery rebuilds the partition index from the catalog.
  std::string snapshot_dir;
  // Recovery loop poll period.
  Micros recovery_poll_micros = 5'000;
  // DeployFullIndex: how long to wait for a sibling replica to come back to
  // serving before swapping the next one anyway (invariant wait timeout).
  Micros rollout_drain_wait_micros = 120'000'000;
  // QoS: while the cluster's degradation level (see
  // VisualSearchCluster::load_controller) is at or above this, recovery
  // catch-up replay pauses between batches — background work yields to
  // foreground queries. 0 disables the backoff; it is also inert when the
  // cluster has no load controller.
  int qos_backoff_at_level = 1;
  // Backoff sleep granularity, and the hard bound per pacer call so a
  // permanently-degraded cluster still finishes recovering.
  Micros qos_backoff_slice_micros = 5'000;
  Micros qos_max_backoff_micros = 500'000;

  // ---- Disk-integrity repair (tiered replicas; defaults = off) ----
  // When a serving replica's tiered index holds at least this many
  // quarantined (corrupt / fault-prone) payload lists, the recovery loop
  // treats the replica's storage as unhealthy and re-installs its index
  // from a healthy peer — clearing the quarantine with fresh bytes rather
  // than serving degraded answers forever. 0 disables the repair path.
  std::size_t quarantine_repair_threshold = 0;
  // Repair (and recovery) installs tiered (mmap) snapshots instead of heap
  // images: each install writes a fresh generation file per replica under
  // snapshot_dir — never the file the sick replica still has mapped, and
  // never a re-serve of corrupt bytes — and maps it with this residency
  // budget. Requires a non-empty snapshot_dir.
  bool tiered_snapshots = false;
  std::size_t tiered_resident_budget = 0;
};

// Result of one DeployFullIndex run.
struct RolloutReport {
  std::size_t partitions = 0;
  // Replicas swapped to the new index (non-serving replicas are skipped;
  // the recovery path installs the new base snapshot for them instead).
  std::size_t replicas_updated = 0;
  std::size_t replicas_skipped = 0;
  // Update sequence the new indexes are based on; the day log is truncated
  // through it when the rollout completes.
  std::uint64_t base_sequence = 0;
  // Real-time delta messages replayed across all swapped replicas.
  std::size_t catchup_replayed = 0;
  // Times the rollout had to wait for the >=1-serving-replica invariant.
  std::size_t invariant_waits = 0;
  Micros elapsed_micros = 0;
};

class ClusterController {
 public:
  ClusterController(VisualSearchCluster& cluster,
                    const ControllerConfig& config = {});
  ~ClusterController();

  ClusterController(const ClusterController&) = delete;
  ClusterController& operator=(const ClusterController&) = delete;

  // Starts the failure detector and (when auto_recover) the recovery loop.
  void Start();
  void Stop();

  // Writes one base snapshot per partition (from the first serving replica)
  // into snapshot_dir, giving recovery a warm starting image. Requires a
  // non-empty snapshot_dir.
  void SnapshotAllPartitions();

  // Full-index rollout under live traffic: train, build + snapshot every
  // partition, then swap replicas in one at a time (details above). Safe to
  // call while the detector and recovery loop run.
  RolloutReport DeployFullIndex();

  FailureDetector& detector() { return *detector_; }

  std::uint64_t recoveries() const {
    return recoveries_.load(std::memory_order_relaxed);
  }
  // Serving replicas re-imaged because quarantine crossed the threshold.
  std::uint64_t quarantine_repairs() const {
    return quarantine_repairs_.load(std::memory_order_relaxed);
  }
  std::uint64_t catchup_replayed() const {
    return catchup_replayed_.load(std::memory_order_relaxed);
  }
  // Mean time-to-recovery over completed auto-recoveries, in micros.
  double MeanRecoveryMicros() const;

 private:
  void RecoveryLoop();
  // Revives one DOWN replica (step sequence in the header comment).
  void RecoverReplica(std::size_t partition, std::size_t replica,
                      std::size_t slot);
  // Re-images one UP-but-storage-sick replica (quarantine threshold
  // crossed): drain from brokers, install a fresh image from a healthy
  // peer, catch up, rejoin. The quarantine clears because the new store
  // starts unpoisoned over verified bytes.
  void RepairReplica(std::size_t partition, std::size_t replica,
                     std::size_t slot);
  // Installs the best available index on a recovering searcher and returns
  // the catch-up replay count; `pacer` (may be empty) is handed to the
  // catch-up replay so it can yield while the cluster is degraded.
  std::size_t RestoreIndex(std::size_t partition, std::size_t replica,
                           Searcher& searcher,
                           const Searcher::CatchUpPacer& pacer = {});
  // Sleeps in bounded slices while the cluster's degradation level is at or
  // above qos_backoff_at_level; returns the time spent backing off.
  Micros BackoffWhileDegraded();
  std::string SnapshotPath(std::size_t partition) const;
  // Replica-private, generation-suffixed tiered image path. A fresh inode
  // per install: SaveTieredSnapshot takes an exclusive flock and the sick
  // replica still holds a shared one on its current file, so reusing a
  // path would deadlock-or-fail; a new generation never conflicts.
  std::string TieredSnapshotPath(std::size_t partition, std::size_t replica,
                                 std::uint64_t generation) const;
  bool HasBaseSnapshot(std::size_t partition) const;
  // Blocks until some *other* replica of `partition` is serving (or the
  // timeout passes). Returns true when the invariant holds.
  bool WaitForServingSibling(std::size_t partition, std::size_t replica,
                             Micros timeout_micros);

  VisualSearchCluster& cluster_;
  ControllerConfig config_;
  ReplicaStateTable& table_;
  std::unique_ptr<FailureDetector> detector_;

  // Serializes replica-mutating operations (recovery loop vs. rollout), so
  // the two never touch the same searcher concurrently.
  std::mutex ops_mu_;
  // Guarded by ops_mu_: partitions with a base snapshot on disk.
  std::vector<bool> has_snapshot_;
  // Guarded by ops_mu_: tiered-install bookkeeping — next generation number
  // and, per replica slot, the path of the currently installed generation
  // (unlinked once a newer one replaces it).
  std::uint64_t tiered_generation_ = 0;
  std::vector<std::string> tiered_paths_;

  std::atomic<bool> stop_{false};
  std::thread recovery_thread_;
  bool started_ = false;

  std::atomic<std::uint64_t> recoveries_{0};
  std::atomic<std::uint64_t> quarantine_repairs_{0};
  std::atomic<std::uint64_t> catchup_replayed_{0};
  obs::Counter* recoveries_total_;
  obs::Counter* quarantine_repairs_total_;
  obs::Counter* catchup_total_;
  obs::Counter* rollouts_total_;
  obs::Counter* qos_backoff_total_;  // jdvs_qos_recovery_backoff_micros_total
  obs::Gauge* rollout_done_gauge_;
  Histogram* recovery_micros_;  // MTTR: DOWN -> back to UP
};

}  // namespace jdvs::ctrl

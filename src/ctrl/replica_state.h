// Per-replica health state, shared between the control plane and the
// serving path.
//
// Every searcher replica moves through the control-plane state machine
//
//   UP -> SUSPECT -> DOWN -> RECOVERING -> UP
//
// driven by the heartbeat failure detector (UP/SUSPECT/DOWN) and the
// recovery/rollout machinery (DOWN -> RECOVERING -> UP). Brokers consult the
// table when choosing which replica of a partition to dispatch to, so a
// replica the detector has already declared dead is never offered live
// queries — availability decisions move off the query path and onto the
// control plane. SUSPECT replicas keep serving (a missed heartbeat is a
// hint, not a verdict).
//
// The table is the one piece of ctrl state the hot path reads, so reads are
// a single relaxed atomic load per replica; all bookkeeping (gauges,
// transition counters, down timestamps) happens on the writer side.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/clock.h"
#include "obs/registry.h"

namespace jdvs::ctrl {

enum class ReplicaState : int {
  kUp = 0,
  kSuspect = 1,
  kDown = 2,
  kRecovering = 3,
};

const char* ReplicaStateName(ReplicaState state);

struct ReplicaStateCounts {
  std::size_t up = 0;
  std::size_t suspect = 0;
  std::size_t down = 0;
  std::size_t recovering = 0;
};

class ReplicaStateTable {
 public:
  // `registry` (null = process-global default) receives one
  // jdvs_ctrl_replica_state{replica=<name>} gauge per registered replica
  // (value = the ReplicaState enum) and jdvs_ctrl_transitions_total{to=...}
  // counters.
  explicit ReplicaStateTable(obs::Registry* registry = nullptr,
                             const Clock& clock = MonotonicClock::Instance());

  ReplicaStateTable(const ReplicaStateTable&) = delete;
  ReplicaStateTable& operator=(const ReplicaStateTable&) = delete;

  // Registers a replica (initial state UP) and returns its slot id. Slot
  // ids are dense and assigned in registration order.
  std::size_t Register(const std::string& node_name);

  void Set(std::size_t slot, ReplicaState state);
  ReplicaState Get(std::size_t slot) const {
    return static_cast<ReplicaState>(
        entries_[slot].state.load(std::memory_order_relaxed));
  }
  // True when the replica may be offered live queries (UP or SUSPECT).
  bool Serving(std::size_t slot) const {
    const ReplicaState s = Get(slot);
    return s == ReplicaState::kUp || s == ReplicaState::kSuspect;
  }

  // Folds one observed response time into the replica's latency EWMA
  // (alpha = 1/8). Brokers record every reply (and every per-RPC timeout,
  // at the timeout value — the caller-visible cost of asking); the broker's
  // candidate ordering and the failure detector's latency-outlier ejection
  // both read the result. Lock-free CAS so the hot path never serializes.
  void RecordLatency(std::size_t slot, Micros sample_micros);
  // Current EWMA (0 = no sample recorded since registration).
  Micros latency_ewma_micros(std::size_t slot) const {
    return entries_[slot].latency_ewma_micros.load(std::memory_order_relaxed);
  }

  const std::string& name(std::size_t slot) const {
    return entries_[slot].name;
  }
  // Time the replica entered DOWN (0 when it never was); the recovery
  // machinery reads it to compute MTTR.
  Micros down_since_micros(std::size_t slot) const {
    return entries_[slot].down_since_micros.load(std::memory_order_relaxed);
  }

  std::size_t size() const { return entries_.size(); }
  ReplicaStateCounts Counts() const;

 private:
  struct Entry {
    std::string name;
    std::atomic<int> state{static_cast<int>(ReplicaState::kUp)};
    std::atomic<std::int64_t> down_since_micros{0};
    std::atomic<std::int64_t> latency_ewma_micros{0};
    obs::Gauge* gauge = nullptr;
    obs::Gauge* latency_gauge = nullptr;
  };

  const Clock* clock_;
  obs::Registry* registry_;
  std::deque<Entry> entries_;  // deque: stable addresses for the atomics
  obs::Counter* to_suspect_total_;
  obs::Counter* to_down_total_;
  obs::Counter* to_recovering_total_;
  obs::Counter* to_up_total_;
};

}  // namespace jdvs::ctrl

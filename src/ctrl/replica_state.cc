#include "ctrl/replica_state.h"

namespace jdvs::ctrl {

const char* ReplicaStateName(ReplicaState state) {
  switch (state) {
    case ReplicaState::kUp:
      return "up";
    case ReplicaState::kSuspect:
      return "suspect";
    case ReplicaState::kDown:
      return "down";
    case ReplicaState::kRecovering:
      return "recovering";
  }
  return "unknown";
}

ReplicaStateTable::ReplicaStateTable(obs::Registry* registry,
                                     const Clock& clock)
    : clock_(&clock),
      registry_(registry != nullptr ? registry : &obs::Registry::Default()),
      to_suspect_total_(&registry_->GetCounter(
          obs::Labeled("jdvs_ctrl_transitions_total", "to", "suspect"))),
      to_down_total_(&registry_->GetCounter(
          obs::Labeled("jdvs_ctrl_transitions_total", "to", "down"))),
      to_recovering_total_(&registry_->GetCounter(
          obs::Labeled("jdvs_ctrl_transitions_total", "to", "recovering"))),
      to_up_total_(&registry_->GetCounter(
          obs::Labeled("jdvs_ctrl_transitions_total", "to", "up"))) {}

std::size_t ReplicaStateTable::Register(const std::string& node_name) {
  // Registration happens while the cluster is wired up, before any reader
  // runs; only Set/Get are thread-safe afterwards.
  Entry& entry = entries_.emplace_back();
  entry.name = node_name;
  entry.gauge = &registry_->GetGauge(
      obs::Labeled("jdvs_ctrl_replica_state", "replica", node_name));
  entry.gauge->Set(static_cast<std::int64_t>(ReplicaState::kUp));
  entry.latency_gauge = &registry_->GetGauge(obs::Labeled(
      "jdvs_ctrl_replica_latency_ewma_micros", "replica", node_name));
  return entries_.size() - 1;
}

void ReplicaStateTable::RecordLatency(std::size_t slot, Micros sample_micros) {
  if (sample_micros < 0) sample_micros = 0;
  Entry& entry = entries_[slot];
  std::int64_t current =
      entry.latency_ewma_micros.load(std::memory_order_relaxed);
  std::int64_t next = 0;
  do {
    // First sample seeds the average; after that, alpha = 1/8.
    next = current == 0 ? sample_micros
                        : current + (sample_micros - current) / 8;
    if (next == current) break;  // converged; nothing to publish
  } while (!entry.latency_ewma_micros.compare_exchange_weak(
      current, next, std::memory_order_relaxed));
  entry.latency_gauge->Set(next);
}

void ReplicaStateTable::Set(std::size_t slot, ReplicaState state) {
  Entry& entry = entries_[slot];
  const auto previous = static_cast<ReplicaState>(
      entry.state.exchange(static_cast<int>(state), std::memory_order_relaxed));
  if (previous == state) return;
  entry.gauge->Set(static_cast<std::int64_t>(state));
  switch (state) {
    case ReplicaState::kSuspect:
      to_suspect_total_->Increment();
      break;
    case ReplicaState::kDown:
      entry.down_since_micros.store(clock_->NowMicros(),
                                    std::memory_order_relaxed);
      to_down_total_->Increment();
      break;
    case ReplicaState::kRecovering:
      to_recovering_total_->Increment();
      break;
    case ReplicaState::kUp:
      to_up_total_->Increment();
      break;
  }
}

ReplicaStateCounts ReplicaStateTable::Counts() const {
  ReplicaStateCounts counts;
  for (std::size_t slot = 0; slot < entries_.size(); ++slot) {
    switch (Get(slot)) {
      case ReplicaState::kUp:
        ++counts.up;
        break;
      case ReplicaState::kSuspect:
        ++counts.suspect;
        break;
      case ReplicaState::kDown:
        ++counts.down;
        break;
      case ReplicaState::kRecovering:
        ++counts.recovering;
        break;
    }
  }
  return counts;
}

}  // namespace jdvs::ctrl

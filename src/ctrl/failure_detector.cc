#include "ctrl/failure_detector.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "common/logging.h"

namespace jdvs::ctrl {

FailureDetector::FailureDetector(std::vector<Target> targets,
                                 ReplicaStateTable& table,
                                 const FailureDetectorConfig& config,
                                 obs::Registry* registry)
    : targets_(std::move(targets)), table_(table), config_(config) {
  obs::Registry& reg =
      registry != nullptr ? *registry : obs::Registry::Default();
  heartbeats_total_ = &reg.GetCounter("jdvs_ctrl_heartbeats_total");
  misses_total_ = &reg.GetCounter("jdvs_ctrl_heartbeat_misses_total");
  latency_ejections_total_ =
      &reg.GetCounter("jdvs_ctrl_latency_ejections_total");
  probes_.reserve(targets_.size());
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    probes_.push_back(std::make_shared<Probe>());
  }
}

FailureDetector::~FailureDetector() { Stop(); }

void FailureDetector::Start() {
  if (loop_.joinable()) return;
  stop_.store(false, std::memory_order_release);
  loop_ = std::thread([this] { RunLoop(); });
}

void FailureDetector::Stop() {
  stop_.store(true, std::memory_order_release);
  if (loop_.joinable()) loop_.join();
}

void FailureDetector::RunLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    ProbeRound();
    std::this_thread::sleep_for(
        std::chrono::microseconds(config_.heartbeat_period_micros));
  }
}

void FailureDetector::EjectLatencyOutliers() {
  if (config_.latency_outlier_factor <= 0.0) return;
  std::vector<Micros> ewmas;
  ewmas.reserve(targets_.size());
  for (const Target& target : targets_) {
    const ReplicaState state = table_.Get(target.slot);
    if (state != ReplicaState::kUp && state != ReplicaState::kSuspect) continue;
    const Micros ewma = table_.latency_ewma_micros(target.slot);
    if (ewma > 0) ewmas.push_back(ewma);
  }
  // A median over fewer than 3 samples is just another replica's latency;
  // wait until enough of the tier has been measured.
  if (ewmas.size() < 3) return;
  auto mid = ewmas.begin() + static_cast<std::ptrdiff_t>(ewmas.size() / 2);
  std::nth_element(ewmas.begin(), mid, ewmas.end());
  const double threshold =
      std::max(static_cast<double>(config_.latency_outlier_min_micros),
               config_.latency_outlier_factor * static_cast<double>(*mid));
  const double reenter = threshold * config_.latency_reenter_fraction;
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    const Target& target = targets_[i];
    Probe& probe = *probes_[i];
    const ReplicaState state = table_.Get(target.slot);
    if (state != ReplicaState::kUp && state != ReplicaState::kSuspect) {
      // DOWN/RECOVERING belongs to the miss machinery / controller; the
      // latency verdict is stale by the time it comes back.
      probe.latency_suspected = false;
      continue;
    }
    const auto ewma = static_cast<double>(table_.latency_ewma_micros(target.slot));
    if (!probe.latency_suspected && ewma > threshold) {
      probe.latency_suspected = true;
      if (state == ReplicaState::kUp) {
        // The gray-failure transition: heartbeats are fine, answers are
        // not. SUSPECT keeps it serving but deprioritized in the broker's
        // candidate order.
        latency_ejections_.fetch_add(1, std::memory_order_relaxed);
        latency_ejections_total_->Increment();
        JDVS_LOG(kWarning) << "ctrl: " << target.node->name()
                           << " SUSPECT as latency outlier (ewma "
                           << static_cast<Micros>(ewma) << "us > "
                           << static_cast<Micros>(threshold) << "us)";
        table_.Set(target.slot, ReplicaState::kSuspect);
      }
    } else if (probe.latency_suspected && ewma < reenter) {
      // Recovered below the hysteresis band; the next ack reinstates UP.
      probe.latency_suspected = false;
    }
  }
}

void FailureDetector::ProbeRound() {
  // Probes carry the control plane's identity on fault-injection links, so
  // chaos scenarios can fault (or exempt) the heartbeat path explicitly.
  RpcSourceScope source("ctrl");
  const Micros probe_timeout = config_.probe_timeout_micros > 0
                                   ? config_.probe_timeout_micros
                                   : 2 * config_.heartbeat_period_micros;
  EjectLatencyOutliers();
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    const Target& target = targets_[i];
    Probe& probe = *probes_[i];
    if (table_.Get(target.slot) == ReplicaState::kRecovering) {
      // Recovery owns this replica; reset accounting so it re-enters the
      // detector with a clean slate once it is UP again.
      probe.consecutive_misses = 0;
      probe.acked.store(false, std::memory_order_relaxed);
      continue;
    }

    // Harvest the previous round's outcome first.
    if (probe.acked.exchange(false, std::memory_order_acq_rel)) {
      probe.consecutive_misses = 0;
      const ReplicaState state = table_.Get(target.slot);
      // An ack clears heartbeat suspicion, but not a latency ejection: the
      // whole point of the gray-failure defense is that this replica acks
      // fine and answers slow. Reinstatement waits for the EWMA to recover.
      if ((state == ReplicaState::kSuspect && !probe.latency_suspected) ||
          (state == ReplicaState::kDown && config_.reinstate_on_ack)) {
        table_.Set(target.slot, ReplicaState::kUp);
      }
    } else if (probe.in_flight.load(std::memory_order_acquire)) {
      // Still unanswered after a full period: a slow node is a suspect node.
      ++probe.consecutive_misses;
      misses_.fetch_add(1, std::memory_order_relaxed);
      misses_total_->Increment();
    } else if (probe.dispatched) {
      // The previous probe completed with an error (NodeFailedError while
      // the fail switch is set): the fabric answered "dead".
      ++probe.consecutive_misses;
      misses_.fetch_add(1, std::memory_order_relaxed);
      misses_total_->Increment();
    }

    const ReplicaState state = table_.Get(target.slot);
    if (state != ReplicaState::kDown) {
      if (probe.consecutive_misses >= config_.down_after_misses) {
        JDVS_LOG(kWarning) << "ctrl: " << target.node->name() << " DOWN after "
                           << probe.consecutive_misses << " missed heartbeats";
        table_.Set(target.slot, ReplicaState::kDown);
      } else if (probe.consecutive_misses >= config_.suspect_after_misses &&
                 state == ReplicaState::kUp) {
        table_.Set(target.slot, ReplicaState::kSuspect);
      }
    }

    // Dispatch this round's probe unless the previous one is still stuck in
    // the node's queue (one outstanding probe per replica, like a heartbeat
    // connection).
    if (!probe.in_flight.exchange(true, std::memory_order_acq_rel)) {
      probe.dispatched = true;
      heartbeats_.fetch_add(1, std::memory_order_relaxed);
      heartbeats_total_->Increment();
      const std::shared_ptr<Probe> p = probes_[i];
      // The timeout guarantees in_flight always clears: a probe whose
      // message the fabric drops comes back as RpcTimeoutError (a miss)
      // instead of wedging this replica's probing forever.
      target.node->InvokeAsyncWithTimeout(
          probe_timeout, [] {},
          [p](AsyncResult<void> result) {
            if (result.ok()) {
              p->acked.store(true, std::memory_order_release);
            }
            p->in_flight.store(false, std::memory_order_release);
          });
    }
  }
}

}  // namespace jdvs::ctrl

#include "ctrl/failure_detector.h"

#include <chrono>

#include "common/logging.h"

namespace jdvs::ctrl {

FailureDetector::FailureDetector(std::vector<Target> targets,
                                 ReplicaStateTable& table,
                                 const FailureDetectorConfig& config,
                                 obs::Registry* registry)
    : targets_(std::move(targets)), table_(table), config_(config) {
  obs::Registry& reg =
      registry != nullptr ? *registry : obs::Registry::Default();
  heartbeats_total_ = &reg.GetCounter("jdvs_ctrl_heartbeats_total");
  misses_total_ = &reg.GetCounter("jdvs_ctrl_heartbeat_misses_total");
  probes_.reserve(targets_.size());
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    probes_.push_back(std::make_shared<Probe>());
  }
}

FailureDetector::~FailureDetector() { Stop(); }

void FailureDetector::Start() {
  if (loop_.joinable()) return;
  stop_.store(false, std::memory_order_release);
  loop_ = std::thread([this] { RunLoop(); });
}

void FailureDetector::Stop() {
  stop_.store(true, std::memory_order_release);
  if (loop_.joinable()) loop_.join();
}

void FailureDetector::RunLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    ProbeRound();
    std::this_thread::sleep_for(
        std::chrono::microseconds(config_.heartbeat_period_micros));
  }
}

void FailureDetector::ProbeRound() {
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    const Target& target = targets_[i];
    Probe& probe = *probes_[i];
    if (table_.Get(target.slot) == ReplicaState::kRecovering) {
      // Recovery owns this replica; reset accounting so it re-enters the
      // detector with a clean slate once it is UP again.
      probe.consecutive_misses = 0;
      probe.acked.store(false, std::memory_order_relaxed);
      continue;
    }

    // Harvest the previous round's outcome first.
    if (probe.acked.exchange(false, std::memory_order_acq_rel)) {
      probe.consecutive_misses = 0;
      const ReplicaState state = table_.Get(target.slot);
      if (state == ReplicaState::kSuspect ||
          (state == ReplicaState::kDown && config_.reinstate_on_ack)) {
        table_.Set(target.slot, ReplicaState::kUp);
      }
    } else if (probe.in_flight.load(std::memory_order_acquire)) {
      // Still unanswered after a full period: a slow node is a suspect node.
      ++probe.consecutive_misses;
      misses_.fetch_add(1, std::memory_order_relaxed);
      misses_total_->Increment();
    } else if (probe.dispatched) {
      // The previous probe completed with an error (NodeFailedError while
      // the fail switch is set): the fabric answered "dead".
      ++probe.consecutive_misses;
      misses_.fetch_add(1, std::memory_order_relaxed);
      misses_total_->Increment();
    }

    const ReplicaState state = table_.Get(target.slot);
    if (state != ReplicaState::kDown) {
      if (probe.consecutive_misses >= config_.down_after_misses) {
        JDVS_LOG(kWarning) << "ctrl: " << target.node->name() << " DOWN after "
                           << probe.consecutive_misses << " missed heartbeats";
        table_.Set(target.slot, ReplicaState::kDown);
      } else if (probe.consecutive_misses >= config_.suspect_after_misses &&
                 state == ReplicaState::kUp) {
        table_.Set(target.slot, ReplicaState::kSuspect);
      }
    }

    // Dispatch this round's probe unless the previous one is still stuck in
    // the node's queue (one outstanding probe per replica, like a heartbeat
    // connection).
    if (!probe.in_flight.exchange(true, std::memory_order_acq_rel)) {
      probe.dispatched = true;
      heartbeats_.fetch_add(1, std::memory_order_relaxed);
      heartbeats_total_->Increment();
      const std::shared_ptr<Probe> p = probes_[i];
      target.node->InvokeAsync([] {},
                               [p](AsyncResult<void> result) {
                                 if (result.ok()) {
                                   p->acked.store(true,
                                                  std::memory_order_release);
                                 }
                                 p->in_flight.store(false,
                                                    std::memory_order_release);
                               });
    }
  }
}

}  // namespace jdvs::ctrl

// Heartbeat failure detector.
//
// Probes every watched replica over the simulated net fabric: each round
// dispatches a no-op Invoke onto the replica's node, so a probe experiences
// exactly what a query would — network hops, queueing behind real work on a
// saturated pool, and NodeFailedError while the node's fail switch is set.
// The detector never reads Node::failed() directly; it only believes what
// the fabric tells it.
//
// Per-replica miss accounting drives the state machine in the shared
// ReplicaStateTable:
//
//   consecutive misses >= suspect_after  =>  UP -> SUSPECT
//   consecutive misses >= down_after     =>  SUSPECT -> DOWN
//   ack                                  =>  SUSPECT -> UP
//                                            DOWN -> UP (reinstate_on_ack,
//                                            the no-auto-recovery mode where
//                                            an operator revived the node)
//
// A probe that has not answered by the next round counts as a miss (slow
// node == suspect node); an explicit NodeFailedError also counts as a miss
// rather than an instant DOWN, so one transient blip cannot evict a
// replica. RECOVERING replicas belong to the recovery machinery and are not
// probed.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "ctrl/replica_state.h"
#include "net/node.h"
#include "obs/registry.h"

namespace jdvs::ctrl {

struct FailureDetectorConfig {
  Micros heartbeat_period_micros = 15'000;
  // Consecutive missed heartbeats before UP -> SUSPECT / -> DOWN.
  int suspect_after_misses = 1;
  int down_after_misses = 3;
  // When true (the mode without automatic recovery), a heartbeat ack from a
  // DOWN replica reinstates it to UP directly. With auto-recovery the
  // controller owns the DOWN -> RECOVERING -> UP leg instead.
  bool reinstate_on_ack = true;
  // Per-probe RPC timeout; 0 = 2x the heartbeat period. Without it a probe
  // whose message the fabric drops would stay in flight forever and this
  // replica would never be probed again (the one-outstanding-probe rule),
  // wedging detection right when the network is at its worst.
  Micros probe_timeout_micros = 0;
  // Latency-outlier ejection (the gray-failure defense): a replica whose
  // response-time EWMA (ReplicaStateTable::RecordLatency, fed by brokers)
  // exceeds factor x the median EWMA of its serving peers is marked SUSPECT
  // even though its heartbeats keep acking — heartbeats measure liveness,
  // not usefulness. 0 = off. SUSPECT still serves; the broker's candidate
  // ordering just stops preferring it.
  double latency_outlier_factor = 0.0;
  // Floor on the ejection threshold so quiet clusters (median ~ tens of
  // microseconds) don't eject on noise.
  Micros latency_outlier_min_micros = 1'000;
  // An ejected replica re-enters when its EWMA drops below this fraction of
  // the ejection threshold (hysteresis against flapping at the boundary).
  double latency_reenter_fraction = 0.7;
};

class FailureDetector {
 public:
  struct Target {
    Node* node;
    std::size_t slot;  // this replica's slot in the state table
  };

  FailureDetector(std::vector<Target> targets, ReplicaStateTable& table,
                  const FailureDetectorConfig& config = {},
                  obs::Registry* registry = nullptr);
  ~FailureDetector();

  FailureDetector(const FailureDetector&) = delete;
  FailureDetector& operator=(const FailureDetector&) = delete;

  void Start();
  void Stop();

  std::uint64_t heartbeats_sent() const {
    return heartbeats_.load(std::memory_order_relaxed);
  }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  // Replicas marked SUSPECT for latency (heartbeats passing) so far.
  std::uint64_t latency_ejections() const {
    return latency_ejections_.load(std::memory_order_relaxed);
  }

 private:
  // Probe outcome written by the node's pool thread, read by the detector
  // loop one round later.
  struct Probe {
    std::atomic<bool> in_flight{false};
    std::atomic<bool> acked{false};
    // Detector-thread private.
    int consecutive_misses = 0;
    bool dispatched = false;  // a probe has ever been sent to this replica
    // Currently ejected for latency; acks alone do not reinstate while set.
    bool latency_suspected = false;
  };

  void RunLoop();
  void ProbeRound();
  // Marks latency outliers SUSPECT / clears recovered ones, from the
  // replicas' EWMAs in the state table. Runs once per probe round.
  void EjectLatencyOutliers();

  std::vector<Target> targets_;
  ReplicaStateTable& table_;
  FailureDetectorConfig config_;
  // shared_ptr, not unique_ptr: the probe continuation runs on the target
  // node's pool and may still be queued there (e.g. behind a failed node's
  // backlog) when the detector is destroyed; the capture keeps the probe
  // alive until the last continuation finishes.
  std::vector<std::shared_ptr<Probe>> probes_;
  std::atomic<bool> stop_{false};
  std::thread loop_;
  std::atomic<std::uint64_t> heartbeats_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> latency_ejections_{0};
  obs::Counter* heartbeats_total_;
  obs::Counter* misses_total_;
  obs::Counter* latency_ejections_total_;
};

}  // namespace jdvs::ctrl

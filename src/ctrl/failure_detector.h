// Heartbeat failure detector.
//
// Probes every watched replica over the simulated net fabric: each round
// dispatches a no-op Invoke onto the replica's node, so a probe experiences
// exactly what a query would — network hops, queueing behind real work on a
// saturated pool, and NodeFailedError while the node's fail switch is set.
// The detector never reads Node::failed() directly; it only believes what
// the fabric tells it.
//
// Per-replica miss accounting drives the state machine in the shared
// ReplicaStateTable:
//
//   consecutive misses >= suspect_after  =>  UP -> SUSPECT
//   consecutive misses >= down_after     =>  SUSPECT -> DOWN
//   ack                                  =>  SUSPECT -> UP
//                                            DOWN -> UP (reinstate_on_ack,
//                                            the no-auto-recovery mode where
//                                            an operator revived the node)
//
// A probe that has not answered by the next round counts as a miss (slow
// node == suspect node); an explicit NodeFailedError also counts as a miss
// rather than an instant DOWN, so one transient blip cannot evict a
// replica. RECOVERING replicas belong to the recovery machinery and are not
// probed.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "ctrl/replica_state.h"
#include "net/node.h"
#include "obs/registry.h"

namespace jdvs::ctrl {

struct FailureDetectorConfig {
  Micros heartbeat_period_micros = 15'000;
  // Consecutive missed heartbeats before UP -> SUSPECT / -> DOWN.
  int suspect_after_misses = 1;
  int down_after_misses = 3;
  // When true (the mode without automatic recovery), a heartbeat ack from a
  // DOWN replica reinstates it to UP directly. With auto-recovery the
  // controller owns the DOWN -> RECOVERING -> UP leg instead.
  bool reinstate_on_ack = true;
};

class FailureDetector {
 public:
  struct Target {
    Node* node;
    std::size_t slot;  // this replica's slot in the state table
  };

  FailureDetector(std::vector<Target> targets, ReplicaStateTable& table,
                  const FailureDetectorConfig& config = {},
                  obs::Registry* registry = nullptr);
  ~FailureDetector();

  FailureDetector(const FailureDetector&) = delete;
  FailureDetector& operator=(const FailureDetector&) = delete;

  void Start();
  void Stop();

  std::uint64_t heartbeats_sent() const {
    return heartbeats_.load(std::memory_order_relaxed);
  }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  // Probe outcome written by the node's pool thread, read by the detector
  // loop one round later.
  struct Probe {
    std::atomic<bool> in_flight{false};
    std::atomic<bool> acked{false};
    // Detector-thread private.
    int consecutive_misses = 0;
    bool dispatched = false;  // a probe has ever been sent to this replica
  };

  void RunLoop();
  void ProbeRound();

  std::vector<Target> targets_;
  ReplicaStateTable& table_;
  FailureDetectorConfig config_;
  // shared_ptr, not unique_ptr: the probe continuation runs on the target
  // node's pool and may still be queued there (e.g. behind a failed node's
  // backlog) when the detector is destroyed; the capture keeps the probe
  // alive until the last continuation finishes.
  std::vector<std::shared_ptr<Probe>> probes_;
  std::atomic<bool> stop_{false};
  std::thread loop_;
  std::atomic<std::uint64_t> heartbeats_{0};
  std::atomic<std::uint64_t> misses_{0};
  obs::Counter* heartbeats_total_;
  obs::Counter* misses_total_;
};

}  // namespace jdvs::ctrl

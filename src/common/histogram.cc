#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <limits>

namespace jdvs {

Histogram::Histogram() { Reset(); }

Histogram::~Histogram() {
  delete exemplars_.load(std::memory_order_acquire);
}

void Histogram::EnableExemplars() {
  if (exemplars_.load(std::memory_order_acquire) != nullptr) return;
  auto* store = new ExemplarStore();
  ExemplarStore* expected = nullptr;
  if (!exemplars_.compare_exchange_strong(expected, store,
                                          std::memory_order_acq_rel)) {
    delete store;  // lost the install race; the winner's store is live
  }
}

void Histogram::RecordWithExemplar(std::int64_t value, std::uint64_t trace_id,
                                   std::uint64_t ref) noexcept {
  Record(value);
  if (trace_id == 0 && ref == 0) return;
  ExemplarStore* store = exemplars_.load(std::memory_order_acquire);
  if (store == nullptr) return;
  const std::int64_t clamped = std::clamp<std::int64_t>(value, 0, kMaxValue);
  ExemplarSlot& slot = store->slots[ExemplarSlotFor(clamped)];
  if (!slot.lock.try_lock()) return;  // contended: drop, never block
  slot.set = true;
  slot.exemplar = HistogramExemplar{clamped, trace_id, ref};
  slot.lock.unlock();
}

std::vector<HistogramExemplar> Histogram::Exemplars() const {
  std::vector<HistogramExemplar> out;
  const ExemplarStore* store = exemplars_.load(std::memory_order_acquire);
  if (store == nullptr) return out;
  for (const ExemplarSlot& slot : store->slots) {
    slot.lock.lock();
    if (slot.set) out.push_back(slot.exemplar);
    slot.lock.unlock();
  }
  std::sort(out.begin(), out.end(),
            [](const HistogramExemplar& a, const HistogramExemplar& b) {
              return a.value < b.value;
            });
  return out;
}

std::optional<HistogramExemplar> Histogram::ExemplarNear(
    std::int64_t value) const {
  const ExemplarStore* store = exemplars_.load(std::memory_order_acquire);
  if (store == nullptr) return std::nullopt;
  const auto want = static_cast<std::int64_t>(
      ExemplarSlotFor(std::clamp<std::int64_t>(value, 0, kMaxValue)));
  std::optional<HistogramExemplar> best;
  std::int64_t best_distance = 0;
  for (std::size_t i = 0; i < kExemplarSlots; ++i) {
    const ExemplarSlot& slot = store->slots[i];
    slot.lock.lock();
    const bool set = slot.set;
    const HistogramExemplar exemplar = slot.exemplar;
    slot.lock.unlock();
    if (!set) continue;
    const std::int64_t distance =
        std::abs(static_cast<std::int64_t>(i) - want);
    if (!best.has_value() || distance < best_distance) {
      best = exemplar;
      best_distance = distance;
    }
  }
  return best;
}

void Histogram::Reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<std::int64_t>::max(),
             std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::size_t Histogram::BucketFor(std::int64_t value) noexcept {
  const auto v = static_cast<std::uint64_t>(value);
  if (v < (1ULL << kSubBucketBits)) return static_cast<std::size_t>(v);
  const int msb = 63 - std::countl_zero(v);
  const int shift = msb - kSubBucketBits;
  const std::uint64_t mantissa = (v >> shift) & ((1ULL << kSubBucketBits) - 1);
  return (static_cast<std::size_t>(msb - kSubBucketBits + 1)
          << kSubBucketBits) +
         static_cast<std::size_t>(mantissa);
}

std::int64_t Histogram::BucketUpperBound(std::size_t bucket) noexcept {
  if (bucket < (1ULL << kSubBucketBits)) {
    return static_cast<std::int64_t>(bucket);
  }
  const std::size_t exponent = (bucket >> kSubBucketBits);
  const std::uint64_t mantissa = bucket & ((1ULL << kSubBucketBits) - 1);
  const int shift = static_cast<int>(exponent) - 1;
  const std::uint64_t base = (1ULL << kSubBucketBits) << shift;
  return static_cast<std::int64_t>(base + ((mantissa + 1) << shift) - 1);
}

void Histogram::Record(std::int64_t value) noexcept { RecordN(value, 1); }

void Histogram::RecordN(std::int64_t value, std::uint64_t count) noexcept {
  if (count == 0) return;
  value = std::clamp<std::int64_t>(value, 0, kMaxValue);
  buckets_[BucketFor(value)].fetch_add(count, std::memory_order_relaxed);
  count_.fetch_add(count, std::memory_order_relaxed);
  sum_.fetch_add(value * static_cast<std::int64_t>(count),
                 std::memory_order_relaxed);
  // CAS loops for min/max; contention is negligible at reporting accuracy.
  std::int64_t observed = min_.load(std::memory_order_relaxed);
  while (value < observed &&
         !min_.compare_exchange_weak(observed, value,
                                     std::memory_order_relaxed)) {
  }
  observed = max_.load(std::memory_order_relaxed);
  while (value > observed &&
         !max_.compare_exchange_weak(observed, value,
                                     std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::Count() const noexcept {
  return count_.load(std::memory_order_relaxed);
}

std::int64_t Histogram::Min() const noexcept {
  return Count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
}

std::int64_t Histogram::Max() const noexcept {
  return max_.load(std::memory_order_relaxed);
}

double Histogram::Mean() const noexcept {
  const auto n = Count();
  if (n == 0) return 0.0;
  return static_cast<double>(sum_.load(std::memory_order_relaxed)) /
         static_cast<double>(n);
}

std::int64_t Histogram::Quantile(double q) const noexcept {
  const auto total = Count();
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen > target || (seen == target && seen == total)) {
      return BucketUpperBound(i);
    }
  }
  return Max();
}

void Histogram::Merge(const Histogram& other) noexcept {
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    const auto c = other.buckets_[i].load(std::memory_order_relaxed);
    if (c != 0) buckets_[i].fetch_add(c, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  if (other.Count() != 0) {
    RecordN(other.Min(), 0);  // no-op count, keeps API symmetric
    std::int64_t v = other.min_.load(std::memory_order_relaxed);
    std::int64_t observed = min_.load(std::memory_order_relaxed);
    while (v < observed &&
           !min_.compare_exchange_weak(observed, v,
                                       std::memory_order_relaxed)) {
    }
    v = other.max_.load(std::memory_order_relaxed);
    observed = max_.load(std::memory_order_relaxed);
    while (v > observed &&
           !max_.compare_exchange_weak(observed, v,
                                       std::memory_order_relaxed)) {
    }
  }
}

std::vector<std::pair<std::int64_t, double>> Histogram::CdfPoints() const {
  std::vector<std::pair<std::int64_t, double>> points;
  const auto total = Count();
  if (total == 0) return points;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    const auto c = buckets_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    seen += c;
    points.emplace_back(BucketUpperBound(i),
                        static_cast<double>(seen) / static_cast<double>(total));
  }
  return points;
}

std::vector<std::pair<std::int64_t, std::uint64_t>>
Histogram::CumulativeBuckets() const {
  std::vector<std::pair<std::int64_t, std::uint64_t>> out;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    const auto c = buckets_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    seen += c;
    out.emplace_back(BucketUpperBound(i), seen);
  }
  return out;
}

}  // namespace jdvs

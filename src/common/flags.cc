#include "common/flags.h"

#include <algorithm>
#include <cstdlib>

namespace jdvs {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--", 0) != 0) {
      positional_.emplace_back(arg);
      continue;
    }
    const std::string_view body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq == std::string_view::npos) {
      values_[std::string(body)] = "true";
    } else {
      values_[std::string(body.substr(0, eq))] =
          std::string(body.substr(eq + 1));
    }
  }
}

bool Flags::Has(std::string_view key) const {
  queried_[std::string(key)] = true;
  return values_.find(std::string(key)) != values_.end();
}

std::string Flags::GetString(std::string_view key,
                             std::string_view default_value) const {
  queried_[std::string(key)] = true;
  const auto it = values_.find(std::string(key));
  return it == values_.end() ? std::string(default_value) : it->second;
}

std::int64_t Flags::GetInt(std::string_view key,
                           std::int64_t default_value) const {
  queried_[std::string(key)] = true;
  const auto it = values_.find(std::string(key));
  if (it == values_.end()) return default_value;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(std::string_view key, double default_value) const {
  queried_[std::string(key)] = true;
  const auto it = values_.find(std::string(key));
  if (it == values_.end()) return default_value;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(std::string_view key, bool default_value) const {
  queried_[std::string(key)] = true;
  const auto it = values_.find(std::string(key));
  if (it == values_.end()) return default_value;
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (v == "true" || v == "1" || v == "yes" || v.empty()) return true;
  if (v == "false" || v == "0" || v == "no") return false;
  return default_value;
}

std::vector<std::string> Flags::UnusedKeys() const {
  std::vector<std::string> unused;
  for (const auto& [key, value] : values_) {
    if (queried_.find(key) == queried_.end()) unused.push_back(key);
  }
  std::sort(unused.begin(), unused.end());
  return unused;
}

}  // namespace jdvs

// Fixed-size thread pool.
//
// Each simulated cluster node (searcher / broker / blender) owns a bounded
// pool, mirroring the per-server worker threads of the production deployment;
// background index-copy tasks (Figure 9) also run here.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/histogram.h"
#include "common/mpmc_queue.h"

namespace jdvs {

class ThreadPool {
 public:
  // `name` is informational (thread naming); `queue_capacity` bounds the
  // backlog so a saturated node exerts backpressure instead of growing
  // without bound.
  explicit ThreadPool(std::size_t num_threads, std::string name = "pool",
                      std::size_t queue_capacity = 16384);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Blocks if the queue is full. Returns false after Shutdown().
  bool Submit(std::function<void()> task);

  // Submit returning a future for the task's result.
  template <typename F>
  auto SubmitWithResult(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    if (!Submit([task] { (*task)(); })) {
      // Pool already shut down: run inline so the future is always fulfilled.
      (*task)();
    }
    return result;
  }

  // Drains queued tasks, then joins all workers. Idempotent.
  void Shutdown();

  std::size_t num_threads() const { return threads_.size(); }
  std::size_t pending() const { return queue_.size(); }

  // Saturation stats (exported as jdvs_pool_* gauges by the cluster):
  // workers currently executing a task, tasks queued behind them, and the
  // high-water marks of both since construction / the last ResetPeakStats().
  // A pool whose threads park in blocking waits shows busy == num_threads
  // with a growing queue; the continuation-passing pipeline keeps busy low.
  std::size_t busy_threads() const {
    return busy_.load(std::memory_order_relaxed);
  }
  std::size_t peak_busy_threads() const {
    return peak_busy_.load(std::memory_order_relaxed);
  }
  std::size_t queue_depth() const { return queue_.size(); }
  std::size_t peak_queue_depth() const {
    return peak_queue_.load(std::memory_order_relaxed);
  }
  void ResetPeakStats();

  // Attaches a histogram that receives each task's queue-wait time
  // (Submit -> dequeue, in microseconds; `jdvs_pool_queue_wait_micros` in
  // the cluster). The histogram must outlive the pool. Tasks submitted
  // while no histogram is attached are not timestamped, so the fully
  // detached pool pays nothing. Pass nullptr to detach.
  void set_queue_wait_histogram(Histogram* histogram) {
    queue_wait_.store(histogram, std::memory_order_release);
  }

 private:
  struct Item {
    std::function<void()> fn;
    Micros enqueued_micros = 0;  // 0 = not timestamped
  };

  void WorkerLoop();
  static void UpdateMax(std::atomic<std::size_t>& peak, std::size_t value);

  MpmcQueue<Item> queue_;
  std::vector<std::thread> threads_;
  std::string name_;
  std::atomic<std::size_t> busy_{0};
  std::atomic<std::size_t> peak_busy_{0};
  std::atomic<std::size_t> peak_queue_{0};
  std::atomic<Histogram*> queue_wait_{nullptr};
};

}  // namespace jdvs

// A bounded, blocking multi-producer multi-consumer queue.
//
// Used as the backbone of the message queue substrate (Section 2.3 consumes
// product-update messages from a message queue) and of node work queues in
// the simulated cluster. Close() unblocks all waiters; a closed queue drains
// remaining elements before reporting exhaustion, which is exactly the
// semantics the end-of-day full-indexing replay needs.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace jdvs {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t capacity) : capacity_(capacity) {}

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  // Blocks while full. Returns false if the queue was closed.
  //
  // All notifies below happen while holding mu_. Signaling after unlock
  // would let a consumer observe the element, finish, and have the owner
  // destroy the queue while this thread is still inside notify on the freed
  // condition variable (a lifetime race, e.g. the last work item of a pool
  // fulfilling the promise its owner is joined on).
  bool Push(T value) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking push; false if full or closed.
  bool TryPush(T value) {
    std::lock_guard lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  // Blocks while empty. Returns nullopt once closed *and* drained.
  std::optional<T> Pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return value;
  }

  // Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard lock(mu_);
    if (items_.empty()) return std::nullopt;
    std::optional<T> value = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return value;
  }

  void Close() {
    std::lock_guard lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace jdvs

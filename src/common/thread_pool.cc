#include "common/thread_pool.h"

#include <algorithm>

namespace jdvs {

ThreadPool::ThreadPool(std::size_t num_threads, std::string name,
                       std::size_t queue_capacity)
    : queue_(queue_capacity), name_(std::move(name)) {
  threads_.reserve(std::max<std::size_t>(num_threads, 1));
  for (std::size_t i = 0; i < std::max<std::size_t>(num_threads, 1); ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  return queue_.Push(std::move(task));
}

void ThreadPool::Shutdown() {
  queue_.Close();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

void ThreadPool::WorkerLoop() {
  while (auto task = queue_.Pop()) {
    (*task)();
  }
}

}  // namespace jdvs

#include "common/thread_pool.h"

#include <algorithm>

namespace jdvs {

ThreadPool::ThreadPool(std::size_t num_threads, std::string name,
                       std::size_t queue_capacity)
    : queue_(queue_capacity), name_(std::move(name)) {
  threads_.reserve(std::max<std::size_t>(num_threads, 1));
  for (std::size_t i = 0; i < std::max<std::size_t>(num_threads, 1); ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  // Peak depth is sampled *before* the push. Once the task lands, a worker
  // may run it to completion and the task may release whatever keeps this
  // pool's owner alive (e.g. fulfil the promise a caller is blocked on), so
  // no member of the pool can be touched after Push returns.
  UpdateMax(peak_queue_, queue_.size() + 1);
  Item item{std::move(task), 0};
  if (queue_wait_.load(std::memory_order_acquire) != nullptr) {
    item.enqueued_micros = MonotonicClock::Instance().NowMicros();
  }
  return queue_.Push(std::move(item));
}

void ThreadPool::ResetPeakStats() {
  peak_busy_.store(busy_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  peak_queue_.store(queue_.size(), std::memory_order_relaxed);
}

void ThreadPool::UpdateMax(std::atomic<std::size_t>& peak, std::size_t value) {
  std::size_t current = peak.load(std::memory_order_relaxed);
  while (current < value &&
         !peak.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

void ThreadPool::Shutdown() {
  queue_.Close();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

void ThreadPool::WorkerLoop() {
  while (auto item = queue_.Pop()) {
    if (item->enqueued_micros != 0) {
      if (Histogram* h = queue_wait_.load(std::memory_order_acquire)) {
        h->Record(MonotonicClock::Instance().NowMicros() -
                  item->enqueued_micros);
      }
    }
    UpdateMax(peak_busy_, busy_.fetch_add(1, std::memory_order_relaxed) + 1);
    (item->fn)();
    busy_.fetch_sub(1, std::memory_order_relaxed);
  }
}

}  // namespace jdvs

#ifndef JDVS_COMMON_CRC32C_H_
#define JDVS_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace jdvs {

// CRC-32C (Castagnoli, reflected polynomial 0x82F63B78) — the checksum used
// for snapshot payload segments. Software table-driven implementation so it
// works on every target; segments are verified once per residency, not per
// scan, so this is never on the warmed hot path.
//
// Incremental use: crc = Crc32c(chunk2, n2, Crc32c(chunk1, n1)).
std::uint32_t Crc32c(const void* data, std::size_t size, std::uint32_t seed = 0);

}  // namespace jdvs

#endif  // JDVS_COMMON_CRC32C_H_

#include "common/rng.h"

#include <cmath>

#include "common/hash.h"

namespace jdvs {
namespace {

constexpr std::uint64_t Rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // SplitMix64 expansion of the seed into the xoshiro state; guarantees a
  // non-zero state for any seed.
  std::uint64_t s = seed;
  for (auto& word : state_) {
    s += 0x9e3779b97f4a7c15ULL;
    word = Mix64(s);
  }
}

std::uint64_t Rng::Next64() noexcept {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::Below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = Next64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::Uniform(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? Next64() : Below(span));
}

double Rng::NextDouble() noexcept {
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() noexcept {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u;
  double v;
  double s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * factor;
  has_spare_gaussian_ = true;
  return u * factor;
}

double Rng::NextExponential(double mean) noexcept {
  // 1 - NextDouble() is in (0, 1], so the log is finite.
  return -mean * std::log(1.0 - NextDouble());
}

Rng Rng::Fork() noexcept { return Rng(Next64()); }

}  // namespace jdvs

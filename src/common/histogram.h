// Log-bucketed latency histogram.
//
// The paper reports average / p90 / p99 / max latencies and full response
// time CDFs (Figures 11(b), 12(b), 13(b)). This histogram records
// microsecond-scale values into exponentially sized buckets (HdrHistogram
// style, ~4% relative error), is lock-free on the record path so searcher
// threads can record under load, and supports merging across threads/nodes.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/spinlock.h"

namespace jdvs {

// A recent observation attached to a histogram bucket range, linking an
// aggregate (e.g. a p99 spike) back to a concrete query. `trace_id` is the
// sampled-trace id (0 when the query was not trace-sampled) and `ref` is a
// secondary correlation id -- the flight-recorder ordinal in the query path
// -- so even unsampled observations stay findable.
struct HistogramExemplar {
  std::int64_t value = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t ref = 0;
};

class Histogram {
 public:
  Histogram();
  ~Histogram();

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  // Thread-safe, wait-free. Values are clamped to [0, kMaxValue].
  void Record(std::int64_t value) noexcept;
  void RecordN(std::int64_t value, std::uint64_t count) noexcept;

  // Like Record, but also remembers (value, trace_id, ref) as the exemplar
  // for the value's magnitude class when exemplars are enabled. The exemplar
  // write uses try_lock and may be skipped under contention; the count is
  // always recorded. A call with trace_id == 0 && ref == 0 degrades to
  // Record().
  void RecordWithExemplar(std::int64_t value, std::uint64_t trace_id,
                          std::uint64_t ref = 0) noexcept;

  // Allocates the exemplar side-table (one slot per power-of-two magnitude
  // class, ~2 KiB). Idempotent and safe to race with recorders; exemplars
  // recorded before the first Enable call are dropped.
  void EnableExemplars();
  bool exemplars_enabled() const noexcept {
    return exemplars_.load(std::memory_order_acquire) != nullptr;
  }

  // Accessors are linearizable enough for reporting (relaxed reads).
  std::uint64_t Count() const noexcept;
  std::int64_t Min() const noexcept;  // 0 when empty
  std::int64_t Max() const noexcept;  // 0 when empty
  double Mean() const noexcept;       // 0 when empty
  std::int64_t Sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

  // q in [0, 1]. Returns an upper bound of the bucket containing quantile q.
  std::int64_t Quantile(double q) const noexcept;
  std::int64_t P50() const noexcept { return Quantile(0.50); }
  std::int64_t P90() const noexcept { return Quantile(0.90); }
  std::int64_t P99() const noexcept { return Quantile(0.99); }

  // Adds other's counts into this histogram.
  void Merge(const Histogram& other) noexcept;

  void Reset() noexcept;

  // (upper_bound, cumulative_fraction) pairs over non-empty buckets; the
  // input to CDF plots (Figure 13(b)).
  std::vector<std::pair<std::int64_t, double>> CdfPoints() const;

  // (upper_bound, cumulative_count) pairs over non-empty buckets; the input
  // to Prometheus `_bucket{le="..."}` exposition.
  std::vector<std::pair<std::int64_t, std::uint64_t>> CumulativeBuckets() const;

  // Snapshot of current exemplars, sorted by value ascending. Empty when
  // exemplars are disabled or none were recorded.
  std::vector<HistogramExemplar> Exemplars() const;

  // The exemplar whose magnitude class is closest to `value` (the exact
  // class, else the nearest recorded one). Use with Quantile() to jump from
  // "p99 is X" to a concrete trace/flight-record id.
  std::optional<HistogramExemplar> ExemplarNear(std::int64_t value) const;

  static constexpr std::int64_t kMaxValue = 1LL << 40;  // ~12.7 days in us

  // Bucket layout: 64 value bits split into (exponent, 5-bit mantissa)
  // sub-buckets => at most 64*32 buckets; values < 32 map exactly. The two
  // mapping functions are exposed so exposition consumers and tests can
  // compute `le` bounds without hardcoding the layout.
  static constexpr int kSubBucketBits = 5;
  static constexpr std::size_t kNumBuckets = 64 << kSubBucketBits;

  static std::size_t BucketFor(std::int64_t value) noexcept;
  static std::int64_t BucketUpperBound(std::size_t bucket) noexcept;

 private:

  // One exemplar slot per exponent class (BucketFor(value) >> kSubBucketBits,
  // i.e. at most 64 classes). Writers take the slot lock with try_lock so the
  // record path never blocks; readers take it briefly to copy 24 bytes.
  static constexpr std::size_t kExemplarSlots = 64;
  struct ExemplarSlot {
    mutable SpinLock lock;
    bool set = false;
    HistogramExemplar exemplar;
  };
  struct ExemplarStore {
    std::array<ExemplarSlot, kExemplarSlots> slots;
  };

  static std::size_t ExemplarSlotFor(std::int64_t value) noexcept {
    return BucketFor(value) >> kSubBucketBits;
  }

  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_;
  std::atomic<std::uint64_t> count_;
  std::atomic<std::int64_t> sum_;
  std::atomic<std::int64_t> min_;
  std::atomic<std::int64_t> max_;
  std::atomic<ExemplarStore*> exemplars_{nullptr};
};

}  // namespace jdvs

// Log-bucketed latency histogram.
//
// The paper reports average / p90 / p99 / max latencies and full response
// time CDFs (Figures 11(b), 12(b), 13(b)). This histogram records
// microsecond-scale values into exponentially sized buckets (HdrHistogram
// style, ~4% relative error), is lock-free on the record path so searcher
// threads can record under load, and supports merging across threads/nodes.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

namespace jdvs {

class Histogram {
 public:
  Histogram();

  // Thread-safe, wait-free. Values are clamped to [0, kMaxValue].
  void Record(std::int64_t value) noexcept;
  void RecordN(std::int64_t value, std::uint64_t count) noexcept;

  // Accessors are linearizable enough for reporting (relaxed reads).
  std::uint64_t Count() const noexcept;
  std::int64_t Min() const noexcept;  // 0 when empty
  std::int64_t Max() const noexcept;  // 0 when empty
  double Mean() const noexcept;       // 0 when empty
  std::int64_t Sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

  // q in [0, 1]. Returns an upper bound of the bucket containing quantile q.
  std::int64_t Quantile(double q) const noexcept;
  std::int64_t P50() const noexcept { return Quantile(0.50); }
  std::int64_t P90() const noexcept { return Quantile(0.90); }
  std::int64_t P99() const noexcept { return Quantile(0.99); }

  // Adds other's counts into this histogram.
  void Merge(const Histogram& other) noexcept;

  void Reset() noexcept;

  // (upper_bound, cumulative_fraction) pairs over non-empty buckets; the
  // input to CDF plots (Figure 13(b)).
  std::vector<std::pair<std::int64_t, double>> CdfPoints() const;

  static constexpr std::int64_t kMaxValue = 1LL << 40;  // ~12.7 days in us

 private:
  // Bucket layout: 64 value bits split into (exponent, 5-bit mantissa)
  // sub-buckets => at most 64*32 buckets; values < 32 map exactly.
  static constexpr int kSubBucketBits = 5;
  static constexpr std::size_t kNumBuckets = 64 << kSubBucketBits;

  static std::size_t BucketFor(std::int64_t value) noexcept;
  static std::int64_t BucketUpperBound(std::size_t bucket) noexcept;

  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_;
  std::atomic<std::uint64_t> count_;
  std::atomic<std::int64_t> sum_;
  std::atomic<std::int64_t> min_;
  std::atomic<std::int64_t> max_;
};

}  // namespace jdvs

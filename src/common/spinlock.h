// A tiny test-and-test-and-set spinlock for very short critical sections
// (per-shard KV buckets, metrics counters). Satisfies Lockable so it works
// with std::lock_guard / std::scoped_lock.
#pragma once

#include <atomic>

namespace jdvs {

class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() noexcept {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
      }
    }
  }

  bool try_lock() noexcept {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace jdvs

// Hashing utilities used across the system: stable 64-bit string hashing for
// partitioning image URLs (Section 2.4 of the paper partitions the index by
// hashing the image URL) and integer mixing for deterministic synthetic data.
#pragma once

#include <cstdint>
#include <string_view>

namespace jdvs {

// FNV-1a 64-bit. Stable across platforms and runs, which matters because the
// partition assignment of an image must be identical on every node.
constexpr std::uint64_t Fnv1a64(std::string_view data) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// SplitMix64 finalizer: a strong 64-bit integer mixer. Used to derive
// independent-looking streams from (seed, counter) pairs.
constexpr std::uint64_t Mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Combines two 64-bit hashes (boost::hash_combine style, 64-bit constants).
constexpr std::uint64_t HashCombine(std::uint64_t a, std::uint64_t b) noexcept {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

}  // namespace jdvs

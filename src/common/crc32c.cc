#include "common/crc32c.h"

#include <array>

namespace jdvs {
namespace {

// Slice-by-4 tables for the reflected Castagnoli polynomial. Built once at
// first use; ~4 GB/s in scalar code, which is plenty for once-per-residency
// verification of payload segments.
struct Crc32cTables {
  std::array<std::array<std::uint32_t, 256>, 4> t;

  Crc32cTables() {
    constexpr std::uint32_t kPoly = 0x82F63B78u;
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) ? (crc >> 1) ^ kPoly : (crc >> 1);
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

std::uint32_t Crc32c(const void* data, std::size_t size, std::uint32_t seed) {
  const auto& t = Tables().t;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  while (size >= 4) {
    crc ^= static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
    crc = t[3][crc & 0xFFu] ^ t[2][(crc >> 8) & 0xFFu] ^
          t[1][(crc >> 16) & 0xFFu] ^ t[0][crc >> 24];
    p += 4;
    size -= 4;
  }
  while (size-- > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFFu];
  }
  return ~crc;
}

}  // namespace jdvs

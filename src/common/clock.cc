#include "common/clock.h"

namespace jdvs {

Micros MonotonicClock::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const MonotonicClock& MonotonicClock::Instance() {
  static const MonotonicClock clock;
  return clock;
}

}  // namespace jdvs

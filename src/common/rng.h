// Deterministic random number generation.
//
// Every stochastic component in the reproduction (synthetic features, update
// traces, latency models) draws from an explicitly seeded Rng so that tests
// and benchmarks are reproducible run-to-run. xoshiro256** core with a
// SplitMix64 seeder; small, fast, and good enough statistically for
// simulation workloads.
#pragma once

#include <array>
#include <cstdint>

namespace jdvs {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) noexcept;

  // UniformRandomBitGenerator interface so Rng works with <random> and
  // <algorithm> facilities (e.g. std::shuffle).
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept { return Next64(); }

  std::uint64_t Next64() noexcept;

  // Uniform in [0, bound). bound must be > 0. Uses Lemire's multiply-shift
  // rejection method (unbiased).
  std::uint64_t Below(std::uint64_t bound) noexcept;

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t Uniform(std::int64_t lo, std::int64_t hi) noexcept;

  // Uniform double in [0, 1).
  double NextDouble() noexcept;

  // Standard normal via Box-Muller (caches the spare deviate).
  double NextGaussian() noexcept;

  // Bernoulli trial with probability p of returning true.
  bool NextBool(double p) noexcept { return NextDouble() < p; }

  // Exponential deviate with the given mean (> 0).
  double NextExponential(double mean) noexcept;

  // Forks an independent generator; deterministic in (this stream, call#).
  Rng Fork() noexcept;

 private:
  std::array<std::uint64_t, 4> state_;
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

}  // namespace jdvs

// Minimal leveled logger.
//
// Benchmarks and examples print their results via stdout directly; the
// logger is for operational messages (node lifecycle, failover, index
// expansion) and is rate-friendly: level filtering happens before any
// formatting work.
#pragma once

#include <sstream>
#include <string>

namespace jdvs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Process-wide minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

void EmitLog(LogLevel level, const std::string& message);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { EmitLog(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace jdvs

#define JDVS_LOG(level)                                        \
  if (static_cast<int>(::jdvs::LogLevel::level) <              \
      static_cast<int>(::jdvs::GetLogLevel())) {               \
  } else                                                       \
    ::jdvs::internal::LogMessage(::jdvs::LogLevel::level)

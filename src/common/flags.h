// Minimal command-line flag parsing for the examples and bench harnesses.
//
// Supports `--key=value` and bare `--key` (boolean true); everything else is
// positional. No registry, no global state: parse once, query typed values
// with defaults.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace jdvs {

class Flags {
 public:
  Flags(int argc, const char* const* argv);

  bool Has(std::string_view key) const;

  std::string GetString(std::string_view key,
                        std::string_view default_value) const;
  std::int64_t GetInt(std::string_view key, std::int64_t default_value) const;
  double GetDouble(std::string_view key, double default_value) const;
  // Bare `--key` and `--key=true/1/yes` are true; `--key=false/0/no` false.
  bool GetBool(std::string_view key, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Keys that were parsed but never queried — typo detection for harnesses.
  std::vector<std::string> UnusedKeys() const;

 private:
  std::unordered_map<std::string, std::string> values_;
  mutable std::unordered_map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace jdvs

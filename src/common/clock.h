// Clocks.
//
// The production system measures wall-clock latency; the reproduction also
// needs a *simulated* clock so a 24-hour trace (Figure 11) can be replayed in
// seconds. Components take a Clock& so tests can substitute a ManualClock.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace jdvs {

// Microseconds since an arbitrary epoch.
using Micros = std::int64_t;

class Clock {
 public:
  virtual ~Clock() = default;
  virtual Micros NowMicros() const = 0;
};

// Real monotonic time.
class MonotonicClock final : public Clock {
 public:
  Micros NowMicros() const override;

  // Process-wide instance (stateless, safe to share).
  static const MonotonicClock& Instance();
};

// A clock advanced explicitly by the test/simulation driver. Thread-safe.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(Micros start = 0) : now_(start) {}

  Micros NowMicros() const override {
    return now_.load(std::memory_order_relaxed);
  }
  void AdvanceMicros(Micros delta) {
    now_.fetch_add(delta, std::memory_order_relaxed);
  }
  void SetMicros(Micros t) { now_.store(t, std::memory_order_relaxed); }

 private:
  std::atomic<Micros> now_;
};

// Simple stopwatch over a Clock.
class Stopwatch {
 public:
  explicit Stopwatch(const Clock& clock)
      : clock_(&clock), start_(clock.NowMicros()) {}

  Micros ElapsedMicros() const { return clock_->NowMicros() - start_; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) * 1e-6;
  }
  void Restart() { start_ = clock_->NowMicros(); }

 private:
  const Clock* clock_;
  Micros start_;
};

}  // namespace jdvs

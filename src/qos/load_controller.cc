#include "qos/load_controller.h"

#include <algorithm>

namespace jdvs::qos {

LoadController::LoadController(const LoadControlConfig& config,
                               const Clock& clock, obs::Registry* registry)
    : config_(config), clock_(&clock) {
  config_.window_micros = std::max<Micros>(config_.window_micros, 1);
  config_.max_level = std::max(config_.max_level, 0);
  config_.upgrade_after_windows = std::max(config_.upgrade_after_windows, 1);
  config_.downgrade_after_windows =
      std::max(config_.downgrade_after_windows, 1);
  window_end_.store(clock_->NowMicros() + config_.window_micros,
                    std::memory_order_relaxed);
  obs::Registry& reg =
      registry != nullptr ? *registry : obs::Registry::Default();
  level_gauge_ = &reg.GetGauge("jdvs_qos_degradation_level");
  steps_up_total_ = &reg.GetCounter("jdvs_qos_degradation_steps_up_total");
  steps_down_total_ = &reg.GetCounter("jdvs_qos_degradation_steps_down_total");
}

void LoadController::Observe(Micros latency_micros, std::size_t in_flight) {
  window_.Record(latency_micros);
  std::size_t peak = window_peak_in_flight_.load(std::memory_order_relaxed);
  while (peak < in_flight &&
         !window_peak_in_flight_.compare_exchange_weak(
             peak, in_flight, std::memory_order_relaxed)) {
  }
  const Micros now = clock_->NowMicros();
  if (now >= window_end_.load(std::memory_order_relaxed)) MaybeRotate(now);
}

void LoadController::Poll() {
  const Micros now = clock_->NowMicros();
  if (now >= window_end_.load(std::memory_order_relaxed)) MaybeRotate(now);
}

void LoadController::MaybeRotate(Micros now) {
  std::lock_guard lock(rotate_mu_);
  if (now < window_end_.load(std::memory_order_relaxed)) return;  // raced

  const std::uint64_t samples = window_.Count();
  const Micros p99 = samples >= config_.min_window_samples ? window_.P99() : 0;
  const std::size_t peak =
      window_peak_in_flight_.exchange(0, std::memory_order_relaxed);
  window_.Reset();
  window_end_.store(now + config_.window_micros, std::memory_order_relaxed);

  const bool p99_enabled =
      config_.p99_degrade_micros > 0 && samples >= config_.min_window_samples;
  const bool depth_enabled = config_.queue_degrade_depth > 0;
  const bool overloaded =
      (p99_enabled && p99 >= config_.p99_degrade_micros) ||
      (depth_enabled && peak >= config_.queue_degrade_depth);
  // Calm requires clear air *below* the thresholds (calm_fraction); the band
  // between calm and overloaded holds the current level.
  const bool calm =
      (!p99_enabled ||
       static_cast<double>(p99) <
           config_.calm_fraction *
               static_cast<double>(config_.p99_degrade_micros)) &&
      (!depth_enabled ||
       static_cast<double>(peak) <
           config_.calm_fraction *
               static_cast<double>(config_.queue_degrade_depth));

  int level = level_.load(std::memory_order_relaxed);
  if (overloaded) {
    calm_streak_ = 0;
    if (++overloaded_streak_ >= config_.upgrade_after_windows &&
        level < config_.max_level) {
      level_.store(++level, std::memory_order_relaxed);
      level_gauge_->Set(level);
      steps_up_.fetch_add(1, std::memory_order_relaxed);
      steps_up_total_->Increment();
      overloaded_streak_ = 0;  // a further step needs a fresh streak
      if (step_up_listener_) step_up_listener_(level);
    }
  } else if (calm) {
    overloaded_streak_ = 0;
    if (++calm_streak_ >= config_.downgrade_after_windows && level > 0) {
      level_.store(--level, std::memory_order_relaxed);
      level_gauge_->Set(level);
      steps_down_.fetch_add(1, std::memory_order_relaxed);
      steps_down_total_->Increment();
      calm_streak_ = 0;
    }
  } else {
    overloaded_streak_ = 0;
    calm_streak_ = 0;
  }
}

}  // namespace jdvs::qos

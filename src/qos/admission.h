// Priority-aware admission controller.
//
// Replaces the blender's bare in-flight counter with a two-class admission
// policy: a shared in-flight budget (queue-depth control), a separate cap
// on the background class so recovery catch-up and probe traffic can never
// occupy more than its share of slots, and an optional token bucket that
// bounds the *rate* of admissions independently of their concurrency (a
// burst of cheap queries can exhaust slots slowly but still melt the
// extraction stage).
//
// Admission returns a movable RAII Ticket; releasing the ticket (or letting
// it die) frees the slot, so every completion path — success, broker
// failure, dropped continuation chain — gives the slot back exactly once.
// The slot check is lock-free (the same fetch_add/fetch_sub discipline the
// blender used); only the token bucket takes a mutex, and only when a rate
// is configured.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string_view>

#include "common/clock.h"
#include "obs/registry.h"
#include "qos/deadline.h"

namespace jdvs::qos {

struct AdmissionConfig {
  // Total queries in flight (queued + executing) before new ones are shed;
  // 0 = unlimited. Interactive traffic may use every slot.
  std::size_t max_in_flight = 0;
  // Cap on background-class in-flight queries (applies on top of the shared
  // limit); 0 = no extra cap. Size it well below max_in_flight so recovery
  // traffic cannot starve users.
  std::size_t max_background_in_flight = 0;
  // Token bucket on admissions per second across both classes; 0 = off.
  double tokens_per_sec = 0.0;
  // Bucket depth; 0 = one second of tokens.
  double token_burst = 0.0;
};

class AdmissionController {
 public:
  // RAII admission slot. Default-constructed = not held.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept
        : owner_(other.owner_), priority_(other.priority_) {
      other.owner_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        owner_ = other.owner_;
        priority_ = other.priority_;
        other.owner_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

    bool held() const { return owner_ != nullptr; }
    // Frees the slot; idempotent.
    void Release() noexcept {
      if (owner_ != nullptr) {
        owner_->Release(priority_);
        owner_ = nullptr;
      }
    }

   private:
    friend class AdmissionController;
    Ticket(AdmissionController* owner, Priority priority)
        : owner_(owner), priority_(priority) {}

    AdmissionController* owner_ = nullptr;
    Priority priority_ = Priority::kInteractive;
  };

  // `registry` (null = process-global default) receives the shared
  // jdvs_qos_admitted_total / jdvs_qos_shed_total counters and in-flight
  // gauges, labeled by class.
  explicit AdmissionController(const AdmissionConfig& config,
                               const Clock& clock = MonotonicClock::Instance(),
                               obs::Registry* registry = nullptr);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  // One admission decision: a Ticket when the query may proceed, nullopt
  // when it must be shed (slots exhausted, background share exhausted, or
  // token bucket empty).
  std::optional<Ticket> TryAdmit(Priority priority);

  std::size_t total_in_flight() const {
    return total_in_flight_.load(std::memory_order_relaxed);
  }
  std::size_t in_flight(Priority priority) const {
    return in_flight_[Index(priority)].load(std::memory_order_relaxed);
  }
  std::uint64_t admitted(Priority priority) const {
    return admitted_[Index(priority)].load(std::memory_order_relaxed);
  }
  std::uint64_t shed(Priority priority) const {
    return shed_[Index(priority)].load(std::memory_order_relaxed);
  }
  const AdmissionConfig& config() const { return config_; }

 private:
  static constexpr std::size_t Index(Priority priority) {
    return static_cast<std::size_t>(priority);
  }

  void Release(Priority priority) noexcept;
  bool TakeToken();

  AdmissionConfig config_;
  const Clock* clock_;

  std::atomic<std::size_t> total_in_flight_{0};
  std::atomic<std::size_t> in_flight_[2] = {};
  std::atomic<std::uint64_t> admitted_[2] = {};
  std::atomic<std::uint64_t> shed_[2] = {};

  // Token bucket (only touched when tokens_per_sec > 0).
  std::mutex bucket_mu_;
  double tokens_ = 0.0;       // guarded by bucket_mu_
  Micros last_refill_ = 0;    // guarded by bucket_mu_

  obs::Counter* admitted_total_[2];
  obs::Counter* shed_total_[2];
  obs::Gauge* in_flight_gauge_[2];
};

}  // namespace jdvs::qos

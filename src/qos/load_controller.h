// Adaptive degradation controller.
//
// Watches the cluster's recent health — p99 of completed-query latency and
// peak in-flight depth over a short rolling window — and exposes a small
// integer *degradation level* the blenders consult per query:
//
//   level 0   full effort
//   level 1   shrink nprobe to the configured degraded value (the IVF
//             recall knob: fewer inverted lists scanned per searcher)
//   level 2   additionally skip attribute re-ranking (distance order only)
//
// Stepping up is eager (one overloaded window per step by default);
// stepping down requires several consecutive calm windows *below a fraction
// of the trigger thresholds* — hysteresis in both streak length and
// threshold, so the level doesn't flap at the boundary. The current level is
// a relaxed atomic read on the query path; window rotation runs under a
// mutex on whichever completion thread crosses the window boundary first.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>

#include "common/clock.h"
#include "common/histogram.h"
#include "obs/registry.h"

namespace jdvs::qos {

struct LoadControlConfig {
  // Step-up triggers; either crossing marks the window overloaded. 0
  // disables that trigger.
  Micros p99_degrade_micros = 0;
  std::size_t queue_degrade_depth = 0;
  // Rolling evaluation window.
  Micros window_micros = 250'000;
  // Top of the degradation ladder (2 = nprobe shrink + rerank skip).
  int max_level = 2;
  // Consecutive overloaded windows per step up / calm windows per step down.
  int upgrade_after_windows = 1;
  int downgrade_after_windows = 4;
  // A window is calm only when p99 and depth sit below this fraction of
  // their trigger thresholds (the hysteresis band; in between, hold level).
  double calm_fraction = 0.7;
  // Windows with fewer latency samples than this don't evaluate the p99
  // trigger (a lone straggler isn't an overload signal).
  std::uint64_t min_window_samples = 8;
};

class LoadController {
 public:
  explicit LoadController(const LoadControlConfig& config,
                          const Clock& clock = MonotonicClock::Instance(),
                          obs::Registry* registry = nullptr);

  LoadController(const LoadController&) = delete;
  LoadController& operator=(const LoadController&) = delete;

  // Current degradation level; the per-query read.
  int level() const { return level_.load(std::memory_order_relaxed); }

  // Feed one completed query: its end-to-end latency and the admission
  // in-flight depth observed at completion. Rotates/evaluates the window
  // when its end has passed.
  void Observe(Micros latency_micros, std::size_t in_flight);

  // Rotate/evaluate if the window elapsed without traffic — so a level
  // stuck high by a vanished load steps down for readers (e.g. the ctrl
  // recovery backoff loop) even while no queries complete.
  void Poll();

  // Called (with the new level) after every step *up* the ladder — the
  // "cluster just degraded itself" anomaly hook the flight recorder dumps
  // on. Invoked under the rotation mutex from whichever completion thread
  // crossed the window boundary, so the listener must be cheap and must not
  // re-enter this controller.
  void SetStepUpListener(std::function<void(int)> listener) {
    std::lock_guard lock(rotate_mu_);
    step_up_listener_ = std::move(listener);
  }

  std::uint64_t steps_up() const {
    return steps_up_.load(std::memory_order_relaxed);
  }
  std::uint64_t steps_down() const {
    return steps_down_.load(std::memory_order_relaxed);
  }
  const LoadControlConfig& config() const { return config_; }

 private:
  void MaybeRotate(Micros now);

  LoadControlConfig config_;
  const Clock* clock_;

  // Current window: lock-free recording, reset at rotation. A Record racing
  // a Reset can lose a sample — acceptable for a control signal.
  Histogram window_;
  std::atomic<std::size_t> window_peak_in_flight_{0};
  std::atomic<Micros> window_end_;

  std::atomic<int> level_{0};
  std::atomic<std::uint64_t> steps_up_{0};
  std::atomic<std::uint64_t> steps_down_{0};

  std::mutex rotate_mu_;
  int overloaded_streak_ = 0;  // guarded by rotate_mu_
  int calm_streak_ = 0;        // guarded by rotate_mu_
  std::function<void(int)> step_up_listener_;  // guarded by rotate_mu_

  obs::Gauge* level_gauge_;
  obs::Counter* steps_up_total_;
  obs::Counter* steps_down_total_;
};

}  // namespace jdvs::qos

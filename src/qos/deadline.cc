#include "qos/deadline.h"

namespace jdvs::qos {

bool IsDeadlineExceeded(const std::exception_ptr& error) {
  if (!error) return false;
  try {
    std::rethrow_exception(error);
  } catch (const DeadlineExceededError&) {
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace jdvs::qos

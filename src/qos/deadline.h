// QoS vocabulary types: latency budgets and priority classes.
//
// A Deadline is an absolute point on the monotonic clock, stamped once by
// the blender when a query is admitted (budget -> now + budget) and carried
// through the broker and searcher continuations. Every tier calls Expired()
// before doing work and fails fast with DeadlineExceededError instead of
// computing an answer nobody will read — the staged-degradation discipline
// of "Web-Scale Responsive Visual Search at Bing" applied to the paper's
// 3-level architecture. The default-constructed Deadline is unlimited, so
// pre-QoS call paths cost one integer compare.
//
// Priority separates interactive user traffic from background work (ctrl
// recovery catch-up, probes, analytics) at admission, so a recovering
// cluster cannot starve the users it is recovering for.
#pragma once

#include <exception>
#include <limits>
#include <stdexcept>
#include <string>

#include "common/clock.h"

namespace jdvs::qos {

// Admission priority class. Interactive queries may use every admission
// slot; background work is additionally capped so it can never crowd users
// out (see AdmissionConfig::max_background_in_flight).
enum class Priority { kInteractive = 0, kBackground = 1 };

constexpr const char* PriorityName(Priority priority) {
  return priority == Priority::kInteractive ? "interactive" : "background";
}

// Thrown by a tier that finds the query's budget already spent; `where`
// names the node that gave up. Brokers do NOT fail over on it (a sibling
// replica would just burn another scan past the same deadline), and the
// front end does not retry it.
class DeadlineExceededError : public std::runtime_error {
 public:
  explicit DeadlineExceededError(const std::string& where)
      : std::runtime_error("deadline exceeded at " + where) {}
};

class Deadline {
 public:
  // Sentinel for "no deadline": comparisons against it never expire.
  static constexpr Micros kNone = std::numeric_limits<Micros>::max();

  // Unlimited.
  constexpr Deadline() = default;

  // Absolute deadline at `at_micros` on `clock`'s timeline.
  static constexpr Deadline At(Micros at_micros) { return Deadline(at_micros); }

  // now + budget. A zero budget is already expired — the admission-time
  // fast-fail for callers that have no time left.
  static Deadline FromBudget(const Clock& clock, Micros budget_micros) {
    return Deadline(clock.NowMicros() + budget_micros);
  }

  constexpr bool unlimited() const { return at_ == kNone; }
  constexpr Micros at_micros() const { return at_; }

  bool Expired(const Clock& clock) const {
    return at_ != kNone && clock.NowMicros() >= at_;
  }
  constexpr bool ExpiredAt(Micros now_micros) const {
    return at_ != kNone && now_micros >= at_;
  }

  // Budget left (<= 0 when expired); kNone when unlimited.
  Micros RemainingMicros(const Clock& clock) const {
    return at_ == kNone ? kNone : at_ - clock.NowMicros();
  }

 private:
  constexpr explicit Deadline(Micros at) : at_(at) {}

  Micros at_ = kNone;
};

// True when `error` holds a DeadlineExceededError (the no-failover /
// no-retry classification used by broker and workload client).
bool IsDeadlineExceeded(const std::exception_ptr& error);

}  // namespace jdvs::qos

#include "qos/admission.h"

#include <algorithm>

namespace jdvs::qos {

AdmissionController::AdmissionController(const AdmissionConfig& config,
                                         const Clock& clock,
                                         obs::Registry* registry)
    : config_(config), clock_(&clock) {
  if (config_.tokens_per_sec > 0.0) {
    if (config_.token_burst <= 0.0) {
      config_.token_burst = config_.tokens_per_sec;
    }
    tokens_ = config_.token_burst;  // start full: no cold-start shedding
    last_refill_ = clock_->NowMicros();
  }
  obs::Registry& reg =
      registry != nullptr ? *registry : obs::Registry::Default();
  for (const Priority priority :
       {Priority::kInteractive, Priority::kBackground}) {
    const std::size_t i = Index(priority);
    admitted_total_[i] = &reg.GetCounter(obs::Labeled(
        "jdvs_qos_admitted_total", "class", PriorityName(priority)));
    shed_total_[i] = &reg.GetCounter(
        obs::Labeled("jdvs_qos_shed_total", "class", PriorityName(priority)));
    in_flight_gauge_[i] = &reg.GetGauge(obs::Labeled(
        "jdvs_qos_in_flight", "class", PriorityName(priority)));
  }
}

std::optional<AdmissionController::Ticket> AdmissionController::TryAdmit(
    Priority priority) {
  const std::size_t i = Index(priority);
  // Slot check first (cheap, lock-free); same optimistic fetch_add/back-out
  // discipline as the counter it replaced: `before < max` admits, so
  // max_in_flight = N allows exactly N concurrent queries.
  const std::size_t total_before =
      total_in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (config_.max_in_flight > 0 && total_before >= config_.max_in_flight) {
    total_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    shed_[i].fetch_add(1, std::memory_order_relaxed);
    shed_total_[i]->Increment();
    return std::nullopt;
  }
  const std::size_t class_before =
      in_flight_[i].fetch_add(1, std::memory_order_acq_rel);
  if (priority == Priority::kBackground &&
      config_.max_background_in_flight > 0 &&
      class_before >= config_.max_background_in_flight) {
    in_flight_[i].fetch_sub(1, std::memory_order_acq_rel);
    total_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    shed_[i].fetch_add(1, std::memory_order_relaxed);
    shed_total_[i]->Increment();
    return std::nullopt;
  }
  if (!TakeToken()) {
    in_flight_[i].fetch_sub(1, std::memory_order_acq_rel);
    total_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    shed_[i].fetch_add(1, std::memory_order_relaxed);
    shed_total_[i]->Increment();
    return std::nullopt;
  }
  admitted_[i].fetch_add(1, std::memory_order_relaxed);
  admitted_total_[i]->Increment();
  in_flight_gauge_[i]->Increment();
  return Ticket(this, priority);
}

bool AdmissionController::TakeToken() {
  if (config_.tokens_per_sec <= 0.0) return true;
  std::lock_guard lock(bucket_mu_);
  const Micros now = clock_->NowMicros();
  if (now > last_refill_) {
    tokens_ = std::min(config_.token_burst,
                       tokens_ + static_cast<double>(now - last_refill_) *
                                     1e-6 * config_.tokens_per_sec);
    last_refill_ = now;
  }
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

void AdmissionController::Release(Priority priority) noexcept {
  const std::size_t i = Index(priority);
  in_flight_[i].fetch_sub(1, std::memory_order_acq_rel);
  total_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  in_flight_gauge_[i]->Decrement();
}

}  // namespace jdvs::qos

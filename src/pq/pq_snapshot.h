// Snapshot persistence for the compressed IVF-PQ index.
//
// The compressed analogue of index/snapshot.h: serializes the coarse
// quantizer, the PQ codebooks, and every entry's attributes, PQ code,
// inverted-list assignment, validity bit and (when the refinement store is
// enabled) raw feature. Restored indexes reproduce the original structure
// and search results exactly.
#pragma once

#include <memory>
#include <string>

#include "index/inverted_index.h"
#include "index/snapshot.h"  // SnapshotError
#include "pq/ivfpq_index.h"

namespace jdvs {

// Writes `index` to `path`. Throws SnapshotError on I/O failure. Must not
// race the index's writer.
void SaveIvfPqSnapshot(const IvfPqIndex& index, const std::string& path);

// Reads a snapshot back into a fresh IVF-PQ index. Throws SnapshotError on
// I/O failure, bad magic, version mismatch, or truncation.
std::unique_ptr<IvfPqIndex> LoadIvfPqSnapshot(
    const std::string& path, CopyExecutor copy_executor = InlineCopyExecutor());

}  // namespace jdvs

#include "pq/ivfpq_index.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/clock.h"
#include "common/hash.h"
#include "vecmath/distance.h"
#include "vecmath/kernels.h"

namespace jdvs {

namespace {
// Codes per contiguous scan run; bounds the stack distance buffer in
// ScanListAdc (4 KB of floats).
constexpr std::size_t kCodeRunEntries = 1024;
}  // namespace

IvfPqIndex::IvfPqIndex(std::shared_ptr<const CoarseQuantizer> quantizer,
                       std::shared_ptr<const ProductQuantizer> pq,
                       const IvfPqIndexConfig& config,
                       CopyExecutor copy_executor)
    : quantizer_(std::move(quantizer)),
      pq_(std::move(pq)),
      config_(config),
      codes_(pq_->code_bytes()) {
  assert(quantizer_->dim() == pq_->dim());
  if (config_.keep_raw_vectors) {
    raw_ = std::make_unique<VectorSet>(quantizer_->dim());
  } else {
    // Re-ranking without raw vectors would silently degrade to ADC order.
    config_.rerank_candidates = 0;
  }
  lists_.reserve(quantizer_->num_clusters());
  code_blocks_.reserve(quantizer_->num_clusters());
  for (std::size_t c = 0; c < quantizer_->num_clusters(); ++c) {
    lists_.push_back(std::make_unique<InvertedList>(
        config_.initial_list_capacity, copy_executor));
    code_blocks_.push_back(
        std::make_unique<ScanBlock>(pq_->code_bytes(), kCodeRunEntries));
  }
}

LocalId IvfPqIndex::AddImage(std::string_view image_url, ProductId product_id,
                             CategoryId category,
                             const ProductAttributes& attributes,
                             std::string_view detail_url, FeatureView feature) {
  assert(feature.size() == dim());
  const ImageId image_id = Fnv1a64(image_url);
  const LocalId local = forward_.Append(image_id, product_id, category,
                                        attributes, image_url, detail_url);
  filters_.Append(category, attributes);
  const PqCode code = pq_->Encode(feature);
  const std::size_t slot = codes_.Append(code);
  (void)slot;
  assert(slot == local);
  if (raw_) raw_->Append(feature);
  const std::uint32_t list = quantizer_->NearestCentroid(feature);
  lists_[list]->Append(local);
  code_blocks_[list]->Append(local, code.data());
  local_to_list_.push_back(list);
  valid_.Set(local, true);
  url_to_local_.emplace(std::string(image_url), local);
  product_to_locals_[product_id].push_back(local);
  return local;
}

bool IvfPqIndex::HasImage(std::string_view image_url) const {
  return url_to_local_.find(std::string(image_url)) != url_to_local_.end();
}

bool IvfPqIndex::HasProduct(ProductId product_id) const {
  return product_to_locals_.find(product_id) != product_to_locals_.end();
}

std::size_t IvfPqIndex::UpdateProductAttributes(ProductId product_id,
                                                const ProductAttributes& attributes,
                                                std::string_view detail_url) {
  const auto it = product_to_locals_.find(product_id);
  if (it == product_to_locals_.end()) return 0;
  for (const LocalId local : it->second) {
    forward_.UpdateNumeric(local, attributes);
    filters_.UpdateNumeric(local, attributes);
    if (!detail_url.empty()) forward_.UpdateDetailUrl(local, detail_url);
  }
  return it->second.size();
}

std::size_t IvfPqIndex::SetProductValidity(ProductId product_id, bool valid) {
  const auto it = product_to_locals_.find(product_id);
  if (it == product_to_locals_.end()) return 0;
  for (const LocalId local : it->second) valid_.Set(local, valid);
  return it->second.size();
}

bool IvfPqIndex::SetImageValidity(std::string_view image_url, bool valid) {
  const auto it = url_to_local_.find(std::string(image_url));
  if (it == url_to_local_.end()) return false;
  valid_.Set(it->second, valid);
  return true;
}

void IvfPqIndex::FinishPendingExpansions() {
  for (const auto& list : lists_) list->MaybeFinishExpansion();
}

SearchHit IvfPqIndex::MaterializeHit(const ScoredImage& scored) const {
  const auto local = static_cast<LocalId>(scored.image_id);
  const AttributeSnapshot snapshot = forward_.Get(local);
  SearchHit hit;
  hit.image_id = snapshot.image_id;
  hit.distance = scored.distance;
  hit.product_id = snapshot.product_id;
  hit.category = snapshot.category;
  hit.attributes = snapshot.attributes;
  hit.image_url = std::string(snapshot.image_url);
  hit.detail_url = std::string(snapshot.detail_url);
  return hit;
}

void IvfPqIndex::ScanListAdc(std::size_t list, const float* table,
                             CategoryId category_filter,
                             const MaterializedFilter* filter,
                             bool post_filter, const FilterExpression* direct,
                             FilterScanStats* stats, TopK& adc_topk) const {
  const DistanceKernels& kernels = Kernels();
  const std::size_t m = pq_->num_subspaces();
  const std::size_t ks = pq_->codebook_size();
  code_blocks_[list]->ForEachRun([&](const LocalId* ids,
                                     const std::uint8_t* codes,
                                     const float* /*aux*/,
                                     std::size_t count) {
    // True ADC: packed codes through the pq_adc_scan kernel — per candidate
    // that is m table lookups, gathered 8/16-wide on the SIMD tiers.
    // Summation order per candidate matches DistanceWithTable, so distances
    // are bit-identical to the per-candidate path.
    //
    // Unfiltered and post-filter scans run the whole run through one kernel
    // call; pushdown (pre) mode runs it per 64-code sub-block instead, so a
    // sub-block the bitmap proves dead never gathers its tables at all.
    constexpr std::size_t kFilterBlock = 64;
    float dists[kCodeRunEntries];
    const bool pre = filter != nullptr && !post_filter;
    if (!pre) {
      kernels.pq_adc_scan(table, ks, codes, m, count, dists);
    }
    std::uint32_t keep[kFilterBlock];
    for (std::size_t b = 0; b < count; b += kFilterBlock) {
      const std::size_t block = std::min(kFilterBlock, count - b);
      std::uint64_t alive = 0;
      if (pre) {
        for (std::size_t s = 0; s < block; ++s) {
          alive |= std::uint64_t{filter->Test(ids[b + s])} << s;
        }
        if (alive == 0) {
          if (stats != nullptr) ++stats->blocks_skipped;
          continue;
        }
        kernels.pq_adc_scan(table, ks, codes + b * m, m, block, dists + b);
      }
      if (stats != nullptr) ++stats->blocks_scanned;
      // SIMD admission filter, then per-survivor admission — same structure
      // (sub-block threshold refresh, tie reasoning) as the IVF scan.
      float threshold = adc_topk.Threshold();
      const std::size_t kept =
          kernels.filter_le(dists + b, block, threshold, keep);
      for (std::size_t s = 0; s < kept; ++s) {
        const std::size_t j = b + keep[s];
        if (dists[j] > threshold) continue;
        const LocalId local = ids[j];
        if (filter != nullptr) {
          const bool pass = post_filter ? filter->Test(local)
                                        : ((alive >> keep[s]) & 1) != 0;
          if (!pass) continue;
        } else if (direct != nullptr) {
          // Broad-filter direct post mode: no bitmap, so validity/category/
          // predicates all run here — but only on the kernel survivors.
          if (!valid_.Get(local)) continue;
          if (category_filter != kNoCategoryFilter &&
              forward_.CategoryOf(local) != category_filter) {
            continue;
          }
          const AttributeSnapshot snapshot = forward_.Get(local);
          if (!direct->Matches(snapshot.category, snapshot.attributes)) {
            continue;
          }
        } else {
          if (!valid_.Get(local)) continue;
          if (category_filter != kNoCategoryFilter &&
              forward_.CategoryOf(local) != category_filter) {
            continue;
          }
        }
        adc_topk.Offer(local, dists[j]);
        threshold = adc_topk.Threshold();
      }
    }
  });
}

double IvfPqIndex::EstimateFilterSelectivity(
    const FilterExpression& filter, CategoryId category_filter) const {
  const std::size_t n = forward_.size();
  if (n == 0) return 0.0;
  // Deterministic strided sample (same recipe as IvfIndex); the PQ scan
  // always honors validity, so the sample does too.
  constexpr std::size_t kSamples = 256;
  const std::size_t step = std::max<std::size_t>(1, n / kSamples);
  std::size_t seen = 0;
  std::size_t pass = 0;
  for (std::size_t local = 0; local < n; local += step) {
    ++seen;
    const auto id = static_cast<LocalId>(local);
    if (!valid_.Get(id)) continue;
    const AttributeSnapshot snapshot = forward_.Get(id);
    if (category_filter != kNoCategoryFilter &&
        snapshot.category != category_filter) {
      continue;
    }
    if (!filter.Matches(snapshot.category, snapshot.attributes)) continue;
    ++pass;
  }
  return static_cast<double>(pass) / static_cast<double>(seen);
}

IvfPqIndex::FilterPlan IvfPqIndex::PlanFilteredScan(
    const FilterExpression& filter, CategoryId category_filter,
    std::size_t nprobe, FilterScanStats* stats,
    std::shared_ptr<const MaterializedFilter> reuse) const {
  FilterPlan plan;
  plan.nprobe = nprobe;
  if (stats != nullptr) {
    *stats = FilterScanStats{};
    stats->universe = forward_.size();
  }
  if (filter.empty()) return plan;
  if (reuse == nullptr) {
    // Broad filters skip bitmap materialization: a sampled estimate at or
    // above the post threshold routes into direct post mode.
    const double estimate = EstimateFilterSelectivity(filter, category_filter);
    if (estimate >= config_.filter_post_threshold) {
      plan.use_filter = true;
      plan.post_mode = true;
      plan.direct = &filter;
      if (stats != nullptr) {
        stats->strategy = FilterScanStats::Strategy::kPost;
        stats->selectivity_bp =
            static_cast<std::uint32_t>(estimate * 10000.0);
        stats->estimated = true;
      }
      return plan;
    }
  }
  Micros materialize_micros = 0;
  if (reuse != nullptr) {
    // A batch sibling with an identical filter already paid for the bitmap.
    plan.bits = std::move(reuse);
    if (stats != nullptr) stats->reused_bitmap = true;
  } else {
    const Stopwatch watch(MonotonicClock::Instance());
    // The PQ scan always honors validity (no ablation flag here), so it is
    // always folded into the bitmap.
    plan.bits = std::make_shared<const MaterializedFilter>(
        filters_.Materialize(filter, category_filter, &valid_));
    materialize_micros = watch.ElapsedMicros();
  }
  plan.use_filter = true;
  const double selectivity = plan.bits->selectivity();
  if (plan.bits->matches == 0) {
    plan.empty_result = true;
  } else if (selectivity >= config_.filter_post_threshold) {
    plan.post_mode = true;
  } else if (selectivity < config_.filter_widen_threshold &&
             config_.filter_widen_factor > 1) {
    plan.nprobe = std::min(nprobe * config_.filter_widen_factor,
                           quantizer_->num_clusters());
  }
  if (stats != nullptr) {
    stats->strategy = plan.post_mode ? FilterScanStats::Strategy::kPost
                                     : FilterScanStats::Strategy::kPre;
    stats->selectivity_bp = static_cast<std::uint32_t>(selectivity * 10000.0);
    stats->matches = plan.bits->matches;
    stats->universe = plan.bits->universe;
    stats->widened_nprobe = plan.nprobe != nprobe;
    stats->materialize_micros = materialize_micros;
  }
  return plan;
}

std::vector<SearchHit> IvfPqIndex::RankAndMaterialize(FeatureView query,
                                                      std::size_t k,
                                                      TopK& adc_topk) const {
  std::vector<ScoredImage> ranked = adc_topk.TakeSorted();
  if (config_.rerank_candidates > 0) {
    // Exact re-ranking against the refinement store (IVFADC+R).
    TopK exact(k);
    for (const ScoredImage& candidate : ranked) {
      const auto local = static_cast<LocalId>(candidate.image_id);
      exact.Offer(candidate.image_id,
                  L2SquaredDistance(query, raw_->At(local)));
    }
    ranked = exact.TakeSorted();
  } else if (ranked.size() > k) {
    ranked.resize(k);
  }

  std::vector<SearchHit> hits;
  hits.reserve(ranked.size());
  for (const ScoredImage& scored : ranked) hits.push_back(MaterializeHit(scored));
  return hits;
}

std::vector<SearchHit> IvfPqIndex::Search(FeatureView query, std::size_t k,
                                          std::size_t nprobe_override,
                                          CategoryId category_filter) const {
  return Search(query, k, nprobe_override, category_filter, nullptr, nullptr,
                /*io_budget_micros=*/0, /*tier_stats=*/nullptr);
}

std::vector<SearchHit> IvfPqIndex::Search(FeatureView query, std::size_t k,
                                          std::size_t nprobe_override,
                                          CategoryId category_filter,
                                          const FilterExpression& filter,
                                          FilterScanStats* stats) const {
  return Search(query, k, nprobe_override, category_filter, &filter, stats,
                /*io_budget_micros=*/0, /*tier_stats=*/nullptr);
}

std::vector<SearchHit> IvfPqIndex::Search(FeatureView query, std::size_t k,
                                          std::size_t nprobe_override,
                                          CategoryId category_filter,
                                          const FilterExpression* filter,
                                          FilterScanStats* stats,
                                          Micros io_budget_micros,
                                          TierScanStats* tier_stats) const {
  assert(query.size() == dim());
  const std::size_t nprobe =
      nprobe_override == 0 ? config_.nprobe : nprobe_override;
  FilterPlan plan;
  if (filter != nullptr && !filter->empty()) {
    plan = PlanFilteredScan(*filter, category_filter, nprobe, stats);
    if (plan.empty_result) return {};
  } else {
    plan.nprobe = nprobe;
    if (stats != nullptr) {
      *stats = FilterScanStats{};
      stats->universe = forward_.size();
    }
  }
  // Per-query ADC table, built exactly once: num_subspaces x codebook_size
  // partial squared distances.
  const std::vector<float> table = pq_->BuildDistanceTable(query);
  const std::size_t adc_k =
      config_.rerank_candidates > 0 ? std::max(config_.rerank_candidates, k)
                                    : k;
  TopK adc_topk(adc_k);
  std::vector<std::uint32_t> probes =
      quantizer_->NearestCentroids(query, plan.nprobe);
  // Tiered mode: pin the probed code segments before the ADC kernel runs;
  // probes past the io budget are dropped (reduced effective nprobe).
  TieredListStore::PinGuard guard;
  if (tiered_store_ != nullptr) {
    guard = tiered_store_->Pin(probes, io_budget_micros, tier_stats);
    // Not a prefix: quarantined lists are skipped mid-set, over-budget
    // tails are dropped. Scan exactly what the guard holds pinned.
    probes = guard.pinned();
  }
  for (const std::uint32_t list : probes) {
    ScanListAdc(list, table.data(),
                plan.bits != nullptr ? kNoCategoryFilter : category_filter,
                plan.bits.get(), plan.post_mode, plan.direct, stats,
                adc_topk);
  }
  return RankAndMaterialize(query, k, adc_topk);
}

std::vector<std::vector<SearchHit>> IvfPqIndex::SearchBatch(
    std::span<const IvfBatchQuery> queries) const {
  const std::size_t n = queries.size();
  std::vector<std::vector<SearchHit>> out(n);
  if (n == 0) return out;
  std::vector<FeatureView> views;
  std::vector<std::size_t> nprobes;
  views.reserve(n);
  nprobes.reserve(n);
  // Per-query filter plans first: widening must precede the coarse pass.
  // Queries with identical filters share one materialized bitmap.
  struct SharedBitmap {
    std::uint64_t hash = 0;
    CategoryId category = kNoCategoryFilter;
    const FilterExpression* expr = nullptr;
    std::shared_ptr<const MaterializedFilter> bits;  // null if direct mode
  };
  std::vector<SharedBitmap> shared;
  std::vector<FilterPlan> plans(n);
  for (std::size_t i = 0; i < n; ++i) {
    const IvfBatchQuery& bq = queries[i];
    assert(bq.query.size() == dim());
    views.push_back(bq.query);
    const std::size_t nprobe = bq.nprobe == 0 ? config_.nprobe : bq.nprobe;
    if (bq.filter != nullptr && !bq.filter->empty()) {
      const std::uint64_t hash = bq.filter->Hash();
      SharedBitmap* match = nullptr;
      for (SharedBitmap& s : shared) {
        if (s.hash == hash && s.category == bq.category_filter &&
            *s.expr == *bq.filter) {
          match = &s;
          break;
        }
      }
      plans[i] = PlanFilteredScan(*bq.filter, bq.category_filter, nprobe,
                                  bq.filter_stats,
                                  match != nullptr ? match->bits : nullptr);
      if (match == nullptr) {
        shared.push_back(
            {hash, bq.category_filter, bq.filter, plans[i].bits});
      }
    } else {
      plans[i].nprobe = nprobe;
      if (bq.filter_stats != nullptr) {
        *bq.filter_stats = FilterScanStats{};
        bq.filter_stats->universe = forward_.size();
      }
    }
    nprobes.push_back(plans[i].nprobe);
  }
  std::vector<std::vector<std::uint32_t>> probes =
      quantizer_->NearestCentroidsBatch(views, nprobes);
  // Tiered mode: pin every query's probe set for the whole batch scan.
  std::vector<TieredListStore::PinGuard> guards;
  if (tiered_store_ != nullptr) {
    guards.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      guards.push_back(tiered_store_->Pin(probes[i],
                                          queries[i].io_budget_micros,
                                          queries[i].tier_stats));
      probes[i] = guards.back().pinned();
    }
  }
  // One ADC table per query for the batch's whole scan.
  std::vector<std::vector<float>> tables;
  tables.reserve(n);
  for (const IvfBatchQuery& bq : queries) {
    tables.push_back(pq_->BuildDistanceTable(bq.query));
  }
  std::vector<TopK> topks;
  topks.reserve(n);
  for (const IvfBatchQuery& bq : queries) {
    topks.emplace_back(config_.rerank_candidates > 0
                           ? std::max(config_.rerank_candidates, bq.k)
                           : bq.k);
  }
  // List-major scan order: a list probed by several queries stays in cache.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> plan;  // (list, query)
  for (std::size_t i = 0; i < n; ++i) {
    if (plans[i].empty_result) continue;  // zero-match filter: no scan work
    for (const std::uint32_t list : probes[i]) {
      plan.emplace_back(list, static_cast<std::uint32_t>(i));
    }
  }
  std::stable_sort(plan.begin(), plan.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [list, qi] : plan) {
    const FilterPlan& fp = plans[qi];
    ScanListAdc(list, tables[qi].data(),
                fp.bits != nullptr ? kNoCategoryFilter
                                   : queries[qi].category_filter,
                fp.bits.get(), fp.post_mode, fp.direct,
                queries[qi].filter_stats, topks[qi]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = RankAndMaterialize(queries[i].query, queries[i].k, topks[i]);
  }
  return out;
}

void IvfPqIndex::ForEachEntry(
    const std::function<void(LocalId, const AttributeSnapshot&,
                             const std::uint8_t*, std::uint32_t, FeatureView,
                             bool)>& visit) const {
  const std::size_t n = forward_.size();
  for (std::size_t local = 0; local < n; ++local) {
    const auto id = static_cast<LocalId>(local);
    const FeatureView raw = raw_ ? raw_->At(local) : FeatureView();
    visit(id, forward_.Get(id), codes_.At(local), local_to_list_[local], raw,
          valid_.Get(local));
  }
}

LocalId IvfPqIndex::AddEncoded(std::string_view image_url,
                               ProductId product_id, CategoryId category,
                               const ProductAttributes& attributes,
                               std::string_view detail_url, const PqCode& code,
                               std::uint32_t list, FeatureView raw_or_empty) {
  assert(list < lists_.size());
  const ImageId image_id = Fnv1a64(image_url);
  const LocalId local = forward_.Append(image_id, product_id, category,
                                        attributes, image_url, detail_url);
  filters_.Append(category, attributes);
  codes_.Append(code);
  if (raw_) {
    if (raw_or_empty.empty()) {
      const FeatureVector decoded = pq_->Decode(code);
      raw_->Append(decoded);
    } else {
      raw_->Append(raw_or_empty);
    }
  }
  lists_[list]->Append(local);
  code_blocks_[list]->Append(local, code.data());
  local_to_list_.push_back(list);
  valid_.Set(local, true);
  url_to_local_.emplace(std::string(image_url), local);
  product_to_locals_[product_id].push_back(local);
  return local;
}

bool IvfPqIndex::code_storage_aligned() const noexcept {
  for (const auto& block : code_blocks_) {
    if (!block->storage_aligned()) return false;
  }
  return true;
}

IvfPqStats IvfPqIndex::Stats() const {
  IvfPqStats stats;
  stats.total_images = forward_.size();
  stats.valid_images = valid_.CountValid();
  stats.num_lists = lists_.size();
  stats.code_bytes_per_vector = pq_->code_bytes();
  stats.code_memory_bytes = codes_.memory_bytes();
  stats.raw_memory_bytes =
      raw_ ? raw_->size() * dim() * sizeof(float) : 0;
  return stats;
}

}  // namespace jdvs

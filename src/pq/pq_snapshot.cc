#include "pq/pq_snapshot.h"

#include <cstdint>
#include <fstream>
#include <vector>

namespace jdvs {
namespace {

constexpr std::uint64_t kMagic = 0x4A44565350513031ULL;  // "JDVSPQ01"
constexpr std::uint32_t kVersion = 1;

void WriteRaw(std::ostream& os, const void* data, std::size_t bytes) {
  os.write(static_cast<const char*>(data),
           static_cast<std::streamsize>(bytes));
  if (!os) throw SnapshotError("pq snapshot write failed");
}

template <typename T>
void WritePod(std::ostream& os, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  WriteRaw(os, &value, sizeof(T));
}

void WriteString(std::ostream& os, std::string_view s) {
  WritePod<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
  WriteRaw(os, s.data(), s.size());
}

void ReadRaw(std::istream& is, void* data, std::size_t bytes) {
  is.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (is.gcount() != static_cast<std::streamsize>(bytes)) {
    throw SnapshotError("pq snapshot truncated");
  }
}

template <typename T>
T ReadPod(std::istream& is) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value;
  ReadRaw(is, &value, sizeof(T));
  return value;
}

std::string ReadString(std::istream& is) {
  const auto size = ReadPod<std::uint32_t>(is);
  if (size > (1u << 24)) throw SnapshotError("pq snapshot string too large");
  std::string s(size, '\0');
  ReadRaw(is, s.data(), size);
  return s;
}

}  // namespace

void SaveIvfPqSnapshot(const IvfPqIndex& index, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw SnapshotError("cannot open for writing: " + path);

  WritePod(os, kMagic);
  WritePod(os, kVersion);

  // Index configuration.
  const IvfPqIndexConfig& config = index.config();
  WritePod<std::uint64_t>(os, config.nprobe);
  WritePod<std::uint64_t>(os, config.initial_list_capacity);
  WritePod<std::uint64_t>(os, config.rerank_candidates);
  WritePod<std::uint8_t>(os, config.keep_raw_vectors ? 1 : 0);

  // Coarse quantizer.
  const CoarseQuantizer& quantizer = index.quantizer();
  WritePod<std::uint64_t>(os, quantizer.dim());
  WritePod<std::uint64_t>(os, quantizer.num_clusters());
  for (std::size_t c = 0; c < quantizer.num_clusters(); ++c) {
    const FeatureView centroid = quantizer.Centroid(c);
    WriteRaw(os, centroid.data(), centroid.size() * sizeof(float));
  }

  // Product quantizer.
  const ProductQuantizer& pq = index.pq();
  WritePod<std::uint64_t>(os, pq.num_subspaces());
  WritePod<std::uint64_t>(os, pq.codebook_size());
  WriteRaw(os, pq.codebooks().data(), pq.codebooks().size() * sizeof(float));

  // Entries.
  WritePod<std::uint64_t>(os, index.size());
  const std::size_t code_bytes = pq.code_bytes();
  index.ForEachEntry([&](LocalId, const AttributeSnapshot& snapshot,
                         const std::uint8_t* code, std::uint32_t list,
                         FeatureView raw, bool valid) {
    WriteString(os, snapshot.image_url);
    WritePod<std::uint64_t>(os, snapshot.product_id);
    WritePod<std::uint32_t>(os, snapshot.category);
    WritePod<std::uint64_t>(os, snapshot.attributes.sales);
    WritePod<std::uint64_t>(os, snapshot.attributes.price_cents);
    WritePod<std::uint64_t>(os, snapshot.attributes.praise);
    WriteString(os, snapshot.detail_url);
    WritePod<std::uint32_t>(os, list);
    WritePod<std::uint8_t>(os, valid ? 1 : 0);
    WriteRaw(os, code, code_bytes);
    WritePod<std::uint8_t>(os, raw.empty() ? 0 : 1);
    if (!raw.empty()) {
      WriteRaw(os, raw.data(), raw.size() * sizeof(float));
    }
  });
  os.flush();
  if (!os) throw SnapshotError("pq snapshot flush failed");
}

std::unique_ptr<IvfPqIndex> LoadIvfPqSnapshot(const std::string& path,
                                              CopyExecutor copy_executor) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw SnapshotError("cannot open for reading: " + path);

  if (ReadPod<std::uint64_t>(is) != kMagic) {
    throw SnapshotError("bad pq snapshot magic: " + path);
  }
  const auto version = ReadPod<std::uint32_t>(is);
  if (version != kVersion) {
    throw SnapshotError("unsupported pq snapshot version " +
                        std::to_string(version));
  }

  IvfPqIndexConfig config;
  config.nprobe = static_cast<std::size_t>(ReadPod<std::uint64_t>(is));
  config.initial_list_capacity =
      static_cast<std::size_t>(ReadPod<std::uint64_t>(is));
  config.rerank_candidates =
      static_cast<std::size_t>(ReadPod<std::uint64_t>(is));
  config.keep_raw_vectors = ReadPod<std::uint8_t>(is) != 0;

  const auto dim = static_cast<std::size_t>(ReadPod<std::uint64_t>(is));
  const auto num_clusters = static_cast<std::size_t>(ReadPod<std::uint64_t>(is));
  if (dim == 0 || dim > (1u << 20) || num_clusters == 0 ||
      num_clusters > (1u << 24)) {
    throw SnapshotError("implausible pq snapshot dimensions");
  }
  std::vector<float> centroids(num_clusters * dim);
  ReadRaw(is, centroids.data(), centroids.size() * sizeof(float));
  auto quantizer =
      std::make_shared<const CoarseQuantizer>(std::move(centroids), dim);

  const auto num_subspaces =
      static_cast<std::size_t>(ReadPod<std::uint64_t>(is));
  const auto codebook_size =
      static_cast<std::size_t>(ReadPod<std::uint64_t>(is));
  if (num_subspaces == 0 || num_subspaces > dim || dim % num_subspaces != 0 ||
      codebook_size == 0 || codebook_size > 256) {
    throw SnapshotError("implausible pq codebook shape");
  }
  std::vector<float> codebooks(num_subspaces * codebook_size *
                               (dim / num_subspaces));
  ReadRaw(is, codebooks.data(), codebooks.size() * sizeof(float));
  auto pq = std::make_shared<const ProductQuantizer>(
      dim, num_subspaces, codebook_size, std::move(codebooks));

  auto index = std::make_unique<IvfPqIndex>(std::move(quantizer), pq, config,
                                            std::move(copy_executor));
  const auto count = ReadPod<std::uint64_t>(is);
  PqCode code(pq->code_bytes());
  std::vector<float> raw(dim);
  std::vector<std::string> invalid_urls;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string image_url = ReadString(is);
    const auto product_id = ReadPod<std::uint64_t>(is);
    const auto category = ReadPod<std::uint32_t>(is);
    ProductAttributes attributes;
    attributes.sales = ReadPod<std::uint64_t>(is);
    attributes.price_cents = ReadPod<std::uint64_t>(is);
    attributes.praise = ReadPod<std::uint64_t>(is);
    const std::string detail_url = ReadString(is);
    const auto list = ReadPod<std::uint32_t>(is);
    const bool valid = ReadPod<std::uint8_t>(is) != 0;
    ReadRaw(is, code.data(), code.size());
    const bool has_raw = ReadPod<std::uint8_t>(is) != 0;
    FeatureView raw_view;
    if (has_raw) {
      ReadRaw(is, raw.data(), raw.size() * sizeof(float));
      raw_view = FeatureView(raw.data(), raw.size());
    }
    index->AddEncoded(image_url, product_id, category, attributes, detail_url,
                      code, list, raw_view);
    if (!valid) invalid_urls.push_back(image_url);
  }
  for (const auto& url : invalid_urls) index->SetImageValidity(url, false);
  index->FinishPendingExpansions();
  // Same layout invariant as the flat-index snapshot load: ADC gathers
  // assume cache-line-aligned code runs.
  if (!index->code_storage_aligned()) {
    throw SnapshotError("restored code storage is not 64-byte aligned");
  }
  return index;
}

}  // namespace jdvs

// Product quantization (Jégou et al., the paper's reference [19]).
//
// At the paper's headline scale — "more than 100 billion product images" —
// storing raw float features is impossible (100B x 64 floats = 25 PB), so
// production ANN systems compress vectors with product quantization: the
// vector is split into M subspaces, each quantized against its own 256-entry
// codebook, turning a 256-byte vector into M bytes. Search uses asymmetric
// distance computation (ADC): one M x 256 table of partial distances per
// query, then each candidate costs M table lookups instead of a full float
// scan.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/kmeans.h"
#include "vecmath/vector.h"

namespace jdvs {

using PqCode = std::vector<std::uint8_t>;  // M bytes per vector

struct ProductQuantizerConfig {
  std::size_t num_subspaces = 8;     // M; must divide dim
  std::size_t codebook_size = 256;   // Ks per subspace (<= 256)
  KMeansConfig kmeans;               // per-subspace training settings
};

class ProductQuantizer {
 public:
  // Trains M codebooks over `training` (count x dim row-major).
  // Requires dim % num_subspaces == 0 and count >= 1.
  static ProductQuantizer Train(const float* training, std::size_t count,
                                std::size_t dim,
                                const ProductQuantizerConfig& config);
  static ProductQuantizer Train(const std::vector<FeatureVector>& training,
                                const ProductQuantizerConfig& config);

  // Encodes a vector into M codebook indices.
  PqCode Encode(FeatureView v) const;

  // Reconstructs the approximate vector from its code.
  FeatureVector Decode(const PqCode& code) const;

  // Builds the query's ADC table: num_subspaces x codebook_size partial
  // squared distances, row-major.
  std::vector<float> BuildDistanceTable(FeatureView query) const;

  // ADC distance of an encoded vector given the query's table.
  float DistanceWithTable(const std::vector<float>& table,
                          const std::uint8_t* code) const noexcept;

  // Exact squared distance between query and the *reconstruction* (for
  // testing the ADC identity: ADC(query, code) == L2^2(query, Decode(code))).
  float AsymmetricDistance(FeatureView query, const PqCode& code) const;

  std::size_t dim() const noexcept { return dim_; }
  std::size_t num_subspaces() const noexcept { return num_subspaces_; }
  std::size_t subspace_dim() const noexcept { return subspace_dim_; }
  std::size_t codebook_size() const noexcept { return codebook_size_; }
  std::size_t code_bytes() const noexcept { return num_subspaces_; }

  // Centroid `k` of subspace `m` (subspace_dim floats).
  FeatureView Centroid(std::size_t m, std::size_t k) const noexcept {
    return FeatureView(
        codebooks_.data() + (m * codebook_size_ + k) * subspace_dim_,
        subspace_dim_);
  }

  // Raw codebooks (num_subspaces x codebook_size x subspace_dim), exposed
  // for snapshotting.
  const std::vector<float>& codebooks() const noexcept { return codebooks_; }

  // Reconstructs a quantizer from snapshotted state.
  ProductQuantizer(std::size_t dim, std::size_t num_subspaces,
                   std::size_t codebook_size, std::vector<float> codebooks);

 private:
  std::size_t dim_;
  std::size_t num_subspaces_;
  std::size_t subspace_dim_;
  std::size_t codebook_size_;
  std::vector<float> codebooks_;
};

// Append-only, concurrently readable store of fixed-size PQ codes; the
// compressed analogue of VectorSet with the same single-writer /
// many-readers discipline.
class CodeSet {
 public:
  explicit CodeSet(std::size_t code_bytes, std::size_t chunk_codes = 8192);

  CodeSet(const CodeSet&) = delete;
  CodeSet& operator=(const CodeSet&) = delete;

  std::size_t Append(const PqCode& code);
  const std::uint8_t* At(std::size_t index) const noexcept;

  std::size_t size() const noexcept {
    return size_.load(std::memory_order_acquire);
  }
  std::size_t code_bytes() const noexcept { return code_bytes_; }
  std::size_t memory_bytes() const noexcept {
    return chunks_count_ * chunk_codes_ * code_bytes_;
  }

 private:
  const std::size_t code_bytes_;
  const std::size_t chunk_codes_;
  std::vector<std::unique_ptr<std::uint8_t[]>> chunks_;
  std::size_t chunks_count_ = 0;
  std::atomic<std::size_t> size_{0};
};

}  // namespace jdvs

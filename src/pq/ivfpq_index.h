// IVF-PQ index: the memory-efficient variant of the per-partition index.
//
// Same structure as IvfIndex — coarse quantizer, inverted lists, forward
// index, validity bitmap, single writer / lock-free readers — but image
// features are stored as M-byte PQ codes instead of raw floats, and the
// inverted-list scan uses asymmetric distance computation. This is what
// makes the paper's "100 billion images" claim feasible: a 64-d float
// feature (256 B) compresses to 8-16 B.
//
// Optional exact re-ranking: when `rerank_candidates > 0`, the scan first
// selects that many candidates by ADC distance, then re-scores them against
// raw vectors kept in a (larger) refinement store — the standard IVFADC+R
// recipe.
//
// Scan layout: each inverted list owns a ScanBlock of packed PQ codes in
// append order, so the ADC scan is one pq_adc_scan kernel call per
// contiguous run (8-16 candidates per gather on SIMD tiers) instead of a
// per-candidate pointer chase through the chunked CodeSet. The CodeSet
// remains the per-local-id authority for snapshotting/iteration.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/quantizer.h"
#include "filter/attribute_filter_index.h"
#include "index/bitmap.h"
#include "index/forward_index.h"
#include "index/inverted_index.h"
#include "index/ivf_index.h"
#include "index/scan_block.h"
#include "pq/codebook.h"
#include "vecmath/topk.h"
#include "vecmath/vector_set.h"

namespace jdvs {

struct IvfPqIndexConfig {
  std::size_t nprobe = 4;
  std::size_t initial_list_capacity = 64;
  // 0 = rank purely by ADC distance; otherwise re-rank this many ADC
  // candidates with exact distances (requires keep_raw_vectors).
  std::size_t rerank_candidates = 0;
  bool keep_raw_vectors = false;
  // Hybrid filter pushdown strategy knobs (same semantics as
  // IvfIndexConfig's): post-filter survivors at/above the first threshold,
  // widen nprobe below the second.
  double filter_post_threshold = 0.5;
  double filter_widen_threshold = 0.01;
  std::size_t filter_widen_factor = 4;
};

struct IvfPqStats {
  std::size_t total_images = 0;
  std::size_t valid_images = 0;
  std::size_t num_lists = 0;
  std::size_t code_bytes_per_vector = 0;
  std::size_t code_memory_bytes = 0;
  std::size_t raw_memory_bytes = 0;  // refinement store, if enabled
};

class IvfPqIndex final : public ImageIndex {
 public:
  IvfPqIndex(std::shared_ptr<const CoarseQuantizer> quantizer,
             std::shared_ptr<const ProductQuantizer> pq,
             const IvfPqIndexConfig& config = {},
             CopyExecutor copy_executor = InlineCopyExecutor());

  IvfPqIndex(const IvfPqIndex&) = delete;
  IvfPqIndex& operator=(const IvfPqIndex&) = delete;

  // Single writer.
  LocalId AddImage(std::string_view image_url, ProductId product_id,
                   CategoryId category, const ProductAttributes& attributes,
                   std::string_view detail_url, FeatureView feature) override;

  bool HasImage(std::string_view image_url) const override;
  bool HasProduct(ProductId product_id) const override;
  std::size_t UpdateProductAttributes(ProductId product_id,
                                      const ProductAttributes& attributes,
                                      std::string_view detail_url = {}) override;
  std::size_t SetProductValidity(ProductId product_id, bool valid) override;
  bool SetImageValidity(std::string_view image_url, bool valid) override;
  void FinishPendingExpansions() override;

  // Lock-free readers.
  using ImageIndex::Search;
  std::vector<SearchHit> Search(FeatureView query, std::size_t k,
                                std::size_t nprobe_override,
                                CategoryId category_filter) const override;

  // Hybrid filtered search with bitmap pushdown into the ADC scan: dead
  // 64-code sub-blocks skip the pq_adc_scan kernel in pre mode, survivors
  // are bitmap-tested in post mode, and extreme selectivity widens nprobe
  // (see the config knobs). Re-ranking operates on already-filtered
  // candidates, so predicates survive the IVFADC+R finish.
  std::vector<SearchHit> Search(FeatureView query, std::size_t k,
                                std::size_t nprobe_override,
                                CategoryId category_filter,
                                const FilterExpression& filter,
                                FilterScanStats* stats = nullptr) const override;

  // Full-fat overload: optional filter plus the tiered-serving knobs (io
  // budget for cold-list faults, per-query tier accounting). The other
  // Search overloads forward here.
  std::vector<SearchHit> Search(FeatureView query, std::size_t k,
                                std::size_t nprobe_override,
                                CategoryId category_filter,
                                const FilterExpression* filter,
                                FilterScanStats* stats,
                                Micros io_budget_micros,
                                TierScanStats* tier_stats) const;

  // Micro-batched variant: one centroid-major coarse pass for the whole
  // batch, per-query ADC tables built once, and lists probed by several
  // queries scanned back-to-back. out[i] is identical to Search(queries[i]).
  std::vector<std::vector<SearchHit>> SearchBatch(
      std::span<const IvfBatchQuery> queries) const;

  // Visits every entry with its attributes, PQ code (code_bytes() bytes),
  // inverted-list assignment, optional raw feature (empty view when the
  // refinement store is disabled) and validity. Snapshotting hook.
  void ForEachEntry(
      const std::function<void(LocalId, const AttributeSnapshot&,
                               const std::uint8_t* code, std::uint32_t list,
                               FeatureView raw, bool valid)>& visit) const;

  IvfPqStats Stats() const;
  std::size_t size() const override { return forward_.size(); }
  std::size_t dim() const override { return quantizer_->dim(); }
  const ProductQuantizer& pq() const { return *pq_; }
  const CoarseQuantizer& quantizer() const { return *quantizer_; }
  const IvfPqIndexConfig& config() const { return config_; }
  const AttributeFilterIndex& attribute_filters() const { return filters_; }

  // Inserts a pre-encoded entry (snapshot restore path): the code and the
  // inverted-list assignment are trusted as-is, so restored indexes
  // reproduce the original structure exactly. `raw_or_empty` feeds the
  // refinement store when enabled; when empty, the decoded approximation is
  // stored instead.
  LocalId AddEncoded(std::string_view image_url, ProductId product_id,
                     CategoryId category, const ProductAttributes& attributes,
                     std::string_view detail_url, const PqCode& code,
                     std::uint32_t list, FeatureView raw_or_empty);

  // True when every published code run sits on a 64-byte boundary (layout
  // invariant re-checked after snapshot restore).
  bool code_storage_aligned() const noexcept;

  // Attaches a residency cache over the packed-code payload; searches pin
  // their probe sets through it (same contract as IvfIndex's tiered mode —
  // the store's extents address this index's per-list code segments).
  void AttachTieredStore(std::shared_ptr<TieredListStore> store) {
    tiered_store_ = std::move(store);
  }
  const TieredListStore* tiered_store() const noexcept {
    return tiered_store_.get();
  }

 private:
  // Mirrors IvfIndex::FilterPlan — one query's (possibly shared) bitmap, or
  // a direct predicate pointer for broad filters, plus the strategy.
  struct FilterPlan {
    std::shared_ptr<const MaterializedFilter> bits;  // null in direct mode
    const FilterExpression* direct = nullptr;
    bool use_filter = false;
    bool post_mode = false;
    bool empty_result = false;
    std::size_t nprobe = 0;
  };
  FilterPlan PlanFilteredScan(
      const FilterExpression& filter, CategoryId category_filter,
      std::size_t nprobe, FilterScanStats* stats,
      std::shared_ptr<const MaterializedFilter> reuse = nullptr) const;
  // Sampled pass rate of `filter` (+ category) over ~256 strided forward
  // entries; decides direct post mode without materializing anything.
  double EstimateFilterSelectivity(const FilterExpression& filter,
                                   CategoryId category_filter) const;

  SearchHit MaterializeHit(const ScoredImage& scored) const;
  // ADC scan of one list: one pq_adc_scan kernel call per contiguous run,
  // then validity/category filtering on the way into the heap. A non-null
  // `filter` replaces those checks with bitmap tests; in pre mode the ADC
  // kernel runs per 64-code sub-block so wholly-dead sub-blocks skip the
  // table gathers entirely.
  void ScanListAdc(std::size_t list, const float* table,
                   CategoryId category_filter,
                   const MaterializedFilter* filter, bool post_filter,
                   const FilterExpression* direct, FilterScanStats* stats,
                   TopK& adc_topk) const;
  // Post-scan finish shared by Search and SearchBatch: optional exact
  // re-ranking (IVFADC+R), trim to k, materialize.
  std::vector<SearchHit> RankAndMaterialize(FeatureView query, std::size_t k,
                                            TopK& adc_topk) const;

  std::shared_ptr<const CoarseQuantizer> quantizer_;
  std::shared_ptr<const ProductQuantizer> pq_;
  IvfPqIndexConfig config_;
  ForwardIndex forward_;
  // Attribute filter index, appended in lockstep with forward_.
  AttributeFilterIndex filters_;
  CodeSet codes_;
  std::unique_ptr<VectorSet> raw_;  // only when keep_raw_vectors
  ValidityBitmap valid_;
  std::vector<std::unique_ptr<InvertedList>> lists_;
  // Per-list packed codes in list order (the ADC scan layout).
  std::vector<std::unique_ptr<ScanBlock>> code_blocks_;
  std::unordered_map<std::string, LocalId> url_to_local_;
  std::unordered_map<ProductId, std::vector<LocalId>> product_to_locals_;
  std::vector<std::uint32_t> local_to_list_;  // writer-owned
  std::shared_ptr<TieredListStore> tiered_store_;
};

}  // namespace jdvs

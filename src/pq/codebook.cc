#include "pq/codebook.h"

#include <atomic>
#include <cassert>
#include <cstring>
#include <limits>
#include <memory>

#include "vecmath/distance.h"

namespace jdvs {

ProductQuantizer::ProductQuantizer(std::size_t dim, std::size_t num_subspaces,
                                   std::size_t codebook_size,
                                   std::vector<float> codebooks)
    : dim_(dim),
      num_subspaces_(num_subspaces),
      subspace_dim_(dim / num_subspaces),
      codebook_size_(codebook_size),
      codebooks_(std::move(codebooks)) {
  assert(num_subspaces_ > 0 && dim_ % num_subspaces_ == 0);
  assert(codebook_size_ >= 1 && codebook_size_ <= 256);
  assert(codebooks_.size() == num_subspaces_ * codebook_size_ * subspace_dim_);
}

ProductQuantizer ProductQuantizer::Train(const float* training,
                                         std::size_t count, std::size_t dim,
                                         const ProductQuantizerConfig& config) {
  assert(count >= 1);
  assert(config.num_subspaces > 0 && dim % config.num_subspaces == 0);
  assert(config.codebook_size >= 1 && config.codebook_size <= 256);
  const std::size_t m = config.num_subspaces;
  const std::size_t sub_dim = dim / m;

  std::vector<float> codebooks(m * config.codebook_size * sub_dim, 0.f);
  std::vector<float> sub_points(count * sub_dim);
  for (std::size_t s = 0; s < m; ++s) {
    // Slice out subspace s of every training vector.
    for (std::size_t i = 0; i < count; ++i) {
      std::memcpy(&sub_points[i * sub_dim], training + i * dim + s * sub_dim,
                  sub_dim * sizeof(float));
    }
    KMeansConfig kc = config.kmeans;
    kc.num_clusters = config.codebook_size;
    kc.seed = config.kmeans.seed + s;  // independent seeding per subspace
    const KMeansResult result = TrainKMeans(sub_points.data(), count, sub_dim, kc);
    // If training had fewer points than codebook_size, the trained centroid
    // count shrinks; remaining slots stay zero (never matched by Encode
    // because Encode only scans the trained prefix). Record the effective
    // size by duplicating the last centroid into the tail so lookups stay
    // valid.
    for (std::size_t k = 0; k < config.codebook_size; ++k) {
      const std::size_t src = std::min(k, result.num_clusters - 1);
      std::memcpy(
          &codebooks[(s * config.codebook_size + k) * sub_dim],
          result.centroids.data() + src * sub_dim, sub_dim * sizeof(float));
    }
  }
  return ProductQuantizer(dim, m, config.codebook_size, std::move(codebooks));
}

ProductQuantizer ProductQuantizer::Train(
    const std::vector<FeatureVector>& training,
    const ProductQuantizerConfig& config) {
  assert(!training.empty());
  const std::size_t dim = training.front().size();
  std::vector<float> flat;
  flat.reserve(training.size() * dim);
  for (const auto& v : training) {
    assert(v.size() == dim);
    flat.insert(flat.end(), v.begin(), v.end());
  }
  return Train(flat.data(), training.size(), dim, config);
}

PqCode ProductQuantizer::Encode(FeatureView v) const {
  assert(v.size() == dim_);
  PqCode code(num_subspaces_);
  for (std::size_t s = 0; s < num_subspaces_; ++s) {
    const FeatureView sub(v.data() + s * subspace_dim_, subspace_dim_);
    float best = std::numeric_limits<float>::infinity();
    std::uint8_t best_k = 0;
    for (std::size_t k = 0; k < codebook_size_; ++k) {
      const float d = L2SquaredDistance(sub, Centroid(s, k));
      if (d < best) {
        best = d;
        best_k = static_cast<std::uint8_t>(k);
      }
    }
    code[s] = best_k;
  }
  return code;
}

FeatureVector ProductQuantizer::Decode(const PqCode& code) const {
  assert(code.size() == num_subspaces_);
  FeatureVector v(dim_);
  for (std::size_t s = 0; s < num_subspaces_; ++s) {
    const FeatureView centroid = Centroid(s, code[s]);
    std::memcpy(v.data() + s * subspace_dim_, centroid.data(),
                subspace_dim_ * sizeof(float));
  }
  return v;
}

std::vector<float> ProductQuantizer::BuildDistanceTable(
    FeatureView query) const {
  assert(query.size() == dim_);
  std::vector<float> table(num_subspaces_ * codebook_size_);
  for (std::size_t s = 0; s < num_subspaces_; ++s) {
    const FeatureView sub(query.data() + s * subspace_dim_, subspace_dim_);
    for (std::size_t k = 0; k < codebook_size_; ++k) {
      table[s * codebook_size_ + k] = L2SquaredDistance(sub, Centroid(s, k));
    }
  }
  return table;
}

float ProductQuantizer::DistanceWithTable(
    const std::vector<float>& table, const std::uint8_t* code) const noexcept {
  float total = 0.f;
  for (std::size_t s = 0; s < num_subspaces_; ++s) {
    total += table[s * codebook_size_ + code[s]];
  }
  return total;
}

float ProductQuantizer::AsymmetricDistance(FeatureView query,
                                           const PqCode& code) const {
  return L2SquaredDistance(query, Decode(code));
}

CodeSet::CodeSet(std::size_t code_bytes, std::size_t chunk_codes)
    : code_bytes_(code_bytes), chunk_codes_(chunk_codes) {
  chunks_.reserve(1 << 20);
}

std::size_t CodeSet::Append(const PqCode& code) {
  assert(code.size() == code_bytes_);
  const std::size_t index = size_.load(std::memory_order_relaxed);
  if (index / chunk_codes_ == chunks_.size()) {
    chunks_.push_back(
        std::make_unique<std::uint8_t[]>(chunk_codes_ * code_bytes_));
    ++chunks_count_;
  }
  std::memcpy(chunks_[index / chunk_codes_].get() +
                  (index % chunk_codes_) * code_bytes_,
              code.data(), code_bytes_);
  size_.store(index + 1, std::memory_order_release);
  return index;
}

const std::uint8_t* CodeSet::At(std::size_t index) const noexcept {
  assert(index < size());
  return chunks_[index / chunk_codes_].get() +
         (index % chunk_codes_) * code_bytes_;
}

}  // namespace jdvs

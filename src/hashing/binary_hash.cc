#include "hashing/binary_hash.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <mutex>

#include "vecmath/distance.h"

namespace jdvs {

BinaryHashIndex::BinaryHashIndex(std::size_t dim,
                                 const BinaryHashConfig& config)
    : dim_(dim), config_(config), vectors_(dim) {
  // Round bit count up to whole words.
  config_.num_bits = std::max<std::size_t>(config_.num_bits, 64);
  config_.num_bits = (config_.num_bits + 63) / 64 * 64;
  words_ = config_.num_bits / 64;
  Rng rng(config_.seed);
  hyperplanes_.resize(config_.num_bits * dim_);
  for (float& x : hyperplanes_) {
    x = static_cast<float>(rng.NextGaussian());
  }
}

std::vector<std::uint64_t> BinaryHashIndex::Sign(FeatureView v) const {
  assert(v.size() == dim_);
  std::vector<std::uint64_t> signature(words_, 0);
  for (std::size_t b = 0; b < config_.num_bits; ++b) {
    const FeatureView plane(&hyperplanes_[b * dim_], dim_);
    if (InnerProduct(plane, v) >= 0.f) {
      signature[b / 64] |= (1ULL << (b % 64));
    }
  }
  return signature;
}

void BinaryHashIndex::Add(ImageId id, FeatureView v) {
  const auto signature = Sign(v);
  std::unique_lock lock(mu_);
  vectors_.Append(v);
  ids_.push_back(id);
  signatures_.insert(signatures_.end(), signature.begin(), signature.end());
}

std::uint32_t BinaryHashIndex::HammingDistance(const std::uint64_t* a,
                                               const std::uint64_t* b,
                                               std::size_t words) noexcept {
  std::uint32_t distance = 0;
  for (std::size_t w = 0; w < words; ++w) {
    distance += static_cast<std::uint32_t>(std::popcount(a[w] ^ b[w]));
  }
  return distance;
}

std::vector<ScoredImage> BinaryHashIndex::Search(FeatureView query,
                                                 std::size_t k) const {
  const auto signature = Sign(query);
  std::shared_lock lock(mu_);
  const std::size_t n = ids_.size();
  // Stage 1: Hamming short-list (TopK over slot indexes).
  TopK shortlist(std::max(config_.rerank_candidates, k));
  for (std::size_t slot = 0; slot < n; ++slot) {
    const std::uint32_t d = HammingDistance(
        signature.data(), &signatures_[slot * words_], words_);
    shortlist.Offer(slot, static_cast<float>(d));
  }
  // Stage 2: exact re-rank.
  TopK exact(k);
  for (const ScoredImage& candidate : shortlist.TakeSorted()) {
    const auto slot = static_cast<std::size_t>(candidate.image_id);
    exact.Offer(ids_[slot], L2SquaredDistance(query, vectors_.At(slot)));
  }
  return exact.TakeSorted();
}

std::size_t BinaryHashIndex::size() const {
  std::shared_lock lock(mu_);
  return ids_.size();
}

}  // namespace jdvs

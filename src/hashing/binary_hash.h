// Binary hash-code retrieval (the paper's references [22, 23, 29]).
//
// A large family of related work retrieves by compact binary codes: each
// vector is reduced to B bits (here via random hyperplanes — the classic
// SimHash/LSH-for-cosine construction that learned deep-hashing methods
// approximate), candidates are ranked by Hamming distance with hardware
// popcount, and the short-list is re-ranked with exact distances. This is
// the smallest-memory baseline: 8-16 bytes per vector with no codebooks.
#pragma once

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "common/rng.h"
#include "vecmath/topk.h"
#include "vecmath/vector.h"
#include "vecmath/vector_set.h"

namespace jdvs {

struct BinaryHashConfig {
  std::size_t num_bits = 64;  // multiple of 64
  std::uint64_t seed = 23;
  // Hamming short-list size that gets exact re-ranking.
  std::size_t rerank_candidates = 100;
};

class BinaryHashIndex {
 public:
  BinaryHashIndex(std::size_t dim, const BinaryHashConfig& config = {});

  BinaryHashIndex(const BinaryHashIndex&) = delete;
  BinaryHashIndex& operator=(const BinaryHashIndex&) = delete;

  // Signature of a vector (num_bits/64 words).
  std::vector<std::uint64_t> Sign(FeatureView v) const;

  // Inserts a vector under `id` (single writer).
  void Add(ImageId id, FeatureView v);

  // Top-k: Hamming scan over all signatures, exact re-rank of the best
  // `rerank_candidates`.
  std::vector<ScoredImage> Search(FeatureView query, std::size_t k) const;

  // Hamming distance between two stored signatures (diagnostics/tests).
  static std::uint32_t HammingDistance(const std::uint64_t* a,
                                       const std::uint64_t* b,
                                       std::size_t words) noexcept;

  std::size_t size() const;
  std::size_t dim() const noexcept { return dim_; }
  std::size_t num_bits() const noexcept { return config_.num_bits; }
  std::size_t bytes_per_vector() const noexcept { return words_ * 8; }

 private:
  const std::size_t dim_;
  BinaryHashConfig config_;
  std::size_t words_;
  std::vector<float> hyperplanes_;  // num_bits x dim
  std::vector<std::uint64_t> signatures_;  // size * words_
  VectorSet vectors_;  // exact re-ranking store
  std::vector<ImageId> ids_;
  mutable std::shared_mutex mu_;
};

}  // namespace jdvs

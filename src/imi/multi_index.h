// Inverted Multi-Index (Babenko & Lempitsky, the paper's reference [18]).
//
// Where the paper's system uses a flat k-means coarse quantizer with N
// inverted lists, the inverted multi-index splits the vector into two halves
// quantized independently with K centroids each, producing a K x K grid of
// much finer cells for the same codebook size. Queries traverse cells in
// increasing d1(i) + d2(j) order with the multi-sequence algorithm, stopping
// once enough candidates have been collected — finer cells mean fewer
// non-candidates scanned per probe.
//
// Implemented as a standalone ANN baseline (like LshIndex): single writer,
// shared_mutex-guarded, exact re-ranking of gathered candidates.
#pragma once

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "cluster/kmeans.h"
#include "vecmath/topk.h"
#include "vecmath/vector.h"
#include "vecmath/vector_set.h"

namespace jdvs {

struct ImiConfig {
  // Centroids per half; the grid has centroids_per_half^2 cells.
  std::size_t centroids_per_half = 32;
  KMeansConfig kmeans;
  // Default candidate budget per query: cells are visited in ascending
  // lower-bound order until at least this many vectors have been scored.
  std::size_t min_candidates = 256;
};

class InvertedMultiIndex {
 public:
  // Trains both half-space codebooks over `training` (all of dimension dim;
  // dim must be even). Requires a non-empty training set.
  InvertedMultiIndex(std::size_t dim,
                     const std::vector<FeatureVector>& training,
                     const ImiConfig& config = {});

  InvertedMultiIndex(const InvertedMultiIndex&) = delete;
  InvertedMultiIndex& operator=(const InvertedMultiIndex&) = delete;

  // Inserts a vector under `id` (single writer).
  void Add(ImageId id, FeatureView v);

  // Top-k by exact distance over candidates gathered by the multi-sequence
  // traversal. `candidate_budget` of 0 uses the configured min_candidates.
  std::vector<ScoredImage> Search(FeatureView query, std::size_t k,
                                  std::size_t candidate_budget = 0) const;

  std::size_t size() const;
  std::size_t dim() const noexcept { return dim_; }
  std::size_t num_cells() const noexcept { return k_ * k_; }
  // Number of non-empty cells (occupancy metric: the multi-index's selling
  // point is many small cells).
  std::size_t OccupiedCells() const;

 private:
  std::size_t CellFor(FeatureView v) const;

  const std::size_t dim_;
  const std::size_t half_dim_;
  std::size_t k_;
  ImiConfig config_;
  std::vector<float> centroids_a_;  // k_ x half_dim_
  std::vector<float> centroids_b_;
  std::vector<std::vector<std::uint32_t>> cells_;  // k_*k_ slots
  VectorSet vectors_;
  std::vector<ImageId> ids_;
  mutable std::shared_mutex mu_;
};

}  // namespace jdvs

#include "imi/multi_index.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>
#include <mutex>
#include <queue>
#include <unordered_set>

#include "vecmath/distance.h"

namespace jdvs {
namespace {

// Trains one half-space codebook over the corresponding slices of the
// training vectors.
std::vector<float> TrainHalf(const std::vector<FeatureVector>& training,
                             std::size_t offset, std::size_t half_dim,
                             std::size_t k, const KMeansConfig& base,
                             std::uint64_t seed_offset) {
  std::vector<float> slices;
  slices.reserve(training.size() * half_dim);
  for (const auto& v : training) {
    slices.insert(slices.end(), v.begin() + static_cast<long>(offset),
                  v.begin() + static_cast<long>(offset + half_dim));
  }
  KMeansConfig config = base;
  config.num_clusters = k;
  config.seed = base.seed + seed_offset;
  KMeansResult result =
      TrainKMeans(slices.data(), training.size(), half_dim, config);
  // Pad (by duplicating the last centroid) if training had too few points.
  std::vector<float> centroids(k * half_dim);
  for (std::size_t c = 0; c < k; ++c) {
    const std::size_t src = std::min(c, result.num_clusters - 1);
    std::memcpy(&centroids[c * half_dim],
                result.centroids.data() + src * half_dim,
                half_dim * sizeof(float));
  }
  return centroids;
}

// Index of the nearest centroid in a flat (k x d) codebook.
std::uint32_t Nearest(const std::vector<float>& centroids, std::size_t d,
                      FeatureView v) {
  const std::size_t k = centroids.size() / d;
  float best = std::numeric_limits<float>::infinity();
  std::uint32_t best_c = 0;
  for (std::size_t c = 0; c < k; ++c) {
    const float dist =
        L2SquaredDistance(v, FeatureView(centroids.data() + c * d, d));
    if (dist < best) {
      best = dist;
      best_c = static_cast<std::uint32_t>(c);
    }
  }
  return best_c;
}

}  // namespace

InvertedMultiIndex::InvertedMultiIndex(
    std::size_t dim, const std::vector<FeatureVector>& training,
    const ImiConfig& config)
    : dim_(dim),
      half_dim_(dim / 2),
      k_(std::max<std::size_t>(config.centroids_per_half, 1)),
      config_(config),
      vectors_(dim) {
  assert(dim_ % 2 == 0);
  assert(!training.empty());
  centroids_a_ =
      TrainHalf(training, 0, half_dim_, k_, config.kmeans, /*seed_offset=*/0);
  centroids_b_ = TrainHalf(training, half_dim_, half_dim_, k_, config.kmeans,
                           /*seed_offset=*/1);
  cells_.resize(k_ * k_);
}

std::size_t InvertedMultiIndex::CellFor(FeatureView v) const {
  const std::uint32_t a =
      Nearest(centroids_a_, half_dim_, FeatureView(v.data(), half_dim_));
  const std::uint32_t b = Nearest(
      centroids_b_, half_dim_, FeatureView(v.data() + half_dim_, half_dim_));
  return static_cast<std::size_t>(a) * k_ + b;
}

void InvertedMultiIndex::Add(ImageId id, FeatureView v) {
  assert(v.size() == dim_);
  std::unique_lock lock(mu_);
  const auto slot = static_cast<std::uint32_t>(vectors_.Append(v));
  ids_.push_back(id);
  cells_[CellFor(v)].push_back(slot);
}

std::vector<ScoredImage> InvertedMultiIndex::Search(
    FeatureView query, std::size_t k, std::size_t candidate_budget) const {
  assert(query.size() == dim_);
  std::shared_lock lock(mu_);
  const std::size_t budget =
      candidate_budget == 0 ? config_.min_candidates : candidate_budget;

  // Per-half centroid distances, sorted ascending.
  const FeatureView qa(query.data(), half_dim_);
  const FeatureView qb(query.data() + half_dim_, half_dim_);
  struct Scored {
    float d;
    std::uint32_t c;
  };
  std::vector<Scored> da(k_);
  std::vector<Scored> db(k_);
  for (std::size_t c = 0; c < k_; ++c) {
    da[c] = {L2SquaredDistance(
                 qa, FeatureView(centroids_a_.data() + c * half_dim_,
                                 half_dim_)),
             static_cast<std::uint32_t>(c)};
    db[c] = {L2SquaredDistance(
                 qb, FeatureView(centroids_b_.data() + c * half_dim_,
                                 half_dim_)),
             static_cast<std::uint32_t>(c)};
  }
  const auto by_distance = [](const Scored& x, const Scored& y) {
    return x.d < y.d;
  };
  std::sort(da.begin(), da.end(), by_distance);
  std::sort(db.begin(), db.end(), by_distance);

  // Multi-sequence traversal: a min-heap over (i, j) rank pairs ordered by
  // da[i].d + db[j].d, expanding (i+1, j) and (i, j+1).
  struct HeapEntry {
    float bound;
    std::uint32_t i;
    std::uint32_t j;
    bool operator>(const HeapEntry& other) const {
      return bound > other.bound;
    }
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      frontier;
  std::unordered_set<std::uint64_t> pushed;
  const auto push = [&](std::uint32_t i, std::uint32_t j) {
    if (i >= k_ || j >= k_) return;
    const std::uint64_t key = (static_cast<std::uint64_t>(i) << 32) | j;
    if (!pushed.insert(key).second) return;
    frontier.push(HeapEntry{da[i].d + db[j].d, i, j});
  };
  push(0, 0);

  TopK topk(k);
  std::size_t candidates = 0;
  while (!frontier.empty() && candidates < budget) {
    const HeapEntry top = frontier.top();
    frontier.pop();
    const std::size_t cell =
        static_cast<std::size_t>(da[top.i].c) * k_ + db[top.j].c;
    for (const std::uint32_t slot : cells_[cell]) {
      topk.Offer(ids_[slot], L2SquaredDistance(query, vectors_.At(slot)));
      ++candidates;
    }
    push(top.i + 1, top.j);
    push(top.i, top.j + 1);
  }
  return topk.TakeSorted();
}

std::size_t InvertedMultiIndex::size() const {
  std::shared_lock lock(mu_);
  return ids_.size();
}

std::size_t InvertedMultiIndex::OccupiedCells() const {
  std::shared_lock lock(mu_);
  std::size_t occupied = 0;
  for (const auto& cell : cells_) occupied += !cell.empty();
  return occupied;
}

}  // namespace jdvs

#include "vecmath/topk.h"

#include <algorithm>
#include <limits>

namespace jdvs {
namespace {

struct DistanceLess {
  bool operator()(const ScoredImage& a, const ScoredImage& b) const noexcept {
    // Ties broken by id for determinism across runs and shard layouts.
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.image_id < b.image_id;
  }
};

}  // namespace

TopK::TopK(std::size_t k) : k_(k == 0 ? 1 : k) { heap_.reserve(k_); }

void TopK::Offer(ImageId id, float distance) {
  if (heap_.size() < k_) {
    heap_.push_back({id, distance});
    std::push_heap(heap_.begin(), heap_.end(), DistanceLess{});
    return;
  }
  if (!DistanceLess{}({id, distance}, heap_.front())) return;
  std::pop_heap(heap_.begin(), heap_.end(), DistanceLess{});
  heap_.back() = {id, distance};
  std::push_heap(heap_.begin(), heap_.end(), DistanceLess{});
}

float TopK::Threshold() const noexcept {
  if (heap_.size() < k_) return std::numeric_limits<float>::infinity();
  return heap_.front().distance;
}

std::vector<ScoredImage> TopK::TakeSorted() {
  std::sort_heap(heap_.begin(), heap_.end(), DistanceLess{});
  return std::move(heap_);
}

std::vector<ScoredImage> MergeTopK(
    const std::vector<std::vector<ScoredImage>>& partials, std::size_t k) {
  TopK merged(k);
  for (const auto& partial : partials) {
    for (const auto& candidate : partial) {
      merged.Offer(candidate.image_id, candidate.distance);
    }
  }
  return merged.TakeSorted();
}

}  // namespace jdvs

#include "vecmath/topk.h"

namespace jdvs {

std::vector<ScoredImage> MergeTopK(
    const std::vector<std::vector<ScoredImage>>& partials, std::size_t k) {
  TopK merged(k);
  for (const auto& partial : partials) {
    for (const auto& candidate : partial) {
      merged.Offer(candidate.image_id, candidate.distance);
    }
  }
  return merged.TakeSorted();
}

}  // namespace jdvs

#include "vecmath/vector_set.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace jdvs {

VectorSet::VectorSet(std::size_t dim, std::size_t chunk_vectors)
    : dim_(dim),
      padded_dim_(PaddedDim(dim)),
      chunk_vectors_(std::max<std::size_t>(chunk_vectors, 1)) {
  // Reserve enough chunk slots that chunks_ never reallocates in practice
  // (2^20 chunks * 4096 vectors = 4G vectors). Readers only dereference
  // chunk pointers covered by the published size, and Append is
  // single-writer, so reservation is a belt-and-braces stability guarantee.
  chunks_.reserve(1 << 20);
}

float* VectorSet::SlotFor(std::size_t index) noexcept {
  return chunks_[index / chunk_vectors_].get() +
         (index % chunk_vectors_) * padded_dim_;
}

const float* VectorSet::SlotFor(std::size_t index) const noexcept {
  return chunks_[index / chunk_vectors_].get() +
         (index % chunk_vectors_) * padded_dim_;
}

std::size_t VectorSet::Append(FeatureView v) {
  assert(v.size() == dim_);
  const std::size_t index = size_.load(std::memory_order_relaxed);
  if (index / chunk_vectors_ == chunks_.size()) {
    // Aligned and zero-initialized: the padding lanes of every slot stay 0
    // for the lifetime of the chunk (Overwrite only touches dim_ floats).
    chunks_.push_back(AllocateAligned<float>(chunk_vectors_ * padded_dim_));
  }
  std::memcpy(SlotFor(index), v.data(), dim_ * sizeof(float));
  // Release: the vector contents become visible before the new size.
  size_.store(index + 1, std::memory_order_release);
  return index;
}

void VectorSet::Overwrite(std::size_t index, FeatureView v) {
  assert(v.size() == dim_);
  assert(index < size());
  std::memcpy(SlotFor(index), v.data(), dim_ * sizeof(float));
}

FeatureView VectorSet::At(std::size_t index) const noexcept {
  assert(index < size());
  return FeatureView(SlotFor(index), dim_);
}

bool VectorSet::storage_aligned() const noexcept {
  const std::size_t published = size();
  const std::size_t chunk_count =
      (published + chunk_vectors_ - 1) / chunk_vectors_;
  static_assert(kCacheLineBytes % alignof(float) == 0);
  for (std::size_t c = 0; c < chunk_count; ++c) {
    if (!IsCacheAligned(chunks_[c].get())) return false;
  }
  return true;
}

}  // namespace jdvs

// Bounded top-k selection.
//
// Searchers return the k most similar images to their broker; brokers and
// blenders merge the partial top-k lists (Section 2.1 workflow). TopK keeps
// the k smallest-distance candidates in a max-heap so insertion is O(log k)
// and rejection of non-competitive candidates is O(1).
#pragma once

#include <cstddef>
#include <vector>

#include "vecmath/vector.h"

namespace jdvs {

struct ScoredImage {
  ImageId image_id = 0;
  float distance = 0.f;  // smaller is more similar (L2^2)

  friend bool operator==(const ScoredImage&, const ScoredImage&) = default;
};

class TopK {
 public:
  explicit TopK(std::size_t k);

  // Offers a candidate; keeps it only if competitive.
  void Offer(ImageId id, float distance);

  // Current worst (largest) distance admitted, or +inf while not full.
  float Threshold() const noexcept;

  std::size_t size() const noexcept { return heap_.size(); }
  std::size_t k() const noexcept { return k_; }
  bool full() const noexcept { return heap_.size() == k_; }

  // Extracts results sorted by ascending distance (best first). The TopK is
  // left empty afterwards.
  std::vector<ScoredImage> TakeSorted();

 private:
  std::size_t k_;
  std::vector<ScoredImage> heap_;  // max-heap on distance
};

// Merges several already-sorted partial result lists into a single sorted
// top-k (the broker/blender combine step).
std::vector<ScoredImage> MergeTopK(
    const std::vector<std::vector<ScoredImage>>& partials, std::size_t k);

}  // namespace jdvs

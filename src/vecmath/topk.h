// Bounded top-k selection.
//
// Searchers return the k most similar images to their broker; brokers and
// blenders merge the partial top-k lists (Section 2.1 workflow). TopK keeps
// the k smallest-distance candidates seen so far and rejects non-competitive
// candidates in O(1). Two storage strategies behind one interface:
//
//  * small k (scan-side: the per-query top-k a searcher builds) — an
//    unsorted array with the worst element's index cached. An eviction is
//    one store plus a branch-predictable linear rescan, which on k <= 32
//    beats the pointer-hopping, mispredict-heavy sift of a binary heap;
//  * large k (broker/blender merges) — a classic max-heap, O(log k) per
//    eviction.
//
// Both strategies admit and evict exactly the same multiset of candidates
// (same DistanceLess order, same tie-breaks), so results never depend on k.
// Offer and Threshold are header-inline: they sit inside every scan's
// survivor loop, where an out-of-line call would cost as much as the
// admission test itself.
#pragma once

#include <algorithm>
#include <cstddef>
#include <limits>
#include <vector>

#include "vecmath/vector.h"

namespace jdvs {

struct ScoredImage {
  ImageId image_id = 0;
  float distance = 0.f;  // smaller is more similar (L2^2)

  friend bool operator==(const ScoredImage&, const ScoredImage&) = default;
};

class TopK {
 public:
  explicit TopK(std::size_t k)
      : k_(k == 0 ? 1 : k), linear_(k_ <= kLinearMaxK) {
    elems_.reserve(k_);
  }

  // Offers a candidate; keeps it only if competitive.
  void Offer(ImageId id, float distance) {
    if (elems_.size() < k_) {
      // Fill phase, shared by both strategies: plain appends while tracking
      // the worst element. The heap is established once, when full.
      if (elems_.empty() || DistanceLess{}(elems_[worst_], {id, distance})) {
        worst_ = elems_.size();
      }
      elems_.push_back({id, distance});
      if (!linear_ && elems_.size() == k_) {
        std::make_heap(elems_.begin(), elems_.end(), DistanceLess{});
      }
      return;
    }
    if (linear_) {
      if (!DistanceLess{}({id, distance}, elems_[worst_])) return;
      elems_[worst_] = {id, distance};
      std::size_t w = 0;
      for (std::size_t i = 1; i < elems_.size(); ++i) {
        if (DistanceLess{}(elems_[w], elems_[i])) w = i;
      }
      worst_ = w;
      return;
    }
    if (!DistanceLess{}({id, distance}, elems_.front())) return;
    std::pop_heap(elems_.begin(), elems_.end(), DistanceLess{});
    elems_.back() = {id, distance};
    std::push_heap(elems_.begin(), elems_.end(), DistanceLess{});
  }

  // Current worst (largest) distance admitted, or +inf while not full.
  float Threshold() const noexcept {
    if (elems_.size() < k_) return std::numeric_limits<float>::infinity();
    return linear_ ? elems_[worst_].distance : elems_.front().distance;
  }

  std::size_t size() const noexcept { return elems_.size(); }
  std::size_t k() const noexcept { return k_; }
  bool full() const noexcept { return elems_.size() == k_; }

  // Extracts results sorted by ascending distance (best first). The TopK is
  // left empty afterwards.
  std::vector<ScoredImage> TakeSorted() {
    std::sort(elems_.begin(), elems_.end(), DistanceLess{});
    return std::move(elems_);
  }

 private:
  static constexpr std::size_t kLinearMaxK = 32;

  struct DistanceLess {
    bool operator()(const ScoredImage& a, const ScoredImage& b) const noexcept {
      // Ties broken by id for determinism across runs and shard layouts.
      if (a.distance != b.distance) return a.distance < b.distance;
      return a.image_id < b.image_id;
    }
  };

  std::size_t k_;
  bool linear_;
  std::size_t worst_ = 0;  // index of the max element (linear strategy)
  std::vector<ScoredImage> elems_;  // unsorted (linear) or max-heap (large k)
};

// Merges several already-sorted partial result lists into a single sorted
// top-k (the broker/blender combine step).
std::vector<ScoredImage> MergeTopK(
    const std::vector<std::vector<ScoredImage>>& partials, std::size_t k);

}  // namespace jdvs

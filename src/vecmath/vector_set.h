// Append-only, concurrently readable store of fixed-dimension vectors.
//
// Each searcher keeps the feature of every image in its partition so the
// inverted-list scan can compute Euclidean distances (Section 2.4). Real-time
// insertion appends a vector while searches are in flight, so the store is
// chunked (no reallocation ever moves published data) and publishes growth
// through an atomic size with release/acquire ordering — the same
// single-writer / many-readers discipline as the inverted lists.
//
// Layout contract for the SIMD kernel layer (vecmath/kernels.h): every
// vector slot starts on a 64-byte boundary. The per-vector stride is dim
// rounded up to a whole number of cache lines (padded_dim()), and the
// padding floats are always zero, so batch kernels may scan padded_dim()
// lanes with aligned loads and no remainder handling — the zero lanes
// contribute exactly 0 to L2^2 and inner-product accumulators.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "vecmath/aligned.h"
#include "vecmath/vector.h"

namespace jdvs {

class VectorSet {
 public:
  // `chunk_vectors` is the number of vectors per chunk (power of two not
  // required). Dimension is fixed at construction.
  explicit VectorSet(std::size_t dim, std::size_t chunk_vectors = 4096);

  VectorSet(const VectorSet&) = delete;
  VectorSet& operator=(const VectorSet&) = delete;

  // Appends a vector (single writer). Returns its dense index.
  // Precondition: v.size() == dim().
  std::size_t Append(FeatureView v);

  // Overwrites the vector at `index` in place (single writer). Readers racing
  // a rewrite may observe a torn vector; callers that need stability must
  // only rewrite ids that are invisible to search (invalid in the bitmap).
  void Overwrite(std::size_t index, FeatureView v);

  // View of vector `index` (dim() floats; the padding lanes beyond are
  // readable zeros). Valid for the lifetime of the set; safe to call
  // concurrently with Append for any index < size() observed beforehand.
  FeatureView At(std::size_t index) const noexcept;

  std::size_t size() const noexcept {
    return size_.load(std::memory_order_acquire);
  }
  std::size_t dim() const noexcept { return dim_; }
  // Per-vector stride in floats: dim() rounded up to whole cache lines.
  std::size_t padded_dim() const noexcept { return padded_dim_; }

  // True when every published chunk base sits on a 64-byte boundary — the
  // invariant snapshot load re-checks before handing storage to SIMD scans.
  bool storage_aligned() const noexcept;

 private:
  float* SlotFor(std::size_t index) noexcept;
  const float* SlotFor(std::size_t index) const noexcept;

  const std::size_t dim_;
  const std::size_t padded_dim_;
  const std::size_t chunk_vectors_;
  // Chunk pointers are only appended, never moved. The vector of chunk
  // pointers itself is pre-reserved generously and guarded by the atomic
  // size: readers never index a chunk that was not published.
  std::vector<AlignedArray<float>> chunks_;
  std::atomic<std::size_t> size_{0};
};

}  // namespace jdvs

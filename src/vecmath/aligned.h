// Cache-line-aligned allocation for SIMD-scanned storage.
//
// The kernel layer (vecmath/kernels.h) wants 64-byte-aligned, zero-padded
// buffers: aligned loads are the fast path on every x86 tier, and zeroed
// padding lanes contribute exactly 0 to L2^2 / IP accumulators, so a kernel
// can run over the padded width with no remainder loop. This header is the
// one place that alignment/padding policy lives.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>

namespace jdvs {

// One cache line; also the widest SIMD register (AVX-512 zmm) in bytes.
inline constexpr std::size_t kCacheLineBytes = 64;

// Floats per cache line: the granule vector dimensions are padded to.
inline constexpr std::size_t kFloatsPerCacheLine =
    kCacheLineBytes / sizeof(float);

// Rounds a float dimension up to a whole number of cache lines (e.g. 60 ->
// 64, 64 -> 64, 65 -> 80). The padded tail must be kept zeroed.
constexpr std::size_t PaddedDim(std::size_t dim) noexcept {
  return (dim + kFloatsPerCacheLine - 1) / kFloatsPerCacheLine *
         kFloatsPerCacheLine;
}

constexpr bool IsCacheAligned(const void* p) noexcept {
  return (reinterpret_cast<std::uintptr_t>(p) % kCacheLineBytes) == 0;
}

struct AlignedFreeDeleter {
  void operator()(void* p) const noexcept { std::free(p); }
};

template <typename T>
using AlignedArray = std::unique_ptr<T[], AlignedFreeDeleter>;

// Allocates `count` Ts at 64-byte alignment, zero-initialized (trivial types
// only — freed without destructors).
template <typename T>
AlignedArray<T> AllocateAligned(std::size_t count) {
  static_assert(std::is_trivial_v<T>,
                "aligned storage is raw memory: trivial payloads only");
  static_assert(kCacheLineBytes % alignof(T) == 0);
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t bytes =
      (count * sizeof(T) + kCacheLineBytes - 1) / kCacheLineBytes *
      kCacheLineBytes;
  void* p = std::aligned_alloc(kCacheLineBytes, bytes == 0 ? kCacheLineBytes
                                                           : bytes);
  if (p == nullptr) throw std::bad_alloc();
  std::memset(p, 0, bytes == 0 ? kCacheLineBytes : bytes);
  return AlignedArray<T>(static_cast<T*>(p));
}

}  // namespace jdvs

// Feature vector primitives.
//
// The paper's searchers compute Euclidean distance between the query image's
// high-dimensional feature and every image in the probed inverted lists
// (Section 2.4). Features here are dense float32 vectors of a fixed,
// per-index dimension.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace jdvs {

// Dense float feature vector. Plain owning type; hot paths operate on
// std::span<const float> views to avoid copies.
using FeatureVector = std::vector<float>;
using FeatureView = std::span<const float>;

// Global image identifier: unique across the whole catalog, assigned by the
// catalog / indexing pipeline.
using ImageId = std::uint64_t;

// Local (per-partition) dense id: position in a searcher's forward index.
using LocalId = std::uint32_t;

// Product identifier.
using ProductId = std::uint64_t;

// Product category label (used by the detector and the synthetic embedder).
using CategoryId = std::uint32_t;

inline constexpr LocalId kInvalidLocalId = ~LocalId{0};

// Sentinel "no category filter" value for category-scoped search.
inline constexpr CategoryId kNoCategoryFilter = ~CategoryId{0};

}  // namespace jdvs

#include "vecmath/kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "common/logging.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define JDVS_KERNELS_X86 1
#include <immintrin.h>
#endif

namespace jdvs {
namespace {

// ---------------------------------------------------------------------------
// Scalar tier. The reference semantics every SIMD tier must reproduce; also
// the portable fallback (and the JDVS_KERNEL_DISPATCH=scalar ablation path).
// Four accumulators hide FP-add latency and let the autovectorizer help.
// ---------------------------------------------------------------------------

float L2SqScalar(const float* a, const float* b, std::size_t n) noexcept {
  float s0 = 0.f, s1 = 0.f, s2 = 0.f, s3 = 0.f;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float d0 = a[i] - b[i];
    const float d1 = a[i + 1] - b[i + 1];
    const float d2 = a[i + 2] - b[i + 2];
    const float d3 = a[i + 3] - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    s0 += d * d;
  }
  return (s0 + s1) + (s2 + s3);
}

float IpScalar(const float* a, const float* b, std::size_t n) noexcept {
  float s0 = 0.f, s1 = 0.f, s2 = 0.f, s3 = 0.f;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) s0 += a[i] * b[i];
  return (s0 + s1) + (s2 + s3);
}

void L2SqBatch4Scalar(const float* q, const float* base, std::size_t stride,
                      std::size_t n, float* out4) noexcept {
  const float* v0 = base;
  const float* v1 = base + stride;
  const float* v2 = base + 2 * stride;
  const float* v3 = base + 3 * stride;
  float s0 = 0.f, s1 = 0.f, s2 = 0.f, s3 = 0.f;
  for (std::size_t i = 0; i < n; ++i) {
    const float qi = q[i];  // loaded once, reused across the 4 rows
    const float d0 = qi - v0[i];
    const float d1 = qi - v1[i];
    const float d2 = qi - v2[i];
    const float d3 = qi - v3[i];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  out4[0] = s0;
  out4[1] = s1;
  out4[2] = s2;
  out4[3] = s3;
}

void L2SqScanScalar(const float* q, const float* base, std::size_t stride,
                    std::size_t n, std::size_t rows, float* out) noexcept {
  std::size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    L2SqBatch4Scalar(q, base + r * stride, stride, n, out + r);
  }
  for (; r < rows; ++r) out[r] = L2SqScalar(q, base + r * stride, n);
}

std::size_t L2SqScanFilterScalar(const float* q, float q_norm,
                                 const float* base, const float* norms,
                                 std::size_t stride, std::size_t n,
                                 std::size_t rows, float threshold,
                                 std::uint32_t* out_idx,
                                 float* out_dist) noexcept {
  std::size_t kept = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    const float dot = IpScalar(q, base + r * stride, n);
    float dist = q_norm + norms[r] - 2.0f * dot;
    if (dist < 0.0f) dist = 0.0f;
    if (dist <= threshold) {
      out_idx[kept] = static_cast<std::uint32_t>(r);
      out_dist[kept] = dist;
      ++kept;
    }
  }
  return kept;
}

void PqAdcScanScalar(const float* table, std::size_t ks,
                     const std::uint8_t* codes, std::size_t m,
                     std::size_t count, float* out) noexcept {
  std::size_t c = 0;
  // Four candidates in flight: independent accumulators keep the table
  // lookups pipelined instead of serialized on one FP add chain.
  for (; c + 4 <= count; c += 4) {
    const std::uint8_t* c0 = codes + c * m;
    const std::uint8_t* c1 = c0 + m;
    const std::uint8_t* c2 = c1 + m;
    const std::uint8_t* c3 = c2 + m;
    float s0 = 0.f, s1 = 0.f, s2 = 0.f, s3 = 0.f;
    const float* row = table;
    for (std::size_t s = 0; s < m; ++s, row += ks) {
      s0 += row[c0[s]];
      s1 += row[c1[s]];
      s2 += row[c2[s]];
      s3 += row[c3[s]];
    }
    out[c] = s0;
    out[c + 1] = s1;
    out[c + 2] = s2;
    out[c + 3] = s3;
  }
  for (; c < count; ++c) {
    const std::uint8_t* code = codes + c * m;
    float s = 0.f;
    const float* row = table;
    for (std::size_t sub = 0; sub < m; ++sub, row += ks) s += row[code[sub]];
    out[c] = s;
  }
}

std::size_t FilterLeScalar(const float* dists, std::size_t count,
                           float threshold, std::uint32_t* out_idx) noexcept {
  // Branchless: unconditionally store the index, advance only on a pass.
  // The admission test is almost always false on a warm heap, and a
  // predictable-false branch would still cost more than this store.
  std::size_t n = 0;
  for (std::size_t j = 0; j < count; ++j) {
    out_idx[n] = static_cast<std::uint32_t>(j);
    n += dists[j] <= threshold ? 1 : 0;
  }
  return n;
}

constexpr DistanceKernels kScalarKernels = {
    L2SqScalar,      IpScalar,        L2SqBatch4Scalar,
    L2SqScanScalar,  L2SqScanFilterScalar,
    PqAdcScanScalar, FilterLeScalar,  KernelTier::kScalar};

#if JDVS_KERNELS_X86

// ---------------------------------------------------------------------------
// AVX2 + FMA tier: 8-float lane groups, unrolled x2 on the pairwise kernels.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) inline float HSum256(__m256 v) noexcept {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 sum = _mm_add_ps(lo, hi);
  sum = _mm_add_ps(sum, _mm_movehl_ps(sum, sum));
  sum = _mm_add_ss(sum, _mm_movehdup_ps(sum));
  return _mm_cvtss_f32(sum);
}

__attribute__((target("avx2,fma"))) float L2SqAvx2(const float* a,
                                                   const float* b,
                                                   std::size_t n) noexcept {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 d0 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    const __m256 d1 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 8 <= n; i += 8) {
    const __m256 d =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_fmadd_ps(d, d, acc0);
  }
  float total = HSum256(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    total += d * d;
  }
  return total;
}

__attribute__((target("avx2,fma"))) float IpAvx2(const float* a,
                                                 const float* b,
                                                 std::size_t n) noexcept {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
  }
  float total = HSum256(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) total += a[i] * b[i];
  return total;
}

__attribute__((target("avx2,fma"))) void L2SqBatch4Avx2(
    const float* q, const float* base, std::size_t stride, std::size_t n,
    float* out4) noexcept {
  const float* v0 = base;
  const float* v1 = base + stride;
  const float* v2 = base + 2 * stride;
  const float* v3 = base + 3 * stride;
  __m256 a0 = _mm256_setzero_ps();
  __m256 a1 = _mm256_setzero_ps();
  __m256 a2 = _mm256_setzero_ps();
  __m256 a3 = _mm256_setzero_ps();
  // Second accumulator bank for the unrolled-x2 main loop: halves the loop
  // branch/counter overhead per lane-group without lengthening any FMA
  // dependency chain (each bank's chain still sees one FMA per iteration).
  __m256 b0 = _mm256_setzero_ps();
  __m256 b1 = _mm256_setzero_ps();
  __m256 b2 = _mm256_setzero_ps();
  __m256 b3 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 qa = _mm256_loadu_ps(q + i);  // one load feeds 4 rows
    const __m256 qb = _mm256_loadu_ps(q + i + 8);
    const __m256 d0a = _mm256_sub_ps(qa, _mm256_loadu_ps(v0 + i));
    const __m256 d0b = _mm256_sub_ps(qb, _mm256_loadu_ps(v0 + i + 8));
    const __m256 d1a = _mm256_sub_ps(qa, _mm256_loadu_ps(v1 + i));
    const __m256 d1b = _mm256_sub_ps(qb, _mm256_loadu_ps(v1 + i + 8));
    const __m256 d2a = _mm256_sub_ps(qa, _mm256_loadu_ps(v2 + i));
    const __m256 d2b = _mm256_sub_ps(qb, _mm256_loadu_ps(v2 + i + 8));
    const __m256 d3a = _mm256_sub_ps(qa, _mm256_loadu_ps(v3 + i));
    const __m256 d3b = _mm256_sub_ps(qb, _mm256_loadu_ps(v3 + i + 8));
    a0 = _mm256_fmadd_ps(d0a, d0a, a0);
    b0 = _mm256_fmadd_ps(d0b, d0b, b0);
    a1 = _mm256_fmadd_ps(d1a, d1a, a1);
    b1 = _mm256_fmadd_ps(d1b, d1b, b1);
    a2 = _mm256_fmadd_ps(d2a, d2a, a2);
    b2 = _mm256_fmadd_ps(d2b, d2b, b2);
    a3 = _mm256_fmadd_ps(d3a, d3a, a3);
    b3 = _mm256_fmadd_ps(d3b, d3b, b3);
  }
  a0 = _mm256_add_ps(a0, b0);
  a1 = _mm256_add_ps(a1, b1);
  a2 = _mm256_add_ps(a2, b2);
  a3 = _mm256_add_ps(a3, b3);
  for (; i + 8 <= n; i += 8) {
    const __m256 qv = _mm256_loadu_ps(q + i);
    const __m256 d0 = _mm256_sub_ps(qv, _mm256_loadu_ps(v0 + i));
    const __m256 d1 = _mm256_sub_ps(qv, _mm256_loadu_ps(v1 + i));
    const __m256 d2 = _mm256_sub_ps(qv, _mm256_loadu_ps(v2 + i));
    const __m256 d3 = _mm256_sub_ps(qv, _mm256_loadu_ps(v3 + i));
    a0 = _mm256_fmadd_ps(d0, d0, a0);
    a1 = _mm256_fmadd_ps(d1, d1, a1);
    a2 = _mm256_fmadd_ps(d2, d2, a2);
    a3 = _mm256_fmadd_ps(d3, d3, a3);
  }
  // Transposed finish: hadd pairs lanes of adjacent accumulators, so two
  // hadd levels plus a cross-half add leave [sum a0, sum a1, sum a2, sum a3]
  // in one xmm — ~5 ops total versus 4 independent horizontal reductions.
  const __m256 h01 = _mm256_hadd_ps(a0, a1);
  const __m256 h23 = _mm256_hadd_ps(a2, a3);
  const __m256 h = _mm256_hadd_ps(h01, h23);
  const __m128 sums =
      _mm_add_ps(_mm256_castps256_ps128(h), _mm256_extractf128_ps(h, 1));
  _mm_storeu_ps(out4, sums);
  for (; i < n; ++i) {
    const float qi = q[i];
    const float d0 = qi - v0[i];
    const float d1 = qi - v1[i];
    const float d2 = qi - v2[i];
    const float d3 = qi - v3[i];
    out4[0] += d0 * d0;
    out4[1] += d1 * d1;
    out4[2] += d2 * d2;
    out4[3] += d3 * d3;
  }
}

__attribute__((target("avx2,fma"))) void L2SqScanAvx2(
    const float* q, const float* base, std::size_t stride, std::size_t n,
    std::size_t rows, float* out) noexcept {
  // Same-target direct calls: the compiler inlines the batch4 body here, so
  // a whole run costs one indirect dispatch instead of rows/4 of them.
  std::size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    L2SqBatch4Avx2(q, base + r * stride, stride, n, out + r);
  }
  for (; r < rows; ++r) out[r] = L2SqAvx2(q, base + r * stride, n);
}

__attribute__((target("avx2,fma"))) std::size_t L2SqScanFilterAvx2(
    const float* q, float q_norm, const float* base, const float* norms,
    std::size_t stride, std::size_t n, std::size_t rows, float threshold,
    std::uint32_t* out_idx, float* out_dist) noexcept {
  // Dot form: one FMA per lane-group per row where the subtract form needs
  // sub+FMA. The subtract form saturates the two FP ports at ~8 cycles per
  // 64-d row; here the binding resource is the load ports (5 loads per
  // lane-group across 4 rows), ~5 cycles per row.
  const __m128 zero4 = _mm_setzero_ps();
  const __m128 thr4 = _mm_set1_ps(threshold);
  const __m128 qn4 = _mm_set1_ps(q_norm);
  const __m128 neg2 = _mm_set1_ps(-2.0f);
  std::size_t kept = 0;
  std::size_t r = 0;
  // 8-row groups: one query load feeds 8 row FMAs, so the load-port floor
  // drops from 5 loads / 4 rows to 9 loads / 8 rows per lane-group (~4.5
  // cycles per 64-d row on two load ports). 8 accumulators + the query
  // vector fit comfortably in the 16 ymm registers. Measured ~6.0 cycles
  // per row L1-resident vs ~7.4 for 4-row groups.
  {
    const __m256 thr8 = _mm256_set1_ps(threshold);
    const __m256 qn8 = _mm256_set1_ps(q_norm);
    const __m256 neg2w = _mm256_set1_ps(-2.0f);
    const __m256 zero8 = _mm256_setzero_ps();
    for (; r + 8 <= rows; r += 8) {
      const float* v0 = base + r * stride;
      __m256 a0 = _mm256_setzero_ps();
      __m256 a1 = _mm256_setzero_ps();
      __m256 a2 = _mm256_setzero_ps();
      __m256 a3 = _mm256_setzero_ps();
      __m256 a4 = _mm256_setzero_ps();
      __m256 a5 = _mm256_setzero_ps();
      __m256 a6 = _mm256_setzero_ps();
      __m256 a7 = _mm256_setzero_ps();
      // Software-prefetch the next 8-row group while computing this one.
      // The single-query scan streams the list out of L2 (partitions are
      // bigger than L1) and the hardware prefetcher alone leaves ~15% on
      // the table at this access pattern. Four lines per iteration cover
      // the next group; prefetch is a hint, so running past the block end
      // cannot fault.
      const char* next_group = reinterpret_cast<const char*>(v0 + 8 * stride);
      std::size_t i = 0;
      for (; i + 8 <= n; i += 8) {
        _mm_prefetch(next_group + 32 * i, _MM_HINT_T0);
        _mm_prefetch(next_group + 32 * i + 64, _MM_HINT_T0);
        _mm_prefetch(next_group + 32 * i + 128, _MM_HINT_T0);
        _mm_prefetch(next_group + 32 * i + 192, _MM_HINT_T0);
        const __m256 qv = _mm256_loadu_ps(q + i);  // one load feeds 8 rows
        a0 = _mm256_fmadd_ps(qv, _mm256_loadu_ps(v0 + i), a0);
        a1 = _mm256_fmadd_ps(qv, _mm256_loadu_ps(v0 + stride + i), a1);
        a2 = _mm256_fmadd_ps(qv, _mm256_loadu_ps(v0 + 2 * stride + i), a2);
        a3 = _mm256_fmadd_ps(qv, _mm256_loadu_ps(v0 + 3 * stride + i), a3);
        a4 = _mm256_fmadd_ps(qv, _mm256_loadu_ps(v0 + 4 * stride + i), a4);
        a5 = _mm256_fmadd_ps(qv, _mm256_loadu_ps(v0 + 5 * stride + i), a5);
        a6 = _mm256_fmadd_ps(qv, _mm256_loadu_ps(v0 + 6 * stride + i), a6);
        a7 = _mm256_fmadd_ps(qv, _mm256_loadu_ps(v0 + 7 * stride + i), a7);
      }
      // Transposed finish for both 4-row halves, then pack 8 dots in a ymm.
      const __m256 h01 = _mm256_hadd_ps(a0, a1);
      const __m256 h23 = _mm256_hadd_ps(a2, a3);
      const __m256 h45 = _mm256_hadd_ps(a4, a5);
      const __m256 h67 = _mm256_hadd_ps(a6, a7);
      const __m256 hA = _mm256_hadd_ps(h01, h23);
      const __m256 hB = _mm256_hadd_ps(h45, h67);
      const __m128 dotsA = _mm_add_ps(_mm256_castps256_ps128(hA),
                                      _mm256_extractf128_ps(hA, 1));
      const __m128 dotsB = _mm_add_ps(_mm256_castps256_ps128(hB),
                                      _mm256_extractf128_ps(hB, 1));
      __m256 dots =
          _mm256_insertf128_ps(_mm256_castps128_ps256(dotsA), dotsB, 1);
      if (i < n) {  // scalar remainder lanes folded into the dot lanes
        float d8[8];
        _mm256_storeu_ps(d8, dots);
        for (; i < n; ++i) {
          const float qi = q[i];
          for (int row = 0; row < 8; ++row) {
            d8[row] += qi * v0[row * stride + i];
          }
        }
        dots = _mm256_loadu_ps(d8);
      }
      __m256 dist = _mm256_fmadd_ps(
          neg2w, dots, _mm256_add_ps(qn8, _mm256_loadu_ps(norms + r)));
      dist = _mm256_max_ps(dist, zero8);
      const int mask =
          _mm256_movemask_ps(_mm256_cmp_ps(dist, thr8, _CMP_LE_OQ));
      if (mask != 0) {  // rare once the top-k is warm
        float d8[8];
        _mm256_storeu_ps(d8, dist);
        for (int m = mask; m != 0; m &= m - 1) {
          const int lane = __builtin_ctz(static_cast<unsigned>(m));
          out_idx[kept] = static_cast<std::uint32_t>(r) + lane;
          out_dist[kept] = d8[lane];
          ++kept;
        }
      }
    }
  }
  for (; r + 4 <= rows; r += 4) {
    const float* v0 = base + r * stride;
    const float* v1 = v0 + stride;
    const float* v2 = v1 + stride;
    const float* v3 = v2 + stride;
    __m256 a0 = _mm256_setzero_ps();
    __m256 a1 = _mm256_setzero_ps();
    __m256 a2 = _mm256_setzero_ps();
    __m256 a3 = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      const __m256 qv = _mm256_loadu_ps(q + i);  // one load feeds 4 rows
      a0 = _mm256_fmadd_ps(qv, _mm256_loadu_ps(v0 + i), a0);
      a1 = _mm256_fmadd_ps(qv, _mm256_loadu_ps(v1 + i), a1);
      a2 = _mm256_fmadd_ps(qv, _mm256_loadu_ps(v2 + i), a2);
      a3 = _mm256_fmadd_ps(qv, _mm256_loadu_ps(v3 + i), a3);
    }
    // Transposed finish (see L2SqBatch4Avx2): [dot0, dot1, dot2, dot3].
    const __m256 h01 = _mm256_hadd_ps(a0, a1);
    const __m256 h23 = _mm256_hadd_ps(a2, a3);
    const __m256 h = _mm256_hadd_ps(h01, h23);
    __m128 dots =
        _mm_add_ps(_mm256_castps256_ps128(h), _mm256_extractf128_ps(h, 1));
    if (i < n) {  // scalar remainder lanes folded into the dot lanes
      float d4[4];
      _mm_storeu_ps(d4, dots);
      for (; i < n; ++i) {
        const float qi = q[i];
        d4[0] += qi * v0[i];
        d4[1] += qi * v1[i];
        d4[2] += qi * v2[i];
        d4[3] += qi * v3[i];
      }
      dots = _mm_loadu_ps(d4);
    }
    __m128 dist = _mm_fmadd_ps(neg2, dots,
                               _mm_add_ps(qn4, _mm_loadu_ps(norms + r)));
    dist = _mm_max_ps(dist, zero4);
    const int mask = _mm_movemask_ps(_mm_cmp_ps(dist, thr4, _CMP_LE_OQ));
    if (mask != 0) {  // rare once the top-k is warm
      float d4[4];
      _mm_storeu_ps(d4, dist);
      for (int m = mask; m != 0; m &= m - 1) {
        const int lane = __builtin_ctz(static_cast<unsigned>(m));
        out_idx[kept] = static_cast<std::uint32_t>(r) + lane;
        out_dist[kept] = d4[lane];
        ++kept;
      }
    }
  }
  for (; r < rows; ++r) {
    const float dot = IpAvx2(q, base + r * stride, n);
    float dist = q_norm + norms[r] - 2.0f * dot;
    if (dist < 0.0f) dist = 0.0f;
    if (dist <= threshold) {
      out_idx[kept] = static_cast<std::uint32_t>(r);
      out_dist[kept] = dist;
      ++kept;
    }
  }
  return kept;
}

__attribute__((target("avx2"))) std::size_t FilterLeAvx2(
    const float* dists, std::size_t count, float threshold,
    std::uint32_t* out_idx) noexcept {
  const __m256 tv = _mm256_set1_ps(threshold);
  std::size_t n = 0;
  std::size_t j = 0;
  for (; j + 8 <= count; j += 8) {
    const int mask = _mm256_movemask_ps(
        _mm256_cmp_ps(_mm256_loadu_ps(dists + j), tv, _CMP_LE_OQ));
    if (mask == 0) continue;  // the common case: whole group inadmissible
    for (int m = mask; m != 0; m &= m - 1) {
      out_idx[n++] =
          static_cast<std::uint32_t>(j) + __builtin_ctz(static_cast<unsigned>(m));
    }
  }
  for (; j < count; ++j) {
    if (dists[j] <= threshold) out_idx[n++] = static_cast<std::uint32_t>(j);
  }
  return n;
}

// The ADC scan stays on the scalar routine in every tier: a vpgatherdps
// formulation (8 candidates wide, one gather per subspace) was measured at
// 0.8x the 4-candidate scalar unroll on the 8 KB tables this index uses —
// gather throughput loses to plain L1 loads with enough ILP, so dispatching
// it would make IVF-PQ search slower, not faster.
const DistanceKernels kAvx2Kernels = {
    L2SqAvx2,        IpAvx2,        L2SqBatch4Avx2,
    L2SqScanAvx2,    L2SqScanFilterAvx2,
    PqAdcScanScalar, FilterLeAvx2,  KernelTier::kAvx2};

// ---------------------------------------------------------------------------
// AVX-512F tier: 16-float lane groups; remainder lanes via load masks, so
// there is no scalar tail at all on the pairwise kernels.
// ---------------------------------------------------------------------------

__attribute__((target("avx512f"))) float L2SqAvx512(const float* a,
                                                    const float* b,
                                                    std::size_t n) noexcept {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m512 d0 =
        _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    const __m512 d1 = _mm512_sub_ps(_mm512_loadu_ps(a + i + 16),
                                    _mm512_loadu_ps(b + i + 16));
    acc0 = _mm512_fmadd_ps(d0, d0, acc0);
    acc1 = _mm512_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 16 <= n; i += 16) {
    const __m512 d =
        _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    acc0 = _mm512_fmadd_ps(d, d, acc0);
  }
  if (i < n) {
    const __mmask16 mask =
        static_cast<__mmask16>((1u << (n - i)) - 1u);
    const __m512 d = _mm512_sub_ps(_mm512_maskz_loadu_ps(mask, a + i),
                                   _mm512_maskz_loadu_ps(mask, b + i));
    acc0 = _mm512_fmadd_ps(d, d, acc0);
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
}

__attribute__((target("avx512f"))) float IpAvx512(const float* a,
                                                  const float* b,
                                                  std::size_t n) noexcept {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 16),
                           _mm512_loadu_ps(b + i + 16), acc1);
  }
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
  }
  if (i < n) {
    const __mmask16 mask =
        static_cast<__mmask16>((1u << (n - i)) - 1u);
    acc0 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(mask, a + i),
                           _mm512_maskz_loadu_ps(mask, b + i), acc0);
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
}

__attribute__((target("avx512f"))) void L2SqBatch4Avx512(
    const float* q, const float* base, std::size_t stride, std::size_t n,
    float* out4) noexcept {
  const float* v0 = base;
  const float* v1 = base + stride;
  const float* v2 = base + 2 * stride;
  const float* v3 = base + 3 * stride;
  __m512 a0 = _mm512_setzero_ps();
  __m512 a1 = _mm512_setzero_ps();
  __m512 a2 = _mm512_setzero_ps();
  __m512 a3 = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 qv = _mm512_loadu_ps(q + i);
    const __m512 d0 = _mm512_sub_ps(qv, _mm512_loadu_ps(v0 + i));
    const __m512 d1 = _mm512_sub_ps(qv, _mm512_loadu_ps(v1 + i));
    const __m512 d2 = _mm512_sub_ps(qv, _mm512_loadu_ps(v2 + i));
    const __m512 d3 = _mm512_sub_ps(qv, _mm512_loadu_ps(v3 + i));
    a0 = _mm512_fmadd_ps(d0, d0, a0);
    a1 = _mm512_fmadd_ps(d1, d1, a1);
    a2 = _mm512_fmadd_ps(d2, d2, a2);
    a3 = _mm512_fmadd_ps(d3, d3, a3);
  }
  if (i < n) {
    const __mmask16 mask =
        static_cast<__mmask16>((1u << (n - i)) - 1u);
    const __m512 qv = _mm512_maskz_loadu_ps(mask, q + i);
    const __m512 d0 = _mm512_sub_ps(qv, _mm512_maskz_loadu_ps(mask, v0 + i));
    const __m512 d1 = _mm512_sub_ps(qv, _mm512_maskz_loadu_ps(mask, v1 + i));
    const __m512 d2 = _mm512_sub_ps(qv, _mm512_maskz_loadu_ps(mask, v2 + i));
    const __m512 d3 = _mm512_sub_ps(qv, _mm512_maskz_loadu_ps(mask, v3 + i));
    a0 = _mm512_fmadd_ps(d0, d0, a0);
    a1 = _mm512_fmadd_ps(d1, d1, a1);
    a2 = _mm512_fmadd_ps(d2, d2, a2);
    a3 = _mm512_fmadd_ps(d3, d3, a3);
  }
  // Transposed finish: fold each zmm to a ymm (upper 256 bits via a 128-bit
  // lane shuffle), then the same two-level hadd combine as the AVX2 kernel
  // leaves [sum a0, sum a1, sum a2, sum a3] in one xmm — far fewer shuffle
  // ops than 4 independent _mm512_reduce_add_ps reductions.
  const __m256 f0 = _mm256_add_ps(
      _mm512_castps512_ps256(a0),
      _mm512_castps512_ps256(_mm512_shuffle_f32x4(a0, a0, 0xEE)));
  const __m256 f1 = _mm256_add_ps(
      _mm512_castps512_ps256(a1),
      _mm512_castps512_ps256(_mm512_shuffle_f32x4(a1, a1, 0xEE)));
  const __m256 f2 = _mm256_add_ps(
      _mm512_castps512_ps256(a2),
      _mm512_castps512_ps256(_mm512_shuffle_f32x4(a2, a2, 0xEE)));
  const __m256 f3 = _mm256_add_ps(
      _mm512_castps512_ps256(a3),
      _mm512_castps512_ps256(_mm512_shuffle_f32x4(a3, a3, 0xEE)));
  const __m256 h01 = _mm256_hadd_ps(f0, f1);
  const __m256 h23 = _mm256_hadd_ps(f2, f3);
  const __m256 h = _mm256_hadd_ps(h01, h23);
  const __m128 sums =
      _mm_add_ps(_mm256_castps256_ps128(h), _mm256_extractf128_ps(h, 1));
  _mm_storeu_ps(out4, sums);
}

// "fma" added for the xmm-width _mm_fmadd_ps in the epilogue (avx512f alone
// does not enable the 128-bit FMA intrinsics; every AVX-512F CPU has FMA).
__attribute__((target("avx512f,fma"))) std::size_t L2SqScanFilterAvx512(
    const float* q, float q_norm, const float* base, const float* norms,
    std::size_t stride, std::size_t n, std::size_t rows, float threshold,
    std::uint32_t* out_idx, float* out_dist) noexcept {
  const __m128 zero4 = _mm_setzero_ps();
  const __m128 thr4 = _mm_set1_ps(threshold);
  const __m128 qn4 = _mm_set1_ps(q_norm);
  const __m128 neg2 = _mm_set1_ps(-2.0f);
  std::size_t kept = 0;
  std::size_t r = 0;
  // 8-row groups + prefetch of the next group; see L2SqScanFilterAvx2 for
  // the load-port and streaming rationale. 8 zmm accumulators + the query
  // vector use 9 of the 32 zmm registers.
  {
    const __m256 thr8 = _mm256_set1_ps(threshold);
    const __m256 qn8 = _mm256_set1_ps(q_norm);
    const __m256 neg2w = _mm256_set1_ps(-2.0f);
    const __m256 zero8 = _mm256_setzero_ps();
    for (; r + 8 <= rows; r += 8) {
      const float* v0 = base + r * stride;
      __m512 a0 = _mm512_setzero_ps();
      __m512 a1 = _mm512_setzero_ps();
      __m512 a2 = _mm512_setzero_ps();
      __m512 a3 = _mm512_setzero_ps();
      __m512 a4 = _mm512_setzero_ps();
      __m512 a5 = _mm512_setzero_ps();
      __m512 a6 = _mm512_setzero_ps();
      __m512 a7 = _mm512_setzero_ps();
      const char* next_group = reinterpret_cast<const char*>(v0 + 8 * stride);
      std::size_t i = 0;
      for (; i + 16 <= n; i += 16) {
        _mm_prefetch(next_group + 32 * i, _MM_HINT_T0);
        _mm_prefetch(next_group + 32 * i + 64, _MM_HINT_T0);
        _mm_prefetch(next_group + 32 * i + 128, _MM_HINT_T0);
        _mm_prefetch(next_group + 32 * i + 192, _MM_HINT_T0);
        _mm_prefetch(next_group + 32 * i + 256, _MM_HINT_T0);
        _mm_prefetch(next_group + 32 * i + 320, _MM_HINT_T0);
        _mm_prefetch(next_group + 32 * i + 384, _MM_HINT_T0);
        _mm_prefetch(next_group + 32 * i + 448, _MM_HINT_T0);
        const __m512 qv = _mm512_loadu_ps(q + i);  // one load feeds 8 rows
        a0 = _mm512_fmadd_ps(qv, _mm512_loadu_ps(v0 + i), a0);
        a1 = _mm512_fmadd_ps(qv, _mm512_loadu_ps(v0 + stride + i), a1);
        a2 = _mm512_fmadd_ps(qv, _mm512_loadu_ps(v0 + 2 * stride + i), a2);
        a3 = _mm512_fmadd_ps(qv, _mm512_loadu_ps(v0 + 3 * stride + i), a3);
        a4 = _mm512_fmadd_ps(qv, _mm512_loadu_ps(v0 + 4 * stride + i), a4);
        a5 = _mm512_fmadd_ps(qv, _mm512_loadu_ps(v0 + 5 * stride + i), a5);
        a6 = _mm512_fmadd_ps(qv, _mm512_loadu_ps(v0 + 6 * stride + i), a6);
        a7 = _mm512_fmadd_ps(qv, _mm512_loadu_ps(v0 + 7 * stride + i), a7);
      }
      if (i < n) {
        const __mmask16 mask = static_cast<__mmask16>((1u << (n - i)) - 1u);
        const __m512 qv = _mm512_maskz_loadu_ps(mask, q + i);
        a0 = _mm512_fmadd_ps(qv, _mm512_maskz_loadu_ps(mask, v0 + i), a0);
        a1 = _mm512_fmadd_ps(qv, _mm512_maskz_loadu_ps(mask, v0 + stride + i),
                             a1);
        a2 = _mm512_fmadd_ps(
            qv, _mm512_maskz_loadu_ps(mask, v0 + 2 * stride + i), a2);
        a3 = _mm512_fmadd_ps(
            qv, _mm512_maskz_loadu_ps(mask, v0 + 3 * stride + i), a3);
        a4 = _mm512_fmadd_ps(
            qv, _mm512_maskz_loadu_ps(mask, v0 + 4 * stride + i), a4);
        a5 = _mm512_fmadd_ps(
            qv, _mm512_maskz_loadu_ps(mask, v0 + 5 * stride + i), a5);
        a6 = _mm512_fmadd_ps(
            qv, _mm512_maskz_loadu_ps(mask, v0 + 6 * stride + i), a6);
        a7 = _mm512_fmadd_ps(
            qv, _mm512_maskz_loadu_ps(mask, v0 + 7 * stride + i), a7);
      }
      // Fold each zmm to ymm, then the transposed-hadd finish per 4-row
      // half; pack the 8 dots into one ymm for the distance epilogue.
      const __m256 f0 = _mm256_add_ps(
          _mm512_castps512_ps256(a0),
          _mm512_castps512_ps256(_mm512_shuffle_f32x4(a0, a0, 0xEE)));
      const __m256 f1 = _mm256_add_ps(
          _mm512_castps512_ps256(a1),
          _mm512_castps512_ps256(_mm512_shuffle_f32x4(a1, a1, 0xEE)));
      const __m256 f2 = _mm256_add_ps(
          _mm512_castps512_ps256(a2),
          _mm512_castps512_ps256(_mm512_shuffle_f32x4(a2, a2, 0xEE)));
      const __m256 f3 = _mm256_add_ps(
          _mm512_castps512_ps256(a3),
          _mm512_castps512_ps256(_mm512_shuffle_f32x4(a3, a3, 0xEE)));
      const __m256 f4 = _mm256_add_ps(
          _mm512_castps512_ps256(a4),
          _mm512_castps512_ps256(_mm512_shuffle_f32x4(a4, a4, 0xEE)));
      const __m256 f5 = _mm256_add_ps(
          _mm512_castps512_ps256(a5),
          _mm512_castps512_ps256(_mm512_shuffle_f32x4(a5, a5, 0xEE)));
      const __m256 f6 = _mm256_add_ps(
          _mm512_castps512_ps256(a6),
          _mm512_castps512_ps256(_mm512_shuffle_f32x4(a6, a6, 0xEE)));
      const __m256 f7 = _mm256_add_ps(
          _mm512_castps512_ps256(a7),
          _mm512_castps512_ps256(_mm512_shuffle_f32x4(a7, a7, 0xEE)));
      const __m256 h01 = _mm256_hadd_ps(f0, f1);
      const __m256 h23 = _mm256_hadd_ps(f2, f3);
      const __m256 h45 = _mm256_hadd_ps(f4, f5);
      const __m256 h67 = _mm256_hadd_ps(f6, f7);
      const __m256 hA = _mm256_hadd_ps(h01, h23);
      const __m256 hB = _mm256_hadd_ps(h45, h67);
      const __m128 dotsA = _mm_add_ps(_mm256_castps256_ps128(hA),
                                      _mm256_extractf128_ps(hA, 1));
      const __m128 dotsB = _mm_add_ps(_mm256_castps256_ps128(hB),
                                      _mm256_extractf128_ps(hB, 1));
      const __m256 dots =
          _mm256_insertf128_ps(_mm256_castps128_ps256(dotsA), dotsB, 1);
      __m256 dist = _mm256_fmadd_ps(
          neg2w, dots, _mm256_add_ps(qn8, _mm256_loadu_ps(norms + r)));
      dist = _mm256_max_ps(dist, zero8);
      const int mask =
          _mm256_movemask_ps(_mm256_cmp_ps(dist, thr8, _CMP_LE_OQ));
      if (mask != 0) {
        float d8[8];
        _mm256_storeu_ps(d8, dist);
        for (int m = mask; m != 0; m &= m - 1) {
          const int lane = __builtin_ctz(static_cast<unsigned>(m));
          out_idx[kept] = static_cast<std::uint32_t>(r) + lane;
          out_dist[kept] = d8[lane];
          ++kept;
        }
      }
    }
  }
  for (; r + 4 <= rows; r += 4) {
    const float* v0 = base + r * stride;
    const float* v1 = v0 + stride;
    const float* v2 = v1 + stride;
    const float* v3 = v2 + stride;
    __m512 a0 = _mm512_setzero_ps();
    __m512 a1 = _mm512_setzero_ps();
    __m512 a2 = _mm512_setzero_ps();
    __m512 a3 = _mm512_setzero_ps();
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
      const __m512 qv = _mm512_loadu_ps(q + i);
      a0 = _mm512_fmadd_ps(qv, _mm512_loadu_ps(v0 + i), a0);
      a1 = _mm512_fmadd_ps(qv, _mm512_loadu_ps(v1 + i), a1);
      a2 = _mm512_fmadd_ps(qv, _mm512_loadu_ps(v2 + i), a2);
      a3 = _mm512_fmadd_ps(qv, _mm512_loadu_ps(v3 + i), a3);
    }
    if (i < n) {
      const __mmask16 mask = static_cast<__mmask16>((1u << (n - i)) - 1u);
      const __m512 qv = _mm512_maskz_loadu_ps(mask, q + i);
      a0 = _mm512_fmadd_ps(qv, _mm512_maskz_loadu_ps(mask, v0 + i), a0);
      a1 = _mm512_fmadd_ps(qv, _mm512_maskz_loadu_ps(mask, v1 + i), a1);
      a2 = _mm512_fmadd_ps(qv, _mm512_maskz_loadu_ps(mask, v2 + i), a2);
      a3 = _mm512_fmadd_ps(qv, _mm512_maskz_loadu_ps(mask, v3 + i), a3);
    }
    // Same fold + transposed-hadd finish as L2SqBatch4Avx512.
    const __m256 f0 = _mm256_add_ps(
        _mm512_castps512_ps256(a0),
        _mm512_castps512_ps256(_mm512_shuffle_f32x4(a0, a0, 0xEE)));
    const __m256 f1 = _mm256_add_ps(
        _mm512_castps512_ps256(a1),
        _mm512_castps512_ps256(_mm512_shuffle_f32x4(a1, a1, 0xEE)));
    const __m256 f2 = _mm256_add_ps(
        _mm512_castps512_ps256(a2),
        _mm512_castps512_ps256(_mm512_shuffle_f32x4(a2, a2, 0xEE)));
    const __m256 f3 = _mm256_add_ps(
        _mm512_castps512_ps256(a3),
        _mm512_castps512_ps256(_mm512_shuffle_f32x4(a3, a3, 0xEE)));
    const __m256 h01 = _mm256_hadd_ps(f0, f1);
    const __m256 h23 = _mm256_hadd_ps(f2, f3);
    const __m256 h = _mm256_hadd_ps(h01, h23);
    const __m128 dots =
        _mm_add_ps(_mm256_castps256_ps128(h), _mm256_extractf128_ps(h, 1));
    __m128 dist = _mm_fmadd_ps(neg2, dots,
                               _mm_add_ps(qn4, _mm_loadu_ps(norms + r)));
    dist = _mm_max_ps(dist, zero4);
    const int mask = _mm_movemask_ps(_mm_cmp_ps(dist, thr4, _CMP_LE_OQ));
    if (mask != 0) {
      float d4[4];
      _mm_storeu_ps(d4, dist);
      for (int m = mask; m != 0; m &= m - 1) {
        const int lane = __builtin_ctz(static_cast<unsigned>(m));
        out_idx[kept] = static_cast<std::uint32_t>(r) + lane;
        out_dist[kept] = d4[lane];
        ++kept;
      }
    }
  }
  for (; r < rows; ++r) {
    const float dot = IpAvx512(q, base + r * stride, n);
    float dist = q_norm + norms[r] - 2.0f * dot;
    if (dist < 0.0f) dist = 0.0f;
    if (dist <= threshold) {
      out_idx[kept] = static_cast<std::uint32_t>(r);
      out_dist[kept] = dist;
      ++kept;
    }
  }
  return kept;
}

__attribute__((target("avx512f"))) std::size_t FilterLeAvx512(
    const float* dists, std::size_t count, float threshold,
    std::uint32_t* out_idx) noexcept {
  const __m512 tv = _mm512_set1_ps(threshold);
  const __m512i iota =
      _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
  std::size_t n = 0;
  std::size_t j = 0;
  for (; j + 16 <= count; j += 16) {
    const __mmask16 mask =
        _mm512_cmp_ps_mask(_mm512_loadu_ps(dists + j), tv, _CMP_LE_OQ);
    if (mask == 0) continue;
    _mm512_mask_compressstoreu_epi32(
        out_idx + n, mask,
        _mm512_add_epi32(iota, _mm512_set1_epi32(static_cast<int>(j))));
    n += static_cast<std::size_t>(__builtin_popcount(mask));
  }
  for (; j < count; ++j) {
    if (dists[j] <= threshold) out_idx[n++] = static_cast<std::uint32_t>(j);
  }
  return n;
}

__attribute__((target("avx512f"))) void L2SqScanAvx512(
    const float* q, const float* base, std::size_t stride, std::size_t n,
    std::size_t rows, float* out) noexcept {
  std::size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    L2SqBatch4Avx512(q, base + r * stride, stride, n, out + r);
  }
  for (; r < rows; ++r) out[r] = L2SqAvx512(q, base + r * stride, n);
}

// Scalar ADC here too — the 16-wide _mm512_i32gather_ps variant measured
// ~0.2x the scalar unroll on this generation (see the AVX2 note above).
const DistanceKernels kAvx512Kernels = {
    L2SqAvx512,      IpAvx512,         L2SqBatch4Avx512,
    L2SqScanAvx512,  L2SqScanFilterAvx512,
    PqAdcScanScalar, FilterLeAvx512,   KernelTier::kAvx512};

#endif  // JDVS_KERNELS_X86

bool CpuSupportsTier(KernelTier tier) noexcept {
  switch (tier) {
    case KernelTier::kScalar:
      return true;
#if JDVS_KERNELS_X86
    case KernelTier::kAvx2:
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    case KernelTier::kAvx512:
      return __builtin_cpu_supports("avx512f");
#else
    case KernelTier::kAvx2:
    case KernelTier::kAvx512:
      return false;
#endif
  }
  return false;
}

const DistanceKernels* TableForTier(KernelTier tier) noexcept {
  switch (tier) {
    case KernelTier::kScalar:
      return &kScalarKernels;
#if JDVS_KERNELS_X86
    case KernelTier::kAvx2:
      return &kAvx2Kernels;
    case KernelTier::kAvx512:
      return &kAvx512Kernels;
#else
    case KernelTier::kAvx2:
    case KernelTier::kAvx512:
      return nullptr;
#endif
  }
  return nullptr;
}

// Parses JDVS_KERNEL_DISPATCH; "auto" / unset / unknown values mean "highest
// supported" (unknown values warn once).
KernelTier ResolveTier() noexcept {
  KernelTier best = KernelTier::kScalar;
  if (CpuSupportsTier(KernelTier::kAvx2)) best = KernelTier::kAvx2;
  if (CpuSupportsTier(KernelTier::kAvx512)) best = KernelTier::kAvx512;

  const char* env = std::getenv("JDVS_KERNEL_DISPATCH");
  if (env == nullptr) return best;
  const std::string_view want(env);
  if (want == "auto" || want.empty()) return best;
  if (want == "scalar") return KernelTier::kScalar;
  if (want == "avx2") {
    if (CpuSupportsTier(KernelTier::kAvx2)) return KernelTier::kAvx2;
    JDVS_LOG(kWarning) << "JDVS_KERNEL_DISPATCH=avx2 unsupported on this CPU; "
                          "falling back to scalar";
    return KernelTier::kScalar;
  }
  if (want == "avx512") {
    if (CpuSupportsTier(KernelTier::kAvx512)) return KernelTier::kAvx512;
    JDVS_LOG(kWarning) << "JDVS_KERNEL_DISPATCH=avx512 unsupported on this "
                          "CPU; falling back to "
                       << KernelTierName(best);
    return best;
  }
  JDVS_LOG(kWarning) << "unknown JDVS_KERNEL_DISPATCH value '" << want
                     << "'; using " << KernelTierName(best);
  return best;
}

std::atomic<const DistanceKernels*> g_active{nullptr};

const DistanceKernels* ResolveActive() noexcept {
  // Idempotent, so a racy double-resolve at startup is harmless: both
  // threads compute the same table pointer.
  const DistanceKernels* table = TableForTier(ResolveTier());
  g_active.store(table, std::memory_order_release);
  return table;
}

}  // namespace

const char* KernelTierName(KernelTier tier) noexcept {
  switch (tier) {
    case KernelTier::kScalar:
      return "scalar";
    case KernelTier::kAvx2:
      return "avx2";
    case KernelTier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

const DistanceKernels& Kernels() noexcept {
  const DistanceKernels* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) table = ResolveActive();
  return *table;
}

KernelTier ActiveKernelTier() noexcept { return Kernels().tier; }

const DistanceKernels* KernelsForTier(KernelTier tier) noexcept {
  if (!CpuSupportsTier(tier)) return nullptr;
  return TableForTier(tier);
}

bool ForceKernelTier(KernelTier tier) noexcept {
  const DistanceKernels* table = KernelsForTier(tier);
  if (table == nullptr) return false;
  g_active.store(table, std::memory_order_release);
  return true;
}

}  // namespace jdvs

// Runtime-dispatched SIMD distance kernels.
//
// Every query in the system bottoms out in a handful of inner loops: L2^2 /
// inner-product between float vectors, one-query-vs-block scans over
// contiguous posting blocks, and ADC table lookups over packed PQ codes.
// This layer expresses each of those as a function pointer in a
// DistanceKernels table, resolved exactly once at startup from cpuid (and an
// optional JDVS_KERNEL_DISPATCH env override) into scalar / AVX2 / AVX-512
// variants. Call sites use Kernels().l2sq(...) — or the thin wrappers in
// vecmath/distance.h — and never know which tier is running.
//
// Contract shared by every tier (verified by tests/kernels_test.cc):
//  * identical semantics across tiers within 1e-4 relative tolerance for any
//    dimension, including remainder lanes (dims not divisible by 8/16);
//  * no alignment requirement (unaligned loads are used; aligned inputs are
//    simply faster). Padded-and-zeroed storage (vecmath/aligned.h) lets
//    batch kernels run whole cache lines with the padding contributing 0.
#pragma once

#include <cstddef>
#include <cstdint>

namespace jdvs {

// Dispatch tier, ordered by capability. Values are stable: they are exported
// as the jdvs_kernel_dispatch_tier gauge.
enum class KernelTier : int {
  kScalar = 0,
  kAvx2 = 1,    // AVX2 + FMA, 8 floats per lane-group
  kAvx512 = 2,  // AVX-512F, 16 floats per lane-group
};

const char* KernelTierName(KernelTier tier) noexcept;

// The kernel table. All pointers are non-null in every table.
struct DistanceKernels {
  // Squared Euclidean distance over n floats.
  float (*l2sq)(const float* a, const float* b, std::size_t n) noexcept;

  // Inner product over n floats.
  float (*ip)(const float* a, const float* b, std::size_t n) noexcept;

  // One query against 4 vectors stored contiguously with a fixed stride (in
  // floats, >= n): out[i] = L2^2(q, base + i*stride). The query is loaded
  // once per lane-group and reused across the 4 rows, which is what makes
  // contiguous posting blocks faster than pointer-chasing per vector.
  void (*l2sq_batch4)(const float* q, const float* base, std::size_t stride,
                      std::size_t n, float* out4) noexcept;

  // Run scan: one query against `rows` consecutive stride-spaced rows:
  // out[r] = L2^2(q, base + r*stride, n). Semantically a loop of
  // l2sq_batch4 (same lane math, same results), but the whole posting run
  // goes through one dispatch call, so the indirect-call and prologue cost
  // is paid per run instead of per 4 candidates — on short rows (the 64-d
  // testbed) that overhead is a third of the scan.
  void (*l2sq_scan)(const float* q, const float* base, std::size_t stride,
                    std::size_t n, std::size_t rows, float* out) noexcept;

  // Fused scan + top-k admission in the dot-product form of the distance:
  //   dist[r] = max(0, q_norm + norms[r] - 2 * <q, base + r*stride>)
  // where q_norm = ||q||^2 and norms[r] = ||row r||^2 (precomputed at append
  // time — ScanBlock stores them as the per-entry aux rider). Rows with
  // dist <= threshold are compacted: out_idx[j] = row index (ascending),
  // out_dist[j] = distance; returns how many survived. out_idx/out_dist need
  // room for `rows` entries.
  //
  // Two things make this the IVF hot-loop kernel rather than l2sq_scan +
  // filter_le:
  //  * the dot form halves the FP work per lane-group (1 FMA vs sub+FMA) —
  //    the subtract form is FP-port-bound, so this is a real ~1.5x;
  //  * fusing the threshold test removes the dists round-trip through memory
  //    and the second pass entirely.
  // The price is the classic cancellation: computing a - b where a ~= b
  // loses absolute accuracy ~eps * (q_norm + norms[r]) when q and the row
  // are nearly identical. All tiers use the same formulation (so tiers agree
  // to lane-reduction rounding, ~1e-6 relative), but results differ from
  // l2sq/l2sq_scan by up to ~1e-5 * (q_norm + norms[r]) absolute — callers
  // that need the subtract form's behavior (ground truth, tests) keep using
  // l2sq_scan.
  std::size_t (*l2sq_scan_filter)(const float* q, float q_norm,
                                  const float* base, const float* norms,
                                  std::size_t stride, std::size_t n,
                                  std::size_t rows, float threshold,
                                  std::uint32_t* out_idx,
                                  float* out_dist) noexcept;

  // ADC scan: `count` packed PQ codes of `m` bytes each (contiguous, stride
  // m) against a per-query table of m x ks partial distances (row-major):
  // out[c] = sum_s table[s*ks + codes[c*m + s]].
  void (*pq_adc_scan)(const float* table, std::size_t ks,
                      const std::uint8_t* codes, std::size_t m,
                      std::size_t count, float* out) noexcept;

  // Candidate filter: writes the indices j (ascending) with
  // dists[j] <= threshold into out_idx and returns how many there are.
  // out_idx must have room for `count` entries. NaN distances never pass.
  // This is the top-k admission test of a scan: once the heap is warm almost
  // every candidate fails it, so the SIMD tiers turn 1 compare+branch per
  // candidate into 1 compare per lane-group.
  std::size_t (*filter_le)(const float* dists, std::size_t count,
                           float threshold, std::uint32_t* out_idx) noexcept;

  KernelTier tier = KernelTier::kScalar;
};

// The active kernel table. Resolved once (thread-safe) on first use: the
// highest tier the CPU supports, clamped by JDVS_KERNEL_DISPATCH
// (scalar|avx2|avx512|auto). Subsequent calls are one atomic pointer load.
const DistanceKernels& Kernels() noexcept;

KernelTier ActiveKernelTier() noexcept;

// The kernel table for a specific tier, or nullptr when this CPU cannot run
// it. Bench/test hook: lets the roofline measure every supported tier and
// property tests compare each tier against scalar.
const DistanceKernels* KernelsForTier(KernelTier tier) noexcept;

// Forces the active table to `tier` for subsequent Kernels() calls. Returns
// false (and changes nothing) when the CPU lacks the tier. Bench/test only:
// not synchronized with concurrent searches beyond the atomic pointer swap.
bool ForceKernelTier(KernelTier tier) noexcept;

}  // namespace jdvs

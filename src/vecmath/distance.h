// Distance kernels.
#pragma once

#include <cstddef>

#include "vecmath/vector.h"

namespace jdvs {

// Squared Euclidean (L2^2) distance. The system ranks by relative distance,
// so the square root is never needed on the hot path.
float L2SquaredDistance(FeatureView a, FeatureView b) noexcept;

// Inner product (for completeness / normalized-feature cosine search).
float InnerProduct(FeatureView a, FeatureView b) noexcept;

// Euclidean norm of a vector.
float L2Norm(FeatureView a) noexcept;

// Scales `v` in place to unit L2 norm; zero vectors are left unchanged.
void NormalizeL2(std::span<float> v) noexcept;

// Batch form: distances from `query` to `count` contiguous vectors of
// dimension `dim` starting at `base`; writes into `out[0..count)`.
void L2SquaredBatch(FeatureView query, const float* base, std::size_t dim,
                    std::size_t count, float* out) noexcept;

}  // namespace jdvs

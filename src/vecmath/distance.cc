#include "vecmath/distance.h"

#include <cassert>
#include <cmath>

namespace jdvs {

float L2SquaredDistance(FeatureView a, FeatureView b) noexcept {
  assert(a.size() == b.size());
  const std::size_t n = a.size();
  // Four accumulators: lets the compiler vectorize and hides FP latency.
  float s0 = 0.f, s1 = 0.f, s2 = 0.f, s3 = 0.f;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float d0 = a[i] - b[i];
    const float d1 = a[i + 1] - b[i + 1];
    const float d2 = a[i + 2] - b[i + 2];
    const float d3 = a[i + 3] - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    s0 += d * d;
  }
  return (s0 + s1) + (s2 + s3);
}

float InnerProduct(FeatureView a, FeatureView b) noexcept {
  assert(a.size() == b.size());
  const std::size_t n = a.size();
  float s0 = 0.f, s1 = 0.f, s2 = 0.f, s3 = 0.f;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) s0 += a[i] * b[i];
  return (s0 + s1) + (s2 + s3);
}

float L2Norm(FeatureView a) noexcept {
  return std::sqrt(InnerProduct(a, a));
}

void NormalizeL2(std::span<float> v) noexcept {
  const float norm = L2Norm(FeatureView(v.data(), v.size()));
  if (norm == 0.f) return;
  const float inv = 1.f / norm;
  for (float& x : v) x *= inv;
}

void L2SquaredBatch(FeatureView query, const float* base, std::size_t dim,
                    std::size_t count, float* out) noexcept {
  assert(query.size() == dim);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = L2SquaredDistance(query, FeatureView(base + i * dim, dim));
  }
}

}  // namespace jdvs

#include "vecmath/distance.h"

#include <cassert>
#include <cmath>

#include "vecmath/kernels.h"

namespace jdvs {

// The pairwise entry points are thin wrappers over the runtime-dispatched
// kernel table (vecmath/kernels.h): every existing call site — ivf_index,
// ivfpq_index, imi, lsh, kmeans, quantizer, query_cache, codebook, hashing —
// picks up the SIMD tier resolved at startup without any semantic change.

float L2SquaredDistance(FeatureView a, FeatureView b) noexcept {
  assert(a.size() == b.size());
  return Kernels().l2sq(a.data(), b.data(), a.size());
}

float InnerProduct(FeatureView a, FeatureView b) noexcept {
  assert(a.size() == b.size());
  return Kernels().ip(a.data(), b.data(), a.size());
}

float L2Norm(FeatureView a) noexcept {
  // Deliberately NOT sqrt(InnerProduct(a, a)): the fp32 accumulator loses
  // precision over long vectors and overflows to +inf around |x| ~ 1e19
  // (x*x near FLT_MAX) — real embedding pipelines hand us unnormalized
  // vectors exactly here, before NormalizeL2. Accumulate in float64; norms
  // up to ~1e154 stay finite and the rounding error is one ulp-ish.
  double acc = 0.0;
  for (const float x : a) {
    const double d = static_cast<double>(x);
    acc += d * d;
  }
  return static_cast<float>(std::sqrt(acc));
}

void NormalizeL2(std::span<float> v) noexcept {
  // Same float64 discipline as L2Norm so huge-magnitude vectors normalize
  // instead of collapsing to 0/NaN through an intermediate +inf.
  double acc = 0.0;
  for (const float x : v) {
    const double d = static_cast<double>(x);
    acc += d * d;
  }
  if (acc == 0.0) return;
  const double inv = 1.0 / std::sqrt(acc);
  for (float& x : v) x = static_cast<float>(static_cast<double>(x) * inv);
}

void L2SquaredBatch(FeatureView query, const float* base, std::size_t dim,
                    std::size_t count, float* out) noexcept {
  assert(query.size() == dim);
  const DistanceKernels& kernels = Kernels();
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    kernels.l2sq_batch4(query.data(), base + i * dim, dim, dim, out + i);
  }
  for (; i < count; ++i) {
    out[i] = kernels.l2sq(query.data(), base + i * dim, dim);
  }
}

}  // namespace jdvs

#include "cluster/quantizer.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "vecmath/distance.h"

namespace jdvs {

CoarseQuantizer::CoarseQuantizer(std::vector<float> centroids, std::size_t dim)
    : centroids_(std::move(centroids)),
      dim_(dim),
      num_clusters_(dim == 0 ? 0 : centroids_.size() / dim) {
  assert(dim_ > 0);
  assert(centroids_.size() % dim_ == 0);
  assert(num_clusters_ > 0);
}

CoarseQuantizer::CoarseQuantizer(const KMeansResult& kmeans)
    : CoarseQuantizer(kmeans.centroids, kmeans.dim) {}

std::uint32_t CoarseQuantizer::NearestCentroid(FeatureView v) const {
  assert(v.size() == dim_);
  float best = std::numeric_limits<float>::infinity();
  std::uint32_t best_c = 0;
  for (std::size_t c = 0; c < num_clusters_; ++c) {
    const float d = L2SquaredDistance(v, Centroid(c));
    if (d < best) {
      best = d;
      best_c = static_cast<std::uint32_t>(c);
    }
  }
  return best_c;
}

std::vector<std::uint32_t> CoarseQuantizer::NearestCentroids(
    FeatureView v, std::size_t nprobe) const {
  assert(v.size() == dim_);
  nprobe = std::clamp<std::size_t>(nprobe, 1, num_clusters_);
  std::vector<std::pair<float, std::uint32_t>> scored;
  scored.reserve(num_clusters_);
  for (std::size_t c = 0; c < num_clusters_; ++c) {
    scored.emplace_back(L2SquaredDistance(v, Centroid(c)),
                        static_cast<std::uint32_t>(c));
  }
  std::partial_sort(scored.begin(), scored.begin() + nprobe, scored.end());
  std::vector<std::uint32_t> result(nprobe);
  for (std::size_t i = 0; i < nprobe; ++i) result[i] = scored[i].second;
  return result;
}

}  // namespace jdvs

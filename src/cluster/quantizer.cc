#include "cluster/quantizer.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>

#include "vecmath/kernels.h"

namespace jdvs {

CoarseQuantizer::CoarseQuantizer(std::vector<float> centroids, std::size_t dim)
    : centroids_(std::move(centroids)),
      dim_(dim),
      num_clusters_(dim == 0 ? 0 : centroids_.size() / dim),
      padded_dim_(PaddedDim(dim)) {
  assert(dim_ > 0);
  assert(centroids_.size() % dim_ == 0);
  assert(num_clusters_ > 0);
  // Padded, 64-byte-aligned mirror of the centroid table so assignment runs
  // through the batch scan kernel (padding lanes are zero and contribute 0).
  padded_centroids_ = AllocateAligned<float>(num_clusters_ * padded_dim_);
  for (std::size_t c = 0; c < num_clusters_; ++c) {
    std::memcpy(padded_centroids_.get() + c * padded_dim_,
                centroids_.data() + c * dim_, dim_ * sizeof(float));
  }
}

CoarseQuantizer::CoarseQuantizer(const KMeansResult& kmeans)
    : CoarseQuantizer(kmeans.centroids, kmeans.dim) {}

void CoarseQuantizer::ScoreAll(FeatureView v, float* dists) const {
  assert(v.size() == dim_);
  const DistanceKernels& kernels = Kernels();
  // Zero-padded query row; reused scratch keeps the sweep allocation-free
  // after the first call on a thread.
  thread_local std::vector<float> padded_query;
  padded_query.assign(padded_dim_, 0.f);
  std::memcpy(padded_query.data(), v.data(), dim_ * sizeof(float));
  kernels.l2sq_scan(padded_query.data(), padded_centroids_.get(), padded_dim_,
                    padded_dim_, num_clusters_, dists);
}

std::uint32_t CoarseQuantizer::NearestCentroid(FeatureView v) const {
  thread_local std::vector<float> dists;
  dists.resize(num_clusters_);
  ScoreAll(v, dists.data());
  float best = std::numeric_limits<float>::infinity();
  std::uint32_t best_c = 0;
  for (std::size_t c = 0; c < num_clusters_; ++c) {
    if (dists[c] < best) {
      best = dists[c];
      best_c = static_cast<std::uint32_t>(c);
    }
  }
  return best_c;
}

std::vector<std::uint32_t> CoarseQuantizer::NearestCentroids(
    FeatureView v, std::size_t nprobe) const {
  nprobe = std::clamp<std::size_t>(nprobe, 1, num_clusters_);
  thread_local std::vector<float> dists;
  dists.resize(num_clusters_);
  ScoreAll(v, dists.data());
  thread_local std::vector<std::pair<float, std::uint32_t>> scored;
  scored.clear();
  scored.reserve(num_clusters_);
  for (std::size_t c = 0; c < num_clusters_; ++c) {
    scored.emplace_back(dists[c], static_cast<std::uint32_t>(c));
  }
  std::partial_sort(scored.begin(), scored.begin() + nprobe, scored.end());
  std::vector<std::uint32_t> result(nprobe);
  for (std::size_t i = 0; i < nprobe; ++i) result[i] = scored[i].second;
  return result;
}

std::vector<std::vector<std::uint32_t>> CoarseQuantizer::NearestCentroidsBatch(
    std::span<const FeatureView> queries,
    std::span<const std::size_t> nprobes) const {
  assert(queries.size() == nprobes.size());
  const std::size_t n = queries.size();
  // Per-query ScoreAll, identical to the solo path — distances (and
  // therefore probe order, including tie-breaks) match exactly, so batched
  // and solo searches probe identical lists. The padded centroid table is
  // one contiguous aligned block, so the sweep no longer needs the
  // centroid-major loop order the old pointer-per-centroid layout wanted.
  std::vector<std::vector<std::uint32_t>> result(n);
  for (std::size_t i = 0; i < n; ++i) {
    result[i] = NearestCentroids(queries[i], nprobes[i]);
  }
  return result;
}

}  // namespace jdvs

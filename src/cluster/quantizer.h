// Coarse quantizer: maps a feature vector to its nearest centroid(s).
//
// During indexing "the class that an image belongs to is calculated based on
// the similarity using the nearest neighbor algorithm" (Section 2.2); during
// search "each searcher node identifies the cluster that is most similar to
// the queried image" (Section 2.4). Searching more than one probe (nprobe)
// is the standard IVF recall knob and is exposed here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "cluster/kmeans.h"
#include "vecmath/aligned.h"
#include "vecmath/vector.h"

namespace jdvs {

class CoarseQuantizer {
 public:
  // Takes ownership of trained centroids (num_clusters x dim row-major).
  CoarseQuantizer(std::vector<float> centroids, std::size_t dim);

  // Builds from a k-means result.
  explicit CoarseQuantizer(const KMeansResult& kmeans);

  // Index of the nearest centroid. Thread-safe (immutable after build).
  std::uint32_t NearestCentroid(FeatureView v) const;

  // Indices of the `nprobe` nearest centroids, most similar first.
  std::vector<std::uint32_t> NearestCentroids(FeatureView v,
                                              std::size_t nprobe) const;

  // Batched multi-probe assignment: result[i] is exactly
  // NearestCentroids(queries[i], nprobes[i]), but the centroid table is
  // walked once for the whole batch (centroid-major), so each centroid row
  // is fetched from memory once regardless of batch size.
  std::vector<std::vector<std::uint32_t>> NearestCentroidsBatch(
      std::span<const FeatureView> queries,
      std::span<const std::size_t> nprobes) const;

  FeatureView Centroid(std::size_t c) const {
    return FeatureView(centroids_.data() + c * dim_, dim_);
  }
  std::size_t num_clusters() const { return num_clusters_; }
  std::size_t dim() const { return dim_; }

 private:
  // Squared distances from `v` to every centroid, via the batch scan kernel
  // over the padded table. `dists` must hold num_clusters() floats.
  void ScoreAll(FeatureView v, float* dists) const;

  std::vector<float> centroids_;
  std::size_t dim_;
  std::size_t num_clusters_;
  std::size_t padded_dim_;
  // Centroids re-laid-out at PaddedDim(dim) stride, 64-byte aligned, padding
  // lanes zero — the layout the vecmath batch kernels scan fastest.
  AlignedArray<float> padded_centroids_;
};

}  // namespace jdvs

// Lloyd's k-means with k-means++ seeding.
//
// Section 2.2: "The k-mean algorithm on a set of training data set (i.e.,
// image features) is used to generate the classification" — the resulting
// centroids define the N inverted lists of the IVF index.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "vecmath/vector.h"

namespace jdvs {

struct KMeansConfig {
  std::size_t num_clusters = 64;
  std::size_t max_iterations = 25;
  // Stop early when the relative improvement of total inertia drops below
  // this threshold.
  double tolerance = 1e-4;
  std::uint64_t seed = 1;
};

struct KMeansResult {
  // num_clusters * dim floats, row-major.
  std::vector<float> centroids;
  std::size_t dim = 0;
  std::size_t num_clusters = 0;
  // Assignment of each training point to its centroid.
  std::vector<std::uint32_t> assignments;
  // Final total within-cluster sum of squared distances.
  double inertia = 0.0;
  std::size_t iterations_run = 0;

  FeatureView Centroid(std::size_t c) const {
    return FeatureView(centroids.data() + c * dim, dim);
  }
};

// Trains k-means over `points` (count x dim, row-major). If there are fewer
// points than clusters, the number of clusters is reduced to the number of
// distinct points used. Requires count >= 1 and dim >= 1.
KMeansResult TrainKMeans(const float* points, std::size_t count,
                         std::size_t dim, const KMeansConfig& config);

// Convenience overload over a vector of FeatureVectors (all of equal dim).
KMeansResult TrainKMeans(const std::vector<FeatureVector>& points,
                         const KMeansConfig& config);

}  // namespace jdvs

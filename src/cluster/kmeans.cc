#include "cluster/kmeans.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "vecmath/distance.h"

namespace jdvs {
namespace {

// k-means++ seeding: first centroid uniform, each next centroid sampled with
// probability proportional to squared distance to the nearest chosen one.
std::vector<float> SeedPlusPlus(const float* points, std::size_t count,
                                std::size_t dim, std::size_t k, Rng& rng) {
  std::vector<float> centroids;
  centroids.reserve(k * dim);

  const std::size_t first = rng.Below(count);
  centroids.insert(centroids.end(), points + first * dim,
                   points + (first + 1) * dim);

  std::vector<double> d2(count, 0.0);
  for (std::size_t i = 0; i < count; ++i) {
    d2[i] = L2SquaredDistance(FeatureView(points + i * dim, dim),
                              FeatureView(centroids.data(), dim));
  }

  while (centroids.size() < k * dim) {
    double total = 0.0;
    for (const double d : d2) total += d;
    std::size_t chosen;
    if (total <= 0.0) {
      // All points coincide with chosen centroids; fall back to uniform.
      chosen = rng.Below(count);
    } else {
      double r = rng.NextDouble() * total;
      chosen = count - 1;
      for (std::size_t i = 0; i < count; ++i) {
        r -= d2[i];
        if (r <= 0.0) {
          chosen = i;
          break;
        }
      }
    }
    const FeatureView c(points + chosen * dim, dim);
    centroids.insert(centroids.end(), c.begin(), c.end());
    const std::size_t chosen_idx = centroids.size() / dim - 1;
    for (std::size_t i = 0; i < count; ++i) {
      const float d = L2SquaredDistance(
          FeatureView(points + i * dim, dim),
          FeatureView(centroids.data() + chosen_idx * dim, dim));
      d2[i] = std::min(d2[i], static_cast<double>(d));
    }
  }
  return centroids;
}

}  // namespace

KMeansResult TrainKMeans(const float* points, std::size_t count,
                         std::size_t dim, const KMeansConfig& config) {
  assert(count >= 1 && dim >= 1);
  KMeansResult result;
  result.dim = dim;
  result.num_clusters = std::max<std::size_t>(
      1, std::min(config.num_clusters, count));
  const std::size_t k = result.num_clusters;

  Rng rng(config.seed);
  result.centroids = SeedPlusPlus(points, count, dim, k, rng);
  result.assignments.assign(count, 0);

  std::vector<double> sums(k * dim);
  std::vector<std::size_t> sizes(k);
  double prev_inertia = std::numeric_limits<double>::infinity();

  for (std::size_t iter = 0; iter < std::max<std::size_t>(
                                 config.max_iterations, 1);
       ++iter) {
    result.iterations_run = iter + 1;
    // Assignment step.
    double inertia = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
      const FeatureView p(points + i * dim, dim);
      float best = std::numeric_limits<float>::infinity();
      std::uint32_t best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const float d = L2SquaredDistance(p, result.Centroid(c));
        if (d < best) {
          best = d;
          best_c = static_cast<std::uint32_t>(c);
        }
      }
      result.assignments[i] = best_c;
      inertia += best;
    }
    result.inertia = inertia;

    // Update step.
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(sizes.begin(), sizes.end(), 0);
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint32_t c = result.assignments[i];
      ++sizes[c];
      for (std::size_t j = 0; j < dim; ++j) {
        sums[c * dim + j] += points[i * dim + j];
      }
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (sizes[c] == 0) {
        // Empty cluster: re-seed on a random point to keep k lists useful.
        const std::size_t pick = rng.Below(count);
        std::copy(points + pick * dim, points + (pick + 1) * dim,
                  result.centroids.begin() + c * dim);
        continue;
      }
      const double inv = 1.0 / static_cast<double>(sizes[c]);
      for (std::size_t j = 0; j < dim; ++j) {
        result.centroids[c * dim + j] =
            static_cast<float>(sums[c * dim + j] * inv);
      }
    }

    if (prev_inertia < std::numeric_limits<double>::infinity()) {
      const double improvement =
          (prev_inertia - inertia) / std::max(prev_inertia, 1e-12);
      if (improvement >= 0.0 && improvement < config.tolerance) break;
    }
    prev_inertia = inertia;
  }
  return result;
}

KMeansResult TrainKMeans(const std::vector<FeatureVector>& points,
                         const KMeansConfig& config) {
  assert(!points.empty());
  const std::size_t dim = points.front().size();
  std::vector<float> flat;
  flat.reserve(points.size() * dim);
  for (const auto& p : points) {
    assert(p.size() == dim);
    flat.insert(flat.end(), p.begin(), p.end());
  }
  return TrainKMeans(flat.data(), points.size(), dim, config);
}

}  // namespace jdvs

# Empty dependencies file for jdvs_trace_stats.
# This may be replaced when dependencies are built.

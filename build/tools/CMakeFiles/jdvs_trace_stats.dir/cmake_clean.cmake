file(REMOVE_RECURSE
  "CMakeFiles/jdvs_trace_stats.dir/jdvs_trace_stats.cpp.o"
  "CMakeFiles/jdvs_trace_stats.dir/jdvs_trace_stats.cpp.o.d"
  "jdvs_trace_stats"
  "jdvs_trace_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jdvs_trace_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for jdvs_snapshot_inspect.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/jdvs_snapshot_inspect.dir/jdvs_snapshot_inspect.cpp.o"
  "CMakeFiles/jdvs_snapshot_inspect.dir/jdvs_snapshot_inspect.cpp.o.d"
  "jdvs_snapshot_inspect"
  "jdvs_snapshot_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jdvs_snapshot_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for jdvs_trace_gen.
# This may be replaced when dependencies are built.

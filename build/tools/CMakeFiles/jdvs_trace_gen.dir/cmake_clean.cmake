file(REMOVE_RECURSE
  "CMakeFiles/jdvs_trace_gen.dir/jdvs_trace_gen.cpp.o"
  "CMakeFiles/jdvs_trace_gen.dir/jdvs_trace_gen.cpp.o.d"
  "jdvs_trace_gen"
  "jdvs_trace_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jdvs_trace_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

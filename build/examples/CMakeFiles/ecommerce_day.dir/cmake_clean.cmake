file(REMOVE_RECURSE
  "CMakeFiles/ecommerce_day.dir/ecommerce_day.cpp.o"
  "CMakeFiles/ecommerce_day.dir/ecommerce_day.cpp.o.d"
  "ecommerce_day"
  "ecommerce_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecommerce_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

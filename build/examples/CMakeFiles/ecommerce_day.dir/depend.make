# Empty dependencies file for ecommerce_day.
# This may be replaced when dependencies are built.

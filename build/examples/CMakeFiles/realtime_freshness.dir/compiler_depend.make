# Empty compiler generated dependencies file for realtime_freshness.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/realtime_freshness.dir/realtime_freshness.cpp.o"
  "CMakeFiles/realtime_freshness.dir/realtime_freshness.cpp.o.d"
  "realtime_freshness"
  "realtime_freshness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realtime_freshness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/index_distribution.dir/index_distribution.cpp.o"
  "CMakeFiles/index_distribution.dir/index_distribution.cpp.o.d"
  "index_distribution"
  "index_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for index_distribution.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for search_examples.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/search_examples.dir/search_examples.cpp.o"
  "CMakeFiles/search_examples.dir/search_examples.cpp.o.d"
  "search_examples"
  "search_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for reranker_test.
# This may be replaced when dependencies are built.

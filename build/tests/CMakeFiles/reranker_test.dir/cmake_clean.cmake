file(REMOVE_RECURSE
  "CMakeFiles/reranker_test.dir/reranker_test.cc.o"
  "CMakeFiles/reranker_test.dir/reranker_test.cc.o.d"
  "reranker_test"
  "reranker_test.pdb"
  "reranker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reranker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

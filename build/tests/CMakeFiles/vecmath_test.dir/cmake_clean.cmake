file(REMOVE_RECURSE
  "CMakeFiles/vecmath_test.dir/vecmath_test.cc.o"
  "CMakeFiles/vecmath_test.dir/vecmath_test.cc.o.d"
  "vecmath_test"
  "vecmath_test.pdb"
  "vecmath_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vecmath_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for imi_test.
# This may be replaced when dependencies are built.

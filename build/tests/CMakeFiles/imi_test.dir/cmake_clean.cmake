file(REMOVE_RECURSE
  "CMakeFiles/imi_test.dir/imi_test.cc.o"
  "CMakeFiles/imi_test.dir/imi_test.cc.o.d"
  "imi_test"
  "imi_test.pdb"
  "imi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ivf_index_test.dir/ivf_index_test.cc.o"
  "CMakeFiles/ivf_index_test.dir/ivf_index_test.cc.o.d"
  "ivf_index_test"
  "ivf_index_test.pdb"
  "ivf_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ivf_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

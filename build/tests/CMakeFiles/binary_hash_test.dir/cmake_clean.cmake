file(REMOVE_RECURSE
  "CMakeFiles/binary_hash_test.dir/binary_hash_test.cc.o"
  "CMakeFiles/binary_hash_test.dir/binary_hash_test.cc.o.d"
  "binary_hash_test"
  "binary_hash_test.pdb"
  "binary_hash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binary_hash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for binary_hash_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for full_index_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/full_index_test.dir/full_index_test.cc.o"
  "CMakeFiles/full_index_test.dir/full_index_test.cc.o.d"
  "full_index_test"
  "full_index_test.pdb"
  "full_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/realtime_indexer_test.dir/realtime_indexer_test.cc.o"
  "CMakeFiles/realtime_indexer_test.dir/realtime_indexer_test.cc.o.d"
  "realtime_indexer_test"
  "realtime_indexer_test.pdb"
  "realtime_indexer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realtime_indexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

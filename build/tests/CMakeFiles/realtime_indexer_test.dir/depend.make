# Empty dependencies file for realtime_indexer_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_table1_update_mix.
# This may be replaced when dependencies are built.

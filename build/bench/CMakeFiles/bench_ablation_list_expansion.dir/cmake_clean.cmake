file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_list_expansion.dir/bench_ablation_list_expansion.cpp.o"
  "CMakeFiles/bench_ablation_list_expansion.dir/bench_ablation_list_expansion.cpp.o.d"
  "bench_ablation_list_expansion"
  "bench_ablation_list_expansion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_list_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_feature_reuse.dir/bench_ablation_feature_reuse.cpp.o"
  "CMakeFiles/bench_ablation_feature_reuse.dir/bench_ablation_feature_reuse.cpp.o.d"
  "bench_ablation_feature_reuse"
  "bench_ablation_feature_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_feature_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_ablation_reranker.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_reranker.dir/bench_ablation_reranker.cpp.o"
  "CMakeFiles/bench_ablation_reranker.dir/bench_ablation_reranker.cpp.o.d"
  "bench_ablation_reranker"
  "bench_ablation_reranker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_reranker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

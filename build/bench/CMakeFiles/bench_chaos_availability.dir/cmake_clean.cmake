file(REMOVE_RECURSE
  "CMakeFiles/bench_chaos_availability.dir/bench_chaos_availability.cpp.o"
  "CMakeFiles/bench_chaos_availability.dir/bench_chaos_availability.cpp.o.d"
  "bench_chaos_availability"
  "bench_chaos_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chaos_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

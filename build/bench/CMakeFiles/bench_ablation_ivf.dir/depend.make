# Empty dependencies file for bench_ablation_ivf.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ivf.dir/bench_ablation_ivf.cpp.o"
  "CMakeFiles/bench_ablation_ivf.dir/bench_ablation_ivf.cpp.o.d"
  "bench_ablation_ivf"
  "bench_ablation_ivf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ivf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

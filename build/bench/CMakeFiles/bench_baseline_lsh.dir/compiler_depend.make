# Empty compiler generated dependencies file for bench_baseline_lsh.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_lsh.dir/bench_baseline_lsh.cpp.o"
  "CMakeFiles/bench_baseline_lsh.dir/bench_baseline_lsh.cpp.o.d"
  "bench_baseline_lsh"
  "bench_baseline_lsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_lsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

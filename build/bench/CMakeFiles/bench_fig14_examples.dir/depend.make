# Empty dependencies file for bench_fig14_examples.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig11a_hourly_rates.
# This may be replaced when dependencies are built.

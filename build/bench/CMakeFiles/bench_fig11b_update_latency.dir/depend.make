# Empty dependencies file for bench_fig11b_update_latency.
# This may be replaced when dependencies are built.

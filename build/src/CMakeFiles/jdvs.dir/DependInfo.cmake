
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/kmeans.cc" "src/CMakeFiles/jdvs.dir/cluster/kmeans.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/cluster/kmeans.cc.o.d"
  "/root/repo/src/cluster/quantizer.cc" "src/CMakeFiles/jdvs.dir/cluster/quantizer.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/cluster/quantizer.cc.o.d"
  "/root/repo/src/common/clock.cc" "src/CMakeFiles/jdvs.dir/common/clock.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/common/clock.cc.o.d"
  "/root/repo/src/common/flags.cc" "src/CMakeFiles/jdvs.dir/common/flags.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/common/flags.cc.o.d"
  "/root/repo/src/common/histogram.cc" "src/CMakeFiles/jdvs.dir/common/histogram.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/common/histogram.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/jdvs.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/jdvs.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/common/rng.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/jdvs.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/embedding/category_detector.cc" "src/CMakeFiles/jdvs.dir/embedding/category_detector.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/embedding/category_detector.cc.o.d"
  "/root/repo/src/embedding/extractor.cc" "src/CMakeFiles/jdvs.dir/embedding/extractor.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/embedding/extractor.cc.o.d"
  "/root/repo/src/hashing/binary_hash.cc" "src/CMakeFiles/jdvs.dir/hashing/binary_hash.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/hashing/binary_hash.cc.o.d"
  "/root/repo/src/imi/multi_index.cc" "src/CMakeFiles/jdvs.dir/imi/multi_index.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/imi/multi_index.cc.o.d"
  "/root/repo/src/index/bitmap.cc" "src/CMakeFiles/jdvs.dir/index/bitmap.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/index/bitmap.cc.o.d"
  "/root/repo/src/index/digest.cc" "src/CMakeFiles/jdvs.dir/index/digest.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/index/digest.cc.o.d"
  "/root/repo/src/index/forward_index.cc" "src/CMakeFiles/jdvs.dir/index/forward_index.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/index/forward_index.cc.o.d"
  "/root/repo/src/index/full_index_builder.cc" "src/CMakeFiles/jdvs.dir/index/full_index_builder.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/index/full_index_builder.cc.o.d"
  "/root/repo/src/index/inverted_index.cc" "src/CMakeFiles/jdvs.dir/index/inverted_index.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/index/inverted_index.cc.o.d"
  "/root/repo/src/index/ivf_index.cc" "src/CMakeFiles/jdvs.dir/index/ivf_index.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/index/ivf_index.cc.o.d"
  "/root/repo/src/index/realtime_indexer.cc" "src/CMakeFiles/jdvs.dir/index/realtime_indexer.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/index/realtime_indexer.cc.o.d"
  "/root/repo/src/index/snapshot.cc" "src/CMakeFiles/jdvs.dir/index/snapshot.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/index/snapshot.cc.o.d"
  "/root/repo/src/kvstore/kvstore.cc" "src/CMakeFiles/jdvs.dir/kvstore/kvstore.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/kvstore/kvstore.cc.o.d"
  "/root/repo/src/lsh/lsh_index.cc" "src/CMakeFiles/jdvs.dir/lsh/lsh_index.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/lsh/lsh_index.cc.o.d"
  "/root/repo/src/metrics/cdf.cc" "src/CMakeFiles/jdvs.dir/metrics/cdf.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/metrics/cdf.cc.o.d"
  "/root/repo/src/metrics/latency_recorder.cc" "src/CMakeFiles/jdvs.dir/metrics/latency_recorder.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/metrics/latency_recorder.cc.o.d"
  "/root/repo/src/metrics/qps_counter.cc" "src/CMakeFiles/jdvs.dir/metrics/qps_counter.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/metrics/qps_counter.cc.o.d"
  "/root/repo/src/metrics/time_series.cc" "src/CMakeFiles/jdvs.dir/metrics/time_series.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/metrics/time_series.cc.o.d"
  "/root/repo/src/mq/message.cc" "src/CMakeFiles/jdvs.dir/mq/message.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/mq/message.cc.o.d"
  "/root/repo/src/mq/message_log.cc" "src/CMakeFiles/jdvs.dir/mq/message_log.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/mq/message_log.cc.o.d"
  "/root/repo/src/mq/topic_queue.cc" "src/CMakeFiles/jdvs.dir/mq/topic_queue.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/mq/topic_queue.cc.o.d"
  "/root/repo/src/net/latency_model.cc" "src/CMakeFiles/jdvs.dir/net/latency_model.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/net/latency_model.cc.o.d"
  "/root/repo/src/net/load_balancer.cc" "src/CMakeFiles/jdvs.dir/net/load_balancer.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/net/load_balancer.cc.o.d"
  "/root/repo/src/net/node.cc" "src/CMakeFiles/jdvs.dir/net/node.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/net/node.cc.o.d"
  "/root/repo/src/net/partitioner.cc" "src/CMakeFiles/jdvs.dir/net/partitioner.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/net/partitioner.cc.o.d"
  "/root/repo/src/net/rpc.cc" "src/CMakeFiles/jdvs.dir/net/rpc.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/net/rpc.cc.o.d"
  "/root/repo/src/pq/codebook.cc" "src/CMakeFiles/jdvs.dir/pq/codebook.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/pq/codebook.cc.o.d"
  "/root/repo/src/pq/ivfpq_index.cc" "src/CMakeFiles/jdvs.dir/pq/ivfpq_index.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/pq/ivfpq_index.cc.o.d"
  "/root/repo/src/pq/pq_snapshot.cc" "src/CMakeFiles/jdvs.dir/pq/pq_snapshot.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/pq/pq_snapshot.cc.o.d"
  "/root/repo/src/search/blender.cc" "src/CMakeFiles/jdvs.dir/search/blender.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/search/blender.cc.o.d"
  "/root/repo/src/search/broker.cc" "src/CMakeFiles/jdvs.dir/search/broker.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/search/broker.cc.o.d"
  "/root/repo/src/search/cluster_builder.cc" "src/CMakeFiles/jdvs.dir/search/cluster_builder.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/search/cluster_builder.cc.o.d"
  "/root/repo/src/search/query_cache.cc" "src/CMakeFiles/jdvs.dir/search/query_cache.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/search/query_cache.cc.o.d"
  "/root/repo/src/search/ranking.cc" "src/CMakeFiles/jdvs.dir/search/ranking.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/search/ranking.cc.o.d"
  "/root/repo/src/search/reranker.cc" "src/CMakeFiles/jdvs.dir/search/reranker.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/search/reranker.cc.o.d"
  "/root/repo/src/search/searcher.cc" "src/CMakeFiles/jdvs.dir/search/searcher.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/search/searcher.cc.o.d"
  "/root/repo/src/search/types.cc" "src/CMakeFiles/jdvs.dir/search/types.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/search/types.cc.o.d"
  "/root/repo/src/store/catalog.cc" "src/CMakeFiles/jdvs.dir/store/catalog.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/store/catalog.cc.o.d"
  "/root/repo/src/store/feature_db.cc" "src/CMakeFiles/jdvs.dir/store/feature_db.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/store/feature_db.cc.o.d"
  "/root/repo/src/store/image_store.cc" "src/CMakeFiles/jdvs.dir/store/image_store.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/store/image_store.cc.o.d"
  "/root/repo/src/vecmath/distance.cc" "src/CMakeFiles/jdvs.dir/vecmath/distance.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/vecmath/distance.cc.o.d"
  "/root/repo/src/vecmath/topk.cc" "src/CMakeFiles/jdvs.dir/vecmath/topk.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/vecmath/topk.cc.o.d"
  "/root/repo/src/vecmath/vector_set.cc" "src/CMakeFiles/jdvs.dir/vecmath/vector_set.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/vecmath/vector_set.cc.o.d"
  "/root/repo/src/workload/catalog_gen.cc" "src/CMakeFiles/jdvs.dir/workload/catalog_gen.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/workload/catalog_gen.cc.o.d"
  "/root/repo/src/workload/day_trace.cc" "src/CMakeFiles/jdvs.dir/workload/day_trace.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/workload/day_trace.cc.o.d"
  "/root/repo/src/workload/query_client.cc" "src/CMakeFiles/jdvs.dir/workload/query_client.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/workload/query_client.cc.o.d"
  "/root/repo/src/workload/trace_io.cc" "src/CMakeFiles/jdvs.dir/workload/trace_io.cc.o" "gcc" "src/CMakeFiles/jdvs.dir/workload/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for jdvs.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libjdvs.a"
)

// Tests for the blender result cache and its freshness bounds.
#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/rng.h"
#include "search/query_cache.h"

namespace jdvs {
namespace {

FeatureVector RandomVector(Rng& rng, std::size_t dim) {
  FeatureVector v(dim);
  for (float& x : v) x = static_cast<float>(rng.NextGaussian()) * 4.f;
  return v;
}

QueryResponse MakeResponse(ImageId top) {
  QueryResponse response;
  RankedResult r;
  r.hit.image_id = top;
  r.score = 1.0;
  response.results.push_back(std::move(r));
  return response;
}

TEST(QueryCacheTest, MissThenHit) {
  ManualClock clock;
  QueryCache cache(16, {}, clock);
  Rng rng(1);
  const auto q = RandomVector(rng, 16);
  const auto key = cache.KeyFor(q, 10, 0);
  EXPECT_FALSE(cache.Lookup(key, 0).has_value());
  cache.Insert(key, 0, MakeResponse(42));
  const auto hit = cache.Lookup(key, 0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->results[0].hit.image_id, 42u);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_NEAR(stats.HitRate(), 0.5, 1e-9);
}

TEST(QueryCacheTest, KeyIsStableAndSensitive) {
  ManualClock clock;
  QueryCache cache(16, {}, clock);
  Rng rng(2);
  const auto a = RandomVector(rng, 16);
  const auto b = RandomVector(rng, 16);
  EXPECT_EQ(cache.KeyFor(a, 10, 0), cache.KeyFor(a, 10, 0));
  EXPECT_NE(cache.KeyFor(a, 10, 0), cache.KeyFor(b, 10, 0));
  // k and nprobe are part of the key.
  EXPECT_NE(cache.KeyFor(a, 10, 0), cache.KeyFor(a, 5, 0));
  EXPECT_NE(cache.KeyFor(a, 10, 0), cache.KeyFor(a, 10, 4));
}

TEST(QueryCacheTest, NearDuplicateQueriesShareKey) {
  ManualClock clock;
  QueryCache cache(32, {.signature_bits = 64}, clock);
  Rng rng(3);
  const auto base = RandomVector(rng, 32);
  FeatureVector near = base;
  for (float& x : near) x += static_cast<float>(rng.NextGaussian()) * 0.001f;
  EXPECT_EQ(cache.KeyFor(base, 10, 0), cache.KeyFor(near, 10, 0));
}

TEST(QueryCacheTest, TtlExpiresEntries) {
  ManualClock clock;
  QueryCache cache(8, {.ttl_micros = 1000}, clock);
  Rng rng(4);
  const auto q = RandomVector(rng, 8);
  const auto key = cache.KeyFor(q, 10, 0);
  cache.Insert(key, 0, MakeResponse(1));
  clock.AdvanceMicros(999);
  EXPECT_TRUE(cache.Lookup(key, 0).has_value());
  clock.AdvanceMicros(2);
  EXPECT_FALSE(cache.Lookup(key, 0).has_value());
  EXPECT_EQ(cache.stats().expired, 1u);
  EXPECT_EQ(cache.size(), 0u);  // expired entries are evicted
}

TEST(QueryCacheTest, StrictVersionCheckInvalidatesOnUpdate) {
  ManualClock clock;
  QueryCache cache(8, {.strict_version_check = true}, clock);
  Rng rng(5);
  const auto q = RandomVector(rng, 8);
  const auto key = cache.KeyFor(q, 10, 0);
  cache.Insert(key, /*version=*/7, MakeResponse(1));
  EXPECT_TRUE(cache.Lookup(key, 7).has_value());
  // One product update happened -> version moved -> strict miss.
  EXPECT_FALSE(cache.Lookup(key, 8).has_value());
  EXPECT_EQ(cache.stats().stale, 1u);
}

TEST(QueryCacheTest, NonStrictIgnoresVersion) {
  ManualClock clock;
  QueryCache cache(8, {}, clock);  // strict off (default)
  Rng rng(6);
  const auto q = RandomVector(rng, 8);
  const auto key = cache.KeyFor(q, 10, 0);
  cache.Insert(key, 7, MakeResponse(1));
  EXPECT_TRUE(cache.Lookup(key, 999).has_value());
}

TEST(QueryCacheTest, LruEvictsOldest) {
  ManualClock clock;
  QueryCacheConfig config;
  config.capacity = 3;
  QueryCache cache(8, config, clock);
  Rng rng(7);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 4; ++i) {
    const auto q = RandomVector(rng, 8);
    keys.push_back(cache.KeyFor(q, 10, 0));
    cache.Insert(keys.back(), 0, MakeResponse(i));
  }
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_FALSE(cache.Lookup(keys[0], 0).has_value());  // oldest gone
  EXPECT_TRUE(cache.Lookup(keys[3], 0).has_value());
}

TEST(QueryCacheTest, LookupTouchesRecency) {
  ManualClock clock;
  QueryCacheConfig config;
  config.capacity = 2;
  QueryCache cache(8, config, clock);
  Rng rng(8);
  const auto qa = RandomVector(rng, 8);
  const auto qb = RandomVector(rng, 8);
  const auto qc = RandomVector(rng, 8);
  const auto ka = cache.KeyFor(qa, 10, 0);
  const auto kb = cache.KeyFor(qb, 10, 0);
  const auto kc = cache.KeyFor(qc, 10, 0);
  cache.Insert(ka, 0, MakeResponse(1));
  cache.Insert(kb, 0, MakeResponse(2));
  cache.Lookup(ka, 0);                   // a becomes most recent
  cache.Insert(kc, 0, MakeResponse(3));  // evicts b, not a
  EXPECT_TRUE(cache.Lookup(ka, 0).has_value());
  EXPECT_FALSE(cache.Lookup(kb, 0).has_value());
}

TEST(QueryCacheTest, ClearEmpties) {
  ManualClock clock;
  QueryCache cache(8, {}, clock);
  Rng rng(9);
  const auto q = RandomVector(rng, 8);
  cache.Insert(cache.KeyFor(q, 10, 0), 0, MakeResponse(1));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace jdvs
